// Ablation: table-cache sizing.  The evaluation fixes the DRAM cache
// at 2.8% of the Hash-PBN table (Sec 7.1); this bench sweeps the
// fraction and shows how hit rate, host-DRAM traffic, and projected
// throughput respond for a cache-sensitive workload (Write-M) and an
// insensitive one (Write-L) — the capacity/bandwidth trade at the
// heart of Observation #1.

#include <cstdio>

#include "harness.h"

using namespace fidr;

namespace {

bench::RunResult
run_with_fraction(const workload::WorkloadSpec &spec, double fraction)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.platform.cache_fraction = fraction;
    core::FidrSystem system(config);
    return bench::drive(system, spec);
}

}  // namespace

int
main()
{
    bench::print_header("Ablation: table-cache size",
                        "the 2.8% cache sizing of Sec 7.1");

    for (const auto &spec :
         {workload::write_m_spec(), workload::write_l_spec()}) {
        std::printf("%s:\n", spec.name.c_str());
        std::printf("  %10s %10s %12s %14s %12s\n", "cache", "hit",
                    "DRAM B/B", "cache DRAM", "proj. tput");
        for (double fraction : {0.007, 0.014, 0.028, 0.056, 0.112}) {
            const bench::RunResult r = run_with_fraction(spec, fraction);
            const double cache_gb =
                fraction *
                static_cast<double>(
                    bench::eval_platform().expected_unique_chunks) /
                (107.0 * 0.7) * 4096 / 1e6;
            std::printf("  %9.1f%% %9.1f%% %12.2f %11.1f MB %8.1f GBs\n",
                        100 * fraction, 100 * r.cache.hit_rate(),
                        r.mem_per_byte, cache_gb,
                        to_gb_per_s(r.projection.throughput()));
        }
        std::printf("\n");
    }
    std::printf("Reading: Write-M's duplicate window fits once the "
                "cache grows past it,\nso hit rate and throughput jump "
                "together; Write-L's misses come from\ngenuinely fresh "
                "content and barely respond — more DRAM only helps "
                "when\nthe workload has locality to capture "
                "(Observation #1's capacity vs\nbandwidth split).\n");
    return 0;
}
