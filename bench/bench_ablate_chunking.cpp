// Ablation: fixed vs content-defined chunking (Sec 2.1.1).  The paper
// chooses fixed 4 KB chunking for its negligible compute cost and
// because block-storage clients write LBA-aligned 4 KB anyway; CDC's
// advantage appears for byte-stream workloads with insertions (backup
// streams), where fixed chunking loses all alignment after an edit.
// This bench quantifies both sides:
//   - dedup retained after a small insertion edit (streams);
//   - chunking compute cost per GB, against the hashing cost it rides
//     with in the NIC.

#include <cstdio>
#include <unordered_set>

#include "fidr/chunking/cdc.h"
#include "fidr/common/rng.h"
#include "fidr/hash/sha256.h"

using namespace fidr;

namespace {

Buffer
random_bytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Buffer out(n);
    for (auto &b : out)
        b = static_cast<std::uint8_t>(rng.next_u64());
    return out;
}

template <typename SplitFn>
double
dedup_after_edit(const Buffer &v1, const Buffer &v2, SplitFn split)
{
    std::unordered_set<Digest> seen;
    std::uint64_t total_v2 = 0, dup_v2 = 0;
    for (const chunking::ChunkSpan &s : split(v1)) {
        seen.insert(Sha256::hash(std::span<const std::uint8_t>(
            v1.data() + s.offset, s.length)));
    }
    for (const chunking::ChunkSpan &s : split(v2)) {
        const Digest d = Sha256::hash(std::span<const std::uint8_t>(
            v2.data() + s.offset, s.length));
        total_v2 += s.length;
        if (seen.contains(d))
            dup_v2 += s.length;
    }
    return static_cast<double>(dup_v2) / static_cast<double>(total_v2);
}

}  // namespace

int
main()
{
    std::printf("===================================================="
                "================\n");
    std::printf("Ablation: fixed vs content-defined chunking\n"
                "  (reproduces the Sec 2.1.1 design discussion)\n");
    std::printf("===================================================="
                "================\n");

    // A 16 MB "backup stream", then version 2 with a small insertion
    // at a random interior point.
    const Buffer v1 = random_bytes(16 << 20, 10);
    Buffer v2(v1.begin(), v1.begin() + (5 << 20));
    const Buffer edit = random_bytes(137, 11);
    v2.insert(v2.end(), edit.begin(), edit.end());
    v2.insert(v2.end(), v1.begin() + (5 << 20), v1.end());

    chunking::GearCdc cdc;
    const double cdc_dedup = dedup_after_edit(
        v1, v2, [&](const Buffer &b) { return cdc.split(b); });
    const double fixed_dedup = dedup_after_edit(
        v1, v2,
        [](const Buffer &b) { return chunking::split_fixed(b); });

    std::printf("Stream re-dedup after a 137-byte insertion "
                "(16 MB stream):\n");
    std::printf("  %-24s %10s\n", "chunking", "dedup kept");
    std::printf("  %-24s %9.1f%%\n", "fixed 4 KB", 100 * fixed_dedup);
    std::printf("  %-24s %9.1f%%\n", "CDC (gear, ~4 KB)",
                100 * cdc_dedup);

    // Compute-cost model: gear hashing ~1 table lookup + shift + add
    // per byte (~1 cycle/B on a 3 GHz core -> ~0.33 core-s per GB),
    // versus SHA-256 fingerprinting at ~10 cycles/B that both schemes
    // pay anyway.
    const double hashed_fraction =
        static_cast<double>(cdc.hashed_bytes()) /
        (2.0 * static_cast<double>(v1.size()));
    const double cdc_core_s_per_gb = hashed_fraction * 1e9 / 3e9;
    std::printf("\nChunking compute (model, 3 GHz core):\n");
    std::printf("  fixed:   ~0 core-s/GB (offset arithmetic only)\n");
    std::printf("  CDC:     %.2f core-s/GB (%.0f%% of bytes gear-"
                "hashed)\n",
                cdc_core_s_per_gb, 100 * hashed_fraction);
    std::printf("  => at 75 GB/s, software CDC alone would need ~%.0f "
                "cores — the\n     'high computational overhead' that "
                "justifies fixed chunking (or\n     FPGA-offloaded CDC "
                "[9, 28]) in the paper.\n",
                cdc_core_s_per_gb * 75);

    std::printf("\nVariable chunk-size distribution (CDC):\n");
    std::size_t mn = SIZE_MAX, mx = 0, count = 0, total = 0;
    for (const chunking::ChunkSpan &s : cdc.split(v1)) {
        mn = std::min(mn, s.length);
        mx = std::max(mx, s.length);
        total += s.length;
        ++count;
    }
    std::printf("  %zu chunks, min %zu B, avg %zu B, max %zu B\n",
                count, mn, total / count, mx);
    return 0;
}
