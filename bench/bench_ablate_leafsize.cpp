// Ablation: the 16-key leaf modification of the hardware tree
// (Sec 6.3).  The original pipelined tree [48] keeps 2 keys per node
// at every level; FIDR widens only the leaf level to 16 keys so every
// non-leaf level still fits single-cycle on-chip memory while the
// DRAM-resident leaf level absorbs 8x more entries.  This bench shows
// the capacity reachable at a given pipeline depth for several leaf
// widths, and the resulting indexable table-cache size.

#include <cstdio>

#include "fidr/hwtree/hw_tree.h"
#include "fidr/common/units.h"

using namespace fidr;

namespace {

/** Entries indexable with `levels` pipeline stages. */
std::uint64_t
capacity_for_levels(unsigned levels, unsigned leaf_keys,
                    unsigned fanout)
{
    // levels-1 internal stages of `fanout` children over a leaf level
    // of `leaf_keys` entries per node.
    std::uint64_t leaves = 1;
    for (unsigned i = 1; i < levels; ++i)
        leaves *= fanout;
    return leaves * leaf_keys;
}

}  // namespace

int
main()
{
    std::printf("===================================================="
                "================\n");
    std::printf("Ablation: hardware-tree leaf width\n"
                "  (the Sec 6.3 design choice: 2-key nodes everywhere "
                "vs 16-key leaves)\n");
    std::printf("===================================================="
                "================\n");

    std::printf("Indexable table-cache size (4 KB lines) by pipeline "
                "depth:\n");
    std::printf("%8s | %14s %14s %14s\n", "levels", "leaf=2 keys",
                "leaf=8 keys", "leaf=16 keys");
    for (unsigned levels : {9u, 11u, 13u, 14u}) {
        std::printf("%8u |", levels);
        for (unsigned leaf : {2u, 8u, 16u}) {
            const std::uint64_t entries =
                capacity_for_levels(levels, leaf, 3);
            std::printf(" %11.2f GB", static_cast<double>(entries) *
                                          4096 / 1e9);
        }
        std::printf("\n");
    }

    std::printf("\nLevels needed for the paper's two cache sizes:\n");
    for (unsigned leaf : {2u, 8u, 16u}) {
        hwtree::HwTreeConfig geometry;
        geometry.leaf_capacity = leaf < 4 ? 4 : leaf;  // Model floor.
        const std::uint64_t medium = 410ull * 1000 * 1000 / 4096;
        const std::uint64_t large = 99'645ull * 1000 * 1000 / 4096;
        std::printf("  leaf=%2u keys: 410 MB cache -> %2u levels, "
                    "99.6 GB cache -> %2u levels\n",
                    leaf,
                    hwtree::HwTree::levels_for_entries(
                        medium, {leaf < 4 ? 4u : leaf, 3, 32}),
                    hwtree::HwTree::levels_for_entries(
                        large, {leaf < 4 ? 4u : leaf, 3, 32}));
    }

    std::printf("\nReading: with 2-key leaves the 99.6 GB cache needs "
                "~3 more pipeline\nstages than the FPGA's on-chip "
                "budget allows; the 16-key DRAM leaf\nreaches it at 14 "
                "levels — exactly the paper's design point, at the "
                "cost of\none 608 B DRAM access per lookup (the Fig 13 "
                "DRAM ceiling).\n");
    return 0;
}
