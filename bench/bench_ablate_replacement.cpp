// Ablation: table-cache replacement policy.  The paper uses plain LRU
// and argues (Sec 8) that smarter policies are orthogonal and can be
// slotted into FIDR software.  This bench quantifies the policy's
// effect on hit rate and projected throughput across the Table 3
// workloads.

#include <cstdio>

#include "harness.h"

using namespace fidr;

namespace {

bench::RunResult
run_with_policy(const workload::WorkloadSpec &spec,
                cache::EvictionPolicy policy)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.eviction_policy = policy;
    core::FidrSystem system(config);
    return bench::drive(system, spec);
}

}  // namespace

int
main()
{
    bench::print_header("Ablation: cache replacement policy",
                        "the LRU design choice of Sec 5.5 / Sec 8");

    std::printf("%-12s | %-18s %-18s %-18s\n", "workload",
                "LRU hit / tput", "FIFO hit / tput", "random hit / tput");
    for (const auto &spec : workload::table3_specs()) {
        std::printf("%-12s |", spec.name.c_str());
        for (const auto policy :
             {cache::EvictionPolicy::kLru, cache::EvictionPolicy::kFifo,
              cache::EvictionPolicy::kRandom}) {
            const bench::RunResult r = run_with_policy(spec, policy);
            std::printf(" %5.1f%% %5.1f GBs  ",
                        100 * r.cache.hit_rate(),
                        to_gb_per_s(r.projection.throughput()));
        }
        std::printf("\n");
    }
    std::printf("\nReading: LRU and FIFO track each other closely "
                "(FIFO even edges ahead on\nWrite-M, whose duplicate "
                "window slightly exceeds the cache and thrashes\n"
                "LRU); random eviction costs several points "
                "everywhere.  Policy moves\nhit rates by a few points "
                "while the offloading architecture moves\nthroughput "
                "by multiples — supporting the paper's claim (Sec 8) "
                "that\nreplacement policy is orthogonal and "
                "swappable.\n");
    return 0;
}
