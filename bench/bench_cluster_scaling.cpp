// Cluster scale-out: aggregate throughput of N FIDR nodes behind the
// cluster router, nodes {1,2,4} x routing {lba-hash, fingerprint} over
// the Table 3 workloads (the paper's horizontal-scaling story: capacity
// and throughput grow by adding FIDR servers, Sec 1/Sec 8).
//
// Emits BENCH_cluster.json and enforces the ISSUE 10 gates:
//   1. cluster-of-1 is bit-identical to a bare FidrSystem — reduction
//      stats, ledgers, journal occupancy, and every payload byte;
//   2. 4-node aggregate writes/s >= 3x the 1-node cell (near-linear);
//   3. fingerprint-routed cluster dedup within 2% of single-node
//      global dedup (content-hash ownership co-locates duplicates).
//
// `--smoke` shrinks the sweep to one workload for CI; the gates still
// run (scripts/tier1.sh).  Throughput is the ledger-model projection
// (core::project per node + fabric busy time), not wall clock, so the
// numbers are host-independent like every other figure bench.

#include <cstring>
#include <set>

#include "fidr/cluster/router.h"
#include "fidr/workload/table3.h"
#include "harness.h"

using namespace fidr;

namespace {

core::FidrConfig
cluster_node_config()
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.journal_metadata = true;  // The identity gate covers it.
    return config;
}

/** Everything the gates compare about one driven system. */
struct DriveResult {
    core::ReductionStats reduction;
    std::uint64_t journal_records = 0;
    double mem_total = 0;   ///< Host-DRAM ledger bytes.
    double cpu_seconds = 0; ///< CPU ledger core-seconds.
};

DriveResult
drive_server(core::StorageServer &server, const core::FidrSystem &node0,
             const workload::WorkloadSpec &spec, int requests,
             std::set<Lba> *written)
{
    workload::WorkloadGenerator gen(spec);
    for (int i = 0; i < requests; ++i) {
        const workload::IoRequest req = gen.next();
        Status status;
        if (req.dir == IoDir::kWrite) {
            if (written != nullptr)
                written->insert(req.lba);
            status = server.write(req.lba, req.data);
        } else {
            status = server.read(req.lba).status();
        }
        if (!status.is_ok()) {
            std::fprintf(stderr, "drive failed: %s\n",
                         status.to_string().c_str());
            std::abort();
        }
    }
    const Status flushed = server.flush();
    if (!flushed.is_ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     flushed.to_string().c_str());
        std::abort();
    }
    DriveResult out;
    out.reduction = server.reduction();
    out.journal_records = node0.journal_records();
    out.mem_total = node0.platform().fabric().host_memory().total();
    out.cpu_seconds = node0.platform().cpu().ledger().total();
    return out;
}

bool
near(double a, double b, double tolerance)
{
    return std::abs(a - b) <= tolerance;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    const int requests = smoke ? 8'000 : 40'000;

    bench::print_header("Cluster scale-out: aggregate throughput",
                        "Sec 1/Sec 8 scale-out premise, Table 3 "
                        "workloads");

    std::vector<workload::WorkloadSpec> specs = workload::table3_specs();
    if (smoke)
        specs.resize(1);

    const std::size_t node_counts[] = {1, 2, 4};
    const cluster::Routing routings[] = {cluster::Routing::kLbaHash,
                                         cluster::Routing::kFingerprint};

    bench::JsonReport report("cluster_scaling");
    report.config("requests", static_cast<std::uint64_t>(requests));
    report.config("smoke", smoke);
    report.config("link_gbps",
                  cluster::FabricConfig{}.link_bandwidth / 1e9);

    int gate_failures = 0;
    std::printf("%-12s %-12s %5s | %10s %9s | %7s %7s | %s\n",
                "workload", "routing", "nodes", "writes/s", "speedup",
                "dedup", "net GB", "bound by");

    for (const workload::WorkloadSpec &spec : specs) {
        // Bare single-system reference: the identity + dedup yardstick.
        core::FidrSystem bare(cluster_node_config());
        std::set<Lba> written;
        const DriveResult bare_result =
            drive_server(bare, bare, spec, requests, &written);

        for (const cluster::Routing routing : routings) {
            double one_node_writes_per_s = 0;
            for (const std::size_t nodes : node_counts) {
                cluster::ClusterConfig cconfig;
                cconfig.nodes = nodes;
                cconfig.routing = routing;
                cluster::ClusterRouter router(cconfig,
                                              cluster_node_config());
                const DriveResult result = drive_server(
                    router, router.node(0).system(), spec, requests,
                    nullptr);
                const cluster::ClusterProjection proj = router.project();
                if (nodes == 1)
                    one_node_writes_per_s = proj.aggregate_writes_per_s;
                const double speedup =
                    one_node_writes_per_s > 0
                        ? proj.aggregate_writes_per_s /
                              one_node_writes_per_s
                        : 0;

                // Gate 1: the cluster-of-1 IS the bare system.
                bool identical = true;
                if (nodes == 1) {
                    const core::ReductionStats &a = bare_result.reduction;
                    const core::ReductionStats &b = result.reduction;
                    identical =
                        a.unique_chunks == b.unique_chunks &&
                        a.duplicates == b.duplicates &&
                        a.raw_bytes == b.raw_bytes &&
                        a.stored_bytes == b.stored_bytes &&
                        bare_result.journal_records ==
                            result.journal_records &&
                        bare_result.mem_total == result.mem_total &&
                        bare_result.cpu_seconds == result.cpu_seconds;
                    // Every payload byte (after the ledger snapshot:
                    // these reads bill both systems, gates don't care).
                    for (const Lba lba : written) {
                        if (bare.read(lba).value() !=
                            router.read(lba).value()) {
                            identical = false;
                            break;
                        }
                    }
                    if (!identical) {
                        std::fprintf(stderr,
                                     "GATE FAIL: cluster-of-1 (%s, %s) "
                                     "differs from bare FidrSystem\n",
                                     spec.name.c_str(),
                                     routing_name(routing));
                        ++gate_failures;
                    }
                }

                // Gate 2: near-linear scaling at 4 nodes.
                if (nodes == 4 && speedup < 3.0) {
                    std::fprintf(stderr,
                                 "GATE FAIL: %s/%s 4-node speedup "
                                 "%.2fx < 3x\n",
                                 spec.name.c_str(),
                                 routing_name(routing), speedup);
                    ++gate_failures;
                }

                // Gate 3: fingerprint routing preserves global dedup.
                const double dedup = result.reduction.dedup_rate();
                if (routing == cluster::Routing::kFingerprint &&
                    nodes == 4 &&
                    !near(dedup, bare_result.reduction.dedup_rate(),
                          0.02)) {
                    std::fprintf(
                        stderr,
                        "GATE FAIL: %s fingerprint dedup %.4f vs "
                        "single-node %.4f (>2%%)\n",
                        spec.name.c_str(), dedup,
                        bare_result.reduction.dedup_rate());
                    ++gate_failures;
                }

                double node_seconds_max = 0;
                double link_seconds_max = 0;
                for (const auto &entry : proj.nodes) {
                    node_seconds_max =
                        std::max(node_seconds_max, entry.seconds);
                    link_seconds_max =
                        std::max(link_seconds_max, entry.link_seconds);
                }
                const bool link_bound =
                    link_seconds_max > node_seconds_max;

                std::printf(
                    "%-12s %-12s %5zu | %10.0f %8.2fx | %6.1f%% %7.2f "
                    "| %s\n",
                    spec.name.c_str(), routing_name(routing), nodes,
                    proj.aggregate_writes_per_s, speedup, 100 * dedup,
                    static_cast<double>(router.fabric().total_bytes()) /
                        1e9,
                    link_bound ? "fabric" : "nodes");

                auto &entry = report.begin_entry(
                    spec.name + "/n" + std::to_string(nodes) + "/" +
                    routing_name(routing));
                entry.kv("workload", spec.name);
                entry.kv("nodes", static_cast<std::uint64_t>(nodes));
                entry.kv("routing", routing_name(routing));
                entry.kv("writes_per_s", proj.aggregate_writes_per_s);
                entry.kv("client_bytes_per_s",
                         proj.aggregate_bytes_per_s);
                entry.kv("speedup_vs_1node", speedup);
                entry.kv("dedup_rate", dedup);
                entry.kv("single_node_dedup_rate",
                         bare_result.reduction.dedup_rate());
                entry.kv("cluster_seconds", proj.cluster_seconds);
                entry.kv("node_seconds_max", node_seconds_max);
                entry.kv("link_seconds_max", link_seconds_max);
                entry.kv("net_bytes", router.fabric().total_bytes());
                entry.kv("net_messages",
                         router.fabric().total_messages());
                entry.kv("writes_suppressed",
                         router.stats().writes_suppressed);
                entry.kv("unmaps_sent", router.stats().unmaps_sent);
                if (nodes == 1)
                    entry.kv("identical_to_bare", identical);
                report.end_entry();
            }
        }
    }

    const Status wrote = report.write_file("BENCH_cluster.json");
    if (!wrote.is_ok()) {
        std::fprintf(stderr, "%s\n", wrote.to_string().c_str());
        return 1;
    }
    if (gate_failures > 0) {
        std::fprintf(stderr, "\n%d gate failure(s)\n", gate_failures);
        return 1;
    }
    std::printf("\nAll gates passed: cluster-of-1 bit-identical, "
                "4-node >= 3x, fingerprint dedup within 2%%.\n");
    return 0;
}
