// Extension: multi-tenant table-cache contention (the Sec 8
// discussion).  A latency-sensitive tenant with high locality shares
// the server with a scanning tenant whose unique-heavy stream churns
// the table cache.  Plain LRU lets the scanner flush the hot tenant's
// buckets; the prioritized LRU the paper suggests protects them.

#include <cstdio>

#include "harness.h"

using namespace fidr;

namespace {

struct TenantResult {
    double hot_hit = 0;     ///< Hit rate of the protected tenant.
    double scan_hit = 0;    ///< Hit rate of the scanning tenant.
    double overall_hit = 0;
};

TenantResult
run(cache::EvictionPolicy policy)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.eviction_policy = policy;
    // Per-request processing so every cache access carries the right
    // tenant's priority hint and hit attribution is exact.
    config.nic.hash_batch = 1;
    core::FidrSystem system(config);

    // Hot tenant: Write-H-like, small duplicate window (cache-sized).
    workload::WorkloadSpec hot = workload::write_h_spec(41);
    // Scanner: almost everything unique, random buckets.
    workload::WorkloadSpec scan;
    scan.name = "scanner";
    scan.dedup_ratio = 0.05;
    scan.seed = 42;

    workload::WorkloadGenerator hot_gen(hot);
    workload::WorkloadGenerator scan_gen(scan);

    // Interleave 2:1 scanner:hot and track each tenant's hits by
    // sampling cache stats around its requests.
    std::uint64_t hot_hits = 0, hot_total = 0;
    std::uint64_t scan_hits = 0, scan_total = 0;
    for (int i = 0; i < 60'000; ++i) {
        const bool hot_turn = i % 3 == 0;
        system.set_priority_hint(hot_turn);
        const workload::IoRequest req =
            hot_turn ? hot_gen.next() : scan_gen.next();
        const auto before = system.cache_stats();
        if (!system.write(req.lba, req.data).is_ok())
            std::abort();
        const auto after = system.cache_stats();
        // Attribute this request's batch to its tenant only when the
        // batch actually processed (stats moved); mixed batches smear
        // slightly but the contrast survives.
        const std::uint64_t hits = after.hits - before.hits;
        const std::uint64_t total = hits + after.misses - before.misses;
        if (hot_turn) {
            hot_hits += hits;
            hot_total += total;
        } else {
            scan_hits += hits;
            scan_total += total;
        }
    }
    (void)system.flush();

    TenantResult out;
    out.hot_hit = hot_total > 0 ? static_cast<double>(hot_hits) /
                                      static_cast<double>(hot_total)
                                : 0;
    out.scan_hit = scan_total > 0 ? static_cast<double>(scan_hits) /
                                        static_cast<double>(scan_total)
                                  : 0;
    out.overall_hit = system.cache_stats().hit_rate();
    return out;
}

}  // namespace

int
main()
{
    bench::print_header(
        "Extension: multi-tenant cache contention",
        "the prioritized-LRU suggestion of Sec 8");

    std::printf("Two tenants share the server 1:2 — a Write-H-like hot "
                "tenant and a\nnearly-all-unique scanner that churns "
                "the table cache.\n\n");
    std::printf("%-18s %14s %14s %14s\n", "policy", "hot tenant",
                "scanner", "overall");
    const TenantResult plain = run(cache::EvictionPolicy::kLru);
    const TenantResult prio =
        run(cache::EvictionPolicy::kPrioritizedLru);
    std::printf("%-18s %13.1f%% %13.1f%% %13.1f%%\n", "plain LRU",
                100 * plain.hot_hit, 100 * plain.scan_hit,
                100 * plain.overall_hit);
    std::printf("%-18s %13.1f%% %13.1f%% %13.1f%%\n",
                "prioritized LRU", 100 * prio.hot_hit,
                100 * prio.scan_hit, 100 * prio.overall_hit);

    std::printf("\nReading: under plain LRU the scanner's unique "
                "stream evicts the hot\ntenant's buckets; prioritizing "
                "the hot tenant's lines restores its hit\nrate at "
                "negligible cost to the scanner (whose accesses barely "
                "hit\nanyway) — the paper's point that such policies "
                "bolt onto FIDR software\nwithout touching the "
                "offloading architecture.\n");
    return 0;
}
