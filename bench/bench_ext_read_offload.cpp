// Extension: offloading the read-path NVMe software stack to the FPGA
// — the future work the paper names in Sec 7.5 ("We can also offload
// this NVMe software stack to FPGA, but we left it as future work").
// Fig 14 shows Read-Mixed stuck at its CPU bound regardless of tree
// lanes; this bench implements the offload knob and measures how far
// the mixed workload moves once the read stack leaves the CPU.

#include <cstdio>

#include "harness.h"

using namespace fidr;

namespace {

bench::RunResult
run(const workload::WorkloadSpec &spec, bool offload)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.offload_read_stack = offload;
    core::FidrSystem system(config);
    return bench::drive(system, spec);
}

}  // namespace

int
main()
{
    bench::print_header(
        "Extension: FPGA offload of the read-path NVMe stack",
        "the future work named in Sec 7.5");

    workload::WorkloadSpec mixed = workload::read_mixed_spec();
    const bench::RunResult base = bench::run_baseline(mixed);
    const bench::RunResult fidr = run(mixed, false);
    const bench::RunResult ext = run(mixed, true);

    std::printf("Read-Mixed workload:\n");
    std::printf("  %-34s %10s %12s %10s\n", "system", "tput",
                "bottleneck", "cores@75");
    const auto row = [](const char *name, const bench::RunResult &r) {
        std::printf("  %-34s %6.1f GBs %12s %10.1f\n", name,
                    to_gb_per_s(r.projection.throughput()),
                    r.projection.bottleneck(),
                    r.projection.cores_required);
    };
    row("baseline", base);
    row("FIDR (paper)", fidr);
    row("FIDR + read-stack offload", ext);

    std::printf("\nSpeedup over baseline: %.2fx (paper FIDR) -> %.2fx "
                "(with the extension)\n",
                fidr.projection.throughput() /
                    base.projection.throughput(),
                ext.projection.throughput() /
                    base.projection.throughput());

    std::printf("\nRead-fraction sweep (FIDR vs extension, GB/s):\n");
    std::printf("  %10s %12s %12s\n", "reads", "FIDR", "+offload");
    for (double frac : {0.25, 0.5, 0.75}) {
        workload::WorkloadSpec spec = workload::write_h_spec();
        spec.name = "sweep";
        spec.read_fraction = frac;
        const bench::RunResult f = run(spec, false);
        const bench::RunResult e = run(spec, true);
        std::printf("  %9.0f%% %8.1f GBs %8.1f GBs\n", 100 * frac,
                    to_gb_per_s(f.projection.throughput()),
                    to_gb_per_s(e.projection.throughput()));
    }
    std::printf("\nReading: the extension removes the last CPU-bound "
                "stage of the read\npath, so Read-Mixed climbs toward "
                "the PCIe target and finally benefits\nfrom the "
                "multi-lane tree — confirming the paper's diagnosis of "
                "its own\nRead-Mixed ceiling.\n");
    return 0;
}
