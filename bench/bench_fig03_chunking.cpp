// Figure 3: IO amplification of large chunking vs 4 KB chunking on
// Mail-like and WebVM-like traces (read-modify-write overhead plus
// dedup degradation).  Extended with the intermediate chunk sizes as
// an ablation of the paper's 4-vs-32 KB comparison.

#include <cstdio>
#include <vector>

#include "fidr/workload/chunking_study.h"
#include "fidr/workload/generator.h"
#include "harness.h"

namespace {

using namespace fidr;

workload::WorkloadSpec
mail_like()
{
    workload::WorkloadSpec spec;
    spec.name = "Mail";
    spec.dedup_ratio = 0.5;
    spec.materialize_data = false;   // Content ids are enough here.
    spec.address_space_chunks = 1 << 18;
    spec.pattern = workload::AddressPattern::kUniform;
    spec.seed = 11;
    return spec;
}

workload::WorkloadSpec
webvm_like()
{
    workload::WorkloadSpec spec = mail_like();
    spec.name = "WebVM";
    spec.dedup_ratio = 0.43;
    spec.pattern = workload::AddressPattern::kSequentialRuns;
    spec.run_length = 8;
    spec.seed = 12;
    return spec;
}

}  // namespace

int
main()
{
    bench::print_header("Large-chunking IO amplification",
                        "Figure 3 (Sec 3.1)");
    std::printf("4 MB request buffer; IO amplification = SSD bytes "
                "(RMW reads + writes)\nper client byte; paper reports "
                "up to 17.5x for 32 KB chunks.\n\n");
    std::printf("%-8s %-10s %12s %12s %12s %12s\n", "trace",
                "chunk", "amplif.", "norm-to-4K", "rmw-reads",
                "dedup-rate");

    for (const auto &spec : {mail_like(), webvm_like()}) {
        workload::WorkloadGenerator gen(spec);
        const auto requests = gen.batch(400'000);

        double base_amplification = 0;
        for (std::size_t chunk_kb : {4u, 8u, 16u, 32u}) {
            workload::ChunkingConfig config;
            config.chunk_bytes = chunk_kb * 1024;
            const workload::ChunkingResult r =
                workload::simulate_chunking(config, requests);
            if (chunk_kb == 4)
                base_amplification = r.io_amplification();
            std::printf("%-8s %4zu KB   %12.2f %12.2f %9.1f MB %11.1f%%\n",
                        spec.name.c_str(), chunk_kb,
                        r.io_amplification(),
                        r.io_amplification() / base_amplification,
                        r.ssd_read_bytes / 1e6, 100 * r.dedup_rate());
        }
        std::printf("\n");
    }
    std::printf("Shape check: 32 KB chunking on the random-write Mail "
                "trace should be\n>10x the 4 KB cost; WebVM (partly "
                "sequential) lower but still >>1x.\n");
    return 0;
}
