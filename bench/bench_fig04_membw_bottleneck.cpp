// Figure 4: the baseline's host memory-bandwidth bottleneck.  The
// paper measures DRAM traffic at low rates and projects linearly to
// the 75 GB/s per-socket target: 317 GB/s (write-only) and 269 GB/s
// (mixed) against a 170 GB/s socket ceiling.
//
// Profiling workload note: the paper quotes 50% dedup for this run,
// but its own Table 1 shares are only consistent with the Write-M
// operating point (84% dedup, 81% table-cache hit rate) — see
// EXPERIMENTS.md.  We profile there, which lands on the paper's
// aggregates almost exactly.

#include <cstdio>

#include "harness.h"

using namespace fidr;

int
main()
{
    bench::print_header("Baseline host memory-bandwidth demand",
                        "Figure 4 (Sec 3.2.1)");

    workload::WorkloadSpec write_only = workload::write_m_spec();
    write_only.name = "Write-only";
    workload::WorkloadSpec mixed = write_only;
    mixed.name = "Mixed read/write";
    mixed.read_fraction = 0.5;

    std::printf("%-18s %14s %14s %14s %10s\n", "workload",
                "DRAM B/B", "req@75GB/s", "paper", "ceiling");
    const double paper[] = {317.0, 269.0};
    int row = 0;
    for (const auto &spec : {write_only, mixed}) {
        const bench::RunResult r = bench::run_baseline(spec);
        const double required =
            to_gb_per_s(r.mem_per_byte * calib::kTargetThroughput);
        std::printf("%-18s %14.2f %11.0f GB/s %11.0f GB/s %7.0f GB/s\n",
                    spec.name.c_str(), r.mem_per_byte, required,
                    paper[row++],
                    to_gb_per_s(calib::kSocketMemBandwidth));
    }

    std::printf("\nLow-rate measurement points (linear in throughput, "
                "as in the paper):\n");
    std::printf("%-18s %16s %16s\n", "client throughput",
                "Write-only DRAM", "Mixed DRAM");
    const bench::RunResult w = bench::run_baseline(write_only);
    const bench::RunResult m = bench::run_baseline(mixed);
    for (double gbps : {5.0, 6.9, 25.0, 50.0, 75.0}) {
        std::printf("%13.1f GB/s %11.1f GB/s %11.1f GB/s\n", gbps,
                    w.mem_per_byte * gbps, m.mem_per_byte * gbps);
    }
    std::printf("\nShape check: both projections exceed the 170 GB/s "
                "socket ceiling near\n40-47 GB/s of client throughput, "
                "~1.9x short of the 75 GB/s target.\n");
    std::printf("Write-only saturates DRAM at %.1f GB/s of client "
                "throughput.\n",
                to_gb_per_s(calib::kSocketMemBandwidth) /
                    w.mem_per_byte);
    return 0;
}
