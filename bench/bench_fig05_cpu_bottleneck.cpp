// Figure 5: the baseline's CPU bottleneck.  (a) cores required to
// sustain 75 GB/s per socket — the paper projects up to 67 Xeon cores
// against a 22-core socket; (b) the share of CPU burned on memory
// management and accelerator scheduling rather than computation:
// 85.2% write-only, 50.8% mixed.

#include <cstdio>

#include "harness.h"

using namespace fidr;

namespace {

/** Fig 5b's "memory mgmt or accelerator scheduling" task set. */
double
management_share(const bench::RunResult &r)
{
    double mgmt = 0, total = 0;
    for (const auto &row : r.cpu_rows) {
        total += row.value;
        if (row.tag == core::cputag::kPredictor ||
            row.tag == core::cputag::kTreeIndex ||
            row.tag == core::cputag::kTableSsd ||
            row.tag == core::cputag::kScan ||
            row.tag == core::cputag::kLru ||
            row.tag == core::cputag::kTableMisc) {
            mgmt += row.value;
        }
    }
    return total > 0 ? mgmt / total : 0;
}

}  // namespace

int
main()
{
    bench::print_header("Baseline CPU demand and breakdown",
                        "Figure 5 (Sec 3.2.2)");

    workload::WorkloadSpec write_only = workload::write_m_spec();
    write_only.name = "Write-only";
    workload::WorkloadSpec mixed = write_only;
    mixed.name = "Mixed read/write";
    mixed.read_fraction = 0.5;

    std::printf("(a) cores required vs client throughput "
                "(socket has %.0f cores):\n", calib::kSocketCores);
    std::printf("%-18s %12s %12s %12s %12s\n", "workload", "25 GB/s",
                "50 GB/s", "75 GB/s", "paper@75");
    const double paper_cores[] = {67.0, 56.0};
    const double paper_mgmt[] = {85.2, 50.8};
    int row = 0;
    bench::RunResult results[2] = {bench::run_baseline(write_only),
                                   bench::run_baseline(mixed)};
    for (const auto &r : results) {
        const double cores_per_gbps =
            r.cpu_core_seconds / r.client_bytes * 1e9;
        std::printf("%-18s %12.1f %12.1f %12.1f %11.0f*\n",
                    r.workload.c_str(), 25 * cores_per_gbps,
                    50 * cores_per_gbps, 75 * cores_per_gbps,
                    paper_cores[row]);
        ++row;
    }
    std::printf("  (*mixed paper value read off Fig 5a approximately)\n");

    std::printf("\n(b) CPU utilization breakdown (memory management + "
                "accelerator scheduling):\n");
    std::printf("%-18s %14s %10s\n", "workload", "mgmt share",
                "paper");
    row = 0;
    for (const auto &r : results) {
        std::printf("%-18s %13.1f%% %9.1f%%\n", r.workload.c_str(),
                    100 * management_share(r), paper_mgmt[row++]);
    }

    std::printf("\nPer-task breakdown (write-only):\n");
    for (const auto &t : results[0].cpu_rows) {
        std::printf("  %-34s %6.1f%%\n", t.tag.c_str(),
                    100 * t.share);
    }
    std::printf("\nShape check: >60 cores needed at 75 GB/s "
                "(3x a 22-core socket); the\npredictor and table-cache "
                "management dominate, not 'real' computation.\n");
    return 0;
}
