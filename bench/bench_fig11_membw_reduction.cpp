// Figure 11: FIDR's reduction of host DRAM-bandwidth utilization vs
// the baseline, per workload.  Paper: up to 79.1% lower on write-only
// workloads and 84.9% on the read-mixed workload; higher table-cache
// hit rates make FIDR more effective.

#include <cstdio>

#include "harness.h"

using namespace fidr;

int
main()
{
    bench::print_header("Host DRAM bandwidth: baseline vs FIDR",
                        "Figure 11 (Sec 7.2)");

    std::printf("%-12s %12s %12s %12s %10s\n", "workload",
                "baseline B/B", "FIDR B/B", "reduction", "paper");
    const double paper[] = {79.1, 75.0, 70.0, 84.9};  // H/M/L approx, Mixed.
    std::vector<bench::RunResult> base_runs, fidr_runs;
    int i = 0;
    for (const auto &spec : workload::table3_specs()) {
        base_runs.push_back(bench::run_baseline(spec));
        fidr_runs.push_back(
            bench::run_fidr(spec, bench::FidrMode::kHwCacheMulti));
        const bench::RunResult &base = base_runs.back();
        const bench::RunResult &fidr = fidr_runs.back();
        const double reduction =
            1.0 - fidr.mem_per_byte / base.mem_per_byte;
        std::printf("%-12s %12.2f %12.2f %11.1f%% %8.1f%%%s\n",
                    spec.name.c_str(), base.mem_per_byte,
                    fidr.mem_per_byte, 100 * reduction, paper[i],
                    i == 0 || i == 3 ? "" : " (approx from Fig 11)");
        ++i;
    }
    std::printf("\nRequired DRAM bandwidth at the 75 GB/s target "
                "(ceiling %.0f GB/s):\n",
                to_gb_per_s(calib::kSocketMemBandwidth));
    for (std::size_t w = 0; w < base_runs.size(); ++w) {
        std::printf("  %-12s baseline %6.0f GB/s   FIDR %6.0f GB/s\n",
                    base_runs[w].workload.c_str(),
                    75 * base_runs[w].mem_per_byte,
                    75 * fidr_runs[w].mem_per_byte);
    }
    std::printf("\nShape check: FIDR fits comfortably under the socket "
                "ceiling everywhere;\nthe remaining FIDR traffic is "
                "almost entirely table-cache content, so the\n"
                "reduction grows with the workload's hit rate.\n");
    return 0;
}
