// Figure 12: FIDR's CPU-utilization reduction, per workload, split
// into the two offloading contributions the paper stacks:
//  - NIC-based early hashing removes the unique-chunk predictor
//    (paper: 20-37% of CPU);
//  - HW-based table-cache management removes tree indexing and the
//    table-SSD software stack (paper: a further 19-44 points).
// Total: up to 68% on write-only workloads, 39% on read-mixed.

#include <cstdio>

#include "harness.h"

using namespace fidr;

int
main()
{
    bench::print_header("CPU utilization: baseline vs FIDR",
                        "Figure 12 (Sec 7.3)");

    std::printf("%-12s %10s %12s %12s %10s %10s\n", "workload",
                "baseline", "+NIC offld", "+HW cache", "total red.",
                "paper");
    const double paper_total[] = {61.0, 65.0, 68.0, 39.0};
    int i = 0;
    for (const auto &spec : workload::table3_specs()) {
        const bench::RunResult base = bench::run_baseline(spec);
        const bench::RunResult nic_only =
            bench::run_fidr(spec, bench::FidrMode::kNicP2pOnly);
        const bench::RunResult full =
            bench::run_fidr(spec, bench::FidrMode::kHwCacheMulti);

        // Core-microseconds per chunk, the per-unit CPU cost.
        const auto us_per_chunk = [](const bench::RunResult &r) {
            return r.cpu_core_seconds / (r.client_bytes / kChunkSize) *
                   1e6;
        };
        const double b = us_per_chunk(base);
        const double n = us_per_chunk(nic_only);
        const double f = us_per_chunk(full);
        std::printf("%-12s %7.2fus %9.2fus %9.2fus %9.1f%% %8.1f%%\n",
                    spec.name.c_str(), b, n, f, 100 * (1 - f / b),
                    paper_total[i]);
        ++i;
    }
    std::printf("  (paper write-only bars read off Fig 12 "
                "approximately; 68%% is the max)\n\n");

    // The Write-L story: low hit rate costs the baseline extra CPU
    // (tree updates + SSD stack per miss), which FIDR eliminates.
    const bench::RunResult bh =
        bench::run_baseline(workload::write_h_spec());
    const bench::RunResult bl =
        bench::run_baseline(workload::write_l_spec());
    const bench::RunResult fh = bench::run_fidr(workload::write_h_spec());
    const bench::RunResult fl = bench::run_fidr(workload::write_l_spec());
    const auto us = [](const bench::RunResult &r) {
        return r.cpu_core_seconds / (r.client_bytes / kChunkSize) * 1e6;
    };
    std::printf("Miss-rate sensitivity (Write-H -> Write-L):\n");
    std::printf("  baseline %.2f -> %.2f core-us/chunk (+%.0f%%)\n",
                us(bh), us(bl), 100 * (us(bl) / us(bh) - 1));
    std::printf("  FIDR     %.2f -> %.2f core-us/chunk (+%.0f%%)\n",
                us(fh), us(fl), 100 * (us(fl) / us(fh) - 1));
    std::printf("Shape check: the baseline pays sharply more CPU at low "
                "hit rates; FIDR's\nhost CPU cost is flat because the "
                "per-miss work moved to the HW engine.\n");
    return 0;
}
