// Figure 13: Cache HW-Engine throughput with the concurrent-update
// (crash/replay) optimization.  Paper: Write-M goes from 27.1 GB/s
// with a single-update tree to 63.8 GB/s with 4 speculative update
// lanes (near-linear, <0.1% misspeculation); Write-H saturates the
// FPGA-board DRAM around 127 GB/s.

#include <cstdio>
#include <vector>

#include "fidr/common/rng.h"
#include "fidr/hwtree/tree_pipeline.h"
#include "harness.h"

using namespace fidr;

namespace {

/** Drives the pipeline with a given miss rate, as the cache does. */
double
tree_gbps(double miss_rate, unsigned lanes, double *crash_rate)
{
    hwtree::HwTree tree;
    hwtree::PipelineConfig config;
    config.update_lanes = lanes;
    hwtree::TreePipeline pipe(tree, config);
    Rng rng(17);

    // Preload one entry per table-cache line (bench-scale cache).
    std::vector<std::uint64_t> resident;
    const std::size_t kLines = 50'000;
    while (resident.size() < kLines) {
        const std::uint64_t key = rng.next_u64() >> 16;
        if (tree.insert(key, 1).value())
            resident.push_back(key);
    }

    constexpr int kChunks = 40'000;
    for (int i = 0; i < kChunks; ++i) {
        if (rng.next_bool(miss_rate)) {
            const std::uint64_t key = rng.next_u64() >> 16;
            (void)pipe.search(key);
            if (!pipe.insert(key, i).is_ok())
                std::abort();
            const std::size_t victim = rng.next_below(resident.size());
            pipe.erase(resident[victim]);
            resident[victim] = key;
        } else {
            (void)pipe.search(resident[rng.next_below(resident.size())]);
        }
    }
    if (crash_rate)
        *crash_rate = pipe.stats().crash_rate();
    return to_gb_per_s(kChunks * 4096.0 / pipe.busy_seconds());
}

}  // namespace

int
main()
{
    bench::print_header("FPGA tree-indexing throughput vs update lanes",
                        "Figure 13 (Sec 7.4)");

    struct Row {
        const char *name;
        double miss;
    };
    const Row rows[] = {{"Write-H", 0.10}, {"Write-M", 0.19},
                        {"Write-L", 0.55}};

    std::printf("%-10s %8s | %10s %10s %10s %10s | %10s\n", "workload",
                "miss", "1 lane", "2 lanes", "3 lanes", "4 lanes",
                "crash rate");
    for (const Row &row : rows) {
        std::printf("%-10s %7.0f%% |", row.name, 100 * row.miss);
        double crash = 0;
        for (unsigned lanes = 1; lanes <= 4; ++lanes) {
            const double gbps = tree_gbps(row.miss, lanes, &crash);
            std::printf(" %5.1f GB/s", gbps);
        }
        std::printf(" | %9.4f%%\n", 100 * crash);
    }

    std::printf("\nPaper anchors: Write-M 27.1 GB/s (1 lane) -> 63.8 "
                "GB/s (4 lanes);\nWrite-H limited to ~127 GB/s by "
                "FPGA-board DRAM bandwidth; crash/replay\nrate below "
                "0.1%%.\n");

    // The Write-H DRAM ceiling, shown explicitly.
    const double leaf_per_chunk =
        calib::kHwTreeLeafBytes * (1.0 + 0.10 * 2);
    std::printf("Write-H FPGA-DRAM ceiling: %.0f GB/s of client data "
                "(%.0f B leaf traffic per\n4 KB chunk at %.1f GB/s "
                "board DRAM).\n",
                to_gb_per_s(calib::kHwTreeDramBandwidth /
                            leaf_per_chunk * 4096),
                leaf_per_chunk,
                to_gb_per_s(calib::kHwTreeDramBandwidth));
    return 0;
}
