// Figure 14: overall projected throughput of the four system
// configurations on the Table 3 workloads, using the paper's method
// (Sec 7.5): project from measured CPU utilization, DRAM bandwidth and
// Cache HW-Engine throughput onto a 22-core / 170 GB/s / 75 GB/s
// socket.  Paper: FIDR up to 3.3x on write-only workloads and 1.7x on
// read-mixed; the single-update HW tree *lowers* Write-M/L throughput
// until the concurrent-update optimization recovers it; Read-Mixed
// does not benefit from extra lanes (read-path NVMe stack stays on
// the CPU).

#include <cstdio>
#include <vector>

#include "harness.h"

using namespace fidr;

int
main()
{
    bench::print_header("Overall throughput by configuration",
                        "Figure 14 (Sec 7.5)");

    std::printf("%-12s | %-9s %-12s %-12s %-12s | %-8s\n", "workload",
                "baseline", "FIDR nic+p2p", "FIDR hw(1)",
                "FIDR hw(4)", "speedup");
    for (const auto &spec : workload::table3_specs()) {
        const bench::RunResult base = bench::run_baseline(spec);
        const bench::RunResult nic =
            bench::run_fidr(spec, bench::FidrMode::kNicP2pOnly);
        const bench::RunResult hw1 =
            bench::run_fidr(spec, bench::FidrMode::kHwCacheSingle);
        const bench::RunResult hw4 =
            bench::run_fidr(spec, bench::FidrMode::kHwCacheMulti);

        const double b = to_gb_per_s(base.projection.throughput());
        const double n = to_gb_per_s(nic.projection.throughput());
        const double s1 = to_gb_per_s(hw1.projection.throughput());
        const double s4 = to_gb_per_s(hw4.projection.throughput());
        std::printf("%-12s | %5.1f GBs %8.1f GBs %8.1f GBs %8.1f GBs "
                    "| %6.2fx\n",
                    spec.name.c_str(), b, n, s1, s4, s4 / b);
        std::printf("%-12s | %-9s %-12s %-12s %-12s |\n", "",
                    base.projection.bottleneck(),
                    nic.projection.bottleneck(),
                    hw1.projection.bottleneck(),
                    hw4.projection.bottleneck());
    }

    std::printf("\nPaper shape checks:\n"
                "  - FIDR(full) beats the baseline by ~2.5-3.3x on "
                "write-only workloads\n"
                "    and ~1.5-1.7x on Read-Mixed;\n"
                "  - NIC+P2P alone gives up to ~1.6x;\n"
                "  - the single-update HW tree dips below NIC+P2P on "
                "Write-M/Write-L\n"
                "    (its serialized updates become the bottleneck) "
                "and the 4-lane\n    speculative tree recovers it;\n"
                "  - extra lanes do not help Read-Mixed (CPU-bound on "
                "the read path).\n");
    return 0;
}
