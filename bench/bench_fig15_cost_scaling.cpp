// Figure 15: storage-cost scalability — cost relative to a
// no-reduction system across throughput targets (25/50/75 GB/s per
// socket) and effective capacities (100-500 TB).  Paper: FIDR keeps a
// 58-67% saving at 500 TB while the baseline, capped near 25 GB/s of
// reduction per socket, degrades to partial reduction.

#include <cstdio>

#include "fidr/cost/cost_model.h"

using namespace fidr;
using namespace fidr::cost;

int
main()
{
    std::printf("===================================================="
                "================\n");
    std::printf("Cost scalability vs throughput and capacity\n"
                "  (reproduces Figure 15, Sec 7.8)\n");
    std::printf("===================================================="
                "================\n");
    std::printf("y-axis: total cost / no-reduction cost "
                "(lower is better).\n\n");

    const double capacities_tb[] = {100, 200, 500};
    std::printf("%-10s %-10s | %-12s %-12s | %-12s %-12s\n",
                "capacity", "target", "FIDR rel.", "saving",
                "baseline rel.", "saving");
    for (double cap_tb : capacities_tb) {
        const double cap_gb = cap_tb * 1000;
        const CostBreakdown none = cost_no_reduction(cap_gb);
        for (double gbps : {25.0, 50.0, 75.0}) {
            const CostBreakdown fidr = cost_with_reduction(
                cap_gb, gb_per_s(gbps), fidr_demand());
            const CostBreakdown base = cost_with_reduction(
                cap_gb, gb_per_s(gbps), baseline_demand());
            std::printf("%7.0f TB %7.0f GBs | %12.3f %10.1f%% | "
                        "%12.3f %10.1f%%\n",
                        cap_tb, gbps, fidr.total() / none.total(),
                        100 * cost_saving(fidr, none),
                        base.total() / none.total(),
                        100 * cost_saving(base, none));
        }
        std::printf("\n");
    }

    std::printf("Paper anchors: at 500 TB FIDR saves 67%% at 25 GB/s "
                "and 58%% at 75 GB/s;\nthe baseline matches FIDR only "
                "below ~25 GB/s and then falls off a cliff\nbecause it "
                "must store the un-reduced remainder raw.\n");
    return 0;
}
