// Figure 16: cost-effectiveness with per-component breakdown at the
// 75 GB/s / 500 TB effective-capacity operating point.  Paper: FIDR's
// remaining cost is dominated by the (already reduced) data SSDs; the
// baseline must partially reduce and its raw-stored remainder dwarfs
// every other component.

#include <cstdio>

#include "fidr/cost/cost_model.h"

using namespace fidr;
using namespace fidr::cost;

namespace {

void
print_breakdown(const char *name, const CostBreakdown &c,
                const CostBreakdown &none)
{
    std::printf("%-22s %9.0f %9.0f %9.0f %9.0f %9.0f | %10.0f %7.1f%%\n",
                name, c.data_ssd, c.table_ssd, c.dram, c.cpu, c.fpga,
                c.total(), 100 * cost_saving(c, none));
}

}  // namespace

int
main()
{
    std::printf("===================================================="
                "================\n");
    std::printf("Cost breakdown at 75 GB/s, 500 TB effective capacity\n"
                "  (reproduces Figure 16, Sec 7.8)\n");
    std::printf("===================================================="
                "================\n");
    std::printf("Prices: SSD $0.5/GB, DRAM $5.5/GB, $7000 22-core "
                "CPU, $7000 FPGA (70%%\nusable fabric); 50%% dedup x "
                "50%% compression.\n\n");

    const double cap_gb = 500'000;
    const Bandwidth target = gb_per_s(75);
    const CostBreakdown none = cost_no_reduction(cap_gb);
    const CostBreakdown fidr =
        cost_with_reduction(cap_gb, target, fidr_demand());
    const CostBreakdown base =
        cost_with_reduction(cap_gb, target, baseline_demand());

    std::printf("%-22s %9s %9s %9s %9s %9s | %10s %8s\n", "system ($)",
                "data SSD", "tbl SSD", "DRAM", "CPU", "FPGA", "total",
                "saving");
    print_breakdown("No reduction", none, none);
    print_breakdown("Baseline (partial)", base, none);
    print_breakdown("FIDR", fidr, none);

    std::printf("\nPaper shape checks: FIDR saves ~58%% overall; the "
                "added CPU+FPGA+DRAM\ncost is a small fraction of the "
                "SSD savings; the baseline's partial\nreduction "
                "(~25/75 GB/s of the stream) leaves most data stored "
                "raw.\n");
    return 0;
}
