// Steady-state GC bench: write-until-churn over a deliberately small
// container log (~3x capacity of churn) with incremental GC riding
// every batch commit, sweeping the per-step relocation budget.  Each
// cell reports the client's view (write latency p50/p99, writes/s —
// GC steps run on the commit sequencer, so oversized steps surface
// directly as tail latency) against the collector's ledger (write
// amplification, relocated/reclaimed bytes, concurrent-overlap steps,
// closing free-slot fraction).
//
// Emits BENCH_gc.json via the harness's uniform JsonReport schema.
// `--smoke` shrinks the churn and sweep for CI and gates the
// steady-state contract: no write ever fails on space, GC overlaps
// in-flight batches (nonzero concurrent_steps), the log ends above
// the reserve watermark, every surviving LBA reads back, and fsck is
// clean.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness.h"
#include "fidr/common/rng.h"
#include "fidr/workload/content.h"

using namespace fidr;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::uint64_t
percentile_ns(std::vector<std::uint64_t> &samples, double q)
{
    if (samples.empty())
        return 0;
    const std::size_t rank = std::min(
        samples.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    std::nth_element(samples.begin(), samples.begin() + rank,
                     samples.end());
    return samples[rank];
}

struct CellRun {
    std::uint64_t step_budget_bytes = 0;
    double seconds = 0;
    double writes_per_s = 0;
    std::uint64_t write_p50_ns = 0;
    std::uint64_t write_p99_ns = 0;
    double write_amp = 0;  ///< GC-relocated bytes / client stored bytes.
    std::uint64_t gc_steps = 0;
    std::uint64_t concurrent_steps = 0;
    std::uint64_t relocated_bytes = 0;
    std::uint64_t containers_reclaimed = 0;
    std::uint64_t reclaimed_bytes = 0;
    std::uint64_t cache_rekeys = 0;
    double free_slot_fraction = 0;
    double gc_pause_p99_ns = 0;
};

struct ChurnParams {
    std::uint64_t writes = 0;
    Lba working_set = 0;
    double reserve_free_fraction = 0.15;
};

CellRun
run_cell(const ChurnParams &churn, std::uint64_t step_budget_bytes)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    // Shrink the log so the churn below cycles it ~3x: GC either keeps
    // up at batch granularity or the bench fails a write on space.
    config.platform.data_ssd.capacity_bytes = 8 * kMiB;
    config.container_bytes = 64 * 1024;
    config.nic.hash_batch = 32;
    config.in_flight_batches = 4;
    config.chunk_cache_bytes = 1 * kMiB;
    config.gc.auto_run = true;
    config.gc.dead_fraction = 0.5;
    config.gc.reserve_free_fraction = churn.reserve_free_fraction;
    config.gc.step_budget_bytes = step_budget_bytes;
    config.gc.superblock_interval = 8;
    core::FidrSystem system(config);

    // Uniform-random overwrites: sequential churn would kill whole
    // containers in write order (pure discards, no relocation); the
    // random order scatters chunk death so victims keep interleaved
    // survivors and GC must actually move bytes.
    Rng rng(0xF1D76C);
    std::unordered_map<Lba, std::uint64_t> model;
    std::vector<std::uint64_t> latencies;
    latencies.reserve(churn.writes);
    const double t0 = now_s();
    for (std::uint64_t i = 0; i < churn.writes; ++i) {
        const Lba lba = rng.next_below(churn.working_set);
        const std::uint64_t content = 1 + i;  // Unique: never dedups.
        const auto w0 = std::chrono::steady_clock::now();
        FIDR_CHECK(system
                       .write(lba, workload::make_chunk_content(content))
                       .is_ok());
        latencies.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - w0)
                .count()));
        model[lba] = content;
    }
    FIDR_CHECK(system.flush().is_ok());
    const double seconds = now_s() - t0;

    // Steady-state contract: every surviving LBA reads back its last
    // acknowledged content after ~3x capacity of relocation churn.
    for (const auto &[lba, content] : model) {
        Result<Buffer> got = system.read(lba);
        FIDR_CHECK(got.is_ok());
        FIDR_CHECK(got.value() == workload::make_chunk_content(content));
    }
    Result<core::FidrSystem::FsckReport> fsck = system.fsck();
    FIDR_CHECK(fsck.is_ok());
    FIDR_CHECK(fsck.value().clean());

    const obs::ObsSnapshot snap = system.obs_snapshot();
    const core::GcStats &gc = system.gc_stats();
    CellRun cell;
    cell.step_budget_bytes = step_budget_bytes;
    cell.seconds = seconds;
    cell.writes_per_s = static_cast<double>(churn.writes) / seconds;
    cell.write_p50_ns = percentile_ns(latencies, 0.50);
    cell.write_p99_ns = percentile_ns(latencies, 0.99);
    cell.write_amp = snap.gauges.at("gc.write_amp");
    cell.gc_steps = gc.steps;
    cell.concurrent_steps = gc.concurrent_steps;
    cell.relocated_bytes = gc.relocated_bytes;
    cell.containers_reclaimed = gc.containers_reclaimed;
    cell.reclaimed_bytes = gc.reclaimed_bytes;
    cell.cache_rekeys = gc.cache_rekeys;
    cell.free_slot_fraction =
        snap.gauges.at("container.free_slot_fraction");
    cell.gc_pause_p99_ns = static_cast<double>(
        system.metrics().histogram("gc.pause_ns").percentile_ns(0.99));
    return cell;
}

void
print_cells(const std::vector<CellRun> &cells)
{
    std::printf("  %10s | %9s | %8s | %9s | %9s | %9s | %6s | %10s |"
                " %5s\n",
                "budget", "writes/s", "p99 us", "write amp", "gc steps",
                "overlap", "reclmd", "rekeys", "free");
    for (const CellRun &cell : cells) {
        std::printf("  %7.0f KB | %9.0f | %8.1f | %9.3f | %9llu |"
                    " %9llu | %6llu | %10llu | %4.0f%%\n",
                    static_cast<double>(cell.step_budget_bytes) / 1024,
                    cell.writes_per_s,
                    static_cast<double>(cell.write_p99_ns) / 1e3,
                    cell.write_amp,
                    static_cast<unsigned long long>(cell.gc_steps),
                    static_cast<unsigned long long>(
                        cell.concurrent_steps),
                    static_cast<unsigned long long>(
                        cell.containers_reclaimed),
                    static_cast<unsigned long long>(cell.cache_rekeys),
                    cell.free_slot_fraction * 100.0);
    }
    std::printf("\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    ChurnParams churn;
    churn.writes = smoke ? 6'000 : 24'000;
    churn.working_set = 480;
    const std::vector<std::uint64_t> budget_sweep =
        smoke ? std::vector<std::uint64_t>{32 * 1024, 256 * 1024}
              : std::vector<std::uint64_t>{16 * 1024, 64 * 1024,
                                           256 * 1024, 0};

    bench::print_header(
        "Steady-state incremental GC under churn",
        "append-only container log; write-amp vs step budget");
    std::printf("%llu overwrites over %llu LBAs, 8 MiB/SSD log%s\n\n",
                static_cast<unsigned long long>(churn.writes),
                static_cast<unsigned long long>(churn.working_set),
                smoke ? " (smoke)" : "");

    bench::JsonReport report("gc_steadystate");
    report.config("writes", churn.writes)
        .config("working_set", static_cast<std::uint64_t>(churn.working_set))
        .config("reserve_free_fraction", churn.reserve_free_fraction)
        .config("smoke", smoke)
        .config("chunk_bytes", static_cast<std::uint64_t>(kChunkSize));

    std::vector<CellRun> cells;
    for (const std::uint64_t budget : budget_sweep)
        cells.push_back(run_cell(churn, budget));
    print_cells(cells);

    // Steady-state gates, every run (run_cell already gated per-write
    // success, read-back and fsck): GC must actually collect, must
    // overlap the write plane, and must hold the reserve watermark.
    for (const CellRun &cell : cells) {
        FIDR_CHECK(cell.gc_steps > 0);
        FIDR_CHECK(cell.concurrent_steps > 0);
        FIDR_CHECK(cell.containers_reclaimed > 0);
        FIDR_CHECK(cell.relocated_bytes > 0);
        FIDR_CHECK(cell.write_amp > 0.0);
        FIDR_CHECK(cell.free_slot_fraction >
                   churn.reserve_free_fraction);
    }

    obs::JsonWriter &json = report.begin_entry("gc_budget_sweep");
    json.kv("workload", "uniform churn");
    json.key("runs").begin_array();
    for (const CellRun &cell : cells) {
        json.begin_object();
        json.kv("step_budget_bytes", cell.step_budget_bytes);
        json.kv("seconds", cell.seconds);
        json.kv("writes_per_s", cell.writes_per_s);
        json.kv("write_p50_ns", cell.write_p50_ns);
        json.kv("write_p99_ns", cell.write_p99_ns);
        json.kv("write_amp", cell.write_amp);
        json.kv("gc_steps", cell.gc_steps);
        json.kv("concurrent_steps", cell.concurrent_steps);
        json.kv("relocated_bytes", cell.relocated_bytes);
        json.kv("containers_reclaimed", cell.containers_reclaimed);
        json.kv("reclaimed_bytes", cell.reclaimed_bytes);
        json.kv("cache_rekeys", cell.cache_rekeys);
        json.kv("free_slot_fraction", cell.free_slot_fraction);
        json.kv("gc_pause_p99_ns", cell.gc_pause_p99_ns);
        json.end_object();
    }
    json.end_array();
    report.end_entry();
    FIDR_CHECK(report.write_file("BENCH_gc.json").is_ok());
    return 0;
}
