// Google-benchmark microbenchmarks of the core primitives: SHA-256,
// the LZ codec, both tree indexes, the table cache, and the end-to-end
// write paths of the two systems.  These measure this host's software
// throughput (the figure benches use the calibrated hardware model
// instead).
//
// `--json[=path]` switches to the persisted scalar-vs-SIMD comparison:
// the GearCdc scan and the bulk SHA-256 path are timed once per
// dispatch target the host supports, results are checked bit-identical
// against the scalar reference, and the series is written in the
// uniform JsonReport schema (default path BENCH_primitives.json).
// Without the flag the usual google-benchmark CLI runs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "harness.h"

#include "fidr/btree/bplus_tree.h"
#include "fidr/cache/indexes.h"
#include "fidr/chunking/cdc.h"
#include "fidr/common/rng.h"
#include "fidr/compress/lz.h"
#include "fidr/core/baseline_system.h"
#include "fidr/core/fidr_system.h"
#include "fidr/hash/sha256.h"
#include "fidr/hash/sha256_mb.h"
#include "fidr/hwtree/tree_pipeline.h"
#include "fidr/nic/protocol.h"
#include "fidr/obs/metrics.h"
#include "fidr/obs/slo.h"
#include "fidr/obs/trace.h"
#include "fidr/tables/journal.h"
#include "fidr/workload/content.h"
#include "fidr/workload/generator.h"

namespace {

using namespace fidr;

void
BM_Sha256_4K(benchmark::State &state)
{
    const Buffer chunk = workload::make_chunk_content(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(chunk));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_Sha256_4K);

void
BM_LzCompress_4K(benchmark::State &state)
{
    const auto level = static_cast<LzLevel>(state.range(0));
    const Buffer chunk = workload::make_chunk_content(2, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(lz_compress(chunk, level));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_LzCompress_4K)
    ->Arg(static_cast<int>(LzLevel::kFast))
    ->Arg(static_cast<int>(LzLevel::kDefault));

void
BM_LzDecompress_4K(benchmark::State &state)
{
    const Buffer chunk = workload::make_chunk_content(3, 0.5);
    const Buffer block = lz_compress(chunk, LzLevel::kFast);
    for (auto _ : state)
        benchmark::DoNotOptimize(lz_decompress(block));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_LzDecompress_4K);

void
BM_BPlusTreeLookup(benchmark::State &state)
{
    btree::BPlusTree tree;
    Rng rng(5);
    for (int i = 0; i < state.range(0); ++i)
        tree.insert(rng.next_u64() >> 32, i);
    Rng probe(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.find(probe.next_u64() >> 32));
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_BPlusTreeInsertErase(benchmark::State &state)
{
    btree::BPlusTree tree;
    Rng rng(7);
    for (int i = 0; i < (1 << 16); ++i)
        tree.insert(rng.next_u64() >> 32, i);
    Rng op(8);
    for (auto _ : state) {
        const std::uint64_t key = op.next_u64() >> 32;
        tree.insert(key, 1);
        tree.erase(key);
    }
}
BENCHMARK(BM_BPlusTreeInsertErase);

void
BM_HwTreeSearch(benchmark::State &state)
{
    hwtree::HwTree tree;
    Rng rng(9);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < (1 << 16); ++i) {
        const std::uint64_t key = rng.next_u64() >> 32;
        if (tree.insert(key, i).value())
            keys.push_back(key);
    }
    Rng probe(10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.search(keys[probe.next_below(keys.size())]));
    }
}
BENCHMARK(BM_HwTreeSearch);

void
BM_CdcSplit(benchmark::State &state)
{
    chunking::GearCdc cdc;
    Rng rng(11);
    Buffer data(1 << 20);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next_u64());
    for (auto _ : state)
        benchmark::DoNotOptimize(cdc.split(data));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CdcSplit);

Buffer
random_buffer(std::size_t size, std::uint64_t seed)
{
    Rng rng(seed);
    Buffer data(size);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next_u64());
    return data;
}

/** RAII: force a dispatch target, restore auto-detected on exit. */
class ScopedTarget {
  public:
    explicit ScopedTarget(simd::Target target) { simd::set_target(target); }
    ~ScopedTarget() { simd::set_target(simd::detected()); }
};

void
BM_CdcSplitDispatch(benchmark::State &state)
{
    const auto target = static_cast<simd::Target>(state.range(0));
    if (!simd::supported(target)) {
        state.SkipWithError("target not supported on this host");
        return;
    }
    ScopedTarget scope(target);
    chunking::GearCdc cdc;
    const Buffer data = random_buffer(1 << 20, 11);
    for (auto _ : state)
        benchmark::DoNotOptimize(cdc.split(data));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(data.size()));
    state.SetLabel(simd::name(target));
}
BENCHMARK(BM_CdcSplitDispatch)
    ->Arg(static_cast<int>(simd::Target::kScalar))
    ->Arg(static_cast<int>(simd::Target::kSse4))
    ->Arg(static_cast<int>(simd::Target::kAvx2))
    ->Arg(static_cast<int>(simd::Target::kAvx512));

void
BM_Sha256MbBulk(benchmark::State &state)
{
    // A NIC-sized hash batch (256 x 4 KB) through the multi-buffer
    // engine; contrast with BM_Sha256_4K's one-message scalar context.
    const auto target = static_cast<simd::Target>(state.range(0));
    if (!simd::supported(target)) {
        state.SkipWithError("target not supported on this host");
        return;
    }
    ScopedTarget scope(target);
    std::vector<Buffer> chunks;
    for (std::uint64_t i = 0; i < 256; ++i)
        chunks.push_back(workload::make_chunk_content(i, 0.5));
    const std::vector<std::span<const std::uint8_t>> views(chunks.begin(),
                                                           chunks.end());
    std::vector<Digest> digests(chunks.size());
    for (auto _ : state) {
        sha256_mb_hash(views, digests.data());
        benchmark::DoNotOptimize(digests.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(chunks.size()) *
                            static_cast<int64_t>(kChunkSize));
    state.SetLabel(simd::name(target));
}
BENCHMARK(BM_Sha256MbBulk)
    ->Arg(static_cast<int>(simd::Target::kScalar))
    ->Arg(static_cast<int>(simd::Target::kSse4))
    ->Arg(static_cast<int>(simd::Target::kAvx2))
    ->Arg(static_cast<int>(simd::Target::kAvx512));

void
BM_ProtocolEncodeDecode(benchmark::State &state)
{
    const Buffer payload = workload::make_chunk_content(4);
    for (auto _ : state) {
        const Buffer wire = nic::encode_write(7, payload);
        std::size_t offset = 0;
        benchmark::DoNotOptimize(nic::decode(wire, offset));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_ProtocolEncodeDecode);

void
BM_JournalAppend(benchmark::State &state)
{
    ssd::SsdConfig config;
    config.capacity_bytes = 1ull * kGiB;
    ssd::Ssd ssd(config);
    tables::MetadataJournal journal(ssd, 0, 512 * kMiB);
    std::uint64_t lba = 0;
    for (auto _ : state) {
        if (!journal.log_map(lba, lba).is_ok()) {
            journal.reset();
            continue;
        }
        ++lba;
    }
}
BENCHMARK(BM_JournalAppend);

void
BM_TableCacheAccess(benchmark::State &state)
{
    ssd::SsdConfig config;
    config.capacity_bytes = 1ull * kGiB;
    ssd::Ssd ssd(config);
    tables::HashPbnTable table(ssd, 1 << 15);
    cache::BTreeCacheIndex index;
    cache::TableCache tc(table, index, 1024);
    Rng rng(12);
    for (auto _ : state) {
        // ~80% hot / 20% cold mix, like Write-M.
        const BucketIndex bucket =
            rng.next_bool(0.8) ? rng.next_below(900)
                               : rng.next_below(1 << 15);
        benchmark::DoNotOptimize(tc.access(bucket));
    }
}
BENCHMARK(BM_TableCacheAccess);

void
BM_LruTouch(benchmark::State &state)
{
    // touch() is O(1) (intrusive doubly linked list over line slots):
    // ns/op must stay flat as the list grows.
    const auto lines = static_cast<std::size_t>(state.range(0));
    cache::LruList lru(lines);
    for (std::size_t i = 0; i < lines; ++i)
        lru.touch(i);
    Rng rng(13);
    for (auto _ : state)
        lru.touch(rng.next_below(lines));
}
BENCHMARK(BM_LruTouch)->Arg(1 << 6)->Arg(1 << 12)->Arg(1 << 18);

void
BM_LruVictimCycle(benchmark::State &state)
{
    // The miss-path pair: pop the LRU victim, re-link the filled line.
    const auto lines = static_cast<std::size_t>(state.range(0));
    cache::LruList lru(lines);
    for (std::size_t i = 0; i < lines; ++i)
        lru.touch(i);
    for (auto _ : state) {
        const auto victim = lru.pop_victim();
        lru.touch(*victim);
    }
}
BENCHMARK(BM_LruVictimCycle)->Arg(1 << 6)->Arg(1 << 12)->Arg(1 << 18);

void
BM_FreeListPushPop(benchmark::State &state)
{
    // Circular-buffer free list: O(1) regardless of capacity.
    const auto lines = static_cast<std::size_t>(state.range(0));
    cache::FreeList free_list(lines);
    for (std::size_t i = 0; i < lines; ++i)
        free_list.push(i);
    for (auto _ : state) {
        const auto line = free_list.pop();
        free_list.push(*line);
    }
}
BENCHMARK(BM_FreeListPushPop)->Arg(1 << 6)->Arg(1 << 12)->Arg(1 << 18);

void
BM_TableCacheAccessSharded(benchmark::State &state)
{
    // Same mix as BM_TableCacheAccess, cache split into N shards
    // (arg); measures the single-caller overhead of the per-shard
    // locking that buys the multi-caller concurrency headroom.
    const auto shards = static_cast<std::size_t>(state.range(0));
    ssd::SsdConfig config;
    config.capacity_bytes = 1ull * kGiB;
    ssd::Ssd ssd(config);
    tables::HashPbnTable table(ssd, 1 << 15);
    std::vector<std::unique_ptr<cache::CacheIndex>> subs;
    for (std::size_t s = 0; s < shards; ++s)
        subs.push_back(std::make_unique<cache::BTreeCacheIndex>());
    cache::ShardedCacheIndex index(std::move(subs));
    cache::TableCache tc(table, index, 1024,
                         cache::EvictionPolicy::kLru, shards);
    Rng rng(12);
    for (auto _ : state) {
        const BucketIndex bucket =
            rng.next_bool(0.8) ? rng.next_below(900)
                               : rng.next_below(1 << 15);
        benchmark::DoNotOptimize(tc.access(bucket));
    }
}
BENCHMARK(BM_TableCacheAccessSharded)->Arg(1)->Arg(4)->Arg(16);

void
BM_TracerRecord(benchmark::State &state)
{
    // The obs hot path: one tracepoint into the per-thread ring.
    // This is the series the PR 7 memory-ordering audit watches —
    // ring cursors moved from seq_cst to relaxed (the quiescence
    // contract in trace.h makes collect()-side ordering the reader's
    // problem), so a record is now plain stores plus one relaxed
    // counter bump.  Run with FIDR_TRACE=OFF the same loop measures
    // the compiled-out macro (should be ~0 ns).
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.reset();
    tracer.enable();
    std::uint64_t i = 0;
    for (auto _ : state) {
        FIDR_TPOINT(obs::Tpoint::kDma, i, i);
        ++i;
    }
    tracer.enable(false);
    tracer.reset();
}
BENCHMARK(BM_TracerRecord);

void
BM_TracerRecordTagged(benchmark::State &state)
{
    // Same tracepoint inside a request scope: adds one thread_local
    // read to stamp the trace id into the record.
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.reset();
    tracer.enable();
    obs::ScopedRequest request(42, 7);
    std::uint64_t i = 0;
    for (auto _ : state) {
        FIDR_TPOINT(obs::Tpoint::kDma, i, i);
        ++i;
    }
    tracer.enable(false);
    tracer.reset();
}
BENCHMARK(BM_TracerRecordTagged);

void
BM_HistogramRecord(benchmark::State &state)
{
    // Relaxed-atomic histogram record; with Arg(1) an exemplar
    // reservoir is attached and every sample carries a trace id, so
    // the delta prices the relaxed floor-gate rejection (steady state:
    // load + compare, no mutex).
    obs::Histogram hist;
    if (state.range(0) != 0)
        hist.set_exemplar_capacity(4);
    std::uint64_t i = 0;
    for (auto _ : state) {
        // Latencies cycle well below any retained tail, so offers are
        // rejected at the floor gate after warm-up.
        hist.record(1000 + (i & 1023), state.range(0) ? i + 1 : 0);
        ++i;
    }
}
BENCHMARK(BM_HistogramRecord)->Arg(0)->Arg(1);

void
BM_WindowedObserve(benchmark::State &state)
{
    // One control-plane polling tick: snapshot a realistic registry
    // (16 stage histograms + a few counters, roughly FidrSystem's) and
    // feed it to the windowed aggregator.  Arg(1) arms exemplar
    // reservoirs on every histogram, pricing the exemplar copy that
    // rides in each summary; this is off the data hot path either way,
    // but the overhead smoke keeps the armed mode within the same
    // 1.15x envelope so "turn on exemplars" stays a free decision.
    obs::MetricRegistry registry;
    std::vector<obs::Histogram *> hists;
    for (int h = 0; h < 16; ++h) {
        obs::Histogram &hist =
            registry.histogram("stage." + std::to_string(h));
        if (state.range(0) != 0)
            hist.set_exemplar_capacity(4);
        hists.push_back(&hist);
    }
    registry.counter("ops").add(1);
    registry.counter("errors").add(1);
    obs::WindowedAggregator agg(/*window_count=*/8,
                                /*interval_ns=*/1'000'000);
    std::uint64_t now_ns = 0;
    std::uint64_t i = 0;
    agg.observe(registry.snapshot(), now_ns);
    for (auto _ : state) {
        for (obs::Histogram *hist : hists)
            hist->record(1000 + (i & 4095),
                         state.range(0) ? i + 1 : 0);
        now_ns += 1'000'000;
        ++i;
        agg.observe(registry.snapshot(), now_ns);
    }
}
BENCHMARK(BM_WindowedObserve)->Arg(0)->Arg(1);

void
BM_BaselineWritePath(benchmark::State &state)
{
    core::BaselineConfig config;
    config.platform.expected_unique_chunks = 200'000;
    config.platform.cache_fraction = 0.028;
    config.platform.data_ssd.capacity_bytes = 32ull * kGiB;
    core::BaselineSystem system(config);

    workload::WorkloadSpec spec;
    spec.dedup_ratio = 0.5;
    workload::WorkloadGenerator gen(spec);
    for (auto _ : state) {
        const auto req = gen.next();
        if (!system.write(req.lba, req.data).is_ok())
            state.SkipWithError("write failed");
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_BaselineWritePath);

void
BM_FidrWritePath(benchmark::State &state)
{
    core::FidrConfig config;
    config.platform.expected_unique_chunks = 200'000;
    config.platform.cache_fraction = 0.028;
    config.platform.data_ssd.capacity_bytes = 32ull * kGiB;
    core::FidrSystem system(config);

    workload::WorkloadSpec spec;
    spec.dedup_ratio = 0.5;
    workload::WorkloadGenerator gen(spec);
    for (auto _ : state) {
        const auto req = gen.next();
        if (!system.write(req.lba, req.data).is_ok())
            state.SkipWithError("write failed");
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_FidrWritePath);

// ---------------------------------------------------------------------
// --json mode: the persisted scalar-vs-SIMD series.

/** Wall-clock seconds per pass of `fn` (runs >= 4 passes, >= 0.25 s). */
template <typename Fn>
double
seconds_per_pass(Fn &&fn)
{
    using clock = std::chrono::steady_clock;
    fn();  // warm up: tables, caches, page faults
    int passes = 0;
    const auto begin = clock::now();
    std::chrono::duration<double> elapsed{};
    do {
        fn();
        ++passes;
        elapsed = clock::now() - begin;
    } while (passes < 4 || elapsed.count() < 0.25);
    return elapsed.count() / passes;
}

std::vector<simd::Target>
supported_targets()
{
    std::vector<simd::Target> out{simd::Target::kScalar};
    if (simd::supported(simd::Target::kSse4))
        out.push_back(simd::Target::kSse4);
    if (simd::supported(simd::Target::kAvx2))
        out.push_back(simd::Target::kAvx2);
    if (simd::supported(simd::Target::kAvx512))
        out.push_back(simd::Target::kAvx512);
    return out;
}

int
run_json_report(const std::string &path)
{
    constexpr std::size_t kCdcBytes = 16u << 20;
    constexpr std::size_t kShaBatch = 1024;
    bench::JsonReport report("micro_primitives");
    report.config("cdc_bytes", std::uint64_t{kCdcBytes})
        .config("sha_batch", std::uint64_t{kShaBatch})
        .config("sha_chunk_bytes", std::uint64_t{kChunkSize});

    // GearCdc boundary scan: one buffer, every target, cuts must match
    // the scalar reference exactly (the dispatch identity contract).
    const Buffer data = random_buffer(kCdcBytes, 11);
    chunking::GearCdc cdc;
    std::vector<chunking::ChunkSpan> reference_spans;
    double cdc_scalar_mb_s = 0;
    for (const simd::Target target : supported_targets()) {
        ScopedTarget scope(target);
        const auto spans = cdc.split(data);
        bool identical = true;
        if (target == simd::Target::kScalar) {
            reference_spans = spans;
        } else {
            identical = spans.size() == reference_spans.size();
            for (std::size_t i = 0; identical && i < spans.size(); ++i) {
                identical = spans[i].offset == reference_spans[i].offset &&
                            spans[i].length == reference_spans[i].length;
            }
        }
        const double s = seconds_per_pass([&] {
            benchmark::DoNotOptimize(cdc.split(data));
        });
        const double mb_s =
            static_cast<double>(kCdcBytes) / s / (1 << 20);
        if (target == simd::Target::kScalar)
            cdc_scalar_mb_s = mb_s;
        auto &json = report.begin_entry(
            std::string("cdc/") + simd::name(target));
        json.kv("kernel", "gear_cdc");
        json.kv("target", simd::name(target));
        json.kv("mb_per_s", mb_s);
        json.kv("speedup_vs_scalar", mb_s / cdc_scalar_mb_s);
        json.kv("identical_to_scalar", identical);
        report.end_entry();
        std::printf("  cdc/%-6s  %9.1f MB/s  (%.2fx)%s\n",
                    simd::name(target), mb_s, mb_s / cdc_scalar_mb_s,
                    identical ? "" : "  MISMATCH");
        if (!identical)
            return 1;
    }

    // Bulk SHA-256: a large hash batch through sha256_mb_hash, digests
    // checked against the scalar incremental context per target.
    std::vector<Buffer> chunks;
    for (std::uint64_t i = 0; i < kShaBatch; ++i)
        chunks.push_back(workload::make_chunk_content(i, 0.5));
    const std::vector<std::span<const std::uint8_t>> views(chunks.begin(),
                                                           chunks.end());
    std::vector<Digest> reference_digests(chunks.size());
    for (std::size_t i = 0; i < chunks.size(); ++i)
        reference_digests[i] = Sha256::hash(chunks[i]);
    std::vector<Digest> digests(chunks.size());
    double sha_scalar_mb_s = 0;
    for (const simd::Target target : supported_targets()) {
        ScopedTarget scope(target);
        sha256_mb_hash(views, digests.data());
        bool identical = true;
        for (std::size_t i = 0; identical && i < digests.size(); ++i)
            identical = digests[i] == reference_digests[i];
        const double s = seconds_per_pass([&] {
            sha256_mb_hash(views, digests.data());
            benchmark::DoNotOptimize(digests.data());
        });
        const double mb_s =
            static_cast<double>(kShaBatch * kChunkSize) / s / (1 << 20);
        if (target == simd::Target::kScalar)
            sha_scalar_mb_s = mb_s;
        auto &json = report.begin_entry(
            std::string("sha256_mb/") + simd::name(target));
        json.kv("kernel", "sha256_mb");
        json.kv("target", simd::name(target));
        json.kv("lanes", std::uint64_t{sha256_mb_lanes()});
        json.kv("mb_per_s", mb_s);
        json.kv("speedup_vs_scalar", mb_s / sha_scalar_mb_s);
        json.kv("identical_to_scalar", identical);
        report.end_entry();
        std::printf("  sha/%-6s  %9.1f MB/s  (%.2fx)%s\n",
                    simd::name(target), mb_s, mb_s / sha_scalar_mb_s,
                    identical ? "" : "  MISMATCH");
        if (!identical)
            return 1;
    }

    return report.write_file(path).is_ok() ? 0 : 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--json" || arg.rfind("--json=", 0) == 0) {
            std::string path = "BENCH_primitives.json";
            if (const auto eq = arg.find('='); eq != std::string_view::npos)
                path = std::string(arg.substr(eq + 1));
            return run_json_report(path);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
