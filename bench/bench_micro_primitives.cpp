// Google-benchmark microbenchmarks of the core primitives: SHA-256,
// the LZ codec, both tree indexes, the table cache, and the end-to-end
// write paths of the two systems.  These measure this host's software
// throughput (the figure benches use the calibrated hardware model
// instead).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "fidr/btree/bplus_tree.h"
#include "fidr/cache/indexes.h"
#include "fidr/chunking/cdc.h"
#include "fidr/common/rng.h"
#include "fidr/compress/lz.h"
#include "fidr/core/baseline_system.h"
#include "fidr/core/fidr_system.h"
#include "fidr/hash/sha256.h"
#include "fidr/hwtree/tree_pipeline.h"
#include "fidr/nic/protocol.h"
#include "fidr/tables/journal.h"
#include "fidr/workload/content.h"
#include "fidr/workload/generator.h"

namespace {

using namespace fidr;

void
BM_Sha256_4K(benchmark::State &state)
{
    const Buffer chunk = workload::make_chunk_content(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(Sha256::hash(chunk));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_Sha256_4K);

void
BM_LzCompress_4K(benchmark::State &state)
{
    const auto level = static_cast<LzLevel>(state.range(0));
    const Buffer chunk = workload::make_chunk_content(2, 0.5);
    for (auto _ : state)
        benchmark::DoNotOptimize(lz_compress(chunk, level));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_LzCompress_4K)
    ->Arg(static_cast<int>(LzLevel::kFast))
    ->Arg(static_cast<int>(LzLevel::kDefault));

void
BM_LzDecompress_4K(benchmark::State &state)
{
    const Buffer chunk = workload::make_chunk_content(3, 0.5);
    const Buffer block = lz_compress(chunk, LzLevel::kFast);
    for (auto _ : state)
        benchmark::DoNotOptimize(lz_decompress(block));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_LzDecompress_4K);

void
BM_BPlusTreeLookup(benchmark::State &state)
{
    btree::BPlusTree tree;
    Rng rng(5);
    for (int i = 0; i < state.range(0); ++i)
        tree.insert(rng.next_u64() >> 32, i);
    Rng probe(6);
    for (auto _ : state)
        benchmark::DoNotOptimize(tree.find(probe.next_u64() >> 32));
}
BENCHMARK(BM_BPlusTreeLookup)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void
BM_BPlusTreeInsertErase(benchmark::State &state)
{
    btree::BPlusTree tree;
    Rng rng(7);
    for (int i = 0; i < (1 << 16); ++i)
        tree.insert(rng.next_u64() >> 32, i);
    Rng op(8);
    for (auto _ : state) {
        const std::uint64_t key = op.next_u64() >> 32;
        tree.insert(key, 1);
        tree.erase(key);
    }
}
BENCHMARK(BM_BPlusTreeInsertErase);

void
BM_HwTreeSearch(benchmark::State &state)
{
    hwtree::HwTree tree;
    Rng rng(9);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < (1 << 16); ++i) {
        const std::uint64_t key = rng.next_u64() >> 32;
        if (tree.insert(key, i).value())
            keys.push_back(key);
    }
    Rng probe(10);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.search(keys[probe.next_below(keys.size())]));
    }
}
BENCHMARK(BM_HwTreeSearch);

void
BM_CdcSplit(benchmark::State &state)
{
    chunking::GearCdc cdc;
    Rng rng(11);
    Buffer data(1 << 20);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next_u64());
    for (auto _ : state)
        benchmark::DoNotOptimize(cdc.split(data));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CdcSplit);

void
BM_ProtocolEncodeDecode(benchmark::State &state)
{
    const Buffer payload = workload::make_chunk_content(4);
    for (auto _ : state) {
        const Buffer wire = nic::encode_write(7, payload);
        std::size_t offset = 0;
        benchmark::DoNotOptimize(nic::decode(wire, offset));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_ProtocolEncodeDecode);

void
BM_JournalAppend(benchmark::State &state)
{
    ssd::SsdConfig config;
    config.capacity_bytes = 1ull * kGiB;
    ssd::Ssd ssd(config);
    tables::MetadataJournal journal(ssd, 0, 512 * kMiB);
    std::uint64_t lba = 0;
    for (auto _ : state) {
        if (!journal.log_map(lba, lba).is_ok()) {
            journal.reset();
            continue;
        }
        ++lba;
    }
}
BENCHMARK(BM_JournalAppend);

void
BM_TableCacheAccess(benchmark::State &state)
{
    ssd::SsdConfig config;
    config.capacity_bytes = 1ull * kGiB;
    ssd::Ssd ssd(config);
    tables::HashPbnTable table(ssd, 1 << 15);
    cache::BTreeCacheIndex index;
    cache::TableCache tc(table, index, 1024);
    Rng rng(12);
    for (auto _ : state) {
        // ~80% hot / 20% cold mix, like Write-M.
        const BucketIndex bucket =
            rng.next_bool(0.8) ? rng.next_below(900)
                               : rng.next_below(1 << 15);
        benchmark::DoNotOptimize(tc.access(bucket));
    }
}
BENCHMARK(BM_TableCacheAccess);

void
BM_LruTouch(benchmark::State &state)
{
    // touch() is O(1) (intrusive doubly linked list over line slots):
    // ns/op must stay flat as the list grows.
    const auto lines = static_cast<std::size_t>(state.range(0));
    cache::LruList lru(lines);
    for (std::size_t i = 0; i < lines; ++i)
        lru.touch(i);
    Rng rng(13);
    for (auto _ : state)
        lru.touch(rng.next_below(lines));
}
BENCHMARK(BM_LruTouch)->Arg(1 << 6)->Arg(1 << 12)->Arg(1 << 18);

void
BM_LruVictimCycle(benchmark::State &state)
{
    // The miss-path pair: pop the LRU victim, re-link the filled line.
    const auto lines = static_cast<std::size_t>(state.range(0));
    cache::LruList lru(lines);
    for (std::size_t i = 0; i < lines; ++i)
        lru.touch(i);
    for (auto _ : state) {
        const auto victim = lru.pop_victim();
        lru.touch(*victim);
    }
}
BENCHMARK(BM_LruVictimCycle)->Arg(1 << 6)->Arg(1 << 12)->Arg(1 << 18);

void
BM_FreeListPushPop(benchmark::State &state)
{
    // Circular-buffer free list: O(1) regardless of capacity.
    const auto lines = static_cast<std::size_t>(state.range(0));
    cache::FreeList free_list(lines);
    for (std::size_t i = 0; i < lines; ++i)
        free_list.push(i);
    for (auto _ : state) {
        const auto line = free_list.pop();
        free_list.push(*line);
    }
}
BENCHMARK(BM_FreeListPushPop)->Arg(1 << 6)->Arg(1 << 12)->Arg(1 << 18);

void
BM_TableCacheAccessSharded(benchmark::State &state)
{
    // Same mix as BM_TableCacheAccess, cache split into N shards
    // (arg); measures the single-caller overhead of the per-shard
    // locking that buys the multi-caller concurrency headroom.
    const auto shards = static_cast<std::size_t>(state.range(0));
    ssd::SsdConfig config;
    config.capacity_bytes = 1ull * kGiB;
    ssd::Ssd ssd(config);
    tables::HashPbnTable table(ssd, 1 << 15);
    std::vector<std::unique_ptr<cache::CacheIndex>> subs;
    for (std::size_t s = 0; s < shards; ++s)
        subs.push_back(std::make_unique<cache::BTreeCacheIndex>());
    cache::ShardedCacheIndex index(std::move(subs));
    cache::TableCache tc(table, index, 1024,
                         cache::EvictionPolicy::kLru, shards);
    Rng rng(12);
    for (auto _ : state) {
        const BucketIndex bucket =
            rng.next_bool(0.8) ? rng.next_below(900)
                               : rng.next_below(1 << 15);
        benchmark::DoNotOptimize(tc.access(bucket));
    }
}
BENCHMARK(BM_TableCacheAccessSharded)->Arg(1)->Arg(4)->Arg(16);

void
BM_BaselineWritePath(benchmark::State &state)
{
    core::BaselineConfig config;
    config.platform.expected_unique_chunks = 200'000;
    config.platform.cache_fraction = 0.028;
    config.platform.data_ssd.capacity_bytes = 32ull * kGiB;
    core::BaselineSystem system(config);

    workload::WorkloadSpec spec;
    spec.dedup_ratio = 0.5;
    workload::WorkloadGenerator gen(spec);
    for (auto _ : state) {
        const auto req = gen.next();
        if (!system.write(req.lba, req.data).is_ok())
            state.SkipWithError("write failed");
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_BaselineWritePath);

void
BM_FidrWritePath(benchmark::State &state)
{
    core::FidrConfig config;
    config.platform.expected_unique_chunks = 200'000;
    config.platform.cache_fraction = 0.028;
    config.platform.data_ssd.capacity_bytes = 32ull * kGiB;
    core::FidrSystem system(config);

    workload::WorkloadSpec spec;
    spec.dedup_ratio = 0.5;
    workload::WorkloadGenerator gen(spec);
    for (auto _ : state) {
        const auto req = gen.next();
        if (!system.write(req.lba, req.data).is_ok())
            state.SkipWithError("write failed");
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            kChunkSize);
}
BENCHMARK(BM_FidrWritePath);

}  // namespace

BENCHMARK_MAIN();
