// Write-path pipelining sweep: drives the Table 3 workloads through
// the FIDR write path at in-flight depths 1/2/4/8 and cache shard
// counts 1/4, measuring real elapsed time plus the pipeline's own
// stage-occupancy histograms (hash busy, execute busy, submit stalls).
//
// The interesting signal is *overlap*: at depth 1 the NIC hash stage
// and the commit sequencer run back to back on the caller; at
// depth >= 4 the hash stage of batch E+1 runs concurrently with the
// execution of batch E.  The pipeline measures that directly
// (`overlap_s`, the wall time a hash task and the sequencer were
// simultaneously active) and the sweep also reports the classic
// aggregate-busy/wall ratio — on multi-lane hosts both exceed their
// depth-1 values and depth 4 must beat depth 1 outright.  On a
// one-lane host the OS runs exactly one stage at a time (CV hand-offs
// coincide with scheduler wake-ups), so wall-clock coexistence is
// structurally ~0 there; the occupancy evidence is the queue instead:
// the submitter held >= 2 batches in flight and hit admission control
// (`queue_depth_p95`, `stalls`).
//
// Reduction results are asserted bit-identical across every
// (depth, shards) cell on every run — the pipeline's determinism
// contract (tests/test_pipeline_determinism.cpp checks the stronger
// ledger/journal/LBA-image identity).
//
// Emits BENCH_pipeline.json via the harness's uniform JsonReport
// schema.  `--smoke` shrinks the request count and sweep for CI.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"
#include "fidr/common/thread_pool.h"

using namespace fidr;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Sum of a snapshot histogram, in seconds (mean * count). */
double
hist_busy_s(const obs::ObsSnapshot &snap, const std::string &name)
{
    const auto it = snap.histograms.find(name);
    if (it == snap.histograms.end())
        return 0.0;
    return it->second.mean_ns * static_cast<double>(it->second.count) /
           1e9;
}

std::uint64_t
counter_of(const obs::ObsSnapshot &snap, const std::string &name)
{
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

struct DepthRun {
    std::size_t depth = 0;
    std::size_t shards = 0;
    double seconds = 0;
    double chunks_per_s = 0;
    double hash_busy_s = 0;
    double execute_busy_s = 0;
    double stall_s = 0;
    double overlap_s = 0;      ///< Measured hash||execute wall time.
    double overlap_ratio = 0;  ///< (hash + execute busy) / wall.
    std::uint64_t batches = 0;
    std::uint64_t stalls = 0;
    std::uint64_t queue_depth_p95 = 0;
    core::ReductionStats stats;
};

DepthRun
run_sweep_cell(std::size_t depth, std::size_t shards,
               const std::vector<workload::IoRequest> &requests)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.in_flight_batches = depth;
    config.cache_shards = shards;
    core::FidrSystem system(config);

    const double t0 = now_s();
    for (const workload::IoRequest &req : requests) {
        Status status;
        if (req.dir == IoDir::kWrite) {
            Buffer data = req.data;
            status = system.write(req.lba, std::move(data));
        } else {
            status = system.read(req.lba).status();
        }
        if (!status.is_ok()) {
            std::fprintf(stderr, "request failed: %s\n",
                         status.to_string().c_str());
            std::abort();
        }
    }
    const Status flushed = system.flush();
    if (!flushed.is_ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     flushed.to_string().c_str());
        std::abort();
    }
    const double elapsed = now_s() - t0;

    const obs::ObsSnapshot snap = system.obs_snapshot();
    DepthRun run;
    run.depth = depth;
    run.shards = shards;
    run.seconds = elapsed;
    run.chunks_per_s = static_cast<double>(requests.size()) / elapsed;
    run.hash_busy_s = hist_busy_s(snap, "pipeline.stage.hash.busy_ns");
    run.execute_busy_s =
        hist_busy_s(snap, "pipeline.stage.execute.busy_ns");
    run.stall_s = hist_busy_s(snap, "pipeline.submit_stall_ns");
    run.overlap_s =
        static_cast<double>(counter_of(snap, "pipeline.overlap_ns")) /
        1e9;
    run.overlap_ratio = (run.hash_busy_s + run.execute_busy_s) / elapsed;
    run.batches = counter_of(snap, "pipeline.batches");
    run.stalls = counter_of(snap, "pipeline.stalls");
    const auto queue = snap.histograms.find("pipeline.queue_depth");
    if (queue != snap.histograms.end())
        run.queue_depth_p95 = queue->second.p95_ns;
    run.stats = system.reduction();
    return run;
}

void
print_runs(const char *title, const std::vector<DepthRun> &runs)
{
    std::printf("%s\n", title);
    std::printf("  %5s | %6s | %8s | %10s | %8s | %8s | %9s | %7s |"
                " %s\n",
                "depth", "shards", "seconds", "chunks/s", "hash_s",
                "exec_s", "overlap_s", "busy/w", "stalls");
    for (const DepthRun &run : runs) {
        std::printf(
            "  %5zu | %6zu | %8.3f | %10.0f | %8.3f | %8.3f | %9.3f |"
            " %6.2fx | %zu\n",
            run.depth, run.shards, run.seconds, run.chunks_per_s,
            run.hash_busy_s, run.execute_busy_s, run.overlap_s,
            run.overlap_ratio, static_cast<std::size_t>(run.stalls));
    }
}

/** The depth-1 cell with the same shard count as `run`. */
const DepthRun &
depth1_peer(const std::vector<DepthRun> &runs, const DepthRun &run)
{
    for (const DepthRun &candidate : runs) {
        if (candidate.depth == 1 && candidate.shards == run.shards)
            return candidate;
    }
    FIDR_CHECK(false && "sweep must include depth 1 per shard count");
    return runs.front();
}

void
json_runs(obs::JsonWriter &json, const std::vector<DepthRun> &runs)
{
    json.key("runs").begin_array();
    for (const DepthRun &run : runs) {
        const DepthRun &base = depth1_peer(runs, run);
        json.begin_object();
        json.kv("depth", static_cast<std::uint64_t>(run.depth));
        json.kv("shards", static_cast<std::uint64_t>(run.shards));
        json.kv("seconds", run.seconds);
        json.kv("chunks_per_s", run.chunks_per_s);
        json.kv("speedup_vs_depth1", base.seconds / run.seconds);
        json.kv("hash_busy_s", run.hash_busy_s);
        json.kv("execute_busy_s", run.execute_busy_s);
        json.kv("submit_stall_s", run.stall_s);
        json.kv("overlap_s", run.overlap_s);
        json.kv("overlap_ratio", run.overlap_ratio);
        json.kv("batches", run.batches);
        json.kv("stalls", run.stalls);
        json.kv("queue_depth_p95", run.queue_depth_p95);
        json.end_object();
    }
    json.end_array();
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    int requests = 20'000;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            requests = std::max(1, std::atoi(argv[i]));
    }
    if (smoke)
        requests = std::min(requests, 4'000);

    const std::vector<std::size_t> depths =
        smoke ? std::vector<std::size_t>{1, 4}
              : std::vector<std::size_t>{1, 2, 4, 8};
    const std::vector<std::size_t> shard_counts = {1, 4};
    const bool single_lane = ThreadPool::hardware_lanes() == 1;

    bench::print_header(
        "Write-path pipelining: in-flight depth x cache shards",
        "Fig 6a stage overlap; Sec 5.5 cache concurrency");
    std::printf("hardware lanes: %zu, requests per run: %d%s\n\n",
                ThreadPool::hardware_lanes(), requests,
                smoke ? " (smoke)" : "");

    bench::JsonReport report("pipeline_depth");
    report.config("hardware_lanes", ThreadPool::hardware_lanes())
        .config("requests_per_run", requests)
        .config("smoke", smoke)
        .config("chunk_bytes", static_cast<std::uint64_t>(kChunkSize));

    for (const workload::WorkloadSpec &spec :
         workload::table3_specs()) {
        workload::WorkloadGenerator gen(spec);
        const auto reqs = gen.batch(static_cast<std::size_t>(requests));
        // Reads quiesce the pipeline (they must observe committed
        // state), so the Read-Mixed cells measure drain overhead, not
        // overlap; the occupancy assertions below skip them.
        const bool write_only = spec.read_fraction == 0;

        std::vector<DepthRun> runs;
        for (const std::size_t shards : shard_counts) {
            for (const std::size_t depth : depths)
                runs.push_back(run_sweep_cell(depth, shards, reqs));
        }

        print_runs(("Workload: " + spec.name).c_str(), runs);
        std::printf("\n");

        // Determinism guard: reduction results must not depend on the
        // pipeline depth or the shard count.
        for (const DepthRun &run : runs) {
            FIDR_CHECK(run.stats.unique_chunks ==
                       runs[0].stats.unique_chunks);
            FIDR_CHECK(run.stats.duplicates == runs[0].stats.duplicates);
            FIDR_CHECK(run.stats.stored_bytes ==
                       runs[0].stats.stored_bytes);
            FIDR_CHECK(run.stats.chunks_written ==
                       runs[0].stats.chunks_written);
        }

        // Pipelining smoke check (write-only cells, depth >= 4).  On a
        // one-lane host the OS runs exactly one stage at a time and CV
        // hand-offs line up with scheduler wake-ups, so wall-clock
        // stage coexistence is structurally ~0 — the meaningful
        // occupancy evidence there is the queue: the submitter must
        // have genuinely held multiple batches in flight (queue depth
        // >= 2) and hit admission control (stalls > 0).  On multi-lane
        // hosts the stages truly coexist, so additionally require
        // measured hash||execute overlap and wall-clock speedup over
        // the depth-1 cell.
        for (const DepthRun &run : runs) {
            if (!write_only || run.depth < 4)
                continue;
            FIDR_CHECK(run.batches > 0);
            if (run.queue_depth_p95 < 2 || run.stalls == 0) {
                std::fprintf(stderr,
                             "pipeline never filled at depth %zu "
                             "(queue p95 %zu, stalls %zu)\n",
                             run.depth,
                             static_cast<std::size_t>(
                                 run.queue_depth_p95),
                             static_cast<std::size_t>(run.stalls));
                std::abort();
            }
            if (!single_lane) {
                if (run.overlap_s <= 0.0) {
                    std::fprintf(stderr,
                                 "no stage overlap at depth %zu\n",
                                 run.depth);
                    std::abort();
                }
                const DepthRun &base = depth1_peer(runs, run);
                if (run.seconds >= base.seconds) {
                    std::fprintf(stderr,
                                 "depth %zu not faster than depth 1 "
                                 "(%.3fs vs %.3fs)\n",
                                 run.depth, run.seconds, base.seconds);
                    std::abort();
                }
            }
        }

        obs::JsonWriter &json = report.begin_entry("depth_sweep");
        json.kv("workload", spec.name);
        json_runs(json, runs);
        report.end_entry();
    }

    FIDR_CHECK(report.write_file("BENCH_pipeline.json").is_ok());
    return 0;
}
