// Wall-clock throughput of the batched read plane: sweeps read_lanes
// x chunk-cache capacity over the Table 3 Read-Mixed workload and a
// Zipfian hot-set read workload, timing read_batch() over the full
// read sequence.  The cache column shows the Fig 6b fetch+decompress
// work a host-DRAM chunk cache removes under skew; the lane column
// shows the fan-out (flat on a 1-core host — the determinism contract
// says lanes change wall-clock only, and the bench asserts exactly
// that: payload checksums, fetch counts and hit counts must be
// identical across every lane count, and cache-off cells must match
// cache-on cells byte-for-byte).
//
// Emits BENCH_read.json via the harness's uniform JsonReport schema.
// `--smoke` shrinks the request count and sweep for CI and gates the
// cache-off/on equivalence plus a nonzero Zipfian hit rate.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "harness.h"
#include "fidr/common/rng.h"
#include "fidr/common/thread_pool.h"

using namespace fidr;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One prepared read workload: write set + read LBA sequence. */
struct ReadWorkload {
    std::string name;
    std::vector<workload::IoRequest> writes;
    std::vector<Lba> reads;
};

/**
 * Table 3 Read-Mixed: the generator's own 30% read mix, with the
 * read requests lifted out into the post-flush read sequence.
 */
ReadWorkload
read_mixed_workload(std::size_t requests)
{
    workload::WorkloadSpec spec = workload::read_mixed_spec();
    workload::WorkloadGenerator gen(spec);
    ReadWorkload out;
    out.name = "Read-Mixed";
    for (std::size_t i = 0; i < requests; ++i) {
        const workload::IoRequest req = gen.next();
        if (req.dir == IoDir::kWrite) {
            out.writes.push_back(req);
        } else {
            out.reads.push_back(req.lba);
        }
    }
    return out;
}

/**
 * Zipfian hot set: unique chunks written once, then reads drawn
 * rank-skewed (exponent ~0.99) over the written LBAs via an exact
 * harmonic-CDF inversion — the small hot set dominates, which is the
 * regime a PBN-keyed chunk cache exists for.
 */
ReadWorkload
zipfian_workload(std::size_t unique_chunks, std::size_t reads)
{
    workload::WorkloadSpec spec;
    spec.name = "zipf-writes";
    spec.dedup_ratio = 0.0;
    spec.comp_ratio = 0.5;
    spec.address_space_chunks = unique_chunks * 4;
    spec.read_fraction = 0.0;
    spec.seed = 0x21Fu;
    workload::WorkloadGenerator gen(spec);

    ReadWorkload out;
    out.name = "Zipfian hot set";
    out.writes = gen.batch(unique_chunks);

    // CDF of the zipf(0.99) rank distribution over the write order.
    std::vector<double> cdf(unique_chunks);
    double total = 0;
    for (std::size_t rank = 0; rank < unique_chunks; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), 0.99);
        cdf[rank] = total;
    }
    Rng rng(0x21F2ull);
    for (std::size_t i = 0; i < reads; ++i) {
        const double u = rng.next_double() * total;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const std::size_t rank =
            static_cast<std::size_t>(it - cdf.begin());
        out.reads.push_back(out.writes[rank].lba);
    }
    return out;
}

struct CellRun {
    std::size_t lanes = 0;
    std::uint64_t cache_bytes = 0;
    double seconds = 0;
    double chunks_per_s = 0;
    double gb_per_s = 0;
    std::uint64_t ssd_fetches = 0;
    std::uint64_t cache_hits = 0;
    double cache_hit_rate = 0;
    std::uint64_t payload_checksum = 0;  ///< FNV over every slot.
};

CellRun
run_cell(const ReadWorkload &workload, std::size_t lanes,
         std::uint64_t cache_bytes, std::size_t batch_size)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.nic.hash_lanes = 1;
    config.compress_lanes = 1;
    config.read_lanes = lanes;
    config.chunk_cache_bytes = cache_bytes;
    config.chunk_cache_shards = cache_bytes > 0 ? 4 : 1;
    core::FidrSystem system(config);

    for (const workload::IoRequest &req : workload.writes) {
        Buffer data = req.data;
        FIDR_CHECK(system.write(req.lba, std::move(data)).is_ok());
    }
    FIDR_CHECK(system.flush().is_ok());

    CellRun cell;
    cell.lanes = lanes;
    cell.cache_bytes = cache_bytes;
    std::uint64_t checksum = 0xCBF29CE484222325ull;
    const double t0 = now_s();
    for (std::size_t base = 0; base < workload.reads.size();
         base += batch_size) {
        const std::size_t n =
            std::min(batch_size, workload.reads.size() - base);
        const std::span<const Lba> lbas(&workload.reads[base], n);
        const std::vector<Result<Buffer>> batch = system.read_batch(lbas);
        for (const Result<Buffer> &slot : batch) {
            FIDR_CHECK(slot.is_ok());
            for (const std::uint8_t byte : slot.value()) {
                checksum ^= byte;
                checksum *= 0x100000001B3ull;
            }
        }
    }
    cell.seconds = now_s() - t0;
    cell.payload_checksum = checksum;
    cell.chunks_per_s =
        static_cast<double>(workload.reads.size()) / cell.seconds;
    cell.gb_per_s = static_cast<double>(workload.reads.size()) *
                    kChunkSize / cell.seconds / 1e9;

    const obs::ObsSnapshot snap = system.obs_snapshot();
    cell.ssd_fetches = snap.counters.at("read.ssd_fetches");
    cell.cache_hits = snap.counters.at("read.cache.hits");
    cell.cache_hit_rate = snap.gauges.at("read.cache.hit_rate");
    return cell;
}

void
print_cells(const ReadWorkload &workload,
            const std::vector<CellRun> &cells)
{
    std::printf("%s: %zu writes, %zu reads\n", workload.name.c_str(),
                workload.writes.size(), workload.reads.size());
    std::printf("  %5s | %10s | %9s | %12s | %8s | %11s | %8s\n",
                "lanes", "cache", "seconds", "chunks/s", "GB/s",
                "ssd fetches", "hit rate");
    for (const CellRun &cell : cells) {
        std::printf("  %5zu | %7.0f MB | %9.3f | %12.0f | %8.3f |"
                    " %11llu | %7.1f%%\n",
                    cell.lanes,
                    static_cast<double>(cell.cache_bytes) / (1 << 20),
                    cell.seconds, cell.chunks_per_s, cell.gb_per_s,
                    static_cast<unsigned long long>(cell.ssd_fetches),
                    cell.cache_hit_rate * 100.0);
    }
    std::printf("\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    const std::size_t requests = smoke ? 3'000 : 24'000;
    const std::size_t zipf_uniques = smoke ? 1'000 : 6'000;
    const std::size_t zipf_reads = smoke ? 4'000 : 36'000;
    const std::size_t batch_size = 256;
    const std::vector<std::size_t> lane_sweep =
        smoke ? std::vector<std::size_t>{1, 2}
              : std::vector<std::size_t>{1, 2, 4};
    const std::vector<std::uint64_t> cache_sweep =
        smoke ? std::vector<std::uint64_t>{0, 4ull << 20}
              : std::vector<std::uint64_t>{0, 4ull << 20, 32ull << 20};

    bench::print_header("Batched read plane wall-clock throughput",
                        "Fig 6b read flow; coalescing + chunk cache");
    std::printf("hardware lanes: %zu, batch size: %zu%s\n\n",
                ThreadPool::hardware_lanes(), batch_size,
                smoke ? " (smoke)" : "");

    bench::JsonReport report("read_throughput");
    report.config("batch_size", static_cast<std::uint64_t>(batch_size))
        .config("hardware_lanes", ThreadPool::hardware_lanes())
        .config("smoke", smoke)
        .config("chunk_bytes", static_cast<std::uint64_t>(kChunkSize));

    const ReadWorkload workloads[2] = {
        read_mixed_workload(requests),
        zipfian_workload(zipf_uniques, zipf_reads),
    };
    for (const ReadWorkload &workload : workloads) {
        std::vector<CellRun> cells;
        for (const std::uint64_t cache_bytes : cache_sweep) {
            for (const std::size_t lanes : lane_sweep)
                cells.push_back(run_cell(workload, lanes, cache_bytes,
                                         batch_size));
        }
        print_cells(workload, cells);

        // Determinism gates, every run: payloads are invariant across
        // the whole sweep (the cache and the lanes are pure
        // optimizations), and within one cache size the fetch and hit
        // counts are lane-invariant.
        for (const CellRun &cell : cells) {
            FIDR_CHECK(cell.payload_checksum ==
                       cells[0].payload_checksum);
        }
        for (std::size_t c = 0; c < cache_sweep.size(); ++c) {
            const CellRun &first = cells[c * lane_sweep.size()];
            for (std::size_t l = 1; l < lane_sweep.size(); ++l) {
                const CellRun &cell = cells[c * lane_sweep.size() + l];
                FIDR_CHECK(cell.ssd_fetches == first.ssd_fetches);
                FIDR_CHECK(cell.cache_hits == first.cache_hits);
            }
        }
        // Cache efficacy gates on the skewed workload: repeat reads
        // must hit, and hits must remove data-SSD fetch DMAs.
        if (workload.name == "Zipfian hot set") {
            const CellRun &cache_off = cells[0];
            const CellRun &cache_on = cells[lane_sweep.size()];
            FIDR_CHECK(cache_off.cache_hits == 0);
            FIDR_CHECK(cache_on.cache_hits > 0);
            FIDR_CHECK(cache_on.cache_hit_rate > 0.0);
            FIDR_CHECK(cache_on.ssd_fetches < cache_off.ssd_fetches);
        }

        obs::JsonWriter &json = report.begin_entry("read_sweep");
        json.kv("workload", workload.name);
        json.kv("writes",
                static_cast<std::uint64_t>(workload.writes.size()));
        json.kv("reads",
                static_cast<std::uint64_t>(workload.reads.size()));
        json.key("runs").begin_array();
        for (const CellRun &cell : cells) {
            json.begin_object();
            json.kv("lanes", static_cast<std::uint64_t>(cell.lanes));
            json.kv("cache_bytes", cell.cache_bytes);
            json.kv("seconds", cell.seconds);
            json.kv("chunks_per_s", cell.chunks_per_s);
            json.kv("gb_per_s", cell.gb_per_s);
            json.kv("ssd_fetches", cell.ssd_fetches);
            json.kv("cache_hits", cell.cache_hits);
            json.kv("cache_hit_rate", cell.cache_hit_rate);
            json.end_object();
        }
        json.end_array();
        report.end_entry();
    }
    FIDR_CHECK(report.write_file("BENCH_read.json").is_ok());
    return 0;
}
