// Wall-clock throughput of the batched read plane: sweeps read_lanes
// x chunk-cache capacity x cache tier mode (one-tier decompressed LRU
// vs two-tier hot/warm vs two-tier + SSD spill ring, all at the same
// DRAM budget) over the Table 3 Read-Mixed workload and a Zipfian
// hot-set read workload, timing read_batch() over the full read
// sequence.  The cache columns show the Fig 6b fetch+decompress work
// a host-DRAM chunk cache removes under skew — and how much further a
// compressed warm tier stretches the same budget; the lane column
// shows the fan-out (flat on a 1-core host — the determinism contract
// says lanes change wall-clock only, and the bench asserts exactly
// that: payload checksums, fetch counts and per-tier hit counts must
// be identical across every lane count, and every cell must return
// byte-identical payloads).
//
// Emits BENCH_read.json via the harness's uniform JsonReport schema.
// `--smoke` shrinks the request count and sweep for CI and gates the
// cache-off/on equivalence, the equal-budget two-tier improvement and
// a nonzero spill-tier hit count.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "harness.h"
#include "fidr/common/rng.h"
#include "fidr/common/thread_pool.h"

using namespace fidr;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One prepared read workload: write set + read LBA sequence. */
struct ReadWorkload {
    std::string name;
    std::vector<workload::IoRequest> writes;
    std::vector<Lba> reads;
};

/**
 * Table 3 Read-Mixed: the generator's own 30% read mix, with the
 * read requests lifted out into the post-flush read sequence.
 */
ReadWorkload
read_mixed_workload(std::size_t requests)
{
    workload::WorkloadSpec spec = workload::read_mixed_spec();
    workload::WorkloadGenerator gen(spec);
    ReadWorkload out;
    out.name = "Read-Mixed";
    for (std::size_t i = 0; i < requests; ++i) {
        const workload::IoRequest req = gen.next();
        if (req.dir == IoDir::kWrite) {
            out.writes.push_back(req);
        } else {
            out.reads.push_back(req.lba);
        }
    }
    return out;
}

/**
 * Zipfian hot set: unique chunks written once, then reads drawn
 * rank-skewed (exponent ~0.99) over the written LBAs via an exact
 * harmonic-CDF inversion — the small hot set dominates, which is the
 * regime a PBN-keyed chunk cache exists for.
 */
ReadWorkload
zipfian_workload(std::size_t unique_chunks, std::size_t reads)
{
    workload::WorkloadSpec spec;
    spec.name = "zipf-writes";
    spec.dedup_ratio = 0.0;
    spec.comp_ratio = 0.5;
    spec.address_space_chunks = unique_chunks * 4;
    spec.read_fraction = 0.0;
    spec.seed = 0x21Fu;
    workload::WorkloadGenerator gen(spec);

    ReadWorkload out;
    out.name = "Zipfian hot set";
    out.writes = gen.batch(unique_chunks);

    // CDF of the zipf(0.99) rank distribution over the write order.
    std::vector<double> cdf(unique_chunks);
    double total = 0;
    for (std::size_t rank = 0; rank < unique_chunks; ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), 0.99);
        cdf[rank] = total;
    }
    Rng rng(0x21F2ull);
    for (std::size_t i = 0; i < reads; ++i) {
        const double u = rng.next_double() * total;
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
        const std::size_t rank =
            static_cast<std::size_t>(it - cdf.begin());
        out.reads.push_back(out.writes[rank].lba);
    }
    return out;
}

/**
 * Cache configuration of one sweep column.  "one" is the PR 5
 * one-tier decompressed LRU (the committed baseline the two-tier
 * cells must beat at equal DRAM budget); "two" adds the compressed
 * warm tier + admission + ghost auto-sizing; "two+spill" additionally
 * spills evicted compressed chunks to a reserved data-SSD ring.
 */
struct TierMode {
    const char *name = "off";
    bool two_tier = false;
    bool admission = false;
    std::uint64_t spill_bytes = 0;
    /** Hot-tier demotion batch (cache::ChunkCacheTuning::demote_batch);
     *  1 = legacy demote-exactly-to-target. */
    std::size_t demote_batch = 1;
};

struct CellRun {
    std::size_t lanes = 0;
    std::uint64_t cache_bytes = 0;
    std::string tier = "off";
    double seconds = 0;
    double chunks_per_s = 0;
    double gb_per_s = 0;
    std::uint64_t ssd_fetches = 0;
    std::uint64_t cache_hits = 0;
    double cache_hit_rate = 0;
    std::uint64_t warm_hits = 0;
    std::uint64_t spill_hits = 0;
    std::uint64_t spill_writes = 0;
    std::uint64_t demote_batch = 1;
    std::uint64_t demotions = 0;
    std::uint64_t demote_passes = 0;
    std::uint64_t payload_checksum = 0;  ///< FNV over every slot.
};

CellRun
run_cell(const ReadWorkload &workload, std::size_t lanes,
         std::uint64_t cache_bytes, const TierMode &mode,
         std::size_t batch_size)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.nic.hash_lanes = 1;
    config.compress_lanes = 1;
    config.read_lanes = lanes;
    config.chunk_cache_bytes = cache_bytes;
    config.chunk_cache_shards = cache_bytes > 0 ? 4 : 1;
    config.chunk_cache_two_tier = mode.two_tier;
    config.chunk_cache_admission = mode.admission;
    config.chunk_cache_spill_bytes = mode.spill_bytes;
    config.chunk_cache_demote_batch = mode.demote_batch;
    core::FidrSystem system(config);

    for (const workload::IoRequest &req : workload.writes) {
        Buffer data = req.data;
        FIDR_CHECK(system.write(req.lba, std::move(data)).is_ok());
    }
    FIDR_CHECK(system.flush().is_ok());

    CellRun cell;
    cell.lanes = lanes;
    cell.cache_bytes = cache_bytes;
    std::uint64_t checksum = 0xCBF29CE484222325ull;
    const double t0 = now_s();
    for (std::size_t base = 0; base < workload.reads.size();
         base += batch_size) {
        const std::size_t n =
            std::min(batch_size, workload.reads.size() - base);
        const std::span<const Lba> lbas(&workload.reads[base], n);
        const std::vector<Result<Buffer>> batch = system.read_batch(lbas);
        for (const Result<Buffer> &slot : batch) {
            FIDR_CHECK(slot.is_ok());
            for (const std::uint8_t byte : slot.value()) {
                checksum ^= byte;
                checksum *= 0x100000001B3ull;
            }
        }
    }
    cell.seconds = now_s() - t0;
    cell.payload_checksum = checksum;
    cell.chunks_per_s =
        static_cast<double>(workload.reads.size()) / cell.seconds;
    cell.gb_per_s = static_cast<double>(workload.reads.size()) *
                    kChunkSize / cell.seconds / 1e9;

    const obs::ObsSnapshot snap = system.obs_snapshot();
    cell.tier = mode.name;
    cell.ssd_fetches = snap.counters.at("read.ssd_fetches");
    cell.cache_hits = snap.counters.at("read.cache.hits");
    cell.cache_hit_rate = snap.gauges.at("read.cache.hit_rate");
    cell.warm_hits = snap.counters.at("read.cache.warm.hits");
    cell.spill_hits = snap.counters.at("read.cache.spill.hits");
    cell.spill_writes = snap.counters.at("read.cache.spill.writes");
    cell.demote_batch = mode.demote_batch;
    cell.demotions = snap.counters.at("read.cache.demotions");
    cell.demote_passes = snap.counters.at("read.cache.demote_passes");
    return cell;
}

void
print_cells(const ReadWorkload &workload,
            const std::vector<CellRun> &cells)
{
    std::printf("%s: %zu writes, %zu reads\n", workload.name.c_str(),
                workload.writes.size(), workload.reads.size());
    std::printf("  %5s | %10s | %9s | %5s | %9s | %12s | %11s |"
                " %8s | %9s | %10s | %9s | %9s\n",
                "lanes", "cache", "tier", "batch", "seconds",
                "chunks/s", "ssd fetches", "hit rate", "warm hits",
                "spill hits", "demotions", "dem pass");
    for (const CellRun &cell : cells) {
        std::printf("  %5zu | %7.0f MB | %9s | %5llu | %9.3f |"
                    " %12.0f | %11llu | %7.1f%% | %9llu | %10llu |"
                    " %9llu | %9llu\n",
                    cell.lanes,
                    static_cast<double>(cell.cache_bytes) / (1 << 20),
                    cell.tier.c_str(),
                    static_cast<unsigned long long>(cell.demote_batch),
                    cell.seconds, cell.chunks_per_s,
                    static_cast<unsigned long long>(cell.ssd_fetches),
                    cell.cache_hit_rate * 100.0,
                    static_cast<unsigned long long>(cell.warm_hits),
                    static_cast<unsigned long long>(cell.spill_hits),
                    static_cast<unsigned long long>(cell.demotions),
                    static_cast<unsigned long long>(
                        cell.demote_passes));
    }
    std::printf("\n");
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    const std::size_t requests = smoke ? 3'000 : 24'000;
    const std::size_t zipf_uniques = smoke ? 1'000 : 6'000;
    const std::size_t zipf_reads = smoke ? 4'000 : 36'000;
    const std::size_t batch_size = 256;
    const std::vector<std::size_t> lane_sweep =
        smoke ? std::vector<std::size_t>{1, 2}
              : std::vector<std::size_t>{1, 2, 4};
    // The smoke budget is 1 MiB (not 4): the smoke working set is
    // 1000 x 4 KiB = 4 MiB, so a 4 MiB cache holds everything and the
    // one-tier/two-tier comparison degenerates.  The full-run 4 MiB
    // budget is the constrained cell (working set 24 MiB raw); 32 MiB
    // holds the whole decompressed set, so every mode sits at the
    // compulsory-miss floor there and only the no-regression gate
    // applies.
    const std::vector<std::uint64_t> cache_sweep =
        smoke ? std::vector<std::uint64_t>{0, 1ull << 20}
              : std::vector<std::uint64_t>{0, 4ull << 20, 32ull << 20};
    const std::uint64_t spill_bytes = smoke ? 8ull << 20 : 64ull << 20;
    // Admission stays off in the sweep: the doorkeeper trades one
    // extra miss per admitted chunk for scan resistance, which is the
    // wrong trade under pure Zipfian reuse (every unique is re-read).
    // The admission path is exercised by the unit tests instead.
    const TierMode kOff{"off", false, false, 0};
    const TierMode kOne{"one", false, false, 0};
    const TierMode kTwo{"two", true, false, 0};
    const TierMode kTwoSpill{"two+spill", true, false, spill_bytes};
    // Batched hot-tier demotion at the tight budget: the DESIGN.md
    // §16 near-fit regression (Read-Mixed at 4 MiB, two-tier demoting
    // and re-promoting the same tail entry on every insert).
    const std::size_t demote_batch = 8;
    const TierMode kTwoBatch{"two", true, false, 0, demote_batch};

    // One sweep column per (cache budget, tier mode); cache-off runs
    // a single "off" column, every budget > 0 runs all three modes at
    // the SAME DRAM budget — the equal-budget comparison the two-tier
    // design is gated on.  The smallest nonzero budget (the near-fit
    // regime) additionally runs two-tier with batched demotions.
    struct SweepConfig {
        std::uint64_t cache_bytes;
        TierMode mode;
    };
    std::vector<SweepConfig> configs;
    for (const std::uint64_t cache_bytes : cache_sweep) {
        if (cache_bytes == 0) {
            configs.push_back({cache_bytes, kOff});
        } else {
            configs.push_back({cache_bytes, kOne});
            configs.push_back({cache_bytes, kTwo});
            if (cache_bytes == cache_sweep[1])
                configs.push_back({cache_bytes, kTwoBatch});
            configs.push_back({cache_bytes, kTwoSpill});
        }
    }

    bench::print_header("Batched read plane wall-clock throughput",
                        "Fig 6b read flow; coalescing + chunk cache");
    std::printf("hardware lanes: %zu, batch size: %zu%s\n\n",
                ThreadPool::hardware_lanes(), batch_size,
                smoke ? " (smoke)" : "");

    bench::JsonReport report("read_throughput");
    report.config("batch_size", static_cast<std::uint64_t>(batch_size))
        .config("hardware_lanes", ThreadPool::hardware_lanes())
        .config("smoke", smoke)
        .config("chunk_bytes", static_cast<std::uint64_t>(kChunkSize));

    const ReadWorkload workloads[2] = {
        read_mixed_workload(requests),
        zipfian_workload(zipf_uniques, zipf_reads),
    };
    for (const ReadWorkload &workload : workloads) {
        std::vector<CellRun> cells;
        for (const SweepConfig &config : configs) {
            for (const std::size_t lanes : lane_sweep)
                cells.push_back(run_cell(workload, lanes,
                                         config.cache_bytes,
                                         config.mode, batch_size));
        }
        print_cells(workload, cells);

        // Lane-1 cell of the (cache budget, tier mode, batch) column.
        const auto cell_at = [&](std::uint64_t cache_bytes,
                                 const char *tier,
                                 std::uint64_t batch =
                                     1) -> const CellRun & {
            for (const CellRun &cell : cells) {
                if (cell.cache_bytes == cache_bytes &&
                    cell.tier == tier && cell.lanes == lane_sweep[0] &&
                    cell.demote_batch == batch)
                    return cell;
            }
            FIDR_CHECK(false);
            return cells[0];
        };

        // Determinism gates, every run: payloads are invariant across
        // the whole sweep (the cache, its tiers and the lanes are pure
        // optimizations), and within one (cache, tier) column every
        // cache/fetch counter is lane-invariant.
        for (const CellRun &cell : cells) {
            FIDR_CHECK(cell.payload_checksum ==
                       cells[0].payload_checksum);
        }
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const CellRun &first = cells[c * lane_sweep.size()];
            for (std::size_t l = 1; l < lane_sweep.size(); ++l) {
                const CellRun &cell = cells[c * lane_sweep.size() + l];
                FIDR_CHECK(cell.ssd_fetches == first.ssd_fetches);
                FIDR_CHECK(cell.cache_hits == first.cache_hits);
                FIDR_CHECK(cell.warm_hits == first.warm_hits);
                FIDR_CHECK(cell.spill_hits == first.spill_hits);
            }
        }
        // Cache efficacy gates on the skewed workload.  The equal-
        // budget comparison runs at the smallest nonzero budget, where
        // the one-tier cache is capacity-constrained: keeping the warm
        // tier compressed must strictly raise the hit rate and
        // strictly cut data-SSD fetches, and the spill ring must
        // absorb capacity misses on top of that.  At budgets that hold
        // the whole working set every mode sits at the compulsory-miss
        // floor, so larger budgets only gate no-regression.
        if (workload.name == "Zipfian hot set") {
            const CellRun &cache_off = cell_at(0, "off");
            FIDR_CHECK(cache_off.cache_hits == 0);
            const std::uint64_t tight = cache_sweep[1];
            for (std::size_t c = 1; c < cache_sweep.size(); ++c) {
                const std::uint64_t budget = cache_sweep[c];
                const CellRun &one = cell_at(budget, "one");
                const CellRun &two = cell_at(budget, "two");
                const CellRun &spill = cell_at(budget, "two+spill");
                FIDR_CHECK(one.cache_hits > 0);
                FIDR_CHECK(one.ssd_fetches < cache_off.ssd_fetches);
                FIDR_CHECK(two.warm_hits > 0);
                FIDR_CHECK(two.ssd_fetches <= one.ssd_fetches);
                FIDR_CHECK(spill.ssd_fetches <= two.ssd_fetches);
                if (budget == tight) {
                    FIDR_CHECK(two.cache_hit_rate > one.cache_hit_rate);
                    FIDR_CHECK(two.ssd_fetches < one.ssd_fetches);
                    FIDR_CHECK(spill.spill_hits > 0);
                    FIDR_CHECK(spill.cache_hit_rate >
                               two.cache_hit_rate);
                    FIDR_CHECK(spill.ssd_fetches < two.ssd_fetches);
                }
            }
        }

        // Batched-demotion gate at the tight budget: demoting K tail
        // entries per rebalance pass leaves slack below the hot
        // target, so a working set that barely overflows the hot tier
        // pays the demotion bookkeeping once per ~K inserts instead
        // of on every one (the DESIGN.md §16 Read-Mixed near-fit
        // churn).  Gates: per-insert mode actually demotes here (the
        // cell exercises the churn), batching strictly cuts demotion
        // passes, and fetches never regress on Read-Mixed — the
        // near-fit workload the batching exists for (a demoted entry
        // drops its raw buffer, so the slack only adds compressed
        // residents).  On the deep-churn Zipfian sweep the LRU-order
        // perturbation may move a handful of tail fetches either way,
        // bounded at 1%.  Payload equality across the two cells is
        // already covered by the global checksum gate above.
        {
            const std::uint64_t tight = cache_sweep[1];
            const CellRun &unbatched = cell_at(tight, "two", 1);
            const CellRun &batched =
                cell_at(tight, "two", demote_batch);
            FIDR_CHECK(unbatched.demote_passes > 0);
            FIDR_CHECK(batched.demote_passes <
                       unbatched.demote_passes);
            if (workload.name == "Read-Mixed") {
                FIDR_CHECK(batched.ssd_fetches <=
                           unbatched.ssd_fetches);
            } else {
                FIDR_CHECK(static_cast<double>(batched.ssd_fetches) <=
                           1.01 * static_cast<double>(
                                      unbatched.ssd_fetches));
            }
        }

        obs::JsonWriter &json = report.begin_entry("read_sweep");
        json.kv("workload", workload.name);
        json.kv("writes",
                static_cast<std::uint64_t>(workload.writes.size()));
        json.kv("reads",
                static_cast<std::uint64_t>(workload.reads.size()));
        json.key("runs").begin_array();
        for (const CellRun &cell : cells) {
            json.begin_object();
            json.kv("lanes", static_cast<std::uint64_t>(cell.lanes));
            json.kv("cache_bytes", cell.cache_bytes);
            json.kv("tier", cell.tier);
            json.kv("seconds", cell.seconds);
            json.kv("chunks_per_s", cell.chunks_per_s);
            json.kv("gb_per_s", cell.gb_per_s);
            json.kv("ssd_fetches", cell.ssd_fetches);
            json.kv("cache_hits", cell.cache_hits);
            json.kv("cache_hit_rate", cell.cache_hit_rate);
            json.kv("warm_hits", cell.warm_hits);
            json.kv("spill_hits", cell.spill_hits);
            json.kv("spill_writes", cell.spill_writes);
            json.kv("demote_batch", cell.demote_batch);
            json.kv("demotions", cell.demotions);
            json.kv("demote_passes", cell.demote_passes);
            json.end_object();
        }
        json.end_array();
        report.end_entry();
    }
    FIDR_CHECK(report.write_file("BENCH_read.json").is_ok());
    return 0;
}
