// Sec 7.6: request latency.  (a) Write commit latency is unchanged by
// FIDR — the NIC's non-volatile buffer acknowledges immediately.
// (b) Server-side read latency (SSDs<->NICs) for a 4 KB read served
// within a batch of reads: the paper measures 700 us on the baseline
// and 490 us on FIDR; the ~210 us delta is the two host-memory staging
// passes (SSD->host->FPGA and FPGA->host->NIC) that FIDR's
// peer-to-peer path eliminates.
//
// Discrete-event model: a batch of reads arrives at the NIC; the host
// resolves LBA->PBA; compressed chunks are read from the data SSDs
// (whose flash pipelines serialize batched commands); then the data is
// either staged through host DRAM (baseline) or moved peer-to-peer
// (FIDR) into the Decompression Engine and out to the NIC.  Shared
// resources (host core, per-SSD flash pipeline, decompression engine)
// queue; PCIe hops are sub-microsecond at these sizes and modelled as
// pure latency.  Absolute service constants are fitted to the paper's
// testbed; the baseline-vs-FIDR delta is structural.

#include <cstdio>

#include "harness.h"
#include "fidr/host/calibration.h"
#include "fidr/sim/event_queue.h"
#include "fidr/sim/stats.h"
#include "fidr/ssd/ssd.h"

using namespace fidr;

namespace {

struct LatencyModel {
    /** Per-IO host software service (NVMe stack + LBA-PBA lookup). */
    SimTime host_service = 8 * kMicrosecond;
    /** Flash-channel service per command inside a busy SSD (fitted). */
    SimTime ssd_service = 20 * kMicrosecond;
    /** Flash read latency under batch load (fitted to the testbed). */
    SimTime ssd_base = 430 * kMicrosecond;
    /** Interrupt + buffer management per pass through host DRAM
     *  (fitted; the baseline pays it twice per read). */
    SimTime host_staging = calib::kHostStagingLatency;
    /** Decompression engine: fixed latency + streaming rate. */
    SimTime decomp_fixed = 10 * kMicrosecond;
    Bandwidth decomp_rate = gb_per_s(2.5);
    /** PCIe DMA: doorbell/descriptor setup + link streaming. */
    SimTime dma_setup = 1 * kMicrosecond;
    Bandwidth link_rate = gb_per_s(16);
    /** Client requests of the batch arrive back to back. */
    SimTime interarrival = 8 * kMicrosecond;
};

/** Mean server-side latency over one batch of 4 KB reads. */
double
simulate(bool p2p, const LatencyModel &m, unsigned batch)
{
    ssd::SsdConfig ssd_config;
    ssd_config.read_latency = m.ssd_base;
    // One compressed chunk per ssd_service through the flash pipeline.
    ssd_config.read_bandwidth =
        2048.0 * 1e9 / static_cast<double>(m.ssd_service);
    ssd::Ssd ssds[2] = {ssd::Ssd(ssd_config), ssd::Ssd(ssd_config)};

    sim::BandwidthPipe host_core(1e9);  // 1 "byte" = 1 ns of service.
    sim::BandwidthPipe decomp_pipe(m.decomp_rate);
    sim::LatencyStats stats;

    const std::uint64_t compressed = 2048;  // 50% compressed chunk.
    const auto dma_ns = [&m](std::uint64_t bytes) {
        return m.dma_setup +
               static_cast<SimTime>(static_cast<double>(bytes) /
                                    m.link_rate * 1e9);
    };

    for (unsigned i = 0; i < batch; ++i) {
        const SimTime arrive = i * m.interarrival;
        // Host software slot (serialized on one core).
        SimTime t = host_core.transfer(arrive, m.host_service);
        // Data SSD read of the compressed chunk (round-robin).
        t = ssds[i % 2].io_complete_time(t, IoDir::kRead, compressed);

        if (p2p) {
            t += dma_ns(compressed);         // SSD -> engine, P2P.
        } else {
            t += dma_ns(compressed);         // SSD -> host DRAM.
            t += m.host_staging;             // Host buffer handling.
            t += dma_ns(compressed);         // Host -> engine.
        }
        // Decompression (engine serializes its stream).
        t = decomp_pipe.transfer(t + m.decomp_fixed, 4096);

        if (p2p) {
            t += dma_ns(4096);               // Engine -> NIC, P2P.
        } else {
            t += dma_ns(4096);               // Engine -> host DRAM.
            t += m.host_staging;
            t += dma_ns(4096);               // Host -> NIC.
        }
        stats.record(t - arrive);
    }
    return stats.mean_ns() / 1000.0;  // us.
}

}  // namespace

int
main()
{
    LatencyModel model;
    std::printf("===================================================="
                "================\n");
    std::printf("Request latency\n  (reproduces Sec 7.6)\n");
    std::printf("===================================================="
                "================\n");

    std::printf("(a) Write commit latency: FIDR acknowledges from the "
                "NIC's non-volatile\n    buffer — same commit latency "
                "as a system with no data reduction\n    (0 added us; "
                "Sec 7.6.1).\n\n");

    const unsigned batch = calib::kLatencyBatchSize;
    const double base_us = simulate(false, model, batch);
    const double fidr_us = simulate(true, model, batch);
    std::printf("(b) Server-side 4 KB read latency, batch of %u:\n",
                batch);
    std::printf("    %-22s %10s %10s\n", "system", "measured", "paper");
    std::printf("    %-22s %7.0f us %7.0f us\n", "baseline (staged)",
                base_us, 700.0);
    std::printf("    %-22s %7.0f us %7.0f us\n", "FIDR (peer-to-peer)",
                fidr_us, 490.0);
    std::printf("    %-22s %7.0f us %7.0f us\n", "delta",
                base_us - fidr_us, 210.0);

    bench::JsonReport report("sec76_latency");
    report.config("batch", static_cast<std::uint64_t>(batch))
        .config("paper_baseline_us", 700.0)
        .config("paper_fidr_us", 490.0);
    {
        obs::JsonWriter &json = report.begin_entry("read_latency");
        json.kv("batch", static_cast<std::uint64_t>(batch));
        json.kv("baseline_us", base_us);
        json.kv("fidr_us", fidr_us);
        json.kv("delta_us", base_us - fidr_us);
        report.end_entry();
    }

    std::printf("\nSensitivity to batch size:\n");
    std::printf("    %8s %12s %12s %10s\n", "batch", "baseline",
                "FIDR", "delta");
    for (unsigned b : {1u, 8u, 16u, 32u, 64u}) {
        const double bb = simulate(false, model, b);
        const double ff = simulate(true, model, b);
        std::printf("    %8u %9.0f us %9.0f us %7.0f us\n", b, bb, ff,
                    bb - ff);
        obs::JsonWriter &json = report.begin_entry("batch_sensitivity");
        json.kv("batch", static_cast<std::uint64_t>(b));
        json.kv("baseline_us", bb);
        json.kv("fidr_us", ff);
        json.kv("delta_us", bb - ff);
        report.end_entry();
    }
    FIDR_CHECK(report.write_file("BENCH_sec76_latency.json").is_ok());
    std::printf("\nShape check: the delta is flat (two host staging "
                "passes plus the extra\nDMA hops), so FIDR's advantage "
                "holds at every batch size; absolute\nlatency grows "
                "mildly with batching as the flash pipelines "
                "serialize.\n");
    return 0;
}
