// Table 1: breakdown of the baseline's host DRAM traffic by data path,
// with the memory-capacity class of each path.  Paper (write-only):
// NIC<->host 23.6%, unique prediction 23.7%, host<->FPGAs 25.4%,
// table cache management 25.7%, host<->data SSD 1.7%.

#include <cstdio>
#include <map>
#include <string>

#include "harness.h"

using namespace fidr;

namespace {

const char *
capacity_class(const std::string &tag)
{
    if (tag == core::memtag::kNicHost)
        return "KBs-MBs";
    if (tag == core::memtag::kPrediction)
        return "MBs";
    if (tag == core::memtag::kFpga)
        return "MBs";
    if (tag == core::memtag::kTableCache)
        return "10-100s GB";
    return "KBs-MBs";
}

}  // namespace

int
main()
{
    bench::print_header(
        "Baseline DRAM-traffic breakdown by data path",
        "Table 1 (Sec 4.1)");

    workload::WorkloadSpec write_only = workload::write_m_spec();
    write_only.name = "Write-only";
    workload::WorkloadSpec mixed = write_only;
    mixed.name = "Mixed";
    mixed.read_fraction = 0.5;

    const bench::RunResult w = bench::run_baseline(write_only);
    const bench::RunResult m = bench::run_baseline(mixed);

    const std::map<std::string, std::pair<double, double>> paper = {
        {core::memtag::kNicHost, {23.6, 27.7}},
        {core::memtag::kPrediction, {23.7, 13.9}},
        {core::memtag::kFpga, {25.4, 35.6}},
        {core::memtag::kTableCache, {25.7, 15.1}},
        {core::memtag::kDataSsd, {1.7, 7.9}},
    };

    std::printf("%-34s %9s %7s | %9s %7s | %s\n", "data path",
                "write", "paper", "mixed", "paper", "capacity");
    for (const auto &[tag, expect] : paper) {
        double wshare = 0, mshare = 0;
        for (const auto &row : w.mem_rows)
            if (row.tag == tag) wshare = row.share;
        for (const auto &row : m.mem_rows)
            if (row.tag == tag) mshare = row.share;
        std::printf("%-34s %8.1f%% %6.1f%% | %8.1f%% %6.1f%% | %s\n",
                    tag.c_str(), 100 * wshare, expect.first,
                    100 * mshare, expect.second, capacity_class(tag));
    }
    std::printf("\nTotals: write-only %.2f DRAM bytes per client byte, "
                "mixed %.2f.\n", w.mem_per_byte, m.mem_per_byte);
    std::printf("Observation #1-2 check: ~75-85%% of traffic belongs to "
                "paths that need\nonly KBs-MBs of capacity (buffering, "
                "prediction, staging), while the\nonly capacity-hungry "
                "path (table cache) is a quarter of the traffic.\n");
    return 0;
}
