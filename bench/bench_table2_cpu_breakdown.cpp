// Table 2: CPU-utilization breakdown of table-cache management, with
// the data-structure footprint and the "best place to run" verdict.
// Paper: tree indexing 43.9%, table SSD access 24.7%, content access
// 6.3%, replacement 1.0% (of total CPU), leading to Observation #4:
// offload indexing and SSD queues, keep content scanning on the host.

#include <cstdio>

#include "harness.h"

using namespace fidr;

int
main()
{
    bench::print_header("Table-cache management CPU breakdown",
                        "Table 2 (Sec 4.3)");

    workload::WorkloadSpec write_only = workload::write_m_spec();
    write_only.name = "Write-only";
    const bench::RunResult r = bench::run_baseline(write_only);

    struct Row {
        const char *tag;
        double paper_pct;
        const char *structure;
        const char *capacity;
        const char *best_place;
    };
    const Row rows[] = {
        {core::cputag::kTreeIndex.c_str(), 43.9, "tree nodes",
         "below 3 GB", "Accelerator"},
        {core::cputag::kTableSsd.c_str(), 24.7, "IO control queues",
         "KB-MBs", "Accelerator"},
        {core::cputag::kScan.c_str(), 6.3, "table cache content",
         "10-100s GB", "Host"},
        {core::cputag::kLru.c_str(), 1.0, "LRU and free lists", "MBs",
         "Host or accel"},
    };

    // Shares of *table-caching* CPU normalized against total CPU, as
    // the paper presents them.
    std::printf("%-30s %8s %7s  %-20s %-11s %s\n", "component",
                "measured", "paper", "memory structure", "capacity",
                "best place");
    double table_mgmt = 0, small_structs = 0;
    for (const auto &row : r.cpu_rows) {
        if (row.tag == core::cputag::kTreeIndex ||
            row.tag == core::cputag::kTableSsd ||
            row.tag == core::cputag::kScan ||
            row.tag == core::cputag::kLru ||
            row.tag == core::cputag::kTableMisc)
            table_mgmt += row.value;
    }
    for (const Row &want : rows) {
        double measured = 0;
        for (const auto &row : r.cpu_rows) {
            if (row.tag == want.tag)
                measured = row.value / table_mgmt;
        }
        if (std::string(want.tag) == core::cputag::kTreeIndex ||
            std::string(want.tag) == core::cputag::kTableSsd)
            small_structs += measured;
        std::printf("%-30s %7.1f%% %6.1f%%  %-20s %-11s %s\n",
                    want.tag, 100 * measured, want.paper_pct,
                    want.structure, want.capacity, want.best_place);
    }
    std::printf("\nSmall-data-structure operations (tree + SSD stack): "
                "%.1f%% of table-cache\nCPU (paper: 68.8%%) — the work "
                "FIDR moves into the Cache HW-Engine, while\nthe "
                "content scan (needing 10-100s of GB) stays with host "
                "DRAM.\n", 100 * small_structs);
    return 0;
}
