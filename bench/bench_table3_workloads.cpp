// Table 3: the workload suite.  Validates that the synthetic
// generators hit the paper's per-workload targets for deduplication
// ratio, compression ratio, and table-cache hit rate when driven
// through the full system at the evaluation cache sizing (2.8% of the
// Hash-PBN table in DRAM).

#include <cstdio>

#include "harness.h"

using namespace fidr;

int
main()
{
    bench::print_header("Workload suite validation", "Table 3 (Sec 7.1)");

    struct Target {
        double dedup;
        double comp;
        double hit;
    };
    const Target targets[] = {
        {0.88, 0.50, 0.90},   // Write-H.
        {0.84, 0.50, 0.81},   // Write-M.
        {0.431, 0.50, 0.45},  // Write-L.
        {0.88, 0.50, 0.90},   // Read-Mixed (write side = Write-H).
    };

    std::printf("%-12s | %7s %7s | %7s %7s | %7s %7s | %s\n",
                "workload", "dedup", "paper", "comp", "paper", "hit",
                "paper", "pattern");
    int i = 0;
    for (const auto &spec : workload::table3_specs()) {
        const bench::RunResult r =
            bench::run_fidr(spec, bench::FidrMode::kHwCacheMulti);
        const double comp =
            r.reduction.unique_chunks > 0
                ? 1.0 - static_cast<double>(r.reduction.stored_bytes) /
                            (static_cast<double>(
                                 r.reduction.unique_chunks) *
                             kChunkSize)
                : 0.0;
        std::printf("%-12s | %6.1f%% %6.1f%% | %6.1f%% %6.1f%% | "
                    "%6.1f%% %6.1f%% | %s\n",
                    spec.name.c_str(), 100 * r.reduction.dedup_rate(),
                    100 * targets[i].dedup, 100 * comp,
                    100 * targets[i].comp, 100 * r.cache.hit_rate(),
                    100 * targets[i].hit,
                    spec.pattern ==
                            workload::AddressPattern::kSequentialRuns
                        ? "WebVM-like (sequential runs)"
                        : "Mail-like (random 4 KB)");
        ++i;
    }
    std::printf("\nCache sizing: %.1f%% of the Hash-PBN table in DRAM "
                "(Sec 7.1).\nHit rates are emergent: duplicates of "
                "recent content revisit cached buckets,\nfresh content "
                "lands on uniformly random (mostly uncached) ones.\n",
                100 * workload::kTable3CacheFraction);
    return 0;
}
