// Table 4: FPGA resource utilization of the FIDR custom NIC, for the
// write-only sizing (16 SHA-256 cores feeding 64 Gbps) and the mixed
// sizing (half the hash rate).  The data-reduction additions are small
// next to the basic NIC + TCP offload.

#include <cstdio>

#include "fidr/fpga/resources.h"

using namespace fidr::fpga;

namespace {

void
print_row(const char *label, const Resources &r, const Device &dev)
{
    const Utilization u = utilization(r, dev);
    std::printf("  %-26s %6.0fK (%4.1f%%) %6.0fK (%4.1f%%) %6.0f "
                "(%4.1f%%)\n",
                label, r.luts / 1000, u.luts_pct, r.flip_flops / 1000,
                u.flip_flops_pct, r.brams, u.brams_pct);
}

void
print_config(const char *title, unsigned sha_cores, const Device &dev)
{
    const Resources support = nic_reduction_support(sha_cores);
    const Resources base = nic_base();
    std::printf("%s (%u SHA-256 cores):\n", title, sha_cores);
    std::printf("  %-26s %15s %15s %14s\n", "", "LUTs", "Flip-flops",
                "BRAMs");
    print_row("Data reduction support", support, dev);
    print_row("Basic NIC + TCP offload", base, dev);
    print_row("Total", base + support, dev);
    std::printf("\n");
}

}  // namespace

int
main()
{
    std::printf("===================================================="
                "================\n");
    std::printf("FIDR custom NIC resource utilization\n"
                "  (reproduces Table 4, Sec 7.7.1)\n");
    std::printf("===================================================="
                "================\n");
    const Device dev = vcu1525();
    std::printf("Device: %s — %.0fK LUTs, %.0fK FFs, %.0f BRAMs\n\n",
                dev.name.c_str(), dev.luts / 1000,
                dev.flip_flops / 1000, dev.brams);

    print_config("Write-only workload", 16, dev);
    print_config("Mixed workload (50% read, 50% write)", 8, dev);

    std::printf("Paper totals: write-only 290K LUTs (24.5%%), 296K FFs "
                "(12.5%%), 1119 BRAMs\n(51.8%%); mixed 249K LUTs "
                "(21.1%%), 255K FFs (10.8%%), 1099 BRAMs (51.0%%).\n");
    std::printf("\nScaling: SHA core count vs hash throughput "
                "(64 Gbps NIC target):\n");
    for (unsigned cores : {4u, 8u, 16u, 32u}) {
        const Resources total = nic_base() + nic_reduction_support(cores);
        const Utilization u = utilization(total, dev);
        // Each pipelined SHA-256 core sustains ~4 Gbps.
        std::printf("  %2u cores: ~%3u Gbps hashing, %5.1f%% LUTs\n",
                    cores, cores * 4, u.luts_pct);
    }
    return 0;
}
