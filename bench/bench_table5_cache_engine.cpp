// Table 5: Cache HW-Engine resource utilization and estimated Write-M
// throughput for three configurations:
//  - "All": medium tree (410 MB cache, 8 on-chip levels + DRAM leaf)
//    with the table-SSD controller, limited to ~10 GB/s by the 2 GB/s
//    table-SSD budget;
//  - medium tree without the SSD ceiling: ~80 GB/s;
//  - large tree (99.6 GB cache, 13 on-chip levels, URAM nodes): ~64
//    GB/s.

#include <cstdio>

#include "fidr/common/rng.h"
#include "fidr/fpga/resources.h"
#include "fidr/host/calibration.h"
#include "fidr/hwtree/tree_pipeline.h"

using namespace fidr;

namespace {

/** Write-M tree throughput at a given pipeline depth (4 lanes). */
double
tree_gbps(unsigned levels)
{
    hwtree::HwTree tree;
    hwtree::PipelineConfig config;
    config.update_lanes = 4;
    config.levels = levels;
    hwtree::TreePipeline pipe(tree, config);
    Rng rng(29);

    std::vector<std::uint64_t> resident;
    while (resident.size() < 50'000) {
        const std::uint64_t key = rng.next_u64() >> 16;
        if (tree.insert(key, 1).value())
            resident.push_back(key);
    }
    constexpr int kChunks = 30'000;
    for (int i = 0; i < kChunks; ++i) {
        if (rng.next_bool(0.19)) {  // Write-M miss profile.
            const std::uint64_t key = rng.next_u64() >> 16;
            (void)pipe.search(key);
            if (!pipe.insert(key, i).is_ok())
                std::abort();
            const std::size_t victim = rng.next_below(resident.size());
            pipe.erase(resident[victim]);
            resident[victim] = key;
        } else {
            (void)pipe.search(resident[rng.next_below(resident.size())]);
        }
    }
    return to_gb_per_s(kChunks * 4096.0 / pipe.busy_seconds());
}

/** Throughput ceiling from the table SSD budget at Write-M misses. */
double
table_ssd_ceiling_gbps(double ssd_gbps, double miss_rate)
{
    // Each miss fetches one 4 KB bucket per 4 KB client chunk.
    return ssd_gbps / miss_rate;
}

}  // namespace

int
main()
{
    std::printf("===================================================="
                "================\n");
    std::printf("FIDR Cache HW-Engine resources and throughput\n"
                "  (reproduces Table 5, Sec 7.7.2)\n");
    std::printf("===================================================="
                "================\n");
    const fpga::Device dev = fpga::vcu1525();

    struct Config {
        const char *name;
        const char *cache_size;
        unsigned onchip_levels;
        bool ssd_ctrl;
        bool uram;
        double ssd_budget_gbps;  ///< 0 => unconstrained.
        double paper_gbps;
    };
    const Config configs[] = {
        {"All (w/ table SSD access)", "410 MB", 8, true, false, 2.0,
         10.0},
        {"Medium tree, no SSD limit", "410 MB", 8, false, false, 0,
         80.0},
        {"Large tree, no SSD limit", "99,645 MB", 13, false, true, 0,
         64.0},
    };

    std::printf("%-28s %-10s %-7s %10s %8s | %9s %7s\n", "config",
                "cache", "levels", "tput", "paper", "LUTs", "URAMs");
    for (const Config &c : configs) {
        fpga::CacheEngineConfig ec;
        ec.onchip_levels = c.onchip_levels;
        ec.table_ssd_controller = c.ssd_ctrl;
        ec.use_uram = c.uram;
        const fpga::Resources r = fpga::cache_engine(ec);
        const fpga::Utilization u = fpga::utilization(r, dev);

        double gbps = tree_gbps(c.onchip_levels + 1);
        if (c.ssd_budget_gbps > 0) {
            gbps = std::min(gbps, table_ssd_ceiling_gbps(
                                      c.ssd_budget_gbps, 0.19));
        }
        std::printf("%-28s %-10s %4u+1 %7.1f GBs %4.0f GBs | %8.1f%% "
                    "%6.1f%%\n",
                    c.name, c.cache_size, c.onchip_levels, gbps,
                    c.paper_gbps, u.luts_pct, u.urams_pct);
    }

    std::printf("\nResource detail (paper values in parentheses):\n");
    const fpga::Resources all =
        fpga::cache_engine({8, true, true, false});
    const fpga::Resources medium =
        fpga::cache_engine({8, true, false, false});
    const fpga::Resources large =
        fpga::cache_engine({13, true, false, true});
    std::printf("  %-26s %9.0fK (320K) %8.0fK (160K) %6.0f (218)\n",
                "All: LUT/FF/BRAM", all.luts / 1000,
                all.flip_flops / 1000, all.brams);
    std::printf("  %-26s %9.0fK (316K) %8.0fK (154K) %6.0f (202)\n",
                "Medium: LUT/FF/BRAM", medium.luts / 1000,
                medium.flip_flops / 1000, medium.brams);
    std::printf("  %-26s %9.0fK (348K) %8.0fK (137K) %6.0f (390) "
                "URAM %3.0f (756)\n",
                "Large: LUT/FF/BRAM", large.luts / 1000,
                large.flip_flops / 1000, large.brams, large.urams);

    std::printf("\nGeometry check (Sec 6.3): 16-key DRAM leaves let "
                "%u on-chip levels index\na 410 MB cache and %u levels "
                "index ~100 GB — exactly the paper's 9- and\n14-level "
                "trees.\n",
                hwtree::HwTree::levels_for_entries(410ull * 1000 * 1000 /
                                                   4096) - 1,
                hwtree::HwTree::levels_for_entries(99'645ull * 1000 *
                                                   1000 / 4096) - 1);
    return 0;
}
