// Wall-clock throughput of the parallel data plane: drives the
// Table 3 workloads through the full FIDR write path with 1/2/4/N
// hash+compression lanes and measures real elapsed time (not the
// calibrated hardware model the figure benches use).  Also isolates
// the NIC hash stage, whose lane scaling is the purest signal of the
// multi-core SHA fan-out (paper Table 4 instantiates multiple SHA
// cores per NIC).
//
// Emits BENCH_throughput.json (in the working directory, via the
// harness's uniform JsonReport schema) so the numbers seed the repo's
// performance trajectory.  Digests, stats and space accounting are
// lane-count-invariant; the bench asserts the reduction stats match
// across lane counts as a cheap determinism guard on every run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "fidr/common/thread_pool.h"

using namespace fidr;

namespace {

double
now_s()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<std::size_t>
lane_counts()
{
    std::vector<std::size_t> lanes = {1, 2, 4,
                                      ThreadPool::hardware_lanes()};
    std::sort(lanes.begin(), lanes.end());
    lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());
    return lanes;
}

struct LaneRun {
    std::size_t lanes = 0;
    double seconds = 0;
    double chunks_per_s = 0;
    double gb_per_s = 0;
};

/** Full write path: buffered requests -> hash -> dedup -> compress. */
LaneRun
run_write_path(const workload::WorkloadSpec &spec, std::size_t lanes,
               const std::vector<workload::IoRequest> &requests,
               core::ReductionStats *stats_out)
{
    core::FidrConfig config;
    config.platform = bench::eval_platform();
    config.nic.hash_lanes = lanes;
    config.compress_lanes = lanes;
    core::FidrSystem system(config);
    (void)spec;

    const double t0 = now_s();
    for (const workload::IoRequest &req : requests) {
        Buffer data = req.data;
        const Status written = system.write(req.lba, std::move(data));
        if (!written.is_ok()) {
            std::fprintf(stderr, "write failed: %s\n",
                         written.to_string().c_str());
            std::abort();
        }
    }
    const Status flushed = system.flush();
    if (!flushed.is_ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     flushed.to_string().c_str());
        std::abort();
    }
    const double elapsed = now_s() - t0;

    if (stats_out)
        *stats_out = system.reduction();
    LaneRun run;
    run.lanes = lanes;
    run.seconds = elapsed;
    run.chunks_per_s = static_cast<double>(requests.size()) / elapsed;
    run.gb_per_s = static_cast<double>(requests.size()) * kChunkSize /
                   elapsed / 1e9;
    return run;
}

/** NIC hash stage only: one big buffered batch, hash_buffered(). */
LaneRun
run_nic_hash(std::size_t lanes,
             const std::vector<workload::IoRequest> &requests)
{
    nic::FidrNicConfig config;
    config.buffer_capacity =
        static_cast<std::uint64_t>(requests.size() + 1) * kChunkSize;
    config.hash_lanes = lanes;
    nic::FidrNic nic(config);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const Status buffered =
            nic.buffer_write(requests[i].lba, requests[i].data);
        FIDR_CHECK(buffered.is_ok());
    }

    const double t0 = now_s();
    const std::vector<Digest> digests = nic.hash_buffered();
    const double elapsed = now_s() - t0;
    FIDR_CHECK(digests.size() == requests.size());

    LaneRun run;
    run.lanes = lanes;
    run.seconds = elapsed;
    run.chunks_per_s = static_cast<double>(requests.size()) / elapsed;
    run.gb_per_s = static_cast<double>(requests.size()) * kChunkSize /
                   elapsed / 1e9;
    return run;
}

void
print_runs(const char *title, const std::vector<LaneRun> &runs)
{
    std::printf("%s\n", title);
    std::printf("  %5s | %9s | %12s | %8s | %s\n", "lanes", "seconds",
                "chunks/s", "GB/s", "speedup vs 1 lane");
    for (const LaneRun &run : runs) {
        std::printf("  %5zu | %9.3f | %12.0f | %8.3f | %.2fx\n",
                    run.lanes, run.seconds, run.chunks_per_s,
                    run.gb_per_s, runs[0].seconds / run.seconds);
    }
}

void
json_runs(obs::JsonWriter &json, const std::vector<LaneRun> &runs)
{
    json.key("runs").begin_array();
    for (const LaneRun &run : runs) {
        json.begin_object();
        json.kv("lanes", static_cast<std::uint64_t>(run.lanes));
        json.kv("seconds", run.seconds);
        json.kv("chunks_per_s", run.chunks_per_s);
        json.kv("gb_per_s", run.gb_per_s);
        json.kv("speedup_vs_1_lane", runs[0].seconds / run.seconds);
        json.end_object();
    }
    json.end_array();
}

}  // namespace

int
main(int argc, char **argv)
{
    int requests = 24'000;
    if (argc > 1)
        requests = std::max(1, std::atoi(argv[1]));

    bench::print_header("Parallel data plane wall-clock throughput",
                        "Table 3 workloads; Sec 6.2 lane counts");
    std::printf("hardware lanes: %zu, requests per run: %d\n\n",
                ThreadPool::hardware_lanes(), requests);

    const std::vector<std::size_t> lanes = lane_counts();

    bench::JsonReport report("throughput");
    report.config("hardware_lanes", ThreadPool::hardware_lanes())
        .config("requests_per_run", requests)
        .config("chunk_bytes",
                static_cast<std::uint64_t>(kChunkSize));

    // NIC hash stage in isolation, on the mail (Write-H) content mix.
    {
        workload::WorkloadSpec spec = workload::write_h_spec();
        workload::WorkloadGenerator gen(spec);
        const auto reqs =
            gen.batch(static_cast<std::size_t>(requests));
        std::vector<LaneRun> runs;
        for (const std::size_t n : lanes)
            runs.push_back(run_nic_hash(n, reqs));
        print_runs("NIC SHA-256 hash stage (Write-H payload)", runs);
        std::printf("\n");
        obs::JsonWriter &json = report.begin_entry("nic_hash_stage");
        json.kv("workload", "Write-H");
        json_runs(json, runs);
        report.end_entry();
    }

    // Full write path per Table 3 workload.
    for (const workload::WorkloadSpec &spec0 :
         workload::table3_specs()) {
        if (spec0.read_fraction > 0)
            continue;  // Write path bench: Read-Mixed adds no writes.
        workload::WorkloadSpec spec = spec0;
        workload::WorkloadGenerator gen(spec);
        const auto reqs =
            gen.batch(static_cast<std::size_t>(requests));

        std::vector<LaneRun> runs;
        core::ReductionStats first_stats;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            core::ReductionStats stats;
            runs.push_back(
                run_write_path(spec, lanes[i], reqs, &stats));
            if (i == 0) {
                first_stats = stats;
            } else {
                // Cheap inline determinism guard: reduction results
                // must not depend on the lane count.
                FIDR_CHECK(stats.unique_chunks ==
                           first_stats.unique_chunks);
                FIDR_CHECK(stats.duplicates == first_stats.duplicates);
                FIDR_CHECK(stats.stored_bytes ==
                           first_stats.stored_bytes);
            }
        }
        print_runs(("Full write path: " + spec.name).c_str(), runs);
        std::printf("\n");

        obs::JsonWriter &json = report.begin_entry("write_path");
        json.kv("workload", spec.name);
        json_runs(json, runs);
        report.end_entry();
    }
    FIDR_CHECK(report.write_file("BENCH_throughput.json").is_ok());
    return 0;
}
