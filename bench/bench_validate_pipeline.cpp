// Cross-validation: the discrete-event write-pipeline simulator vs
// the analytic bottleneck projection (two independent rebuilds of the
// paper's Sec 7.1 "simulation model").  Both should name the same
// bottleneck and agree on throughput within a few percent for each
// Table 3 write workload; the DES additionally reports per-stage
// utilization and exposes sizing ablations (engine counts, lanes).

#include <cstdio>

#include "fidr/core/pipeline_sim.h"
#include "harness.h"

using namespace fidr;

namespace {

core::PipelineSimConfig
config_for(double miss, double dedup, unsigned lanes = 4)
{
    core::PipelineSimConfig config;
    config.miss_rate = miss;
    config.dedup_ratio = dedup;
    config.tree_update_lanes = lanes;
    return config;
}

}  // namespace

int
main()
{
    bench::print_header(
        "Cross-validation: DES pipeline vs analytic projection",
        "Sec 7.1's simulation methodology, rebuilt two ways");

    struct Row {
        const char *name;
        workload::WorkloadSpec spec;
        double miss;
    };
    const Row rows[] = {
        {"Write-H", workload::write_h_spec(), 0.10},
        {"Write-M", workload::write_m_spec(), 0.19},
        {"Write-L", workload::write_l_spec(), 0.55},
        {"Read-Mixed", workload::read_mixed_spec(), 0.10},
    };

    std::printf("%-10s | %12s %-16s | %12s %-16s\n", "workload",
                "analytic", "bottleneck", "DES", "bottleneck");
    for (const Row &row : rows) {
        const bench::RunResult analytic =
            bench::run_fidr(row.spec, bench::FidrMode::kHwCacheMulti);
        core::PipelineSimConfig sim_config =
            config_for(row.miss, row.spec.dedup_ratio);
        sim_config.read_fraction = row.spec.read_fraction;
        const core::PipelineSimResult des =
            core::simulate_write_pipeline(sim_config, 200'000);
        std::printf("%-10s | %8.1f GBs %-16s | %8.1f GBs %-16s\n",
                    row.name,
                    to_gb_per_s(analytic.projection.throughput()),
                    analytic.projection.bottleneck(),
                    to_gb_per_s(
                        std::min(des.throughput,
                                 calib::kTargetThroughput)),
                    des.bottleneck());
    }

    std::printf("\nPer-stage utilization at Write-M (DES):\n");
    const core::PipelineSimResult wm =
        core::simulate_write_pipeline(config_for(0.19, 0.84), 200'000);
    std::printf("  %-22s %5.1f%%\n", "NIC SHA array",
                100 * wm.sha_utilization);
    std::printf("  %-22s %5.1f%%\n", "host CPU",
                100 * wm.host_utilization);
    std::printf("  %-22s %5.1f%%\n", "Cache HW-Engine",
                100 * wm.tree_utilization);
    std::printf("  %-22s %5.1f%%\n", "Compression Engines",
                100 * wm.comp_utilization);
    std::printf("  %-22s %5.1f%%\n", "data SSDs",
                100 * wm.ssd_utilization);
    std::printf("  %-22s %5.1f%%\n", "table SSDs",
                100 * wm.table_ssd_utilization);

    std::printf("\nSizing ablation (Write-M throughput, GB/s):\n");
    std::printf("  %-28s", "update lanes 1/2/4:");
    for (unsigned lanes : {1u, 2u, 4u}) {
        const auto r = core::simulate_write_pipeline(
            config_for(0.19, 0.84, lanes), 200'000);
        std::printf(" %6.1f", to_gb_per_s(r.throughput));
    }
    std::printf("\n  %-28s", "compression engines 1/2/4:");
    for (unsigned engines : {1u, 2u, 4u}) {
        core::PipelineSimConfig config = config_for(0.19, 0.84);
        config.comp_engines = engines;
        const auto r = core::simulate_write_pipeline(config, 200'000);
        std::printf(" %6.1f", to_gb_per_s(r.throughput));
    }
    std::printf("\n  %-28s", "host cores 11/22/44:");
    for (unsigned cores : {11u, 22u, 44u}) {
        core::PipelineSimConfig config = config_for(0.19, 0.84);
        config.host_cores = cores;
        const auto r = core::simulate_write_pipeline(config, 200'000);
        std::printf(" %6.1f", to_gb_per_s(r.throughput));
    }
    std::printf("\n\nReading: both models agree on the Cache HW-Engine "
                "as the Write-M/L\nbottleneck and on throughput within "
                "a few percent; the DES adds the\nqueueing view (the "
                "bottleneck stage runs ~100%% busy, everything else\n"
                "waits on it).\n");
    return 0;
}
