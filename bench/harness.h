/**
 * @file
 * Shared driver for the experiment-reproduction benches: builds the
 * evaluation platform (Sec 7.1), streams a workload through a system,
 * and collects the ledgers/projections every figure is printed from.
 */
#pragma once

#include <cstdio>
#include <ctime>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fidr/common/simd.h"
#include "fidr/core/baseline_system.h"
#include "fidr/core/fidr_system.h"
#include "fidr/core/perf_model.h"
#include "fidr/obs/json.h"
#include "fidr/workload/generator.h"
#include "fidr/workload/table3.h"

/** Stamped by bench/CMakeLists.txt at configure time. */
#ifndef FIDR_GIT_SHA
#define FIDR_GIT_SHA "unknown"
#endif

namespace fidr::bench {

/**
 * Uniform bench JSON emission: every bench that persists numbers
 * writes the same document shape,
 *
 *   {"bench": ..., "config": {...}, "series": [...],
 *    "meta": {"git_sha": ..., "date": ...}}
 *
 * The writer streams, so add config scalars before the first series
 * entry.  Each series entry is an object opened by begin_entry()
 * (which presets "name"), filled through the returned JsonWriter, and
 * closed by end_entry().
 */
class JsonReport {
  public:
    explicit JsonReport(std::string_view bench)
    {
        json_.begin_object();
        json_.kv("bench", bench);
        json_.key("config").begin_object();
    }

    /** Flat config scalar; only valid before the first entry. */
    template <typename T>
    JsonReport &
    config(std::string_view key, T &&value)
    {
        FIDR_CHECK(!in_series_);
        json_.kv(key, std::forward<T>(value));
        return *this;
    }

    obs::JsonWriter &
    begin_entry(std::string_view name)
    {
        if (!in_series_) {
            json_.end_object();  // config
            json_.key("series").begin_array();
            in_series_ = true;
        }
        json_.begin_object();
        json_.kv("name", name);
        return json_;
    }

    void end_entry() { json_.end_object(); }

    /** Closes the document (stamping meta) and writes it to `path`. */
    Status
    write_file(const std::string &path)
    {
        if (!in_series_) {
            json_.end_object();
            json_.key("series").begin_array();
            in_series_ = true;
        }
        json_.end_array();
        json_.key("meta").begin_object();
        json_.kv("git_sha", FIDR_GIT_SHA);
        json_.kv("date", today());
        // Numbers from hosts with different vector ISAs are not
        // directly comparable, so stamp what this run dispatched to.
        json_.key("cpu").begin_object();
        json_.kv("sse4", simd::supported(simd::Target::kSse4));
        json_.kv("avx2", simd::supported(simd::Target::kAvx2));
        json_.kv("avx512", simd::supported(simd::Target::kAvx512));
        json_.kv("dispatch", simd::name(simd::active()));
        json_.end_object();
        json_.end_object();
        json_.end_object();
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return Status::unavailable("cannot write " + path);
        std::fputs(json_.str().c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
        return Status::ok();
    }

  private:
    static std::string
    today()
    {
        const std::time_t now = std::time(nullptr);
        std::tm tm_utc{};
        gmtime_r(&now, &tm_utc);
        char buffer[32];
        std::strftime(buffer, sizeof(buffer), "%Y-%m-%d", &tm_utc);
        return buffer;
    }

    obs::JsonWriter json_;
    bool in_series_ = false;
};

/** Requests per experiment run (scaled-down from the paper's 176M). */
inline constexpr int kRunRequests = 60'000;

/** The evaluation platform of Sec 7.1 at bench scale. */
inline core::PlatformConfig
eval_platform()
{
    core::PlatformConfig config;
    config.expected_unique_chunks = workload::kTable3UniqueChunks;
    config.cache_fraction = workload::kTable3CacheFraction;
    config.data_ssd.capacity_bytes = 64ull * kGiB;
    config.table_ssd.capacity_bytes = 4ull * kGiB;
    // The Fig 11/12/14 platform provisions table SSDs so metadata IO
    // is not the binding constraint; the Table 5 bench separately
    // evaluates the paper's 2 GB/s budget.
    config.table_ssd.read_bandwidth = gb_per_s(16);
    config.table_ssd.write_bandwidth = gb_per_s(16);
    return config;
}

/** Everything a bench prints about one (system, workload) run. */
struct RunResult {
    std::string workload;
    core::Projection projection;
    core::ReductionStats reduction;
    cache::CacheStats cache;
    std::vector<sim::LedgerRow> mem_rows;
    std::vector<sim::LedgerRow> cpu_rows;
    double mem_total = 0;        ///< Host DRAM bytes moved.
    double cpu_core_seconds = 0;
    double client_bytes = 0;
    double mem_per_byte = 0;     ///< DRAM traffic per client byte.
    double tree_crash_rate = 0;  ///< FIDR HW-tree misspeculation rate.
};

template <typename System>
RunResult
drive(System &system, const workload::WorkloadSpec &spec,
      int requests = kRunRequests)
{
    workload::WorkloadGenerator gen(spec);
    for (int i = 0; i < requests; ++i) {
        const workload::IoRequest req = gen.next();
        Status status;
        if (req.dir == IoDir::kWrite) {
            status = system.write(req.lba, req.data);
        } else {
            Result<Buffer> out = system.read(req.lba);
            status = out.status();
        }
        if (!status.is_ok()) {
            std::fprintf(stderr, "drive failed: %s\n",
                         status.to_string().c_str());
            std::abort();
        }
    }
    const Status flushed = system.flush();
    if (!flushed.is_ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     flushed.to_string().c_str());
        std::abort();
    }

    RunResult out;
    out.workload = spec.name;
    out.projection = core::project(system);
    out.reduction = system.reduction();
    out.cache = system.cache_stats();
    const auto &fabric = system.platform().fabric();
    out.mem_rows = fabric.host_memory().report();
    out.cpu_rows = system.platform().cpu().ledger().report();
    out.mem_total = fabric.host_memory().total();
    out.cpu_core_seconds = system.platform().cpu().ledger().total();
    out.client_bytes = out.projection.client_bytes;
    out.mem_per_byte = out.mem_total / out.client_bytes;
    if constexpr (std::is_same_v<System, core::FidrSystem>) {
        if (system.hw_index()) {
            out.tree_crash_rate =
                system.hw_index()->pipeline().stats().crash_rate();
        }
    }
    return out;
}

/** Runs the baseline on a workload spec over the eval platform. */
inline RunResult
run_baseline(const workload::WorkloadSpec &spec,
             int requests = kRunRequests)
{
    core::BaselineConfig config;
    config.platform = eval_platform();
    core::BaselineSystem system(config);
    return drive(system, spec, requests);
}

/** FIDR configurations of Fig 14's ablation. */
enum class FidrMode {
    kNicP2pOnly,      ///< Software cache index, NIC offload + P2P.
    kHwCacheSingle,   ///< + Cache HW-Engine, single-update tree.
    kHwCacheMulti,    ///< + speculative concurrent updates (4 lanes).
};

inline const char *
fidr_mode_name(FidrMode mode)
{
    switch (mode) {
      case FidrMode::kNicP2pOnly: return "FIDR (NIC+P2P)";
      case FidrMode::kHwCacheSingle: return "FIDR (+HW cache, 1 lane)";
      case FidrMode::kHwCacheMulti: return "FIDR (full, 4 lanes)";
    }
    return "?";
}

inline RunResult
run_fidr(const workload::WorkloadSpec &spec,
         FidrMode mode = FidrMode::kHwCacheMulti,
         int requests = kRunRequests)
{
    core::FidrConfig config;
    config.platform = eval_platform();
    config.hw_cache_engine = mode != FidrMode::kNicP2pOnly;
    config.tree_update_lanes =
        mode == FidrMode::kHwCacheMulti ? 4 : 1;
    core::FidrSystem system(config);
    return drive(system, spec, requests);
}

/** Header line for a bench report. */
inline void
print_header(const char *title, const char *paper_ref)
{
    std::printf("==============================================="
                "=====================\n");
    std::printf("%s\n  (reproduces %s)\n", title, paper_ref);
    std::printf("==============================================="
                "=====================\n");
}

}  // namespace fidr::bench
