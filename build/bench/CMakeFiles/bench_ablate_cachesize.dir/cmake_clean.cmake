file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_cachesize.dir/bench_ablate_cachesize.cpp.o"
  "CMakeFiles/bench_ablate_cachesize.dir/bench_ablate_cachesize.cpp.o.d"
  "bench_ablate_cachesize"
  "bench_ablate_cachesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_cachesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
