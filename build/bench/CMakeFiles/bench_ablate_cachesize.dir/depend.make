# Empty dependencies file for bench_ablate_cachesize.
# This may be replaced when dependencies are built.
