file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_chunking.dir/bench_ablate_chunking.cpp.o"
  "CMakeFiles/bench_ablate_chunking.dir/bench_ablate_chunking.cpp.o.d"
  "bench_ablate_chunking"
  "bench_ablate_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
