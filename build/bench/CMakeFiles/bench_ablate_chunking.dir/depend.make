# Empty dependencies file for bench_ablate_chunking.
# This may be replaced when dependencies are built.
