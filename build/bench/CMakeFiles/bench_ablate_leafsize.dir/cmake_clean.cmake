file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_leafsize.dir/bench_ablate_leafsize.cpp.o"
  "CMakeFiles/bench_ablate_leafsize.dir/bench_ablate_leafsize.cpp.o.d"
  "bench_ablate_leafsize"
  "bench_ablate_leafsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_leafsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
