# Empty dependencies file for bench_ablate_leafsize.
# This may be replaced when dependencies are built.
