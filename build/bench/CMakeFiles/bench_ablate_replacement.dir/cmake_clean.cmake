file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_replacement.dir/bench_ablate_replacement.cpp.o"
  "CMakeFiles/bench_ablate_replacement.dir/bench_ablate_replacement.cpp.o.d"
  "bench_ablate_replacement"
  "bench_ablate_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
