# Empty dependencies file for bench_ablate_replacement.
# This may be replaced when dependencies are built.
