file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multitenant.dir/bench_ext_multitenant.cpp.o"
  "CMakeFiles/bench_ext_multitenant.dir/bench_ext_multitenant.cpp.o.d"
  "bench_ext_multitenant"
  "bench_ext_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
