# Empty compiler generated dependencies file for bench_ext_multitenant.
# This may be replaced when dependencies are built.
