# Empty compiler generated dependencies file for bench_ext_read_offload.
# This may be replaced when dependencies are built.
