file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_chunking.dir/bench_fig03_chunking.cpp.o"
  "CMakeFiles/bench_fig03_chunking.dir/bench_fig03_chunking.cpp.o.d"
  "bench_fig03_chunking"
  "bench_fig03_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
