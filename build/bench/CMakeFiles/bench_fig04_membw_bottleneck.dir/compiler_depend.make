# Empty compiler generated dependencies file for bench_fig04_membw_bottleneck.
# This may be replaced when dependencies are built.
