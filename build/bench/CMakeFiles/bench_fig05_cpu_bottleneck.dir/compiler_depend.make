# Empty compiler generated dependencies file for bench_fig05_cpu_bottleneck.
# This may be replaced when dependencies are built.
