file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_membw_reduction.dir/bench_fig11_membw_reduction.cpp.o"
  "CMakeFiles/bench_fig11_membw_reduction.dir/bench_fig11_membw_reduction.cpp.o.d"
  "bench_fig11_membw_reduction"
  "bench_fig11_membw_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_membw_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
