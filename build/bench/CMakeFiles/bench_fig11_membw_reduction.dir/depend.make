# Empty dependencies file for bench_fig11_membw_reduction.
# This may be replaced when dependencies are built.
