# Empty dependencies file for bench_fig12_cpu_reduction.
# This may be replaced when dependencies are built.
