file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_overall_throughput.dir/bench_fig14_overall_throughput.cpp.o"
  "CMakeFiles/bench_fig14_overall_throughput.dir/bench_fig14_overall_throughput.cpp.o.d"
  "bench_fig14_overall_throughput"
  "bench_fig14_overall_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_overall_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
