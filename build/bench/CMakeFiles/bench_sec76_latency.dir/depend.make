# Empty dependencies file for bench_sec76_latency.
# This may be replaced when dependencies are built.
