# Empty compiler generated dependencies file for bench_table4_nic_resources.
# This may be replaced when dependencies are built.
