file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_cache_engine.dir/bench_table5_cache_engine.cpp.o"
  "CMakeFiles/bench_table5_cache_engine.dir/bench_table5_cache_engine.cpp.o.d"
  "bench_table5_cache_engine"
  "bench_table5_cache_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_cache_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
