# Empty compiler generated dependencies file for bench_table5_cache_engine.
# This may be replaced when dependencies are built.
