file(REMOVE_RECURSE
  "CMakeFiles/bench_validate_pipeline.dir/bench_validate_pipeline.cpp.o"
  "CMakeFiles/bench_validate_pipeline.dir/bench_validate_pipeline.cpp.o.d"
  "bench_validate_pipeline"
  "bench_validate_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validate_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
