# Empty compiler generated dependencies file for bench_validate_pipeline.
# This may be replaced when dependencies are built.
