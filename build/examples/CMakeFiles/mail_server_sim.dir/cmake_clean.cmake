file(REMOVE_RECURSE
  "CMakeFiles/mail_server_sim.dir/mail_server_sim.cpp.o"
  "CMakeFiles/mail_server_sim.dir/mail_server_sim.cpp.o.d"
  "mail_server_sim"
  "mail_server_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_server_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
