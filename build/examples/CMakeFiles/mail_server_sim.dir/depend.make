# Empty dependencies file for mail_server_sim.
# This may be replaced when dependencies are built.
