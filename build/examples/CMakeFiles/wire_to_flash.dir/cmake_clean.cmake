file(REMOVE_RECURSE
  "CMakeFiles/wire_to_flash.dir/wire_to_flash.cpp.o"
  "CMakeFiles/wire_to_flash.dir/wire_to_flash.cpp.o.d"
  "wire_to_flash"
  "wire_to_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_to_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
