# Empty dependencies file for wire_to_flash.
# This may be replaced when dependencies are built.
