# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("fidr/common")
subdirs("fidr/hash")
subdirs("fidr/compress")
subdirs("fidr/chunking")
subdirs("fidr/sim")
subdirs("fidr/ssd")
subdirs("fidr/pcie")
subdirs("fidr/host")
subdirs("fidr/btree")
subdirs("fidr/hwtree")
subdirs("fidr/tables")
subdirs("fidr/cache")
subdirs("fidr/nic")
subdirs("fidr/accel")
subdirs("fidr/workload")
subdirs("fidr/core")
subdirs("fidr/cost")
subdirs("fidr/fpga")
