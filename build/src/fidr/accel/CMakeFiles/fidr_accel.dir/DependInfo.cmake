
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/accel/engines.cc" "src/fidr/accel/CMakeFiles/fidr_accel.dir/engines.cc.o" "gcc" "src/fidr/accel/CMakeFiles/fidr_accel.dir/engines.cc.o.d"
  "/root/repo/src/fidr/accel/predictor.cc" "src/fidr/accel/CMakeFiles/fidr_accel.dir/predictor.cc.o" "gcc" "src/fidr/accel/CMakeFiles/fidr_accel.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hash/CMakeFiles/fidr_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/compress/CMakeFiles/fidr_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
