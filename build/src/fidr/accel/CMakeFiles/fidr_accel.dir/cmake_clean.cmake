file(REMOVE_RECURSE
  "CMakeFiles/fidr_accel.dir/engines.cc.o"
  "CMakeFiles/fidr_accel.dir/engines.cc.o.d"
  "CMakeFiles/fidr_accel.dir/predictor.cc.o"
  "CMakeFiles/fidr_accel.dir/predictor.cc.o.d"
  "libfidr_accel.a"
  "libfidr_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
