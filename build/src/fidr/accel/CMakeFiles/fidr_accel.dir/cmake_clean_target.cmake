file(REMOVE_RECURSE
  "libfidr_accel.a"
)
