# Empty dependencies file for fidr_accel.
# This may be replaced when dependencies are built.
