file(REMOVE_RECURSE
  "CMakeFiles/fidr_btree.dir/bplus_tree.cc.o"
  "CMakeFiles/fidr_btree.dir/bplus_tree.cc.o.d"
  "libfidr_btree.a"
  "libfidr_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
