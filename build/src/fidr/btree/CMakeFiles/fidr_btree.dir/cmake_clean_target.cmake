file(REMOVE_RECURSE
  "libfidr_btree.a"
)
