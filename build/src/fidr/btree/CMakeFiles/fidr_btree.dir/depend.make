# Empty dependencies file for fidr_btree.
# This may be replaced when dependencies are built.
