
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/cache/indexes.cc" "src/fidr/cache/CMakeFiles/fidr_cache.dir/indexes.cc.o" "gcc" "src/fidr/cache/CMakeFiles/fidr_cache.dir/indexes.cc.o.d"
  "/root/repo/src/fidr/cache/table_cache.cc" "src/fidr/cache/CMakeFiles/fidr_cache.dir/table_cache.cc.o" "gcc" "src/fidr/cache/CMakeFiles/fidr_cache.dir/table_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/tables/CMakeFiles/fidr_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/btree/CMakeFiles/fidr_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hwtree/CMakeFiles/fidr_hwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hash/CMakeFiles/fidr_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/ssd/CMakeFiles/fidr_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/host/CMakeFiles/fidr_host.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/sim/CMakeFiles/fidr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
