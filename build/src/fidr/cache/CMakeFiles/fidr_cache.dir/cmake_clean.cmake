file(REMOVE_RECURSE
  "CMakeFiles/fidr_cache.dir/indexes.cc.o"
  "CMakeFiles/fidr_cache.dir/indexes.cc.o.d"
  "CMakeFiles/fidr_cache.dir/table_cache.cc.o"
  "CMakeFiles/fidr_cache.dir/table_cache.cc.o.d"
  "libfidr_cache.a"
  "libfidr_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
