file(REMOVE_RECURSE
  "libfidr_cache.a"
)
