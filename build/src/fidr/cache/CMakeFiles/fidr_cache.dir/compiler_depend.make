# Empty compiler generated dependencies file for fidr_cache.
# This may be replaced when dependencies are built.
