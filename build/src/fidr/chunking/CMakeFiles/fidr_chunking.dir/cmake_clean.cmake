file(REMOVE_RECURSE
  "CMakeFiles/fidr_chunking.dir/cdc.cc.o"
  "CMakeFiles/fidr_chunking.dir/cdc.cc.o.d"
  "libfidr_chunking.a"
  "libfidr_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
