file(REMOVE_RECURSE
  "libfidr_chunking.a"
)
