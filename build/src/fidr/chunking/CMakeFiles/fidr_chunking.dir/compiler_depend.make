# Empty compiler generated dependencies file for fidr_chunking.
# This may be replaced when dependencies are built.
