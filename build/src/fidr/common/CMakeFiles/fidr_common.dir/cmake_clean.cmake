file(REMOVE_RECURSE
  "CMakeFiles/fidr_common.dir/bytes.cc.o"
  "CMakeFiles/fidr_common.dir/bytes.cc.o.d"
  "CMakeFiles/fidr_common.dir/rng.cc.o"
  "CMakeFiles/fidr_common.dir/rng.cc.o.d"
  "CMakeFiles/fidr_common.dir/status.cc.o"
  "CMakeFiles/fidr_common.dir/status.cc.o.d"
  "libfidr_common.a"
  "libfidr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
