file(REMOVE_RECURSE
  "libfidr_common.a"
)
