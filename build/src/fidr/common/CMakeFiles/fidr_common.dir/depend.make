# Empty dependencies file for fidr_common.
# This may be replaced when dependencies are built.
