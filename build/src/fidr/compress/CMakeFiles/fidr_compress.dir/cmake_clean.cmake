file(REMOVE_RECURSE
  "CMakeFiles/fidr_compress.dir/lz.cc.o"
  "CMakeFiles/fidr_compress.dir/lz.cc.o.d"
  "libfidr_compress.a"
  "libfidr_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
