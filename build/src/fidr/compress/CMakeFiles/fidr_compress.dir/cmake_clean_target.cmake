file(REMOVE_RECURSE
  "libfidr_compress.a"
)
