# Empty compiler generated dependencies file for fidr_compress.
# This may be replaced when dependencies are built.
