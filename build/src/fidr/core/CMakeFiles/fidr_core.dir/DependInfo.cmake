
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/core/baseline_system.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/baseline_system.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/baseline_system.cc.o.d"
  "/root/repo/src/fidr/core/dedup_index.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/dedup_index.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/dedup_index.cc.o.d"
  "/root/repo/src/fidr/core/fidr_system.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/fidr_system.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/fidr_system.cc.o.d"
  "/root/repo/src/fidr/core/perf_model.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/perf_model.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/perf_model.cc.o.d"
  "/root/repo/src/fidr/core/pipeline_sim.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/pipeline_sim.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/pipeline_sim.cc.o.d"
  "/root/repo/src/fidr/core/platform.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/platform.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/platform.cc.o.d"
  "/root/repo/src/fidr/core/protocol_server.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/protocol_server.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/protocol_server.cc.o.d"
  "/root/repo/src/fidr/core/space.cc" "src/fidr/core/CMakeFiles/fidr_core.dir/space.cc.o" "gcc" "src/fidr/core/CMakeFiles/fidr_core.dir/space.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hash/CMakeFiles/fidr_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/compress/CMakeFiles/fidr_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/sim/CMakeFiles/fidr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/ssd/CMakeFiles/fidr_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/pcie/CMakeFiles/fidr_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/host/CMakeFiles/fidr_host.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/btree/CMakeFiles/fidr_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hwtree/CMakeFiles/fidr_hwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/tables/CMakeFiles/fidr_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/cache/CMakeFiles/fidr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/nic/CMakeFiles/fidr_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/accel/CMakeFiles/fidr_accel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
