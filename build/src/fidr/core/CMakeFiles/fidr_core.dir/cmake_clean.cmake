file(REMOVE_RECURSE
  "CMakeFiles/fidr_core.dir/baseline_system.cc.o"
  "CMakeFiles/fidr_core.dir/baseline_system.cc.o.d"
  "CMakeFiles/fidr_core.dir/dedup_index.cc.o"
  "CMakeFiles/fidr_core.dir/dedup_index.cc.o.d"
  "CMakeFiles/fidr_core.dir/fidr_system.cc.o"
  "CMakeFiles/fidr_core.dir/fidr_system.cc.o.d"
  "CMakeFiles/fidr_core.dir/perf_model.cc.o"
  "CMakeFiles/fidr_core.dir/perf_model.cc.o.d"
  "CMakeFiles/fidr_core.dir/pipeline_sim.cc.o"
  "CMakeFiles/fidr_core.dir/pipeline_sim.cc.o.d"
  "CMakeFiles/fidr_core.dir/platform.cc.o"
  "CMakeFiles/fidr_core.dir/platform.cc.o.d"
  "CMakeFiles/fidr_core.dir/protocol_server.cc.o"
  "CMakeFiles/fidr_core.dir/protocol_server.cc.o.d"
  "CMakeFiles/fidr_core.dir/space.cc.o"
  "CMakeFiles/fidr_core.dir/space.cc.o.d"
  "libfidr_core.a"
  "libfidr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
