file(REMOVE_RECURSE
  "libfidr_core.a"
)
