# Empty compiler generated dependencies file for fidr_core.
# This may be replaced when dependencies are built.
