file(REMOVE_RECURSE
  "CMakeFiles/fidr_cost.dir/cost_model.cc.o"
  "CMakeFiles/fidr_cost.dir/cost_model.cc.o.d"
  "libfidr_cost.a"
  "libfidr_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
