file(REMOVE_RECURSE
  "libfidr_cost.a"
)
