# Empty compiler generated dependencies file for fidr_cost.
# This may be replaced when dependencies are built.
