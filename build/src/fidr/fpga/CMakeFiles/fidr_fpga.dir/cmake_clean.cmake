file(REMOVE_RECURSE
  "CMakeFiles/fidr_fpga.dir/resources.cc.o"
  "CMakeFiles/fidr_fpga.dir/resources.cc.o.d"
  "libfidr_fpga.a"
  "libfidr_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
