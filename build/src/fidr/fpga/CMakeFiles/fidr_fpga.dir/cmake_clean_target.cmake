file(REMOVE_RECURSE
  "libfidr_fpga.a"
)
