# Empty compiler generated dependencies file for fidr_fpga.
# This may be replaced when dependencies are built.
