file(REMOVE_RECURSE
  "CMakeFiles/fidr_hash.dir/digest.cc.o"
  "CMakeFiles/fidr_hash.dir/digest.cc.o.d"
  "CMakeFiles/fidr_hash.dir/sha256.cc.o"
  "CMakeFiles/fidr_hash.dir/sha256.cc.o.d"
  "libfidr_hash.a"
  "libfidr_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
