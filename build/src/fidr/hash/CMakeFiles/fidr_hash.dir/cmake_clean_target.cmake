file(REMOVE_RECURSE
  "libfidr_hash.a"
)
