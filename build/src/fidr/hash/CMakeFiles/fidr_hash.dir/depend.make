# Empty dependencies file for fidr_hash.
# This may be replaced when dependencies are built.
