file(REMOVE_RECURSE
  "CMakeFiles/fidr_host.dir/host.cc.o"
  "CMakeFiles/fidr_host.dir/host.cc.o.d"
  "libfidr_host.a"
  "libfidr_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
