file(REMOVE_RECURSE
  "libfidr_host.a"
)
