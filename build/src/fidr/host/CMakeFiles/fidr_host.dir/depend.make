# Empty dependencies file for fidr_host.
# This may be replaced when dependencies are built.
