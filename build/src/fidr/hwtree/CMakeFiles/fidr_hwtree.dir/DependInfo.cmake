
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/hwtree/hw_tree.cc" "src/fidr/hwtree/CMakeFiles/fidr_hwtree.dir/hw_tree.cc.o" "gcc" "src/fidr/hwtree/CMakeFiles/fidr_hwtree.dir/hw_tree.cc.o.d"
  "/root/repo/src/fidr/hwtree/tree_pipeline.cc" "src/fidr/hwtree/CMakeFiles/fidr_hwtree.dir/tree_pipeline.cc.o" "gcc" "src/fidr/hwtree/CMakeFiles/fidr_hwtree.dir/tree_pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/host/CMakeFiles/fidr_host.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/sim/CMakeFiles/fidr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
