file(REMOVE_RECURSE
  "CMakeFiles/fidr_hwtree.dir/hw_tree.cc.o"
  "CMakeFiles/fidr_hwtree.dir/hw_tree.cc.o.d"
  "CMakeFiles/fidr_hwtree.dir/tree_pipeline.cc.o"
  "CMakeFiles/fidr_hwtree.dir/tree_pipeline.cc.o.d"
  "libfidr_hwtree.a"
  "libfidr_hwtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_hwtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
