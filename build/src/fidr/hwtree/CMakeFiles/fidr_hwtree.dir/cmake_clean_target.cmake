file(REMOVE_RECURSE
  "libfidr_hwtree.a"
)
