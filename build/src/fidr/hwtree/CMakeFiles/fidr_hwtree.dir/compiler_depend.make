# Empty compiler generated dependencies file for fidr_hwtree.
# This may be replaced when dependencies are built.
