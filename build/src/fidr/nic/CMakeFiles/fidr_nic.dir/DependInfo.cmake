
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/nic/fidr_nic.cc" "src/fidr/nic/CMakeFiles/fidr_nic.dir/fidr_nic.cc.o" "gcc" "src/fidr/nic/CMakeFiles/fidr_nic.dir/fidr_nic.cc.o.d"
  "/root/repo/src/fidr/nic/protocol.cc" "src/fidr/nic/CMakeFiles/fidr_nic.dir/protocol.cc.o" "gcc" "src/fidr/nic/CMakeFiles/fidr_nic.dir/protocol.cc.o.d"
  "/root/repo/src/fidr/nic/tcp_reassembly.cc" "src/fidr/nic/CMakeFiles/fidr_nic.dir/tcp_reassembly.cc.o" "gcc" "src/fidr/nic/CMakeFiles/fidr_nic.dir/tcp_reassembly.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hash/CMakeFiles/fidr_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
