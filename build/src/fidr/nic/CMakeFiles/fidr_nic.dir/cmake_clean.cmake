file(REMOVE_RECURSE
  "CMakeFiles/fidr_nic.dir/fidr_nic.cc.o"
  "CMakeFiles/fidr_nic.dir/fidr_nic.cc.o.d"
  "CMakeFiles/fidr_nic.dir/protocol.cc.o"
  "CMakeFiles/fidr_nic.dir/protocol.cc.o.d"
  "CMakeFiles/fidr_nic.dir/tcp_reassembly.cc.o"
  "CMakeFiles/fidr_nic.dir/tcp_reassembly.cc.o.d"
  "libfidr_nic.a"
  "libfidr_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
