file(REMOVE_RECURSE
  "libfidr_nic.a"
)
