# Empty dependencies file for fidr_nic.
# This may be replaced when dependencies are built.
