# CMake generated Testfile for 
# Source directory: /root/repo/src/fidr/nic
# Build directory: /root/repo/build/src/fidr/nic
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
