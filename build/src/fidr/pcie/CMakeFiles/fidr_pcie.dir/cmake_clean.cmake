file(REMOVE_RECURSE
  "CMakeFiles/fidr_pcie.dir/fabric.cc.o"
  "CMakeFiles/fidr_pcie.dir/fabric.cc.o.d"
  "libfidr_pcie.a"
  "libfidr_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
