file(REMOVE_RECURSE
  "libfidr_pcie.a"
)
