# Empty dependencies file for fidr_pcie.
# This may be replaced when dependencies are built.
