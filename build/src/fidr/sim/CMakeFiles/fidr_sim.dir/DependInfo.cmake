
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/sim/event_queue.cc" "src/fidr/sim/CMakeFiles/fidr_sim.dir/event_queue.cc.o" "gcc" "src/fidr/sim/CMakeFiles/fidr_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/fidr/sim/ledger.cc" "src/fidr/sim/CMakeFiles/fidr_sim.dir/ledger.cc.o" "gcc" "src/fidr/sim/CMakeFiles/fidr_sim.dir/ledger.cc.o.d"
  "/root/repo/src/fidr/sim/stats.cc" "src/fidr/sim/CMakeFiles/fidr_sim.dir/stats.cc.o" "gcc" "src/fidr/sim/CMakeFiles/fidr_sim.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
