file(REMOVE_RECURSE
  "CMakeFiles/fidr_sim.dir/event_queue.cc.o"
  "CMakeFiles/fidr_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/fidr_sim.dir/ledger.cc.o"
  "CMakeFiles/fidr_sim.dir/ledger.cc.o.d"
  "CMakeFiles/fidr_sim.dir/stats.cc.o"
  "CMakeFiles/fidr_sim.dir/stats.cc.o.d"
  "libfidr_sim.a"
  "libfidr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
