file(REMOVE_RECURSE
  "libfidr_sim.a"
)
