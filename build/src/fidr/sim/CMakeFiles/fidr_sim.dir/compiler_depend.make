# Empty compiler generated dependencies file for fidr_sim.
# This may be replaced when dependencies are built.
