file(REMOVE_RECURSE
  "CMakeFiles/fidr_ssd.dir/ssd.cc.o"
  "CMakeFiles/fidr_ssd.dir/ssd.cc.o.d"
  "libfidr_ssd.a"
  "libfidr_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
