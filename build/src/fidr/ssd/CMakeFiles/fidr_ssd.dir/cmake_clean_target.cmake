file(REMOVE_RECURSE
  "libfidr_ssd.a"
)
