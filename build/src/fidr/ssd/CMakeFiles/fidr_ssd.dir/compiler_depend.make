# Empty compiler generated dependencies file for fidr_ssd.
# This may be replaced when dependencies are built.
