
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/tables/container.cc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/container.cc.o" "gcc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/container.cc.o.d"
  "/root/repo/src/fidr/tables/hash_pbn.cc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/hash_pbn.cc.o" "gcc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/hash_pbn.cc.o.d"
  "/root/repo/src/fidr/tables/journal.cc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/journal.cc.o" "gcc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/journal.cc.o.d"
  "/root/repo/src/fidr/tables/lba_pba.cc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/lba_pba.cc.o" "gcc" "src/fidr/tables/CMakeFiles/fidr_tables.dir/lba_pba.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hash/CMakeFiles/fidr_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/ssd/CMakeFiles/fidr_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/sim/CMakeFiles/fidr_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
