file(REMOVE_RECURSE
  "CMakeFiles/fidr_tables.dir/container.cc.o"
  "CMakeFiles/fidr_tables.dir/container.cc.o.d"
  "CMakeFiles/fidr_tables.dir/hash_pbn.cc.o"
  "CMakeFiles/fidr_tables.dir/hash_pbn.cc.o.d"
  "CMakeFiles/fidr_tables.dir/journal.cc.o"
  "CMakeFiles/fidr_tables.dir/journal.cc.o.d"
  "CMakeFiles/fidr_tables.dir/lba_pba.cc.o"
  "CMakeFiles/fidr_tables.dir/lba_pba.cc.o.d"
  "libfidr_tables.a"
  "libfidr_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
