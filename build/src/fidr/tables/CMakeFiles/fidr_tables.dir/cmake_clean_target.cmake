file(REMOVE_RECURSE
  "libfidr_tables.a"
)
