# Empty dependencies file for fidr_tables.
# This may be replaced when dependencies are built.
