
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fidr/workload/chunking_study.cc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/chunking_study.cc.o" "gcc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/chunking_study.cc.o.d"
  "/root/repo/src/fidr/workload/content.cc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/content.cc.o" "gcc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/content.cc.o.d"
  "/root/repo/src/fidr/workload/generator.cc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/generator.cc.o" "gcc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/generator.cc.o.d"
  "/root/repo/src/fidr/workload/table3.cc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/table3.cc.o" "gcc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/table3.cc.o.d"
  "/root/repo/src/fidr/workload/trace_io.cc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/trace_io.cc.o" "gcc" "src/fidr/workload/CMakeFiles/fidr_workload.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
