file(REMOVE_RECURSE
  "CMakeFiles/fidr_workload.dir/chunking_study.cc.o"
  "CMakeFiles/fidr_workload.dir/chunking_study.cc.o.d"
  "CMakeFiles/fidr_workload.dir/content.cc.o"
  "CMakeFiles/fidr_workload.dir/content.cc.o.d"
  "CMakeFiles/fidr_workload.dir/generator.cc.o"
  "CMakeFiles/fidr_workload.dir/generator.cc.o.d"
  "CMakeFiles/fidr_workload.dir/table3.cc.o"
  "CMakeFiles/fidr_workload.dir/table3.cc.o.d"
  "CMakeFiles/fidr_workload.dir/trace_io.cc.o"
  "CMakeFiles/fidr_workload.dir/trace_io.cc.o.d"
  "libfidr_workload.a"
  "libfidr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
