file(REMOVE_RECURSE
  "libfidr_workload.a"
)
