# Empty compiler generated dependencies file for fidr_workload.
# This may be replaced when dependencies are built.
