file(REMOVE_RECURSE
  "CMakeFiles/test_chunking.dir/test_chunking.cpp.o"
  "CMakeFiles/test_chunking.dir/test_chunking.cpp.o.d"
  "test_chunking"
  "test_chunking.pdb"
  "test_chunking[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
