file(REMOVE_RECURSE
  "CMakeFiles/test_hwtree.dir/test_hwtree.cpp.o"
  "CMakeFiles/test_hwtree.dir/test_hwtree.cpp.o.d"
  "test_hwtree"
  "test_hwtree.pdb"
  "test_hwtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
