# Empty compiler generated dependencies file for test_hwtree.
# This may be replaced when dependencies are built.
