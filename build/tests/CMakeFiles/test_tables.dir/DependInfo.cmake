
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_tables.cpp" "tests/CMakeFiles/test_tables.dir/test_tables.cpp.o" "gcc" "tests/CMakeFiles/test_tables.dir/test_tables.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fidr/common/CMakeFiles/fidr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hash/CMakeFiles/fidr_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/compress/CMakeFiles/fidr_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/chunking/CMakeFiles/fidr_chunking.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/sim/CMakeFiles/fidr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/ssd/CMakeFiles/fidr_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/pcie/CMakeFiles/fidr_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/host/CMakeFiles/fidr_host.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/btree/CMakeFiles/fidr_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/hwtree/CMakeFiles/fidr_hwtree.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/tables/CMakeFiles/fidr_tables.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/cache/CMakeFiles/fidr_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/nic/CMakeFiles/fidr_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/accel/CMakeFiles/fidr_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/workload/CMakeFiles/fidr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/core/CMakeFiles/fidr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/cost/CMakeFiles/fidr_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/fidr/fpga/CMakeFiles/fidr_fpga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
