file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_reassembly.dir/test_tcp_reassembly.cpp.o"
  "CMakeFiles/test_tcp_reassembly.dir/test_tcp_reassembly.cpp.o.d"
  "test_tcp_reassembly"
  "test_tcp_reassembly.pdb"
  "test_tcp_reassembly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_reassembly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
