# Empty dependencies file for test_tcp_reassembly.
# This may be replaced when dependencies are built.
