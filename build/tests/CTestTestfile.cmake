# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_ssd[1]_include.cmake")
include("/root/repo/build/tests/test_pcie[1]_include.cmake")
include("/root/repo/build/tests/test_btree[1]_include.cmake")
include("/root/repo/build/tests/test_hwtree[1]_include.cmake")
include("/root/repo/build/tests/test_tables[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_accel[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_journal[1]_include.cmake")
include("/root/repo/build/tests/test_chunking[1]_include.cmake")
include("/root/repo/build/tests/test_tcp_reassembly[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
