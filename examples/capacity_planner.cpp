// Capacity planner: a small CLI around the Sec 7.8 cost model.  Given
// an effective capacity, a throughput target, and expected reduction
// ratios, it prints the bill of materials for a no-reduction build, a
// baseline (CIDR-like) build, and a FIDR build — the decision the
// paper's cost analysis supports.
//
//   ./build/examples/capacity_planner [capacity_tb] [gbps] [dedup] [comp]
//   e.g. ./build/examples/capacity_planner 500 75 0.5 0.5

#include <cstdio>
#include <cstdlib>

#include "fidr/cost/cost_model.h"

using namespace fidr;
using namespace fidr::cost;

namespace {

void
print_line(const char *name, const CostBreakdown &c,
           const CostBreakdown &none)
{
    std::printf("  %-22s $%9.0f  (data SSD $%.0f, table SSD $%.0f, "
                "DRAM $%.0f,\n%26s CPU $%.0f, FPGA $%.0f)  saving "
                "%.1f%%\n",
                name, c.total(), c.data_ssd, c.table_ssd, c.dram, "",
                c.cpu, c.fpga, 100 * cost_saving(c, none));
}

}  // namespace

int
main(int argc, char **argv)
{
    const double capacity_tb = argc > 1 ? std::atof(argv[1]) : 500;
    const double gbps = argc > 2 ? std::atof(argv[2]) : 75;
    CostParams params;
    if (argc > 3)
        params.dedup_ratio = std::atof(argv[3]);
    if (argc > 4)
        params.comp_ratio = std::atof(argv[4]);

    const double cap_gb = capacity_tb * 1000;
    std::printf("Capacity plan: %.0f TB effective at %.0f GB/s per "
                "socket\n", capacity_tb, gbps);
    std::printf("Assumptions: %.0f%% dedup, %.0f%% compression, SSD "
                "$%.2f/GB, DRAM $%.1f/GB\n\n",
                100 * params.dedup_ratio, 100 * params.comp_ratio,
                params.ssd_per_gb, params.dram_per_gb);

    const CostBreakdown none = cost_no_reduction(cap_gb, params);
    const CostBreakdown base = cost_with_reduction(
        cap_gb, gb_per_s(gbps), baseline_demand(), params);
    const CostBreakdown fidr = cost_with_reduction(
        cap_gb, gb_per_s(gbps), fidr_demand(), params);

    print_line("No reduction", none, none);
    print_line("Baseline (CIDR-like)", base, none);
    print_line("FIDR", fidr, none);

    const SystemDemand bd = baseline_demand();
    if (gb_per_s(gbps) > bd.max_socket_throughput) {
        std::printf("\nNote: at %.0f GB/s the baseline saturates its "
                    "socket near %.0f GB/s and\ncan only reduce %.0f%% "
                    "of the stream; the rest is stored raw.\n",
                    gbps, to_gb_per_s(bd.max_socket_throughput),
                    100 * to_gb_per_s(bd.max_socket_throughput) / gbps);
    }

    std::printf("\nSweep (FIDR saving vs target throughput):\n");
    for (double g : {15.0, 25.0, 40.0, 55.0, 75.0}) {
        const CostBreakdown f = cost_with_reduction(
            cap_gb, gb_per_s(g), fidr_demand(), params);
        std::printf("  %5.0f GB/s: save %5.1f%%\n", g,
                    100 * cost_saving(f, none));
    }
    return 0;
}
