// Mail-server scenario: the workload class that motivates fine-grain
// (4 KB) reduction in the paper's introduction — many small random
// writes with heavy content duplication (the same attachments and
// message bodies land in thousands of mailboxes).
//
// This example drives a Mail-like stream through BOTH systems and
// prints the comparison a storage architect would look at: reduction
// achieved, SSD wear, host resource pressure, and the projected
// per-socket throughput.
//
//   ./build/examples/mail_server_sim [requests]

#include <cstdio>
#include <cstdlib>

#include "fidr/core/baseline_system.h"
#include "fidr/core/fidr_system.h"
#include "fidr/core/perf_model.h"
#include "fidr/workload/generator.h"
#include "fidr/workload/table3.h"

using namespace fidr;

namespace {

core::PlatformConfig
platform()
{
    core::PlatformConfig config;
    config.expected_unique_chunks = workload::kTable3UniqueChunks;
    config.cache_fraction = workload::kTable3CacheFraction;
    config.data_ssd.capacity_bytes = 64ull * kGiB;
    config.table_ssd.capacity_bytes = 4ull * kGiB;
    config.table_ssd.read_bandwidth = gb_per_s(16);
    config.table_ssd.write_bandwidth = gb_per_s(16);
    return config;
}

template <typename System>
void
run(System &system, int requests)
{
    // Mail-like: Write-H of Table 3 (high duplication, random 4 KB).
    workload::WorkloadGenerator gen(workload::write_h_spec());
    for (int i = 0; i < requests; ++i) {
        const workload::IoRequest req = gen.next();
        if (!system.write(req.lba, req.data).is_ok()) {
            std::fprintf(stderr, "write failed\n");
            std::exit(1);
        }
    }
    if (!system.flush().is_ok()) {
        std::fprintf(stderr, "flush failed\n");
        std::exit(1);
    }
}

template <typename System>
void
report(const char *name, System &system)
{
    const core::ReductionStats &r = system.reduction();
    const core::Projection p = core::project(system);
    const double client = static_cast<double>(r.raw_bytes);

    std::printf("%s\n", name);
    std::printf("  dedup %.1f%%, overall reduction %.1f%% "
                "(%.1f MB client -> %.1f MB stored)\n",
                100 * r.dedup_rate(), 100 * r.overall_reduction(),
                client / 1e6, static_cast<double>(r.stored_bytes) / 1e6);
    std::printf("  SSD wear: %.1f MB written to flash (%.2fx client "
                "bytes)\n",
                static_cast<double>(
                    system.platform().data_ssds().total_bytes_written()) /
                    1e6,
                static_cast<double>(
                    system.platform().data_ssds().total_bytes_written()) /
                    client);
    std::printf("  host DRAM traffic: %.2f bytes/byte -> needs "
                "%.0f GB/s at the 75 GB/s target\n",
                system.platform().fabric().host_memory().total() / client,
                to_gb_per_s(p.mem_required));
    std::printf("  host CPU: %.1f cores at the 75 GB/s target\n",
                p.cores_required);
    std::printf("  projected per-socket throughput: %.1f GB/s "
                "(bottleneck: %s)\n\n",
                to_gb_per_s(p.throughput()), p.bottleneck());
}

}  // namespace

int
main(int argc, char **argv)
{
    const int requests = argc > 1 ? std::atoi(argv[1]) : 60'000;
    std::printf("Mail-server workload, %d requests of 4 KB "
                "(Write-H profile)\n\n", requests);

    core::BaselineConfig bconfig;
    bconfig.platform = platform();
    core::BaselineSystem baseline(bconfig);
    run(baseline, requests);
    report("Baseline (CIDR-like, host-staged)", baseline);

    core::FidrConfig fconfig;
    fconfig.platform = platform();
    core::FidrSystem fidr(fconfig);
    run(fidr, requests);
    report("FIDR (NIC hashing + P2P + Cache HW-Engine)", fidr);

    const core::Projection pb = core::project(baseline);
    const core::Projection pf = core::project(fidr);
    std::printf("FIDR speedup on this workload: %.2fx\n",
                pf.throughput() / pb.throughput());
    return 0;
}
