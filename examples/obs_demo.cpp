// End-to-end tour of the fidr/obs subsystem: runs a dedup-heavy
// write/read mix through FidrSystem with tracing enabled, then emits
// the three observability artifacts:
//
//   obs_snapshot.json  unified metric snapshot (per-stage latency
//                      histograms, flow counters, ledger sections);
//                      view with `fidr_obs_report snapshot`.
//   obs_trace.json     Chrome trace-event JSON -- open directly in
//                      Perfetto (ui.perfetto.dev) or chrome://tracing.
//   obs_trace.bin      compact binary dump; convert or inspect with
//                      `fidr_obs_report trace|timeline`.
//
// Built with -DFIDR_TRACE=OFF the same program still runs and still
// produces the snapshot (histograms are always live); the trace files
// are simply empty, and the demo prints the record count to prove it.

#include <cstdio>
#include <cstring>

#include "fidr/core/fidr_system.h"
#include "fidr/obs/trace.h"

using namespace fidr;

namespace {

/** 4 KB chunk whose content is determined by `seed`. */
Buffer
make_chunk(std::uint64_t seed)
{
    Buffer data(kChunkSize);
    for (std::size_t i = 0; i < data.size(); i += 8) {
        const std::uint64_t v = seed * 0x9E3779B97F4A7C15ull + i;
        std::memcpy(&data[i], &v, 8);
    }
    return data;
}

}  // namespace

int
main()
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable();

    core::FidrConfig config;
    config.nic.hash_lanes = 2;  // Lane spans on worker trace rings.
    config.compress_lanes = 2;
    config.journal_metadata = true;
    core::FidrSystem system(config);

    // Dedup-heavy write phase: every seed repeats four times across
    // distinct LBAs, so ~75% of chunks are duplicates.
    constexpr int kWrites = 2048;
    for (int i = 0; i < kWrites; ++i) {
        const Status written = system.write(
            static_cast<Lba>(i), make_chunk(static_cast<std::uint64_t>(
                                     i % (kWrites / 4))));
        FIDR_CHECK(written.is_ok());
    }
    FIDR_CHECK(system.flush().is_ok());

    // Read phase after the flush so reads traverse the full Fig 6b
    // path (SSD -> Decompression Engine -> NIC) instead of the NIC
    // write buffer.
    for (int i = 0; i < 256; ++i) {
        Result<Buffer> data = system.read(static_cast<Lba>(i * 7));
        FIDR_CHECK(data.is_ok());
    }

    const obs::ObsSnapshot snap = system.obs_snapshot();
    std::size_t write_stages = 0;
    for (const auto &[name, h] : snap.histograms) {
        if (name.rfind("write.", 0) == 0 && h.count > 0)
            ++write_stages;
    }
    // The acceptance bar for the snapshot: every Fig 6a stage shows
    // real samples.
    FIDR_CHECK(write_stages >= 8);

    std::FILE *f = std::fopen("obs_snapshot.json", "w");
    FIDR_CHECK(f != nullptr);
    std::fputs(snap.to_json().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);

    f = std::fopen("obs_trace.json", "w");
    FIDR_CHECK(f != nullptr);
    std::fputs(tracer.export_chrome_json().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    FIDR_CHECK(tracer.dump_binary("obs_trace.bin").is_ok());

    std::fputs(snap.pretty().c_str(), stdout);
    std::printf("\ntrace: %llu records across %zu thread rings "
                "(%s build)\n",
                static_cast<unsigned long long>(tracer.total_held()),
                tracer.ring_count(),
                FIDR_TRACE_ENABLED ? "FIDR_TRACE=ON" : "FIDR_TRACE=OFF");
    std::printf("wrote obs_snapshot.json, obs_trace.json, "
                "obs_trace.bin\n");
    std::printf("next: fidr_obs_report snapshot obs_snapshot.json\n"
                "      fidr_obs_report timeline obs_trace.bin\n"
                "      open obs_trace.json in ui.perfetto.dev\n");
    return 0;
}
