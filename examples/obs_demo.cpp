// End-to-end tour of the fidr/obs subsystem: runs a dedup-heavy
// write/read mix through FidrSystem with tracing enabled, then emits
// the observability artifacts:
//
//   obs_snapshot.json  unified metric snapshot (per-stage latency
//                      histograms with tail exemplars, flow counters,
//                      ledger sections); view with
//                      `fidr_obs_report snapshot`.
//   obs_trace.json     Chrome trace-event JSON -- open directly in
//                      Perfetto (ui.perfetto.dev) or chrome://tracing.
//                      Request-tagged spans carry flow arrows, so one
//                      write batch renders as a connected tree from
//                      submit through the hash workers to commit.
//   obs_trace.bin      compact binary dump; convert or inspect with
//                      `fidr_obs_report trace|timeline|attribute`.
//   obs_windows.json   windowed rate view: the cumulative snapshot
//                      stream diffed into fixed intervals (slo.h).
//   obs_slo.json       burn-rate SLO evaluation over those windows.
//
// Built with -DFIDR_TRACE=OFF the same program still runs and still
// produces the snapshot and window/SLO artifacts (histograms are
// always live); the trace files are simply empty, and the demo prints
// the record count to prove it.

#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "fidr/core/fidr_system.h"
#include "fidr/obs/slo.h"
#include "fidr/obs/trace.h"

using namespace fidr;

namespace {

/** 4 KB chunk whose content is determined by `seed`. */
Buffer
make_chunk(std::uint64_t seed)
{
    Buffer data(kChunkSize);
    for (std::size_t i = 0; i < data.size(); i += 8) {
        const std::uint64_t v = seed * 0x9E3779B97F4A7C15ull + i;
        std::memcpy(&data[i], &v, 8);
    }
    return data;
}

void
write_file(const char *path, const std::string &body)
{
    std::FILE *f = std::fopen(path, "w");
    FIDR_CHECK(f != nullptr);
    std::fputs(body.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

}  // namespace

int
main()
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable();

    core::FidrConfig config;
    config.nic.hash_lanes = 2;  // Lane spans on worker trace rings.
    config.compress_lanes = 2;
    // Explicit so the read fan-out crosses threads even on a 1-core
    // host (read_lanes = 0 would resolve to hardware_lanes() = 1
    // there and keep fetches inline).
    config.read_lanes = 2;
    config.journal_metadata = true;
    // Two-tier read cache sized below the read working set, with a
    // spill ring behind it, so the snapshot's read_cache_tiers section
    // shows real traffic in every tier.
    config.chunk_cache_bytes = 512 * 1024;
    config.chunk_cache_spill_bytes = 2ull * 1024 * 1024;
    core::FidrSystem system(config);
    system.set_stream_tag(7);  // Tag this workload's requests.

    // The windowed view: snapshot the cumulative metrics after each
    // phase on a synthetic 1 ms timeline, so each phase lands in its
    // own window and the SLO evaluator sees rates, not totals.
    obs::WindowedAggregator aggregator(/*window_count=*/8,
                                       /*interval_ns=*/1'000'000);
    std::uint64_t clock_ns = 0;
    aggregator.observe(system.obs_snapshot(), clock_ns);  // Baseline.

    // Dedup-heavy write phase: every seed repeats four times across
    // distinct LBAs, so ~75% of chunks are duplicates.
    constexpr int kWrites = 2048;
    for (int i = 0; i < kWrites; ++i) {
        const Status written = system.write(
            static_cast<Lba>(i), make_chunk(static_cast<std::uint64_t>(
                                     i % (kWrites / 4))));
        FIDR_CHECK(written.is_ok());
    }
    FIDR_CHECK(system.flush().is_ok());
    clock_ns += 1'000'000;
    aggregator.observe(system.obs_snapshot(), clock_ns);

    // Read phase after the flush so reads traverse the full Fig 6b
    // path (SSD -> Decompression Engine -> NIC) instead of the NIC
    // write buffer.  Batched, so the fetch stage fans across the two
    // read lanes and the request's flow links span threads.
    std::vector<Lba> lbas;
    for (int i = 0; i < 256; ++i)
        lbas.push_back(static_cast<Lba>(i * 7));
    const std::vector<Result<Buffer>> results =
        system.read_batch(std::span<const Lba>(lbas));
    for (const Result<Buffer> &data : results)
        FIDR_CHECK(data.is_ok());
    clock_ns += 1'000'000;
    aggregator.observe(system.obs_snapshot(), clock_ns);

    // Re-read pass: the working set overflows the 512 KiB DRAM budget,
    // so repeats hit the warm/spill tiers and the tier section in the
    // snapshot carries real counts.
    for (const Result<Buffer> &data :
         system.read_batch(std::span<const Lba>(lbas)))
        FIDR_CHECK(data.is_ok());
    clock_ns += 1'000'000;
    aggregator.observe(system.obs_snapshot(), clock_ns);

    const obs::ObsSnapshot snap = system.obs_snapshot();
    FIDR_CHECK(snap.counters.at("read.cache.hits") > 0);
    FIDR_CHECK(snap.sections.count("read_cache_tiers") == 1);
    std::size_t write_stages = 0;
    for (const auto &[name, h] : snap.histograms) {
        if (name.rfind("write.", 0) == 0 && h.count > 0)
            ++write_stages;
    }
    // The acceptance bar for the snapshot: every Fig 6a stage shows
    // real samples.
    FIDR_CHECK(write_stages >= 8);

    // SLO pass over the closed windows: latency objectives on the
    // end-to-end read path and a stall-rate objective on the write
    // pipeline.  Deliberately one loose and one tight latency target
    // so the report shows both verdicts.
    obs::SloEvaluator evaluator;
    {
        obs::SloTarget read_latency;
        // Wide headroom: a batched read of 256 LBAs takes ~1 ms on an
        // idle 1-core container but several ms under load, and the p99
        // of 8 batches is just the max — 50 ms keeps this target "ok"
        // regardless of host noise.
        read_latency.name = "read-p99-under-50ms";
        read_latency.histogram = "read.total";
        read_latency.quantile = 0.99;
        read_latency.latency_ns = 50'000'000;
        read_latency.eval_windows = 2;
        evaluator.add_target(read_latency);

        obs::SloTarget read_tight;
        read_tight.name = "read-p50-under-1us";
        read_tight.histogram = "read.total";
        read_tight.quantile = 0.50;
        read_tight.latency_ns = 1'000;
        read_tight.eval_windows = 2;
        evaluator.add_target(read_tight);

        obs::SloTarget stalls;
        stalls.name = "pipeline-stall-rate";
        stalls.error_counter = "pipeline.stalls";
        stalls.total_counter = "pipeline.batches";
        stalls.max_error_rate = 0.75;
        stalls.eval_windows = 2;
        evaluator.add_target(stalls);
    }
    const std::vector<obs::SloResult> slo =
        evaluator.evaluate(aggregator);

    write_file("obs_snapshot.json", snap.to_json());
    write_file("obs_trace.json", tracer.export_chrome_json());
    FIDR_CHECK(tracer.dump_binary("obs_trace.bin").is_ok());
    write_file("obs_windows.json", aggregator.to_json());
    write_file("obs_slo.json", obs::SloEvaluator::report_json(slo));

    std::fputs(snap.pretty().c_str(), stdout);
    std::printf("\nslo targets:\n");
    for (const obs::SloResult &r : slo)
        std::printf("  %-24s %s  (latency_burn=%.2f error_burn=%.2f "
                    "over %zu windows)\n",
                    r.name.c_str(), r.breached ? "BREACH" : "ok",
                    r.latency_burn, r.error_burn, r.windows_evaluated);
    std::printf("\ntrace: %llu records across %zu thread rings "
                "(%s build)\n",
                static_cast<unsigned long long>(tracer.total_held()),
                tracer.ring_count(),
                FIDR_TRACE_ENABLED ? "FIDR_TRACE=ON" : "FIDR_TRACE=OFF");
    std::printf("wrote obs_snapshot.json, obs_trace.json, "
                "obs_trace.bin, obs_windows.json, obs_slo.json\n");
    std::printf("next: fidr_obs_report snapshot obs_snapshot.json\n"
                "      fidr_obs_report timeline obs_trace.bin\n"
                "      fidr_obs_report attribute obs_trace.bin "
                "--top 3\n"
                "      open obs_trace.json in ui.perfetto.dev\n");
    return 0;
}
