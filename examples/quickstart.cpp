// Quickstart: stand up a FIDR storage server, write some data through
// the full reduction pipeline (chunking -> in-NIC SHA-256 -> Hash-PBN
// dedup -> LZ compression -> container packing -> simulated SSDs),
// read it back, and print what the system did.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "fidr/core/fidr_system.h"
#include "fidr/core/perf_model.h"

using namespace fidr;

int
main()
{
    // 1. Configure a small server: two data SSDs, one table SSD, a
    //    Hash-PBN table sized for ~100K unique chunks, 10% of it
    //    cached in host DRAM, and the full FIDR hardware (NIC hashing,
    //    P2P transfers, 4-lane speculative Cache HW-Engine).
    core::FidrConfig config;
    config.platform.expected_unique_chunks = 100'000;
    config.platform.cache_fraction = 0.10;
    config.platform.data_ssd.capacity_bytes = 8ull * kGiB;
    core::FidrSystem server(config);

    // 2. Write some 4 KB chunks.  We deliberately repeat content so
    //    deduplication has something to do: 100 logical blocks backed
    //    by only 10 distinct payloads, each payload half-compressible.
    std::printf("Writing 100 chunks (10 distinct contents)...\n");
    for (Lba lba = 0; lba < 100; ++lba) {
        Buffer chunk(kChunkSize);
        const std::string text =
            "chunk payload #" + std::to_string(lba % 10) + " ";
        for (std::size_t i = 0; i < kChunkSize / 2; ++i)
            chunk[i] = static_cast<std::uint8_t>(text[i % text.size()]);
        for (std::size_t i = kChunkSize / 2; i < kChunkSize; ++i)
            chunk[i] = static_cast<std::uint8_t>(
                (lba % 10) * 131 + i * 17);  // Less compressible half.
        const Status written = server.write(lba, std::move(chunk));
        if (!written.is_ok()) {
            std::fprintf(stderr, "write failed: %s\n",
                         written.to_string().c_str());
            return 1;
        }
    }

    // 3. Flush: drains the NIC buffer through hashing, dedup,
    //    compression, and seals the open container to the data SSDs.
    if (const Status flushed = server.flush(); !flushed.is_ok()) {
        std::fprintf(stderr, "flush failed: %s\n",
                     flushed.to_string().c_str());
        return 1;
    }

    // 4. Read back and verify one block.
    Result<Buffer> readback = server.read(42);
    if (!readback.is_ok()) {
        std::fprintf(stderr, "read failed: %s\n",
                     readback.status().to_string().c_str());
        return 1;
    }
    std::printf("Read back LBA 42: %zu bytes, starts with \"%.14s\"\n",
                readback.value().size(), readback.value().data());

    // 5. What did data reduction achieve?
    const core::ReductionStats &r = server.reduction();
    std::printf("\nReduction report:\n");
    std::printf("  chunks written      : %llu\n",
                static_cast<unsigned long long>(r.chunks_written));
    std::printf("  duplicates removed  : %llu (%.0f%%)\n",
                static_cast<unsigned long long>(r.duplicates),
                100 * r.dedup_rate());
    std::printf("  unique chunks stored: %llu\n",
                static_cast<unsigned long long>(r.unique_chunks));
    std::printf("  client bytes        : %llu\n",
                static_cast<unsigned long long>(r.raw_bytes));
    std::printf("  stored bytes        : %llu\n",
                static_cast<unsigned long long>(r.stored_bytes));
    std::printf("  end-to-end reduction: %.1f%%\n",
                100 * r.overall_reduction());

    // 6. Where did the bytes move?  FIDR's point is that client data
    //    bypasses host DRAM: payloads go NIC -> Compression Engine ->
    //    data SSD peer-to-peer.
    const auto &fabric = server.platform().fabric();
    std::printf("\nData movement:\n");
    std::printf("  peer-to-peer bytes  : %llu\n",
                static_cast<unsigned long long>(fabric.p2p_bytes()));
    std::printf("  host DRAM traffic   : %.0f bytes (%.2f per client "
                "byte)\n",
                fabric.host_memory().total(),
                fabric.host_memory().total() /
                    static_cast<double>(r.raw_bytes));
    for (const auto &row : fabric.host_memory().report()) {
        std::printf("    %-32s %6.1f%%\n", row.tag.c_str(),
                    100 * row.share);
    }
    return 0;
}
