// Trace inspector: explore the synthetic workload generator.  Prints
// the first few requests of a chosen Table 3 preset, then measures the
// stream's realized statistics (dedup ratio, compressibility, address
// sequentiality, working-set size) so users can see exactly what each
// knob produces before running experiments.
//
//   ./build/examples/trace_inspector [write-h|write-m|write-l|read-mixed]

#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "fidr/compress/lz.h"
#include "fidr/workload/generator.h"
#include "fidr/workload/table3.h"

using namespace fidr;

int
main(int argc, char **argv)
{
    workload::WorkloadSpec spec = workload::write_h_spec();
    if (argc > 1) {
        const char *name = argv[1];
        if (!std::strcmp(name, "write-m"))
            spec = workload::write_m_spec();
        else if (!std::strcmp(name, "write-l"))
            spec = workload::write_l_spec();
        else if (!std::strcmp(name, "read-mixed"))
            spec = workload::read_mixed_spec();
        else if (std::strcmp(name, "write-h")) {
            std::fprintf(stderr,
                         "usage: %s [write-h|write-m|write-l|"
                         "read-mixed]\n", argv[0]);
            return 1;
        }
    }

    std::printf("Workload: %s\n", spec.name.c_str());
    std::printf("  dedup_ratio=%.3f comp_ratio=%.2f "
                "dup_working_set=%llu\n  pattern=%s run_length=%u "
                "read_fraction=%.2f seed=%llu\n\n",
                spec.dedup_ratio, spec.comp_ratio,
                static_cast<unsigned long long>(spec.dup_working_set),
                spec.pattern ==
                        workload::AddressPattern::kSequentialRuns
                    ? "sequential-runs"
                    : "uniform",
                spec.run_length, spec.read_fraction,
                static_cast<unsigned long long>(spec.seed));

    workload::WorkloadGenerator gen(spec);
    std::printf("First 12 requests:\n");
    std::printf("  %-4s %-6s %-12s %-12s %s\n", "#", "op", "lba",
                "content", "payload head");
    for (int i = 0; i < 12; ++i) {
        const workload::IoRequest req = gen.next();
        char head[9] = "--------";
        if (req.dir == IoDir::kWrite) {
            for (int b = 0; b < 8; ++b)
                std::snprintf(head + b, 2, "%1x",
                              req.data[static_cast<std::size_t>(b)] >> 4);
        }
        std::printf("  %-4d %-6s %-12llu %-12llu %s\n", i,
                    req.dir == IoDir::kWrite ? "write" : "read",
                    static_cast<unsigned long long>(req.lba),
                    static_cast<unsigned long long>(req.content_id),
                    head);
    }

    // Measure realized statistics over a longer stream.
    constexpr int kSample = 50'000;
    std::unordered_set<std::uint64_t> contents;
    std::unordered_map<Lba, int> lba_writes;
    int writes = 0, reads = 0, duplicates = 0, sequential = 0;
    double comp_in = 0, comp_out = 0;
    Lba prev_lba = ~0ull;
    for (int i = 0; i < kSample; ++i) {
        const workload::IoRequest req = gen.next();
        if (req.dir == IoDir::kRead) {
            ++reads;
            continue;
        }
        ++writes;
        if (!contents.insert(req.content_id).second)
            ++duplicates;
        ++lba_writes[req.lba];
        if (req.lba == prev_lba + 1)
            ++sequential;
        prev_lba = req.lba;
        if (writes % 100 == 0) {  // Sample compression, it is slow.
            comp_in += static_cast<double>(req.data.size());
            comp_out += static_cast<double>(
                lz_compress(req.data, LzLevel::kFast).size());
        }
    }

    std::printf("\nMeasured over %d requests:\n", kSample);
    std::printf("  writes/reads         : %d / %d\n", writes, reads);
    std::printf("  duplicate writes     : %.1f%% (target %.1f%%)\n",
                100.0 * duplicates / writes, 100 * spec.dedup_ratio);
    std::printf("  distinct contents    : %zu\n", contents.size());
    std::printf("  distinct LBAs        : %zu (max rewrites of one "
                "LBA: %d)\n",
                lba_writes.size(),
                [&] {
                    int most = 0;
                    for (const auto &[lba, n] : lba_writes)
                        most = std::max(most, n);
                    return most;
                }());
    std::printf("  sequential-next rate : %.1f%%\n",
                100.0 * sequential / writes);
    std::printf("  sampled compressibility: %.1f%% (target %.1f%%)\n",
                100 * (1 - comp_out / comp_in), 100 * spec.comp_ratio);
    return 0;
}
