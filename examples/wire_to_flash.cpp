// Wire-to-flash demo: the full network front end of the FIDR NIC.
// A "client" encodes write/read frames with the simplified storage
// protocol, chops the byte stream into TCP segments, and delivers
// them out of order with duplicates; the NIC-side TCP offload engine
// reassembles the stream, the protocol engine decodes it, and the
// FIDR system performs inline data reduction.  Acks (with read data)
// flow back the same way.
//
//   ./build/examples/wire_to_flash

#include <algorithm>
#include <cstdio>

#include "fidr/common/rng.h"
#include "fidr/core/fidr_system.h"
#include "fidr/core/protocol_server.h"
#include "fidr/nic/tcp_reassembly.h"
#include "fidr/workload/content.h"

using namespace fidr;

int
main()
{
    // Server side: FIDR system + protocol engine + TCP offload.
    core::FidrConfig config;
    config.platform.expected_unique_chunks = 100'000;
    config.platform.cache_fraction = 0.1;
    core::FidrSystem system(config);
    core::ProtocolServer protocol(system);
    nic::TcpReassembler tcp;

    // Client side: build one byte stream of 64 writes (with repeats,
    // so dedup fires) followed by 8 reads.
    Buffer stream;
    for (Lba lba = 0; lba < 64; ++lba) {
        const Buffer frame = nic::encode_write(
            lba, workload::make_chunk_content(lba % 16));
        stream.insert(stream.end(), frame.begin(), frame.end());
    }
    for (Lba lba = 0; lba < 8; ++lba) {
        const Buffer frame = nic::encode_read(lba * 7, kChunkSize);
        stream.insert(stream.end(), frame.begin(), frame.end());
    }
    std::printf("Client stream: %zu bytes (64 writes, 8 reads)\n",
                stream.size());

    // Segment the stream, shuffle, and duplicate a few segments: the
    // network does its worst.
    Rng rng(99);
    std::vector<nic::Segment> segments;
    std::size_t pos = 0;
    while (pos < stream.size()) {
        const std::size_t len = std::min<std::size_t>(
            1000 + rng.next_below(500), stream.size() - pos);
        segments.push_back(
            {pos, Buffer(stream.begin() + static_cast<long>(pos),
                         stream.begin() + static_cast<long>(pos + len))});
        pos += len;
    }
    std::shuffle(segments.begin(), segments.end(), rng);
    segments.push_back(segments[3]);  // Retransmission.
    std::printf("Delivered as %zu TCP segments, shuffled, one "
                "duplicated\n\n", segments.size());

    // NIC receive path: reassemble, decode complete frames, ack.
    Buffer pending;  // Bytes not yet forming a whole frame.
    std::size_t acks = 0, read_bytes = 0;
    for (const nic::Segment &segment : segments) {
        if (!tcp.receive(segment).is_ok())
            continue;
        const Buffer ready = tcp.take_ready();
        pending.insert(pending.end(), ready.begin(), ready.end());

        // Feed every complete frame to the protocol engine.
        std::size_t consumed = 0;
        while (true) {
            std::size_t probe = consumed;
            Result<nic::Frame> frame = nic::decode(pending, probe);
            if (!frame.is_ok())
                break;  // Partial tail; wait for more segments.
            Result<Buffer> response = protocol.handle(
                std::span<const std::uint8_t>(pending.data() + consumed,
                                              probe - consumed));
            if (response.is_ok()) {
                // Count the acks the client would receive.
                std::size_t off = 0;
                const auto ack =
                    nic::decode(response.value(), off).take();
                ++acks;
                if (!ack.payload.empty() && ack.payload.size() > 1)
                    read_bytes += ack.payload.size();
            }
            consumed = probe;
        }
        pending.erase(pending.begin(),
                      pending.begin() + static_cast<long>(consumed));
    }
    (void)system.flush();

    std::printf("TCP engine: %llu segments (%llu out of order, %llu "
                "dup bytes trimmed)\n",
                static_cast<unsigned long long>(tcp.stats().segments),
                static_cast<unsigned long long>(
                    tcp.stats().out_of_order),
                static_cast<unsigned long long>(
                    tcp.stats().duplicate_bytes));
    std::printf("Protocol engine: %llu frames, %llu writes, %llu "
                "reads, %llu errors\n",
                static_cast<unsigned long long>(
                    protocol.stats().frames_decoded),
                static_cast<unsigned long long>(protocol.stats().writes),
                static_cast<unsigned long long>(protocol.stats().reads),
                static_cast<unsigned long long>(protocol.stats().errors));
    std::printf("Acks returned: %zu (%zu bytes of read data)\n", acks,
                read_bytes);

    const core::ReductionStats &r = system.reduction();
    std::printf("\nReduction: %llu writes -> %llu unique chunks "
                "(%.0f%% dedup), %.1f KB stored\n",
                static_cast<unsigned long long>(r.chunks_written),
                static_cast<unsigned long long>(r.unique_chunks),
                100 * r.dedup_rate(),
                static_cast<double>(r.stored_bytes) / 1024);
    return 0;
}
