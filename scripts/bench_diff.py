#!/usr/bin/env python3
"""Compare fresh bench reports against committed BENCH_*.json baselines.

Every bench binary in this repo can persist a uniform JsonReport:

    {"bench": ..., "config": {...}, "series": [...], "meta": {...}}

where each series entry carries identity fields (name, workload,
target, lanes, ...) and either flat throughput metrics or a "runs"
array of per-cell metric dicts.  This script pairs series/runs between
a baseline report and a fresh one by their identity fields and flags
every throughput metric (keys ending in "_per_s" — higher is better)
that regressed by more than the threshold.

Usage:
    scripts/bench_diff.py BASELINE FRESH [--threshold 0.15]
    scripts/bench_diff.py --baseline-dir . --fresh-dir build/bench

Directory mode pairs files by BENCH_*.json name and skips baselines
with no fresh counterpart (a bench that did not run is not a
regression).  Exit status: 0 = no regressions, 1 = at least one
regression, 2 = usage or unreadable input.  scripts/tier1.sh runs this
as a FATAL stage: a >15% drop in any non-allowlisted throughput
metric fails tier-1.

Wall-clock benches on shared CI hosts are noisy, so known-noisy
metrics live in a per-bench allowlist file (--allowlist, default
scripts/bench_allowlist.txt next to this script).  Each non-comment
line is two fnmatch globs, "REPORT_GLOB METRIC_GLOB"; a regression
whose report basename and metric both match a line is reported as
"allow" and does not fail the run.  Model-based reports (the cluster
projection bench) have no allowlist entries — their numbers are
host-independent, so a drop there is a real regression.
"""

import argparse
import fnmatch
import glob
import json
import os
import sys

THRESHOLD_DEFAULT = 0.15
ALLOWLIST_DEFAULT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                 "bench_allowlist.txt")


def is_metric(key, value):
    return key.endswith("_per_s") and isinstance(value, (int, float))


def identity(entry):
    """Stable identity of a series/run: every non-metric scalar field."""
    parts = []
    for key in sorted(entry):
        value = entry[key]
        if key == "runs" or is_metric(key, value):
            continue
        # Measured scalars that vary run to run are not identity.
        if key in ("seconds", "speedup_vs_scalar", "speedup_vs_depth1",
                   "speedup_vs_1_lane", "identical_to_scalar",
                   "cache_hits", "cache_hit_rate", "ssd_fetches",
                   "hash_busy_s", "execute_busy_s", "submit_stall_s",
                   "overlap_s", "overlap_ratio", "batches", "stalls",
                   "queue_depth_p95", "writes", "reads",
                   "write_p50_ns", "write_p99_ns", "write_amp",
                   "gc_steps", "concurrent_steps", "relocated_bytes",
                   "containers_reclaimed", "reclaimed_bytes",
                   "cache_rekeys", "free_slot_fraction",
                   "gc_pause_p99_ns",
                   # Two-tier cache counters ("tier" itself stays an
                   # identity field: one/two/two+spill are distinct
                   # series, their counters are measurements; likewise
                   # "demote_batch" is identity, its churn counters are
                   # not).
                   "warm_hits", "spill_hits", "spill_writes",
                   "demotions", "demote_passes",
                   # Cluster bench measurements ("nodes" and "routing"
                   # stay identity: each (workload, nodes, routing)
                   # cell is its own series).
                   "speedup_vs_1node", "dedup_rate",
                   "single_node_dedup_rate", "cluster_seconds",
                   "node_seconds_max", "link_seconds_max",
                   "net_bytes", "net_messages", "writes_suppressed",
                   "unmaps_sent", "identical_to_bare"):
            continue
        if isinstance(value, (str, int, float, bool)):
            parts.append((key, value))
    return tuple(parts)


def label(ident):
    return " ".join(f"{k}={v}" for k, v in ident) or "(unnamed)"


def config_identity(report):
    """Report-level config scalars, folded into every series identity.

    A smoke run (fewer requests, shrunk sweeps) is not comparable to a
    committed full-run baseline — same cell names, systematically
    different numbers — so differing configs must pair nothing rather
    than flag phantom regressions.
    """
    parts = []
    for key in sorted(report.get("config", {})):
        value = report["config"][key]
        if isinstance(value, (str, int, float, bool)):
            parts.append(("cfg." + key, value))
    return tuple(parts)


def metric_rows(report):
    """Yields (series_label, run_identity, metric, value)."""
    config_id = config_identity(report)
    for series in report.get("series", []):
        series_id = config_id + identity(series)
        runs = series.get("runs")
        if runs:
            for run in runs:
                run_id = identity(run)
                for key, value in run.items():
                    if is_metric(key, value):
                        yield series_id, run_id, key, float(value)
        else:
            for key, value in series.items():
                if is_metric(key, value):
                    yield series_id, (), key, float(value)


def load_allowlist(path):
    """Parses (report_glob, metric_glob) lines; missing file = empty."""
    rules = []
    if not path or not os.path.exists(path):
        return rules
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) != 2:
                sys.exit(f"error: {path}: malformed line {raw!r} "
                         "(want 'REPORT_GLOB METRIC_GLOB')")
            rules.append((fields[0], fields[1]))
    return rules


def allowlisted(rules, report_name, metric):
    return any(fnmatch.fnmatch(report_name, report_glob) and
               fnmatch.fnmatch(metric, metric_glob)
               for report_glob, metric_glob in rules)


def diff_reports(base, fresh, threshold, path_label, allow_rules):
    """Returns (regressions, allowed, compared) for one report pair."""
    fresh_values = {(s, r, m): v for s, r, m, v in metric_rows(fresh)}
    regressions = []
    allowed = []
    compared = 0
    for series_id, run_id, metric, base_value in metric_rows(base):
        key = (series_id, run_id, metric)
        if key not in fresh_values or base_value <= 0:
            continue
        compared += 1
        fresh_value = fresh_values[key]
        change = fresh_value / base_value - 1.0
        name = label(series_id)
        if run_id:
            name += " [" + label(run_id) + "]"
        line = (f"  {path_label}: {name} {metric} "
                f"{base_value:.1f} -> {fresh_value:.1f} "
                f"({change:+.1%})")
        if change < -threshold:
            if allowlisted(allow_rules, path_label, metric):
                allowed.append(line)
            else:
                regressions.append(line)
        else:
            print("ok " + line.strip())
    return regressions, allowed, compared


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot read {path}: {err}")


def main():
    parser = argparse.ArgumentParser(
        description="Flag bench throughput regressions vs baselines.")
    parser.add_argument("files", nargs="*",
                        help="BASELINE FRESH report pair")
    parser.add_argument("--baseline-dir",
                        help="directory of committed BENCH_*.json")
    parser.add_argument("--fresh-dir",
                        help="directory of freshly produced reports")
    parser.add_argument("--threshold", type=float,
                        default=THRESHOLD_DEFAULT,
                        help="regression fraction (default 0.15)")
    parser.add_argument("--allowlist", default=ALLOWLIST_DEFAULT,
                        help="per-bench allowlist file of "
                             "'REPORT_GLOB METRIC_GLOB' lines "
                             "(default scripts/bench_allowlist.txt; "
                             "pass /dev/null to disable)")
    args = parser.parse_args()
    allow_rules = load_allowlist(args.allowlist)

    pairs = []
    if args.baseline_dir or args.fresh_dir:
        if not (args.baseline_dir and args.fresh_dir):
            parser.error("--baseline-dir and --fresh-dir go together")
        pattern = os.path.join(args.baseline_dir, "BENCH_*.json")
        for base_path in sorted(glob.glob(pattern)):
            fresh_path = os.path.join(args.fresh_dir,
                                      os.path.basename(base_path))
            if os.path.exists(fresh_path):
                pairs.append((base_path, fresh_path))
            else:
                print(f"skip {os.path.basename(base_path)}: "
                      "no fresh report")
    elif len(args.files) == 2:
        pairs.append((args.files[0], args.files[1]))
    else:
        parser.error("pass BASELINE FRESH or --baseline-dir/--fresh-dir")

    regressions = []
    allowed = []
    compared = 0
    for base_path, fresh_path in pairs:
        base, fresh = load(base_path), load(fresh_path)
        found, waived, n = diff_reports(base, fresh, args.threshold,
                                        os.path.basename(base_path),
                                        allow_rules)
        regressions.extend(found)
        allowed.extend(waived)
        compared += n

    print(f"\ncompared {compared} metric(s) across {len(pairs)} "
          f"report pair(s), threshold {args.threshold:.0%}")
    if allowed:
        print(f"ALLOWLISTED ({len(allowed)} — noisy wall-clock "
              "metrics, not gating):")
        for line in allowed:
            print(line)
    if regressions:
        print(f"REGRESSIONS ({len(regressions)}):")
        for line in regressions:
            print(line)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
