#!/usr/bin/env bash
# Tier-1 verification:
#   1. full build + ctest with tracepoints compiled in (FIDR_TRACE=ON);
#   2. the same with -DFIDR_TRACE=OFF, proving the no-op build;
#   3. the parallel data plane and obs registries under TSan;
#   4. overhead smoke check: the traced build (tracer disabled, the
#      production default) stays within 15% of the untraced build on
#      the FIDR write-path micro bench.
# Run from the repo root:
#
#   scripts/tier1.sh [build-dir] [notrace-build-dir] [tsan-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
NOTRACE_DIR="${2:-build-notrace}"
TSAN_DIR="${3:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build (FIDR_TRACE=ON) + full test suite =="
cmake -B "$BUILD_DIR" -S . -DFIDR_TRACE=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== tier-1: build (FIDR_TRACE=OFF) + full test suite =="
cmake -B "$NOTRACE_DIR" -S . -DFIDR_TRACE=OFF
cmake --build "$NOTRACE_DIR" -j "$JOBS"
ctest --test-dir "$NOTRACE_DIR" --output-on-failure -j "$JOBS"

echo "== tier-1: thread-pool/determinism/obs tests under TSan =="
cmake -B "$TSAN_DIR" -S . -DFIDR_SANITIZE=thread \
    -DFIDR_BUILD_BENCHES=OFF -DFIDR_BUILD_EXAMPLES=OFF \
    -DFIDR_BUILD_TOOLS=OFF
cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_thread_pool test_parallel_determinism test_obs
"$TSAN_DIR"/tests/test_thread_pool
"$TSAN_DIR"/tests/test_parallel_determinism
"$TSAN_DIR"/tests/test_obs

echo "== tier-1: tracepoint overhead smoke (traced <= 1.15x untraced) =="
run_write_path() {
    "$1"/bench/bench_micro_primitives \
        --benchmark_filter='BM_FidrWritePath$' \
        --benchmark_min_time=0.2 \
        --benchmark_format=json 2>/dev/null |
        python3 -c 'import json, sys
print([b["real_time"] for b in json.load(sys.stdin)["benchmarks"]][0])'
}
T1="$(run_write_path "$BUILD_DIR")"
T2="$(run_write_path "$BUILD_DIR")"
U1="$(run_write_path "$NOTRACE_DIR")"
U2="$(run_write_path "$NOTRACE_DIR")"
python3 - "$T1" "$T2" "$U1" "$U2" <<'EOF'
import sys
traced = min(float(sys.argv[1]), float(sys.argv[2]))
untraced = min(float(sys.argv[3]), float(sys.argv[4]))
ratio = traced / untraced
print(f"traced best {traced:.0f} ns, untraced best {untraced:.0f} ns "
      f"-> {ratio:.3f}x")
if ratio > 1.15:
    sys.exit("FAIL: tracepoint overhead exceeds 15%")
EOF

echo "tier-1 OK"
