#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, then the parallel data
# plane's thread-pool and determinism tests again under TSan
# (FIDR_SANITIZE=thread).  Run from the repo root:
#
#   scripts/tier1.sh [build-dir] [tsan-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build + full test suite =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== tier-1: thread-pool + determinism tests under TSan =="
cmake -B "$TSAN_DIR" -S . -DFIDR_SANITIZE=thread \
    -DFIDR_BUILD_BENCHES=OFF -DFIDR_BUILD_EXAMPLES=OFF
cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_thread_pool test_parallel_determinism
"$TSAN_DIR"/tests/test_thread_pool
"$TSAN_DIR"/tests/test_parallel_determinism

echo "tier-1 OK"
