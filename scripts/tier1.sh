#!/usr/bin/env bash
# Tier-1 verification:
#   1. full build + ctest with tracepoints + failpoints compiled in;
#   2. the same with -DFIDR_TRACE=OFF -DFIDR_FAULT=OFF, proving both
#      no-op builds (failpoint sites fold to constants);
#   3. the parallel data plane and obs registries under TSan;
#   4. fault stage: the crash-consistency sweep, the failpoint /
#      degraded-mode tests, and the journal corpus under ASan+UBSan
#      (ctest labels: fault = failpoint/journal/hwtree suites, crash =
#      the power-cut sweep);
#   5. overhead smoke check: the traced+faultable build (both disabled
#      at runtime, the production default) stays within 15% of the
#      fully stripped build on the FIDR write-path micro bench; the
#      same 1.15x envelope gates the PR 7 observability paths —
#      request-tagged tracepoints vs plain ones, exemplar-armed
#      histogram records vs plain ones, and exemplar-armed windowed
#      aggregation vs plain — so none of the new machinery taxes a
#      deployment that leaves it on;
#   6. write-path pipelining smoke: bench_pipeline_depth --smoke gates
#      on depth-invariant reduction results and pipeline occupancy
#      (plus wall-clock speedup on multi-lane hosts);
#   7. read-plane smoke: bench_read_throughput --smoke gates on
#      lane/cache-invariant payloads (capacity 0 = cache off is the
#      equivalence baseline), a nonzero Zipfian chunk-cache hit rate,
#      and fewer data-SSD fetch DMAs with the cache on;
#   8. GC steady-state smoke: bench_gc_steadystate --smoke gates on
#      churn never failing a write, GC overlapping in-flight batches,
#      the reserve watermark holding, and a clean fsck;
#   9. SIMD dispatch: the full suite re-run with FIDR_SIMD=scalar
#      (every result must survive on hosts without vector kernels),
#      and the cross-target boundary/digest fuzz suite under
#      ASan+UBSan so lane arithmetic in the new kernels is checked
#      for UB, not just for identical output;
#  10. cluster scale-out smoke: bench_cluster_scaling --smoke gates on
#      cluster-of-1 bit-identity with a bare FidrSystem, >= 3x 4-node
#      aggregate write throughput, and fingerprint-routed dedup within
#      2% of single-node global dedup;
#  11. bench regression diff (FATAL): any freshly produced
#      BENCH_*.json in the build tree is compared against the
#      committed baseline and >15% throughput drops fail tier-1.
#      Known-noisy wall-clock metrics are waived per bench via
#      scripts/bench_allowlist.txt; model-based reports (the cluster
#      projection) always gate.
# Run from the repo root:
#
#   scripts/tier1.sh [build-dir] [notrace-build-dir] [tsan-build-dir] \
#                    [asan-build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
NOTRACE_DIR="${2:-build-notrace}"
TSAN_DIR="${3:-build-tsan}"
ASAN_DIR="${4:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: build (FIDR_TRACE=ON FIDR_FAULT=ON) + full test suite =="
cmake -B "$BUILD_DIR" -S . -DFIDR_TRACE=ON -DFIDR_FAULT=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== tier-1: full test suite with SIMD kernels forced off =="
# Everything must pass on the portable scalar path: that is what a
# host without SSE4/AVX2/AVX-512 (or a non-x86 build) runs, and the
# reference the SIMD identity proofs lean on.
FIDR_SIMD=scalar ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -j "$JOBS"

echo "== tier-1: build (FIDR_TRACE=OFF FIDR_FAULT=OFF) + full test suite =="
cmake -B "$NOTRACE_DIR" -S . -DFIDR_TRACE=OFF -DFIDR_FAULT=OFF
cmake --build "$NOTRACE_DIR" -j "$JOBS"
ctest --test-dir "$NOTRACE_DIR" --output-on-failure -j "$JOBS"

echo "== tier-1: thread-pool/determinism/obs/pipeline tests under TSan =="
cmake -B "$TSAN_DIR" -S . -DFIDR_SANITIZE=thread \
    -DFIDR_BUILD_BENCHES=OFF -DFIDR_BUILD_EXAMPLES=OFF \
    -DFIDR_BUILD_TOOLS=OFF
cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_thread_pool test_parallel_determinism test_obs \
    test_pipeline_determinism test_read_plane test_gc test_cluster
"$TSAN_DIR"/tests/test_thread_pool
"$TSAN_DIR"/tests/test_parallel_determinism
"$TSAN_DIR"/tests/test_obs
# Write-path pipelining at depth 4: bit-identity across depths/shards
# and the power-cut-with-batches-in-flight crash sweep, raced by TSan.
"$TSAN_DIR"/tests/test_pipeline_determinism
# Read-plane fan-out: concurrent fetch+decompress lanes against the
# sharded two-tier chunk cache (hot/warm/spill lookups, admission) and
# atomic SSD read counters, raced by TSan.
"$TSAN_DIR"/tests/test_read_plane
# Incremental GC on the commit sequencer raced against in-flight write
# batches and concurrent read lanes (relocation, cache rekey across
# all tiers incl. the spill ring, fsck).
"$TSAN_DIR"/tests/test_gc
# Multi-node cluster: the router's parallel per-node fan-out raced by
# concurrent writers, a reader, and a GC thread across 3 nodes, plus
# the serial-billing locks on the simulated fabric.
"$TSAN_DIR"/tests/test_cluster

echo "== tier-1: fault injection + crash sweep under ASan/UBSan =="
cmake -B "$ASAN_DIR" -S . -DFIDR_SANITIZE=address \
    -DFIDR_BUILD_BENCHES=OFF -DFIDR_BUILD_EXAMPLES=OFF \
    -DFIDR_BUILD_TOOLS=OFF
cmake --build "$ASAN_DIR" -j "$JOBS" \
    --target test_fault test_crash_sweep test_journal test_hwtree \
    test_pipeline_determinism test_gc
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" -L 'fault|crash'

echo "== tier-1: SIMD kernels under ASan/UBSan (cross-target fuzz) =="
# The dispatch fuzz suite runs every kernel (scalar/sse4/avx2/avx512,
# whatever the host admits) over the same inputs, so one sanitized run
# covers all the new vector code paths plus the forced-scalar
# determinism re-check.
cmake --build "$ASAN_DIR" -j "$JOBS" \
    --target test_simd_dispatch test_parallel_determinism
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS" -L simd

echo "== tier-1: trace+fault overhead smoke (armed-off <= 1.15x stripped) =="
run_bench() {  # run_bench <build-dir> <filter-regex> -> best real_time
    "$1"/bench/bench_micro_primitives \
        --benchmark_filter="$2" \
        --benchmark_min_time=0.2 \
        --benchmark_format=json 2>/dev/null |
        python3 -c 'import json, sys
print([b["real_time"] for b in json.load(sys.stdin)["benchmarks"]][0])'
}
T1="$(run_bench "$BUILD_DIR" 'BM_FidrWritePath$')"
T2="$(run_bench "$BUILD_DIR" 'BM_FidrWritePath$')"
U1="$(run_bench "$NOTRACE_DIR" 'BM_FidrWritePath$')"
U2="$(run_bench "$NOTRACE_DIR" 'BM_FidrWritePath$')"
python3 - "$T1" "$T2" "$U1" "$U2" <<'EOF'
import sys
traced = min(float(sys.argv[1]), float(sys.argv[2]))
untraced = min(float(sys.argv[3]), float(sys.argv[4]))
ratio = traced / untraced
print(f"trace+fault best {traced:.0f} ns, stripped best {untraced:.0f} ns "
      f"-> {ratio:.3f}x")
if ratio > 1.15:
    sys.exit("FAIL: trace+fault overhead exceeds 15%")
EOF

echo "== tier-1: obs-path overhead smoke (tagged/exemplar/window <= 1.15x) =="
# Each new observability path vs its plain counterpart, best-of-two in
# the traced build: request-tagged tracepoint vs untagged, exemplar-
# armed histogram record vs plain, exemplar-armed windowed observe vs
# plain.  Keeps "turn the PR 7 machinery on" inside the same envelope
# the trace compile-out gate uses.
check_pair() {  # check_pair <label> <plain-filter> <armed-filter>
    P1="$(run_bench "$BUILD_DIR" "$2")"
    P2="$(run_bench "$BUILD_DIR" "$2")"
    A1="$(run_bench "$BUILD_DIR" "$3")"
    A2="$(run_bench "$BUILD_DIR" "$3")"
    python3 - "$1" "$P1" "$P2" "$A1" "$A2" <<'EOF'
import sys
label = sys.argv[1]
plain = min(float(sys.argv[2]), float(sys.argv[3]))
armed = min(float(sys.argv[4]), float(sys.argv[5]))
ratio = armed / plain
print(f"{label}: plain best {plain:.1f} ns, armed best {armed:.1f} ns "
      f"-> {ratio:.3f}x")
if ratio > 1.15:
    sys.exit(f"FAIL: {label} overhead exceeds 15%")
EOF
}
check_pair "request-tagged tracepoint" \
    'BM_TracerRecord$' 'BM_TracerRecordTagged$'
check_pair "exemplar-armed histogram" \
    'BM_HistogramRecord/0$' 'BM_HistogramRecord/1$'
check_pair "exemplar-armed windowed observe" \
    'BM_WindowedObserve/0$' 'BM_WindowedObserve/1$'

echo "== tier-1: write-path pipelining smoke (depth sweep) =="
# bench_pipeline_depth asserts its own gates: reduction results
# bit-identical across depth x shards; at depth 4 the pipeline
# genuinely held >=2 batches in flight (queue-depth occupancy — the
# right check on a 1-core host, where stages timeshare); on
# multi-lane hosts additionally measured hash||execute overlap > 0
# and depth-4 throughput strictly above depth-1.
(cd "$BUILD_DIR"/bench && ./bench_pipeline_depth --smoke)

echo "== tier-1: read-plane smoke (lanes x cache x tier sweep) =="
# bench_read_throughput asserts its own gates: payload checksums
# identical across every (read_lanes, cache capacity, tier config)
# cell — the capacity-0 cells prove the chunk cache is a pure
# optimization — fetch/hit/warm/spill counts lane-invariant, and on
# the Zipfian hot set, at the same DRAM budget: one-tier strictly
# beats cache-off, two-tier strictly beats one-tier on hit rate and
# data-SSD fetches, and the spill ring strictly beats plain two-tier.
(cd "$BUILD_DIR"/bench && ./bench_read_throughput --smoke)

echo "== tier-1: GC steady-state smoke (churn vs reserve watermark) =="
# bench_gc_steadystate asserts its own gates: every write succeeds
# under ~3x capacity of churn (GC never lets the log fill), GC steps
# overlap in-flight batches (nonzero concurrent_steps), the log ends
# above the reserve watermark, every surviving LBA reads back its last
# acknowledged content, and fsck is clean in every cell.
(cd "$BUILD_DIR"/bench && ./bench_gc_steadystate --smoke)

echo "== tier-1: cluster scale-out smoke (nodes x routing sweep) =="
# bench_cluster_scaling asserts its own gates: the cluster-of-1 cell
# is bit-identical to a bare FidrSystem (reduction stats, ledgers,
# journal occupancy, every payload byte), 4-node aggregate writes/s
# reaches >= 3x the 1-node cell under both routing modes, and the
# fingerprint-routed cluster deduplicates within 2% of single-node
# global dedup.
(cd "$BUILD_DIR"/bench && ./bench_cluster_scaling --smoke)

echo "== tier-1: bench regression diff vs committed baselines (fatal) =="
# Compares any BENCH_*.json the benches dropped in the build tree
# against the committed baselines; >15% throughput drops FAIL tier-1
# unless waived per bench in scripts/bench_allowlist.txt (wall-clock
# metrics on shared hosts — see bench_diff.py).
python3 scripts/bench_diff.py --baseline-dir . \
    --fresh-dir "$BUILD_DIR"/bench

echo "tier-1 OK"
