#include "fidr/accel/engines.h"

#include "fidr/hash/sha256_mb.h"

namespace fidr::accel {

CompressedChunk
CompressionEngine::compress(std::span<const std::uint8_t> chunk)
{
    CompressedChunk out = compress_stateless(chunk);
    record(out);
    return out;
}

CompressedChunk
CompressionEngine::compress_stateless(
    std::span<const std::uint8_t> chunk) const
{
    CompressedChunk out;
    out.raw_size = chunk.size();
    out.data = lz_compress(chunk, level_);
    return out;
}

void
CompressionEngine::record(const CompressedChunk &chunk)
{
    ++chunks_;
    bytes_in_ += chunk.raw_size;
    bytes_out_ += chunk.data.size();
}

std::vector<CompressedChunk>
CompressionEngine::compress_batch(std::span<const Buffer> chunks)
{
    std::vector<CompressedChunk> out;
    out.reserve(chunks.size());
    for (const Buffer &chunk : chunks)
        out.push_back(compress(chunk));
    return out;
}

Result<Buffer>
DecompressionEngine::decompress(std::span<const std::uint8_t> compressed)
{
    Result<Buffer> out = decompress_stateless(compressed);
    if (out.is_ok())
        record();
    return out;
}

Result<Buffer>
DecompressionEngine::decompress_stateless(
    std::span<const std::uint8_t> compressed) const
{
    return lz_decompress(compressed);
}

BaselineBatchResult
BaselineReductionAccelerator::process_batch(
    std::span<const Buffer> chunks, const std::vector<bool> &predicted_unique)
{
    FIDR_CHECK(chunks.size() == predicted_unique.size());
    BaselineBatchResult result;
    result.digests.resize(chunks.size());
    result.compressed.resize(chunks.size());
    // The hash cores see the whole batch at once, so the multi-buffer
    // engine interleaves them (digests and the hashes_ count are
    // identical to the per-chunk scalar path).
    std::vector<std::span<const std::uint8_t>> views(chunks.begin(),
                                                     chunks.end());
    sha256_mb_hash(views, result.digests.data());
    hashes_ += chunks.size();
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        // Compression cores run concurrently with the hash cores but
        // only on the chunks the host predicted unique.
        if (predicted_unique[i])
            result.compressed[i] = compressor_.compress(chunks[i]);
    }
    return result;
}

}  // namespace fidr::accel
