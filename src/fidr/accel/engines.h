/**
 * @file
 * Accelerator models: compression/decompression engines and the
 * baseline's integrated hash+compression accelerator.
 *
 * In the baseline (CIDR, Sec 2.3) hashing and compression cores share
 * one accelerator, which forces the host to predict unique chunks in
 * advance so a single batch transfer can feed both.  FIDR removes the
 * hashing cores (moved to the NIC) and turns the accelerator into a
 * dedicated Compression Engine that keeps compressed containers in
 * its on-board memory for direct P2P transfer to the data SSDs
 * (Sec 6.1).
 *
 * Compression itself is the real LZ codec from fidr/compress, run at
 * the "fast" effort level that matches FPGA match-finder behaviour.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/types.h"
#include "fidr/compress/lz.h"
#include "fidr/hash/digest.h"
#include "fidr/hash/sha256.h"

namespace fidr::accel {

/** Output of compressing one chunk. */
struct CompressedChunk {
    Buffer data;
    std::size_t raw_size = 0;
};

/** FIDR Compression Engine (also the baseline's compression cores). */
class CompressionEngine {
  public:
    explicit CompressionEngine(LzLevel level = LzLevel::kFast)
        : level_(level) {}

    /** Compresses one chunk. */
    CompressedChunk compress(std::span<const std::uint8_t> chunk);

    /**
     * Pure compression kernel: no engine counters touched, so
     * concurrent lanes may call it on disjoint chunks.  Pair each
     * result with one record() call on the orchestrating thread.
     */
    CompressedChunk compress_stateless(
        std::span<const std::uint8_t> chunk) const;

    /** Accounts one compress_stateless() result in the counters. */
    void record(const CompressedChunk &chunk);

    /** Compresses a batch, preserving order. */
    std::vector<CompressedChunk> compress_batch(
        std::span<const Buffer> chunks);

    std::uint64_t chunks_compressed() const { return chunks_; }
    std::uint64_t bytes_in() const { return bytes_in_; }
    std::uint64_t bytes_out() const { return bytes_out_; }

    /** Measured reduction across all compressed chunks so far. */
    double
    reduction_ratio() const
    {
        return bytes_in_ > 0
                   ? 1.0 - static_cast<double>(bytes_out_) /
                               static_cast<double>(bytes_in_)
                   : 0.0;
    }

  private:
    LzLevel level_;
    std::uint64_t chunks_ = 0;
    std::uint64_t bytes_in_ = 0;
    std::uint64_t bytes_out_ = 0;
};

/** FIDR Decompression Engine. */
class DecompressionEngine {
  public:
    /** Decompresses one stored chunk image. */
    Result<Buffer> decompress(std::span<const std::uint8_t> compressed);

    /**
     * Pure decompression kernel: no engine counters touched, so
     * concurrent read lanes may call it on disjoint chunks.  Pair each
     * successful result with one record() call on the orchestrating
     * thread (mirrors CompressionEngine::compress_stateless).
     */
    Result<Buffer> decompress_stateless(
        std::span<const std::uint8_t> compressed) const;

    /** Accounts one successful decompress_stateless() result. */
    void record() { ++chunks_; }

    std::uint64_t chunks_decompressed() const { return chunks_; }

  private:
    std::uint64_t chunks_ = 0;
};

/** Result of the baseline accelerator's single-pass batch. */
struct BaselineBatchResult {
    std::vector<Digest> digests;  ///< One per input chunk.
    /** Compressed output for chunks flagged predicted-unique;
     *  entries for predicted-duplicate chunks are empty. */
    std::vector<CompressedChunk> compressed;
};

/**
 * The baseline's integrated accelerator: hashes every chunk of the
 * batch and compresses those the host predicted unique (Sec 2.3).
 */
class BaselineReductionAccelerator {
  public:
    explicit BaselineReductionAccelerator(LzLevel level = LzLevel::kFast)
        : compressor_(level) {}

    BaselineBatchResult process_batch(
        std::span<const Buffer> chunks,
        const std::vector<bool> &predicted_unique);

    const CompressionEngine &compressor() const { return compressor_; }
    std::uint64_t hashes_computed() const { return hashes_; }

  private:
    CompressionEngine compressor_;
    std::uint64_t hashes_ = 0;
};

}  // namespace fidr::accel
