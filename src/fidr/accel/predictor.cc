#include "fidr/accel/predictor.h"

#include "fidr/common/status.h"
#include "fidr/hash/sha256.h"

namespace fidr::accel {

UniqueChunkPredictor::UniqueChunkPredictor(std::size_t window,
                                           unsigned fingerprint_bits)
    : window_(window),
      fingerprint_mask_(fingerprint_bits >= 64
                            ? ~0ull
                            : (1ull << fingerprint_bits) - 1)
{
    FIDR_CHECK(window_ > 0);
    FIDR_CHECK(fingerprint_bits >= 1);
    fifo_.reserve(window_);
}

bool
UniqueChunkPredictor::predict_unique(std::span<const std::uint8_t> chunk)
{
    ++predictions_;
    const std::uint64_t fp = fnv1a64(chunk) & fingerprint_mask_;
    if (set_.contains(fp))
        return false;  // Seen before: predicted duplicate.

    if (fifo_.size() < window_) {
        fifo_.push_back(fp);
    } else {
        set_.erase(fifo_[fifo_pos_]);
        fifo_[fifo_pos_] = fp;
        fifo_pos_ = (fifo_pos_ + 1) % window_;
    }
    set_.insert(fp);
    return true;
}

std::vector<bool>
UniqueChunkPredictor::predict_batch(std::span<const Buffer> chunks)
{
    std::vector<bool> out;
    out.reserve(chunks.size());
    for (const Buffer &chunk : chunks)
        out.push_back(predict_unique(chunk));
    return out;
}

}  // namespace fidr::accel
