/**
 * @file
 * Unique-chunk predictor: the baseline's host-software module
 * (paper Sec 2.3, Observation #3).
 *
 * CIDR's integrated accelerator needs to know, *before* the batch is
 * transferred, which chunks its compression cores should work on.  A
 * host-side predictor therefore scans every buffered chunk and guesses
 * unique/duplicate from a lightweight in-memory fingerprint set.  The
 * guess is validated after hashing: a false "duplicate" prediction
 * (chunk was actually unique) leaves the chunk uncompressed and forces
 * an expensive second pass.
 *
 * This module is exactly the CPU- and memory-bandwidth hotspot FIDR
 * removes (32.7% of CPU, 23.7% of DRAM bandwidth): the prediction scan
 * touches every payload byte in host memory.
 */
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "fidr/common/types.h"

namespace fidr::accel {

/** Window-limited fingerprint predictor. */
class UniqueChunkPredictor {
  public:
    /**
     * @param window max fingerprints retained (host DRAM budget).
     * @param fingerprint_bits fingerprint width; CIDR-style predictors
     *        trade accuracy for speed/footprint, and narrow
     *        fingerprints produce the false-duplicate predictions the
     *        validation pass must repair (Sec 2.3).
     */
    explicit UniqueChunkPredictor(std::size_t window = 1 << 20,
                                  unsigned fingerprint_bits = 64);

    /**
     * Predicts whether `chunk` is unique (true) or duplicate (false),
     * and records its fingerprint for future predictions.
     */
    bool predict_unique(std::span<const std::uint8_t> chunk);

    /** Batch form; one flag per chunk. */
    std::vector<bool> predict_batch(std::span<const Buffer> chunks);

    std::uint64_t predictions() const { return predictions_; }
    std::size_t fingerprints() const { return set_.size(); }

  private:
    std::size_t window_;
    std::uint64_t fingerprint_mask_;
    std::unordered_set<std::uint64_t> set_;
    std::vector<std::uint64_t> fifo_;  ///< Ring for window eviction.
    std::size_t fifo_pos_ = 0;
    std::uint64_t predictions_ = 0;
};

}  // namespace fidr::accel
