#include "fidr/btree/bplus_tree.h"

#include <algorithm>

namespace fidr::btree {

struct BPlusTree::Node {
    bool leaf = true;
    std::vector<Key> keys;
    std::vector<Value> values;     ///< Leaf only; parallel to keys.
    std::vector<Node *> children;  ///< Internal only; keys.size() + 1.
    Node *next = nullptr;          ///< Leaf chain.
};

namespace {

/** Index of the child to descend into for `key`. */
std::size_t
child_index(const std::vector<BPlusTree::Key> &keys, BPlusTree::Key key)
{
    // Number of separators <= key; separator semantics: children[i+1]
    // holds keys >= keys[i], children[0] holds keys < keys[0].
    return static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

BPlusTree::BPlusTree(unsigned order) : order_(order)
{
    FIDR_CHECK(order_ >= 4);
    root_ = new Node();
}

BPlusTree::~BPlusTree()
{
    destroy(root_);
}

BPlusTree::BPlusTree(BPlusTree &&other) noexcept
    : order_(other.order_), root_(other.root_), size_(other.size_)
{
    other.root_ = new Node();
    other.size_ = 0;
}

BPlusTree &
BPlusTree::operator=(BPlusTree &&other) noexcept
{
    if (this != &other) {
        destroy(root_);
        order_ = other.order_;
        root_ = other.root_;
        size_ = other.size_;
        other.root_ = new Node();
        other.size_ = 0;
    }
    return *this;
}

void
BPlusTree::destroy(Node *node)
{
    if (!node)
        return;
    if (!node->leaf) {
        for (Node *child : node->children)
            destroy(child);
    }
    delete node;
}

void
BPlusTree::clear()
{
    destroy(root_);
    root_ = new Node();
    size_ = 0;
}

BPlusTree::Node *
BPlusTree::leaf_for(Key key) const
{
    Node *node = root_;
    while (!node->leaf)
        node = node->children[child_index(node->keys, key)];
    return node;
}

std::optional<BPlusTree::Value>
BPlusTree::find(Key key) const
{
    const Node *leaf = leaf_for(key);
    const auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    if (it == leaf->keys.end() || *it != key)
        return std::nullopt;
    return leaf->values[static_cast<std::size_t>(it - leaf->keys.begin())];
}

std::vector<std::optional<BPlusTree::Value>>
BPlusTree::lookup_batch(std::span<const Key> keys) const
{
    std::vector<std::optional<Value>> out;
    out.reserve(keys.size());
    for (Key key : keys)
        out.push_back(find(key));
    return out;
}

std::vector<std::pair<BPlusTree::Key, BPlusTree::Value>>
BPlusTree::range(Key lo, Key hi) const
{
    std::vector<std::pair<Key, Value>> out;
    const Node *leaf = leaf_for(lo);
    while (leaf) {
        for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
            if (leaf->keys[i] < lo)
                continue;
            if (leaf->keys[i] > hi)
                return out;
            out.emplace_back(leaf->keys[i], leaf->values[i]);
        }
        leaf = leaf->next;
    }
    return out;
}

unsigned
BPlusTree::height() const
{
    unsigned h = 1;
    const Node *node = root_;
    while (!node->leaf) {
        node = node->children[0];
        ++h;
    }
    return h;
}

bool
BPlusTree::insert(Key key, Value value)
{
    // Descend, recording the path for split propagation.
    std::vector<Node *> path;
    Node *node = root_;
    while (!node->leaf) {
        path.push_back(node);
        node = node->children[child_index(node->keys, key)];
    }

    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
        node->values[pos] = value;
        return false;
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + pos, value);
    ++size_;

    if (node->keys.size() < order_)
        return true;

    // Split the leaf: right half moves to a new node.
    const std::size_t mid = node->keys.size() / 2;
    Node *right = new Node();
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(node->values.begin() + mid, node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right;
    insert_into_parent(path, node, right->keys.front(), right);
    return true;
}

void
BPlusTree::insert_into_parent(std::vector<Node *> &path, Node *left, Key sep,
                              Node *right)
{
    if (path.empty()) {
        Node *new_root = new Node();
        new_root->leaf = false;
        new_root->keys.push_back(sep);
        new_root->children = {left, right};
        root_ = new_root;
        return;
    }
    Node *parent = path.back();
    path.pop_back();

    const auto cit =
        std::find(parent->children.begin(), parent->children.end(), left);
    FIDR_CHECK(cit != parent->children.end());
    const auto idx = static_cast<std::size_t>(cit - parent->children.begin());
    parent->keys.insert(parent->keys.begin() + idx, sep);
    parent->children.insert(parent->children.begin() + idx + 1, right);

    if (parent->keys.size() < order_)
        return;

    // Split the internal node; the middle key is promoted, not kept.
    const std::size_t mid = parent->keys.size() / 2;
    const Key promoted = parent->keys[mid];
    Node *new_right = new Node();
    new_right->leaf = false;
    new_right->keys.assign(parent->keys.begin() + mid + 1,
                           parent->keys.end());
    new_right->children.assign(parent->children.begin() + mid + 1,
                               parent->children.end());
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);
    insert_into_parent(path, parent, promoted, new_right);
}

bool
BPlusTree::erase(Key key)
{
    std::vector<Node *> path;
    Node *node = root_;
    while (!node->leaf) {
        path.push_back(node);
        node = node->children[child_index(node->keys, key)];
    }

    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key)
        return false;
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    node->keys.erase(it);
    node->values.erase(node->values.begin() + pos);
    --size_;

    rebalance(path, node);
    return true;
}

void
BPlusTree::rebalance(std::vector<Node *> &path, Node *node)
{
    // Minimum key counts: leaves keep order/2 entries; internal nodes
    // keep order/2 children, i.e. order/2 - 1 keys.  The distinction
    // matters: merging two minimal internal nodes pulls the parent
    // separator down, so their minimum must leave room for it.
    const auto min_keys = [this](const Node *n) -> std::size_t {
        return n->leaf ? order_ / 2 : order_ / 2 - 1;
    };

    while (true) {
        if (path.empty()) {
            // Root: collapse when an internal root has a single child.
            if (!node->leaf && node->children.size() == 1) {
                root_ = node->children[0];
                delete node;
            }
            return;
        }
        if (node->keys.size() >= min_keys(node))
            return;

        Node *parent = path.back();
        path.pop_back();
        const auto cit = std::find(parent->children.begin(),
                                   parent->children.end(), node);
        FIDR_CHECK(cit != parent->children.end());
        const auto idx =
            static_cast<std::size_t>(cit - parent->children.begin());

        Node *left = idx > 0 ? parent->children[idx - 1] : nullptr;
        Node *right = idx + 1 < parent->children.size()
                          ? parent->children[idx + 1]
                          : nullptr;

        if (left && left->keys.size() > min_keys(left)) {
            // Borrow the left sibling's last entry/child.
            if (node->leaf) {
                node->keys.insert(node->keys.begin(), left->keys.back());
                node->values.insert(node->values.begin(),
                                    left->values.back());
                left->keys.pop_back();
                left->values.pop_back();
                parent->keys[idx - 1] = node->keys.front();
            } else {
                node->keys.insert(node->keys.begin(),
                                  parent->keys[idx - 1]);
                node->children.insert(node->children.begin(),
                                      left->children.back());
                parent->keys[idx - 1] = left->keys.back();
                left->keys.pop_back();
                left->children.pop_back();
            }
            return;
        }
        if (right && right->keys.size() > min_keys(right)) {
            // Borrow the right sibling's first entry/child.
            if (node->leaf) {
                node->keys.push_back(right->keys.front());
                node->values.push_back(right->values.front());
                right->keys.erase(right->keys.begin());
                right->values.erase(right->values.begin());
                parent->keys[idx] = right->keys.front();
            } else {
                node->keys.push_back(parent->keys[idx]);
                node->children.push_back(right->children.front());
                parent->keys[idx] = right->keys.front();
                right->keys.erase(right->keys.begin());
                right->children.erase(right->children.begin());
            }
            return;
        }

        // Merge with a sibling (prefer left so `node` keeps identity
        // semantics simple: we always merge right-into-left).
        Node *into = left ? left : node;
        Node *from = left ? node : right;
        const std::size_t sep_idx = left ? idx - 1 : idx;
        FIDR_CHECK(from != nullptr);

        if (into->leaf) {
            into->keys.insert(into->keys.end(), from->keys.begin(),
                              from->keys.end());
            into->values.insert(into->values.end(), from->values.begin(),
                                from->values.end());
            into->next = from->next;
        } else {
            into->keys.push_back(parent->keys[sep_idx]);
            into->keys.insert(into->keys.end(), from->keys.begin(),
                              from->keys.end());
            into->children.insert(into->children.end(),
                                  from->children.begin(),
                                  from->children.end());
        }
        parent->keys.erase(parent->keys.begin() + sep_idx);
        parent->children.erase(parent->children.begin() + sep_idx + 1);
        delete from;

        node = parent;
    }
}

Status
BPlusTree::validate() const
{
    const std::size_t min_fill = order_ / 2;
    std::size_t counted = 0;

    // Iterative DFS with per-node (lo, hi] key bounds.
    struct Frame {
        const Node *node;
        bool has_lo;
        Key lo;
        bool has_hi;
        Key hi;
        unsigned depth;
    };
    std::vector<Frame> stack{{root_, false, 0, false, 0, 0}};
    std::vector<const Node *> leaves_by_dfs;
    unsigned leaf_depth = 0;
    bool leaf_depth_set = false;

    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const Node *n = f.node;

        if (!std::is_sorted(n->keys.begin(), n->keys.end()))
            return Status::internal("keys not sorted");
        if (std::adjacent_find(n->keys.begin(), n->keys.end()) !=
            n->keys.end())
            return Status::internal("duplicate key in node");
        for (Key k : n->keys) {
            if (f.has_lo && k < f.lo)
                return Status::internal("key below subtree bound");
            if (f.has_hi && k >= f.hi)
                return Status::internal("key above subtree bound");
        }
        const std::size_t node_min = n->leaf ? min_fill : min_fill - 1;
        if (n != root_ && n->keys.size() < node_min)
            return Status::internal("node underfilled");
        if (n->keys.size() >= order_)
            return Status::internal("node overfilled");

        if (n->leaf) {
            if (n->values.size() != n->keys.size())
                return Status::internal("leaf keys/values length mismatch");
            if (!leaf_depth_set) {
                leaf_depth = f.depth;
                leaf_depth_set = true;
            } else if (f.depth != leaf_depth) {
                return Status::internal("leaves at different depths");
            }
            counted += n->keys.size();
            leaves_by_dfs.push_back(n);
            continue;
        }

        if (n->children.size() != n->keys.size() + 1)
            return Status::internal("child count != keys + 1");
        // Push children right-to-left so DFS pops them left-to-right.
        for (std::size_t i = n->children.size(); i-- > 0;) {
            Frame cf;
            cf.node = n->children[i];
            cf.depth = f.depth + 1;
            cf.has_lo = i > 0 || f.has_lo;
            cf.lo = i > 0 ? n->keys[i - 1] : f.lo;
            cf.has_hi = i < n->keys.size() || f.has_hi;
            cf.hi = i < n->keys.size() ? n->keys[i] : f.hi;
            stack.push_back(cf);
        }
    }

    if (counted != size_)
        return Status::internal("size counter mismatch");

    // Leaf chain must visit exactly the leaves in DFS (key) order.
    // leaves_by_dfs was built by popping left-to-right, so it is in
    // ascending key order already.
    const Node *chain = root_;
    while (!chain->leaf)
        chain = chain->children[0];
    for (const Node *expect : leaves_by_dfs) {
        if (chain != expect)
            return Status::internal("leaf chain out of order");
        chain = chain->next;
    }
    if (chain != nullptr)
        return Status::internal("leaf chain has trailing nodes");

    return Status::ok();
}

}  // namespace fidr::btree
