/**
 * @file
 * In-memory B+ tree mapping 64-bit keys to 64-bit values.
 *
 * This is the baseline's software table-cache index (paper Sec 7.1
 * uses an open-source PALM-style B+ tree): it maps a Hash-PBN bucket
 * index on the table SSD to the cache-line slot holding that bucket in
 * host DRAM.  The FIDR Cache HW-Engine replaces this structure with
 * the pipelined hardware tree in fidr/hwtree.
 *
 * A PALM-style batch interface (lookup_batch) is provided because the
 * baseline software processes requests in accelerator-sized batches;
 * within this software model it simply amortizes nothing but preserves
 * the call pattern the CPU-cost accounting bills for.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fidr/common/status.h"

namespace fidr::btree {

/** B+ tree with linked leaves; not thread-safe (host software model). */
class BPlusTree {
  public:
    using Key = std::uint64_t;
    using Value = std::uint64_t;

    /** @param order max children per internal node (>= 4, even). */
    explicit BPlusTree(unsigned order = 64);
    ~BPlusTree();

    BPlusTree(const BPlusTree &) = delete;
    BPlusTree &operator=(const BPlusTree &) = delete;
    BPlusTree(BPlusTree &&) noexcept;
    BPlusTree &operator=(BPlusTree &&) noexcept;

    /** Inserts or overwrites; returns true when the key was new. */
    bool insert(Key key, Value value);

    /** Removes `key`; returns true when it was present. */
    bool erase(Key key);

    /** Point lookup. */
    std::optional<Value> find(Key key) const;

    /** PALM-style batch lookup: one result slot per input key. */
    std::vector<std::optional<Value>> lookup_batch(
        std::span<const Key> keys) const;

    /** All (key, value) pairs with key in [lo, hi], in key order. */
    std::vector<std::pair<Key, Value>> range(Key lo, Key hi) const;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    unsigned height() const;

    /**
     * Structural invariant check (key ordering, fill factors, leaf
     * chain consistency, size agreement); used by property tests.
     */
    Status validate() const;

    void clear();

  private:
    struct Node;

    Node *leaf_for(Key key) const;
    void insert_into_parent(std::vector<Node *> &path, Node *left, Key sep,
                            Node *right);
    void rebalance(std::vector<Node *> &path, Node *node);
    static void destroy(Node *node);

    unsigned order_;
    Node *root_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace fidr::btree
