#include "fidr/cache/chunk_cache.h"

namespace fidr::cache {

ChunkReadCache::ChunkReadCache(std::uint64_t capacity_bytes,
                               std::size_t shards)
    : capacity_bytes_(capacity_bytes)
{
    FIDR_CHECK(shards > 0 && (shards & (shards - 1)) == 0);
    shard_mask_ = shards - 1;
    shard_capacity_ = capacity_bytes / shards;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s)
        shards_.push_back(std::make_unique<Shard>());
}

std::size_t
ChunkReadCache::shard_of(const ChunkKey &key) const
{
    return ChunkKeyHash{}(key) & shard_mask_;
}

std::optional<Buffer>
ChunkReadCache::lookup(const ChunkKey &key)
{
    Shard &shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.stats.misses;
        return std::nullopt;
    }
    ++shard.stats.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->payload;
}

void
ChunkReadCache::insert(const ChunkKey &key, const Buffer &payload)
{
    if (payload.size() > shard_capacity_)
        return;  // Would evict the whole shard for one entry.
    Shard &shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        shard.used_bytes -= it->second->payload.size();
        shard.used_bytes += payload.size();
        it->second->payload = payload;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    while (!shard.lru.empty() &&
           shard.used_bytes + payload.size() > shard_capacity_) {
        const Entry &victim = shard.lru.back();
        shard.used_bytes -= victim.payload.size();
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        ++shard.stats.evictions;
    }
    shard.lru.push_front(Entry{key, payload});
    shard.index.emplace(key, shard.lru.begin());
    shard.used_bytes += payload.size();
    ++shard.stats.insertions;
}

void
ChunkReadCache::invalidate(const ChunkKey &key)
{
    Shard &shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end())
        return;
    shard.used_bytes -= it->second->payload.size();
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.invalidations;
}

bool
ChunkReadCache::rekey(const ChunkKey &from, const ChunkKey &to)
{
    if (from == to)
        return false;
    Buffer payload;
    {
        Shard &shard = shard_for(from);
        const std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(from);
        if (it == shard.index.end())
            return false;
        payload = std::move(it->second->payload);
        shard.used_bytes -= payload.size();
        shard.lru.erase(it->second);
        shard.index.erase(it);
        // The old physical location is gone whatever happens next, so
        // this is an invalidation first and a move second.
        ++shard.stats.invalidations;
        ++shard.stats.rekeys;
    }
    insert(to, payload);
    return true;
}

void
ChunkReadCache::invalidate_container(std::uint64_t container_id)
{
    // A container's chunks hash across shards, so every shard scans.
    // Invalidation happens at compaction rate, not request rate.
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        for (auto it = shard->lru.begin(); it != shard->lru.end();) {
            if (it->key.container_id != container_id) {
                ++it;
                continue;
            }
            shard->used_bytes -= it->payload.size();
            shard->index.erase(it->key);
            it = shard->lru.erase(it);
            ++shard->stats.invalidations;
        }
    }
}

void
ChunkReadCache::clear()
{
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        shard->stats.invalidations += shard->lru.size();
        shard->lru.clear();
        shard->index.clear();
        shard->used_bytes = 0;
    }
}

ChunkCacheStats
ChunkReadCache::stats() const
{
    ChunkCacheStats out;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        out.hits += shard->stats.hits;
        out.misses += shard->stats.misses;
        out.insertions += shard->stats.insertions;
        out.evictions += shard->stats.evictions;
        out.invalidations += shard->stats.invalidations;
        out.rekeys += shard->stats.rekeys;
    }
    return out;
}

ChunkCacheStats
ChunkReadCache::shard_stats(std::size_t shard) const
{
    const std::lock_guard<std::mutex> lock(shards_.at(shard)->mutex);
    return shards_.at(shard)->stats;
}

std::uint64_t
ChunkReadCache::used_bytes() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->used_bytes;
    }
    return total;
}

std::size_t
ChunkReadCache::entries() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->lru.size();
    }
    return total;
}

}  // namespace fidr::cache
