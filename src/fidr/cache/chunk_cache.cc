#include "fidr/cache/chunk_cache.h"

#include <algorithm>

namespace fidr::cache {

namespace {

/** Row-seeded key hash for the count-min sketch (independent of the
 *  shard-routing hash so sketch collisions don't follow shard load). */
std::uint64_t
sketch_hash(const ChunkKey &key, std::uint64_t row)
{
    std::uint64_t x = key.container_id * 0xD6E8FEB86659FD93ull +
                      key.offset_units + (row + 1) * 0xA24BAED4963EE407ull;
    x ^= x >> 32;
    x *= 0xD6E8FEB86659FD93ull;
    x ^= x >> 32;
    x *= 0xD6E8FEB86659FD93ull;
    x ^= x >> 32;
    return x;
}

}  // namespace

void
ChunkReadCache::GhostList::push(const ChunkKey &key)
{
    if (cap == 0)
        return;
    const auto it = index.find(key);
    if (it != index.end()) {
        order.splice(order.begin(), order, it->second);
        return;
    }
    while (order.size() >= cap) {
        index.erase(order.back());
        order.pop_back();
    }
    order.push_front(key);
    index.emplace(key, order.begin());
}

bool
ChunkReadCache::GhostList::take(const ChunkKey &key)
{
    const auto it = index.find(key);
    if (it == index.end())
        return false;
    order.erase(it->second);
    index.erase(it);
    return true;
}

void
ChunkReadCache::GhostList::clear()
{
    order.clear();
    index.clear();
}

void
ChunkReadCache::Sketch::add(const ChunkKey &key)
{
    for (std::size_t row = 0; row < kRows; ++row) {
        std::uint8_t &count =
            counts[row * kWidth + (sketch_hash(key, row) & (kWidth - 1))];
        if (count < 15)  // Saturate at 4 bits: aging stays meaningful.
            ++count;
    }
    // TinyLFU aging: halve everything once a window's worth of
    // distinct-ish traffic accumulated, so stale popularity decays.
    if (++adds >= 8 * kWidth) {
        adds = 0;
        for (std::uint8_t &count : counts)
            count >>= 1;
    }
}

unsigned
ChunkReadCache::Sketch::estimate(const ChunkKey &key) const
{
    unsigned best = 255;
    for (std::size_t row = 0; row < kRows; ++row) {
        best = std::min<unsigned>(
            best,
            counts[row * kWidth + (sketch_hash(key, row) & (kWidth - 1))]);
    }
    return best;
}

ChunkReadCache::ChunkReadCache(std::uint64_t capacity_bytes,
                               std::size_t shards,
                               ChunkCacheTuning tuning,
                               SpillBackend *spill)
    : capacity_bytes_(capacity_bytes), tuning_(tuning),
      spill_backend_(spill)
{
    FIDR_CHECK(shards > 0 && (shards & (shards - 1)) == 0);
    shard_mask_ = shards - 1;
    shard_capacity_ = capacity_bytes / shards;
    if (tuning_.two_tier && spill_backend_)
        spill_capacity_ = spill_backend_->capacity_bytes();
    adapt_step_ = static_cast<std::uint64_t>(
        static_cast<double>(shard_capacity_) *
        tuning_.adapt_step_fraction);
    const auto initial_target = static_cast<std::uint64_t>(
        static_cast<double>(shard_capacity_) *
        tuning_.hot_fraction_initial);
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->hot_target =
            tuning_.two_tier ? initial_target : shard_capacity_;
        shard->ghost_hot.cap = tuning_.two_tier ? tuning_.ghost_entries : 0;
        shard->ghost_warm.cap =
            tuning_.two_tier ? tuning_.ghost_entries : 0;
        shards_.push_back(std::move(shard));
    }
}

std::size_t
ChunkReadCache::shard_of(const ChunkKey &key) const
{
    return ChunkKeyHash{}(key) & shard_mask_;
}

std::uint64_t
ChunkReadCache::billed_hot(const Entry &entry) const
{
    // Two-tier hot entries retain the compressed image so demotion is
    // free (no recompression, ever); one-tier entries bill raw only,
    // reproducing the PR 5 footprint exactly.
    return entry.raw.size() +
           (tuning_.two_tier ? entry.compressed.size() : 0);
}

std::uint64_t
ChunkReadCache::billed_warm(const Entry &entry) const
{
    return entry.compressed.size();
}

void
ChunkReadCache::bump_hot_target(Shard &shard, bool grow)
{
    const auto lo = static_cast<std::uint64_t>(
        static_cast<double>(shard_capacity_) * tuning_.hot_fraction_min);
    const auto hi = static_cast<std::uint64_t>(
        static_cast<double>(shard_capacity_) * tuning_.hot_fraction_max);
    if (grow)
        // Quarter step: hot bytes are ~3-4x as expensive per resident
        // entry as warm bytes (see ChunkCacheTuning::adapt_step_fraction).
        shard.hot_target =
            std::min(hi, shard.hot_target + adapt_step_ / 4);
    else
        shard.hot_target = std::max(
            lo, shard.hot_target > adapt_step_
                    ? shard.hot_target - adapt_step_
                    : 0);
}

TierLookup
ChunkReadCache::lookup(const ChunkKey &key)
{
    Shard &shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        Entry &entry = *it->second.it;
        if (it->second.hot) {
            ++shard.stats.hits;
            ++shard.stats.hot.hits;
            shard.hot.splice(shard.hot.begin(), shard.hot, it->second.it);
            TierLookup out;
            out.tier = CacheTier::kHot;
            out.raw = entry.raw;
            out.raw_size = entry.raw_size;
            return out;
        }
        ++shard.stats.hits;
        ++shard.stats.warm.hits;
        shard.warm.splice(shard.warm.begin(), shard.warm, it->second.it);
        // A warm hit still inside the hot ghost: a bigger hot tier
        // would have skipped this decompress.  Grow the hot target.
        if (shard.ghost_hot.take(key)) {
            ++shard.stats.ghost_hot_hits;
            bump_hot_target(shard, /*grow=*/true);
        }
        TierLookup out;
        out.tier = CacheTier::kWarm;
        out.compressed = entry.compressed;
        out.raw_size = entry.raw_size;
        return out;
    }

    // Not in DRAM: probe the spill index (shard -> spill lock order).
    if (spill_enabled()) {
        const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
        const auto spilled = spill_.index.find(key);
        if (spilled != spill_.index.end()) {
            ++shard.stats.hits;
            ++shard.stats.spill.hits;
            // The image fell out of DRAM entirely: a bigger warm tier
            // would have held it.  Shrink the hot target.
            if (shard.ghost_warm.take(key))
                ++shard.stats.ghost_warm_hits;
            bump_hot_target(shard, /*grow=*/false);
            TierLookup out;
            out.tier = CacheTier::kSpill;
            out.spill = spilled->second;
            out.raw_size = spilled->second.raw_size;
            return out;
        }
    }

    ++shard.stats.misses;
    if (tuning_.admission)
        shard.sketch.add(key);
    if (shard.ghost_warm.take(key)) {
        ++shard.stats.ghost_warm_hits;
        bump_hot_target(shard, /*grow=*/false);
    }
    return {};
}

CacheTier
ChunkReadCache::peek(const ChunkKey &key) const
{
    const Shard &shard = *shards_[shard_of(key)];
    {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.index.find(key);
        if (it != shard.index.end())
            return it->second.hot ? CacheTier::kHot : CacheTier::kWarm;
    }
    if (spill_enabled()) {
        const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
        if (spill_.index.contains(key))
            return CacheTier::kSpill;
    }
    return CacheTier::kNone;
}

void
ChunkReadCache::demote_tail(Shard &shard)
{
    Entry &victim = shard.hot.back();
    shard.hot_bytes -= billed_hot(victim);
    if (!tuning_.two_tier || victim.compressed.empty()) {
        // Nothing to demote to: one-tier mode (or an entry without a
        // compressed image) drops straight out of DRAM.
        shard.index.erase(victim.key);
        shard.hot.pop_back();
        ++shard.stats.evictions;
        ++shard.stats.hot.evictions;
        return;
    }
    victim.raw = Buffer();  // Free the decompressed bytes.
    shard.ghost_hot.push(victim.key);
    ++shard.stats.demotions;
    ++shard.stats.hot.evictions;
    ++shard.stats.warm.insertions;
    shard.warm_bytes += billed_warm(victim);
    auto slot = shard.index.find(victim.key);
    // Demoted entry becomes the warm tier's MRU (ARC-style).
    shard.warm.splice(shard.warm.begin(), shard.hot,
                      std::prev(shard.hot.end()));
    slot->second.hot = false;
    slot->second.it = shard.warm.begin();
}

void
ChunkReadCache::spill_drop_overlaps(Shard &shard, std::uint64_t offset,
                                    std::uint64_t size)
{
    // Entries whose bytes the ring is about to overwrite leave the
    // index.  by_offset is ordered, so scan from the first occupant
    // that could overlap.  (Counted into the evicting shard's stats;
    // aggregate totals are exact, per-shard attribution approximate.)
    auto it = spill_.by_offset.lower_bound(offset);
    if (it != spill_.by_offset.begin()) {
        const auto prev = std::prev(it);
        if (prev->first + prev->second.size > offset)
            it = prev;
    }
    while (it != spill_.by_offset.end() && it->first < offset + size) {
        spill_.used_bytes -= it->second.size;
        spill_.index.erase(it->second.key);
        it = spill_.by_offset.erase(it);
        ++shard.stats.spill_overwritten;
        ++shard.stats.spill.evictions;
    }
}

void
ChunkReadCache::spill_out(Shard &shard, Entry &&entry)
{
    const std::uint64_t size = entry.compressed.size();
    if (size == 0 || size > spill_capacity_)
        return;
    const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
    // Sequential ring: wrap when the image won't fit before the end.
    // The tail gap left by a wrap keeps its occupants readable until
    // a later lap actually overwrites them.
    if (spill_.cursor + size > spill_capacity_)
        spill_.cursor = 0;
    const std::uint64_t offset = spill_.cursor;
    spill_drop_overlaps(shard, offset, size);
    // A re-spilled key must not leave a stale occupant elsewhere.
    const auto existing = spill_.index.find(entry.key);
    if (existing != spill_.index.end()) {
        spill_.used_bytes -= existing->second.size;
        spill_.by_offset.erase(existing->second.offset);
        spill_.index.erase(existing);
    }
    const Status written = spill_backend_->write(offset, entry.compressed);
    if (!written.is_ok()) {
        ++shard.stats.spill_write_failures;
        return;
    }
    spill_.cursor = offset + size;
    SpillRef ref;
    ref.offset = offset;
    ref.size = static_cast<std::uint32_t>(size);
    ref.raw_size = entry.raw_size;
    spill_.index.emplace(entry.key, ref);
    spill_.by_offset[offset] =
        SpillRing::Occupant{entry.key, ref.size};
    spill_.used_bytes += size;
    ++shard.stats.spill_writes;
    ++shard.stats.spill.insertions;
}

void
ChunkReadCache::evict_warm_tail(Shard &shard)
{
    Entry victim = std::move(shard.warm.back());
    shard.warm_bytes -= victim.compressed.size();
    shard.index.erase(victim.key);
    shard.warm.pop_back();
    ++shard.stats.evictions;
    ++shard.stats.warm.evictions;
    shard.ghost_warm.push(victim.key);
    if (spill_enabled())
        spill_out(shard, std::move(victim));
}

void
ChunkReadCache::rebalance(Shard &shard)
{
    if (tuning_.two_tier) {
        std::size_t demoted = 0;
        while (shard.hot_bytes > shard.hot_target && !shard.hot.empty()) {
            demote_tail(shard);
            ++demoted;
        }
        // Batched demotion: once the target forced a demotion, demote
        // up to demote_batch tail entries in the same pass.  The slack
        // below hot_target means a near-fit working set amortizes the
        // demote/re-promote churn over the next demote_batch inserts
        // instead of paying it on every one.  Never demotes the MRU
        // entry (the fill that triggered the pass).
        if (demoted > 0) {
            while (demoted < tuning_.demote_batch && shard.hot.size() > 1) {
                demote_tail(shard);
                ++demoted;
            }
            ++shard.stats.demote_passes;
        }
    }
    while (shard.hot_bytes + shard.warm_bytes > shard_capacity_) {
        if (!shard.warm.empty())
            evict_warm_tail(shard);
        else if (!shard.hot.empty())
            demote_tail(shard);  // One-tier mode: drops outright.
        else
            break;
    }
}

void
ChunkReadCache::insert(const ChunkKey &key, const Buffer &raw,
                       const Buffer &compressed)
{
    if (raw.size() > shard_capacity_)
        return;  // Would evict the whole shard for one entry.
    Shard &shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Resident re-insert: refresh content and recency in place.
        Entry &entry = *it->second.it;
        if (it->second.hot) {
            shard.hot_bytes -= billed_hot(entry);
            entry.raw = raw;
            entry.compressed = tuning_.two_tier ? compressed : Buffer();
            entry.raw_size = static_cast<std::uint32_t>(raw.size());
            shard.hot_bytes += billed_hot(entry);
            shard.hot.splice(shard.hot.begin(), shard.hot, it->second.it);
        } else {
            // Warm entry getting a fresh fill: promote it.
            shard.warm_bytes -= billed_warm(entry);
            entry.raw = raw;
            entry.raw_size = static_cast<std::uint32_t>(raw.size());
            shard.hot.splice(shard.hot.begin(), shard.warm,
                             it->second.it);
            it->second.hot = true;
            it->second.it = shard.hot.begin();
            shard.hot_bytes += billed_hot(*shard.hot.begin());
            ++shard.stats.promotions;
            ++shard.stats.hot.insertions;
        }
        rebalance(shard);
        return;
    }
    if (tuning_.admission) {
        // Incompressible images make the warm tier pointless: a slot
        // would hold ~raw bytes to save one SSD fetch — the hit-rate
        // win per DRAM byte is what the tiering exists for.
        if (!compressed.empty() &&
            static_cast<double>(compressed.size()) >=
                tuning_.incompressible_fraction *
                    static_cast<double>(raw.size())) {
            ++shard.stats.rejected_incompressible;
            return;
        }
        // Doorkeeper: one-hit wonders never enter.  The lookup miss
        // that preceded this fill already fed the sketch, so a chunk
        // is admitted on its admit_frequency-th miss in the window.
        if (shard.sketch.estimate(key) < tuning_.admit_frequency) {
            ++shard.stats.rejected_doorkeeper;
            return;
        }
    }
    Entry entry;
    entry.key = key;
    entry.raw = raw;
    entry.compressed = tuning_.two_tier ? compressed : Buffer();
    entry.raw_size = static_cast<std::uint32_t>(raw.size());
    shard.hot_bytes += billed_hot(entry);
    shard.hot.push_front(std::move(entry));
    shard.index.emplace(key, Shard::Slot{true, shard.hot.begin()});
    ++shard.stats.insertions;
    ++shard.stats.hot.insertions;
    rebalance(shard);
}

void
ChunkReadCache::promote(const ChunkKey &key, const Buffer &raw,
                        const Buffer &compressed)
{
    Shard &shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        if (it->second.hot) {
            shard.hot.splice(shard.hot.begin(), shard.hot, it->second.it);
            return;  // Already hot (promoted earlier in the batch).
        }
        Entry &entry = *it->second.it;
        shard.warm_bytes -= billed_warm(entry);
        entry.raw = raw;
        entry.raw_size = static_cast<std::uint32_t>(raw.size());
        shard.hot.splice(shard.hot.begin(), shard.warm, it->second.it);
        it->second.hot = true;
        it->second.it = shard.hot.begin();
        shard.hot_bytes += billed_hot(*shard.hot.begin());
        ++shard.stats.promotions;
        ++shard.stats.hot.insertions;
        rebalance(shard);
        return;
    }
    // Spill promotion: the image re-enters DRAM and leaves the ring's
    // index (its flash bytes are simply forgotten; the ring reclaims
    // space by lapping, not by holes).
    bool from_spill = false;
    if (spill_enabled()) {
        const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
        const auto spilled = spill_.index.find(key);
        if (spilled != spill_.index.end()) {
            spill_.used_bytes -= spilled->second.size;
            spill_.by_offset.erase(spilled->second.offset);
            spill_.index.erase(spilled);
            from_spill = true;
        }
    }
    Entry entry;
    entry.key = key;
    entry.raw = raw;
    entry.compressed = tuning_.two_tier ? compressed : Buffer();
    entry.raw_size = static_cast<std::uint32_t>(raw.size());
    shard.hot_bytes += billed_hot(entry);
    shard.hot.push_front(std::move(entry));
    shard.index.emplace(key, Shard::Slot{true, shard.hot.begin()});
    if (from_spill) {
        ++shard.stats.promotions;
        ++shard.stats.hot.insertions;
    } else {
        // Raced an invalidation (or spill disabled): plain fill.
        ++shard.stats.insertions;
        ++shard.stats.hot.insertions;
    }
    rebalance(shard);
}

void
ChunkReadCache::invalidate(const ChunkKey &key)
{
    Shard &shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    bool dropped = false;
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        Entry &entry = *it->second.it;
        if (it->second.hot) {
            shard.hot_bytes -= billed_hot(entry);
            shard.hot.erase(it->second.it);
        } else {
            shard.warm_bytes -= billed_warm(entry);
            shard.warm.erase(it->second.it);
        }
        shard.index.erase(it);
        dropped = true;
    }
    if (spill_enabled()) {
        // Still under the shard lock: the DRAM and spill copies leave
        // together, so no probe can see the spilled image outlive an
        // invalidation of its PBN.
        const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
        const auto spilled = spill_.index.find(key);
        if (spilled != spill_.index.end()) {
            spill_.used_bytes -= spilled->second.size;
            spill_.by_offset.erase(spilled->second.offset);
            spill_.index.erase(spilled);
            dropped = true;
        }
    }
    if (dropped)
        ++shard.stats.invalidations;
}

bool
ChunkReadCache::rekey(const ChunkKey &from, const ChunkKey &to)
{
    if (from == to)
        return false;
    Shard &src = shard_for(from);
    Shard &dst = shard_for(to);
    // Both shard locks (one when the keys co-shard) held together for
    // the whole move: no interleaved probe can miss the entry under
    // both keys or find it under the retired one.
    std::unique_lock<std::mutex> src_lock(src.mutex, std::defer_lock);
    std::unique_lock<std::mutex> dst_lock(dst.mutex, std::defer_lock);
    if (&src == &dst)
        src_lock.lock();
    else
        std::lock(src_lock, dst_lock);

    bool moved = false;
    const auto it = src.index.find(from);
    if (it != src.index.end()) {
        const bool was_hot = it->second.hot;
        Entry entry = std::move(*it->second.it);
        if (was_hot) {
            src.hot_bytes -= billed_hot(entry);
            src.hot.erase(it->second.it);
        } else {
            src.warm_bytes -= billed_warm(entry);
            src.warm.erase(it->second.it);
        }
        src.index.erase(it);
        // The old physical location is gone whatever happens next, so
        // this is an invalidation first and a move second.
        ++src.stats.invalidations;
        ++src.stats.rekeys;

        entry.key = to;
        // Displace any stale resident under the destination key (the
        // relocated chunk's image is the authoritative one).
        const auto existing = dst.index.find(to);
        if (existing != dst.index.end()) {
            Entry &old = *existing->second.it;
            if (existing->second.hot) {
                dst.hot_bytes -= billed_hot(old);
                dst.hot.erase(existing->second.it);
            } else {
                dst.warm_bytes -= billed_warm(old);
                dst.warm.erase(existing->second.it);
            }
            dst.index.erase(existing);
            ++dst.stats.invalidations;
        }
        if (was_hot) {
            dst.hot_bytes += billed_hot(entry);
            dst.hot.push_front(std::move(entry));
            dst.index.emplace(to, Shard::Slot{true, dst.hot.begin()});
        } else {
            dst.warm_bytes += billed_warm(entry);
            dst.warm.push_front(std::move(entry));
            dst.index.emplace(to, Shard::Slot{false, dst.warm.begin()});
        }
        rebalance(dst);
        moved = true;
    }

    if (spill_enabled()) {
        // Shard locks still held: the spill index renames in the same
        // critical section, so the spilled image is never reachable
        // under the retired key once rekey returns — and never
        // unreachable while it is.
        const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
        const auto spilled = spill_.index.find(from);
        if (spilled != spill_.index.end()) {
            const SpillRef ref = spilled->second;
            spill_.index.erase(spilled);
            const auto target = spill_.index.find(to);
            if (target != spill_.index.end()) {
                // Destination already spilled: keep it, drop ours.
                spill_.used_bytes -= ref.size;
                spill_.by_offset.erase(ref.offset);
            } else {
                spill_.index.emplace(to, ref);
                spill_.by_offset[ref.offset] =
                    SpillRing::Occupant{to, ref.size};
            }
            if (!moved) {
                ++src.stats.invalidations;
                ++src.stats.rekeys;
            }
            moved = true;
        }
    }
    return moved;
}

void
ChunkReadCache::invalidate_container(std::uint64_t container_id)
{
    // A container's chunks hash across shards, so every shard scans.
    // Invalidation happens at GC-discard rate, not request rate.
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        for (auto it = shard->hot.begin(); it != shard->hot.end();) {
            if (it->key.container_id != container_id) {
                ++it;
                continue;
            }
            shard->hot_bytes -= billed_hot(*it);
            shard->index.erase(it->key);
            it = shard->hot.erase(it);
            ++shard->stats.invalidations;
        }
        for (auto it = shard->warm.begin(); it != shard->warm.end();) {
            if (it->key.container_id != container_id) {
                ++it;
                continue;
            }
            shard->warm_bytes -= billed_warm(*it);
            shard->index.erase(it->key);
            it = shard->warm.erase(it);
            ++shard->stats.invalidations;
        }
    }
    if (spill_enabled()) {
        const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
        for (auto it = spill_.by_offset.begin();
             it != spill_.by_offset.end();) {
            if (it->second.key.container_id != container_id) {
                ++it;
                continue;
            }
            spill_.used_bytes -= it->second.size;
            spill_.index.erase(it->second.key);
            const std::size_t shard = shard_of(it->second.key);
            it = spill_.by_offset.erase(it);
            const std::lock_guard<std::mutex> lock(
                shards_[shard]->mutex);
            ++shards_[shard]->stats.invalidations;
        }
    }
}

void
ChunkReadCache::clear()
{
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        shard->stats.invalidations +=
            shard->hot.size() + shard->warm.size();
        shard->hot.clear();
        shard->warm.clear();
        shard->index.clear();
        shard->hot_bytes = 0;
        shard->warm_bytes = 0;
        shard->ghost_hot.clear();
        shard->ghost_warm.clear();
    }
    if (spill_enabled()) {
        const std::lock_guard<std::mutex> spill_lock(spill_.mutex);
        // The index is host DRAM: spilled bytes are unreachable after
        // a crash even though the flash region survives.
        spill_.index.clear();
        spill_.by_offset.clear();
        spill_.cursor = 0;
        spill_.used_bytes = 0;
    }
}

namespace {

void
merge_stats(ChunkCacheStats &out, const ChunkCacheStats &in)
{
    out.hits += in.hits;
    out.misses += in.misses;
    out.insertions += in.insertions;
    out.evictions += in.evictions;
    out.invalidations += in.invalidations;
    out.rekeys += in.rekeys;
    out.hot.hits += in.hot.hits;
    out.hot.insertions += in.hot.insertions;
    out.hot.evictions += in.hot.evictions;
    out.warm.hits += in.warm.hits;
    out.warm.insertions += in.warm.insertions;
    out.warm.evictions += in.warm.evictions;
    out.spill.hits += in.spill.hits;
    out.spill.insertions += in.spill.insertions;
    out.spill.evictions += in.spill.evictions;
    out.demotions += in.demotions;
    out.promotions += in.promotions;
    out.demote_passes += in.demote_passes;
    out.spill_writes += in.spill_writes;
    out.spill_write_failures += in.spill_write_failures;
    out.spill_overwritten += in.spill_overwritten;
    out.rejected_incompressible += in.rejected_incompressible;
    out.rejected_doorkeeper += in.rejected_doorkeeper;
    out.ghost_hot_hits += in.ghost_hot_hits;
    out.ghost_warm_hits += in.ghost_warm_hits;
}

}  // namespace

ChunkCacheStats
ChunkReadCache::stats() const
{
    ChunkCacheStats out;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        merge_stats(out, shard->stats);
    }
    return out;
}

ChunkCacheStats
ChunkReadCache::shard_stats(std::size_t shard) const
{
    const std::lock_guard<std::mutex> lock(shards_.at(shard)->mutex);
    return shards_.at(shard)->stats;
}

std::uint64_t
ChunkReadCache::used_bytes() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->hot_bytes + shard->warm_bytes;
    }
    return total;
}

std::uint64_t
ChunkReadCache::hot_used_bytes() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->hot_bytes;
    }
    return total;
}

std::uint64_t
ChunkReadCache::warm_used_bytes() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->warm_bytes;
    }
    return total;
}

std::uint64_t
ChunkReadCache::hot_target_bytes() const
{
    std::uint64_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->hot_target;
    }
    return total;
}

std::size_t
ChunkReadCache::entries() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->hot.size() + shard->warm.size();
    }
    return total;
}

std::size_t
ChunkReadCache::hot_entries() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->hot.size();
    }
    return total;
}

std::size_t
ChunkReadCache::warm_entries() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->warm.size();
    }
    return total;
}

std::size_t
ChunkReadCache::spill_entries() const
{
    if (!spill_enabled())
        return 0;
    const std::lock_guard<std::mutex> lock(spill_.mutex);
    return spill_.index.size();
}

std::uint64_t
ChunkReadCache::spill_used_bytes() const
{
    if (!spill_enabled())
        return 0;
    const std::lock_guard<std::mutex> lock(spill_.mutex);
    return spill_.used_bytes;
}

}  // namespace fidr::cache
