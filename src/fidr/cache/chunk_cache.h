/**
 * @file
 * Two-tier read-side chunk cache keyed by physical location, with an
 * optional SSD spill tier.
 *
 * Dedup concentrates read traffic: many hot LBAs resolve to the same
 * PBN, so a modest host-DRAM cache keyed by `{container_id, offset}`
 * turns repeat hits into DRAM serves.  PR 5 cached decompressed chunks
 * only, so one DRAM byte bought one chunk byte.  Following ZipCache,
 * the cache now holds two DRAM tiers under one byte budget:
 *
 *  - *Hot*: decompressed chunks (plus their compressed image, so
 *    demotion never recompresses).  A hot hit is a pure DRAM serve —
 *    host DRAM -> NIC, no device touched.
 *  - *Warm*: compressed images only.  A warm hit pays one
 *    `decompress_stateless` pass but no data-SSD DMA; at typical 2-3x
 *    compression a warm byte holds 2-3x the chunks a hot byte does.
 *
 * Eviction cascades downward: hot LRU tails *demote* to warm (drop the
 * decompressed buffer, keep the compressed one), warm LRU tails leave
 * DRAM — into the optional *spill* tier when a SpillBackend is
 * attached (a reserved data-SSD region written as a sequential ring of
 * compressed images), otherwise they are gone.  A warm or spill
 * re-reference *promotes* back to hot: the caller decompresses (that
 * is read-path work with read-path billing) and hands the raw bytes
 * back via promote().
 *
 * The hot/warm split self-tunes instead of being a knob: each shard
 * keeps two bounded ghost-LRU lists of recently demoted / recently
 * evicted keys (ARC-style).  A warm hit whose key is still in the
 * hot-ghost means a larger hot tier would have served it without the
 * decompress — grow the hot target one step.  A miss or spill hit
 * whose key is in the warm-ghost means a larger warm tier would have
 * kept it in DRAM — shrink the hot target.  Targets are clamped to
 * [hot_fraction_min, hot_fraction_max] of the shard budget.
 *
 * Admission (HPDedup's locality-priority argument, off by default and
 * enabled per config): chunks whose compressed image is >= ~90% of raw
 * never enter (a warm slot would buy nothing over refetching), and a
 * small per-shard count-min sketch with periodic halving gates
 * one-hit wonders — a chunk is admitted only once it has missed twice
 * within the sketch's aging window.
 *
 * Sharding follows the TableCache pattern: N = 2^k shards, each with
 * its own tier lists, byte budget, ghost lists, sketch, stats and
 * mutex.  The spill ring (index, write cursor, occupancy map) is
 * global under its own mutex; every acquisition orders shard mutex(es)
 * before the spill mutex, and multi-shard operations (rekey) take both
 * shard locks via std::scoped_lock, so a warm/spill entry can never be
 * observed under a key whose physical location is already gone.
 *
 * Coherence is unchanged from PR 5/8: chunk images are immutable;
 * owners invalidate by key (PBN retirement), by container (GC
 * discard), re-key on GC relocation — each of these now covers *all*
 * tiers including the spill index atomically — and clear() on crash
 * recovery (the spill index lives in host DRAM, so spilled bytes die
 * with the power even though the region itself is flash).
 */
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/types.h"

namespace fidr::cache {

/** Physical identity of one stored chunk (container + offset). */
struct ChunkKey {
    std::uint64_t container_id = 0;
    std::uint16_t offset_units = 0;

    bool operator==(const ChunkKey &) const = default;
};

/** Hash for ChunkKey maps (shard routing, coalescing maps). */
struct ChunkKeyHash {
    std::size_t
    operator()(const ChunkKey &key) const
    {
        // splitmix64 over the packed identity: container ids are
        // sequential, so low bits alone would stripe shards.
        std::uint64_t x = key.container_id * 0x9E3779B97F4A7C15ull +
                          key.offset_units;
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

/** Which tier satisfied a lookup. */
enum class CacheTier : std::uint8_t { kNone, kHot, kWarm, kSpill };

/** Handle to one compressed image in the spill ring. */
struct SpillRef {
    std::uint64_t offset = 0;   ///< Byte offset inside the spill region.
    std::uint32_t size = 0;     ///< Compressed bytes.
    std::uint32_t raw_size = 0; ///< Decompressed bytes (sanity check).
};

/**
 * Device hook the spill tier writes through.  FidrSystem implements it
 * over a reserved region of a data SSD and bills the transfers; the
 * cache only decides *what* lives *where* in the region.  write() is
 * called from serial contexts (the read plane's billing stage, the GC
 * sequencer); read() must be thread-safe — fetch lanes call it
 * concurrently, and the caller bills the DMA after the join.
 */
class SpillBackend {
  public:
    virtual ~SpillBackend() = default;

    /** Usable bytes in the spill region (0 disables the tier). */
    virtual std::uint64_t capacity_bytes() const = 0;

    /** Writes `data` at region offset `offset` (billed by the impl). */
    virtual Status write(std::uint64_t offset,
                         std::span<const std::uint8_t> data) = 0;

    /** Reads `size` bytes back (unbilled; the read plane bills the
     *  fetch serially after the lane join). */
    virtual Result<Buffer> read(std::uint64_t offset,
                                std::uint64_t size) const = 0;
};

/** Cache behaviour knobs (FidrConfig surfaces the interesting ones). */
struct ChunkCacheTuning {
    /** false = the PR 5 one-tier decompressed LRU, bit-for-bit: no
     *  warm tier, no demotion, no ghosts; an eviction drops the entry.
     *  The equal-budget baseline the bench compares against. */
    bool two_tier = true;

    /** Enables the admission filters below.  Off by default so the
     *  cache stays a pure always-admit optimization unless asked. */
    bool admission = false;

    /** Chunks with compressed >= this fraction of raw are not cached
     *  (a warm slot would hold nearly raw-size bytes for no gain). */
    double incompressible_fraction = 0.90;

    /** Doorkeeper: sketch estimate required before a fill is admitted.
     *  2 = the chunk must miss twice inside the aging window. */
    unsigned admit_frequency = 2;

    /** Clamp band and starting point for the adaptive hot-tier byte
     *  target, as fractions of each shard's budget. */
    double hot_fraction_min = 0.10;
    double hot_fraction_max = 0.90;
    double hot_fraction_initial = 0.50;

    /** Ghost-hit adaptation step, as a fraction of the shard budget.
     *  The step is asymmetric: shrink signals (ghost-warm hits — a
     *  bigger warm tier would have kept the image in DRAM) move the
     *  target by the full step, grow signals (ghost-hot hits — a
     *  bigger hot tier would have skipped a decompress) by a quarter
     *  of it.  A hot entry bills raw + compressed bytes, ~3-4x a warm
     *  entry, and a demoted key is almost always still warm-resident
     *  when it re-hits, so an unweighted grow signal saturates and
     *  drags the split toward the low-density hot tier. */
    double adapt_step_fraction = 0.02;

    /** Bounded ghost-list length (keys) per shard per list. */
    std::size_t ghost_entries = 1024;

    /** Hot-tier demotion batch: once an insert pushes the hot tier
     *  over its byte target, demote at least this many tail entries
     *  in one pass (bounded by what the target actually requires
     *  downward pressure for — see rebalance()).  Batching creates
     *  hot-tier slack so a near-fit working set does not demote and
     *  re-promote the same tail entry on every insert (the DESIGN.md
     *  §16 Read-Mixed 4 MiB regression).  1 = the legacy
     *  demote-exactly-to-target behaviour, bit-for-bit. */
    std::size_t demote_batch = 1;
};

/** Per-tier counters (all maintained per shard, summed by stats()). */
struct TierStats {
    std::uint64_t hits = 0;
    std::uint64_t insertions = 0;  ///< Entries that entered this tier.
    std::uint64_t evictions = 0;   ///< Entries that left it downward.
};

/** Hit/miss/eviction counters (aggregated or per shard). */
struct ChunkCacheStats {
    std::uint64_t hits = 0;    ///< All tiers (hot + warm + spill).
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;  ///< Admitted miss fills.
    std::uint64_t evictions = 0;   ///< Entries that left DRAM entirely.
    std::uint64_t invalidations = 0;
    /** Entries moved to a new key by GC relocation (each also counts
     *  one invalidation of the old key). */
    std::uint64_t rekeys = 0;

    TierStats hot;
    TierStats warm;
    TierStats spill;
    std::uint64_t demotions = 0;   ///< hot -> warm (raw buffer dropped).
    std::uint64_t promotions = 0;  ///< warm/spill -> hot.
    /** Rebalance passes that demoted at least one entry.  With
     *  demote_batch = K each pass demotes up to K tail entries, so
     *  passes / demotions measures how well the per-pass bookkeeping
     *  amortizes (DESIGN.md §16 near-fit churn). */
    std::uint64_t demote_passes = 0;

    std::uint64_t spill_writes = 0;
    std::uint64_t spill_write_failures = 0;
    /** Live spill entries lapped by the ring's write cursor. */
    std::uint64_t spill_overwritten = 0;

    std::uint64_t rejected_incompressible = 0;
    std::uint64_t rejected_doorkeeper = 0;

    /** Warm/spill hits whose key was still in the hot ghost (a bigger
     *  hot tier would have skipped the decompress). */
    std::uint64_t ghost_hot_hits = 0;
    /** Misses/spill hits whose key was still in the warm ghost (a
     *  bigger warm tier would have kept the image in DRAM). */
    std::uint64_t ghost_warm_hits = 0;

    double
    hit_rate() const
    {
        const std::uint64_t total = hits + misses;
        return total > 0
                   ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
};

/** Outcome of one tiered lookup. */
struct TierLookup {
    CacheTier tier = CacheTier::kNone;
    Buffer raw;         ///< kHot: the decompressed payload (a copy).
    Buffer compressed;  ///< kWarm: the compressed image (a copy).
    SpillRef spill;     ///< kSpill: where to read the image from.
    std::uint32_t raw_size = 0;  ///< Decompressed size (warm/spill).

    bool hit() const { return tier != CacheTier::kNone; }
};

/**
 * Sharded, capacity-bounded two-tier chunk cache.  All entry points
 * are thread-safe (per-shard + spill locking); the FIDR read plane
 * probes and fills it serially anyway, so hit/miss order, ghost
 * adaptation and ring placement are deterministic across lane counts.
 */
class ChunkReadCache {
  public:
    /**
     * @param capacity_bytes total DRAM budget (hot raw+compressed and
     *        warm compressed bytes), split evenly across shards.
     * @param shards power-of-two shard count; 1 = one global LRU.
     * @param tuning tier/admission/adaptation behaviour.
     * @param spill optional spill device; nullptr (or a zero-capacity
     *        backend, or one-tier mode) disables the spill tier.
     *        Not owned; must outlive the cache.
     */
    ChunkReadCache(std::uint64_t capacity_bytes, std::size_t shards = 1,
                   ChunkCacheTuning tuning = {},
                   SpillBackend *spill = nullptr);

    /**
     * Tiered probe, refreshing recency and feeding the admission
     * sketch + ghost estimators.  A hot hit returns the payload; a
     * warm hit returns the compressed image (the caller decompresses
     * and calls promote()); a spill hit returns the ring location (the
     * caller reads + decompresses + promote()s).  The entry itself
     * stays put until promote(), so a caller that fails mid-way leaves
     * the cache consistent.
     */
    TierLookup lookup(const ChunkKey &key);

    /**
     * Side-effect-free residency probe: which tier holds `key` right
     * now, or kNone.  Touches no recency order, stats, ghost, or
     * sketch state — safe for tests and debug tooling to call without
     * perturbing adaptation.
     */
    CacheTier peek(const ChunkKey &key) const;

    /**
     * Miss fill: caches the chunk in the hot tier (evicting down the
     * cascade until everything fits), subject to admission.  In
     * one-tier mode `compressed` is ignored and only raw bytes are
     * billed, reproducing the PR 5 cache exactly.  Payloads larger
     * than a shard's budget are not cached.  Re-inserting a resident
     * key refreshes content and recency.
     */
    void insert(const ChunkKey &key, const Buffer &raw,
                const Buffer &compressed);

    /**
     * Completes a warm or spill hit: re-attaches the decompressed
     * payload and moves the entry to the hot tier's MRU position (a
     * spill entry re-enters DRAM and leaves the spill index).
     * Admission does not re-run — the entry already passed it.  A key
     * no longer resident anywhere falls back to a plain insert.
     */
    void promote(const ChunkKey &key, const Buffer &raw,
                 const Buffer &compressed);

    /** Drops one entry from every tier it is resident in. */
    void invalidate(const ChunkKey &key);

    /**
     * Moves a resident entry from `from` to `to` (GC relocated the
     * chunk; its image is unchanged).  Covers every tier atomically:
     * both shard locks and the spill lock are held together, so no
     * window exists where the warm/spill image is reachable under the
     * retired key or unreachable under the new one.  The old key is
     * invalidated either way; a resident entry re-enters under the new
     * key with fresh recency in its current tier.  Returns true when
     * an entry actually moved (in any tier).
     */
    bool rekey(const ChunkKey &from, const ChunkKey &to);

    /** Drops every entry of `container_id` (GC discard), all tiers. */
    void invalidate_container(std::uint64_t container_id);

    /** Drops everything (crash recovery: host DRAM — including the
     *  spill index — is gone). */
    void clear();

    /** Aggregate counters over all shards (by value). */
    ChunkCacheStats stats() const;

    /** One shard's counters (shard < shard_count()). */
    ChunkCacheStats shard_stats(std::size_t shard) const;

    std::size_t shard_count() const { return shards_.size(); }
    std::uint64_t capacity_bytes() const { return capacity_bytes_; }
    const ChunkCacheTuning &tuning() const { return tuning_; }
    bool spill_enabled() const { return spill_capacity_ > 0; }
    std::uint64_t spill_capacity_bytes() const { return spill_capacity_; }

    /** DRAM bytes currently billed (hot raw+compressed + warm). */
    std::uint64_t used_bytes() const;
    std::uint64_t hot_used_bytes() const;
    std::uint64_t warm_used_bytes() const;
    /** Sum of per-shard adaptive hot-tier byte targets. */
    std::uint64_t hot_target_bytes() const;

    /** Resident DRAM entry count (hot + warm, sum over shards). */
    std::size_t entries() const;
    std::size_t hot_entries() const;
    std::size_t warm_entries() const;
    /** Live entries in the spill index / bytes they occupy. */
    std::size_t spill_entries() const;
    std::uint64_t spill_used_bytes() const;

    /** The shard that owns `key`. */
    std::size_t shard_of(const ChunkKey &key) const;

  private:
    struct Entry {
        ChunkKey key;
        Buffer raw;         ///< Non-empty iff the entry is hot.
        Buffer compressed;  ///< Always kept in two-tier mode.
        std::uint32_t raw_size = 0;  ///< Survives demotion.
    };

    /** Bounded LRU of keys-only: the ghost estimators. */
    struct GhostList {
        std::list<ChunkKey> order;  ///< Front = most recently added.
        std::unordered_map<ChunkKey, std::list<ChunkKey>::iterator,
                           ChunkKeyHash>
            index;
        std::size_t cap = 0;

        void push(const ChunkKey &key);
        bool take(const ChunkKey &key);  ///< Removes on hit.
        void clear();
    };

    /** Count-min doorkeeper with saturating 4-bit-equivalent counters
     *  and periodic halving (TinyLFU-style aging). */
    struct Sketch {
        static constexpr std::size_t kRows = 4;
        static constexpr std::size_t kWidth = 1024;  ///< Power of two.
        std::array<std::uint8_t, kRows * kWidth> counts{};
        std::uint64_t adds = 0;

        void add(const ChunkKey &key);
        unsigned estimate(const ChunkKey &key) const;
    };

    /**
     * One shard: hot and warm LRU lists (front = most recent), a key
     * index over both, byte accounting, the adaptive hot target, ghost
     * lists and the admission sketch.  unique_ptr because std::mutex
     * is immovable.
     */
    struct Shard {
        std::list<Entry> hot;
        std::list<Entry> warm;
        struct Slot {
            bool hot = false;
            std::list<Entry>::iterator it;
        };
        std::unordered_map<ChunkKey, Slot, ChunkKeyHash> index;
        std::uint64_t hot_bytes = 0;   ///< Billed (raw + compressed).
        std::uint64_t warm_bytes = 0;  ///< Billed (compressed).
        std::uint64_t hot_target = 0;  ///< Adaptive, clamped.
        GhostList ghost_hot;
        GhostList ghost_warm;
        Sketch sketch;
        ChunkCacheStats stats;
        mutable std::mutex mutex;
    };

    /** The spill ring: index + occupancy ordered by region offset.
     *  Guarded by `mutex`, always acquired after any shard mutex. */
    struct SpillRing {
        std::unordered_map<ChunkKey, SpillRef, ChunkKeyHash> index;
        struct Occupant {
            ChunkKey key;
            std::uint32_t size = 0;
        };
        std::map<std::uint64_t, Occupant> by_offset;
        std::uint64_t cursor = 0;
        std::uint64_t used_bytes = 0;
        mutable std::mutex mutex;
    };

    Shard &shard_for(const ChunkKey &key)
    { return *shards_[shard_of(key)]; }

    std::uint64_t billed_hot(const Entry &entry) const;
    std::uint64_t billed_warm(const Entry &entry) const;

    /** Caller holds `shard.mutex`.  Demotes/evicts until hot_bytes <=
     *  hot_target and hot+warm <= shard budget. */
    void rebalance(Shard &shard);
    /** Caller holds `shard.mutex`.  Hot LRU tail -> warm MRU. */
    void demote_tail(Shard &shard);
    /** Caller holds `shard.mutex`.  Warm LRU tail leaves DRAM (into
     *  the spill ring when enabled; locks spill nested). */
    void evict_warm_tail(Shard &shard);
    /** Caller holds `shard.mutex`; locks spill nested. */
    void spill_out(Shard &shard, Entry &&entry);
    /** Caller holds spill_.mutex: drops live entries overlapping
     *  [offset, offset+size) ahead of the write cursor. */
    void spill_drop_overlaps(Shard &shard, std::uint64_t offset,
                             std::uint64_t size);
    void bump_hot_target(Shard &shard, bool grow);

    std::uint64_t capacity_bytes_ = 0;
    std::uint64_t shard_capacity_ = 0;
    std::size_t shard_mask_ = 0;
    ChunkCacheTuning tuning_;
    SpillBackend *spill_backend_ = nullptr;
    std::uint64_t spill_capacity_ = 0;
    std::uint64_t adapt_step_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
    SpillRing spill_;
};

}  // namespace fidr::cache
