/**
 * @file
 * Read-side chunk cache: decompressed chunk content keyed by physical
 * location.
 *
 * Dedup concentrates read traffic: many hot LBAs resolve to the same
 * PBN (the locality fingerprint caches like HPDedup exploit on the
 * write path), so a modest host-DRAM cache of *decompressed* chunks
 * keyed by `{container_id, offset}` turns every repeat hit into a pure
 * DRAM serve — no data-SSD fetch, no Decompression Engine pass
 * (the ZipCache idea applied to FIDR's Fig 6b).  Keys are physical,
 * not logical, so N LBAs sharing a PBN share one cache entry and an
 * overwrite of one LBA cannot stale another's entry.
 *
 * Sharding follows the TableCache pattern (Sec 5.5 / Observation #4):
 * N = 2^k shards, each with its own LRU list, byte budget
 * (capacity / N), stats, and mutex, routed by a mix of the key's
 * container id and offset.  Lookups and inserts from concurrent read
 * lanes never contend across shards; `shards = 1` keeps a single
 * global LRU order.
 *
 * Coherence: the cache is a pure optimization over immutable chunk
 * images.  Container contents never change in place — only
 * `compact()` (whole-container discard) and PBN retirement free
 * physical space — so the owner invalidates by container or by key at
 * exactly those points and clears the cache on crash recovery (host
 * DRAM dies with the power).  Payload bytes served from the cache are
 * therefore always identical to a fresh fetch+decompress.
 */
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/types.h"

namespace fidr::cache {

/** Physical identity of one stored chunk (container + offset). */
struct ChunkKey {
    std::uint64_t container_id = 0;
    std::uint16_t offset_units = 0;

    bool operator==(const ChunkKey &) const = default;
};

/** Hash for ChunkKey maps (shard routing, coalescing maps). */
struct ChunkKeyHash {
    std::size_t
    operator()(const ChunkKey &key) const
    {
        // splitmix64 over the packed identity: container ids are
        // sequential, so low bits alone would stripe shards.
        std::uint64_t x = key.container_id * 0x9E3779B97F4A7C15ull +
                          key.offset_units;
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

/** Hit/miss/eviction counters (aggregated or per shard). */
struct ChunkCacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    /** Entries moved to a new key by GC relocation (each also counts
     *  one invalidation of the old key). */
    std::uint64_t rekeys = 0;

    double
    hit_rate() const
    {
        const std::uint64_t total = hits + misses;
        return total > 0
                   ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
};

/**
 * Sharded, capacity-bounded LRU of decompressed chunks.  All entry
 * points are thread-safe (per-shard locking); the FIDR read plane
 * probes and fills it serially anyway so hit/miss order is
 * deterministic.
 */
class ChunkReadCache {
  public:
    /**
     * @param capacity_bytes total payload budget, split evenly across
     *        shards (each shard evicts against capacity / shards).
     * @param shards power-of-two shard count; 1 = one global LRU.
     */
    ChunkReadCache(std::uint64_t capacity_bytes, std::size_t shards = 1);

    /** The cached payload (a copy), refreshing recency; counts a hit
     *  or a miss. */
    std::optional<Buffer> lookup(const ChunkKey &key);

    /**
     * Caches `payload`, evicting LRU entries of the key's shard until
     * it fits.  Payloads larger than a shard's budget are not cached.
     * Re-inserting a resident key refreshes payload and recency.
     */
    void insert(const ChunkKey &key, const Buffer &payload);

    /** Drops one entry if resident. */
    void invalidate(const ChunkKey &key);

    /**
     * Moves a resident entry from `from` to `to` (GC relocated the
     * chunk; its decompressed image is unchanged).  The old key is
     * invalidated either way; a resident payload re-enters under the
     * new key with fresh recency instead of being refetched on the
     * next read.  Returns true when an entry actually moved.
     */
    bool rekey(const ChunkKey &from, const ChunkKey &to);

    /** Drops every entry of `container_id` (compaction discard). */
    void invalidate_container(std::uint64_t container_id);

    /** Drops everything (crash recovery: host DRAM is gone). */
    void clear();

    /** Aggregate counters over all shards (by value). */
    ChunkCacheStats stats() const;

    /** One shard's counters (shard < shard_count()). */
    ChunkCacheStats shard_stats(std::size_t shard) const;

    std::size_t shard_count() const { return shards_.size(); }
    std::uint64_t capacity_bytes() const { return capacity_bytes_; }

    /** Payload bytes currently resident (sum over shards). */
    std::uint64_t used_bytes() const;

    /** Resident entry count (sum over shards). */
    std::size_t entries() const;

    /** The shard that owns `key`. */
    std::size_t shard_of(const ChunkKey &key) const;

  private:
    struct Entry {
        ChunkKey key;
        Buffer payload;
    };

    /**
     * One shard: an LRU-ordered entry list (front = most recent) plus
     * a key index into it.  unique_ptr because std::mutex is immovable.
     */
    struct Shard {
        std::list<Entry> lru;
        std::unordered_map<ChunkKey, std::list<Entry>::iterator,
                           ChunkKeyHash>
            index;
        std::uint64_t used_bytes = 0;
        ChunkCacheStats stats;
        mutable std::mutex mutex;
    };

    Shard &shard_for(const ChunkKey &key)
    { return *shards_[shard_of(key)]; }

    std::uint64_t capacity_bytes_ = 0;
    std::uint64_t shard_capacity_ = 0;
    std::size_t shard_mask_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fidr::cache
