#include "fidr/cache/indexes.h"

namespace fidr::cache {

std::optional<std::size_t>
BTreeCacheIndex::find(BucketIndex bucket)
{
    ++stats_.lookups;
    const auto value = tree_.find(bucket);
    if (!value)
        return std::nullopt;
    return static_cast<std::size_t>(*value);
}

Status
BTreeCacheIndex::insert(BucketIndex bucket, std::size_t line)
{
    ++stats_.inserts;
    tree_.insert(bucket, line);
    return Status::ok();
}

void
BTreeCacheIndex::erase(BucketIndex bucket)
{
    ++stats_.erases;
    tree_.erase(bucket);
}

HwTreeCacheIndex::HwTreeCacheIndex(hwtree::PipelineConfig pipeline,
                                   hwtree::HwTreeConfig geometry)
    : tree_(geometry), pipeline_(tree_, pipeline)
{
}

std::optional<std::size_t>
HwTreeCacheIndex::find(BucketIndex bucket)
{
    ++stats_.lookups;
    const auto value = pipeline_.search(bucket);
    if (!value)
        return std::nullopt;
    return static_cast<std::size_t>(*value);
}

Status
HwTreeCacheIndex::insert(BucketIndex bucket, std::size_t line)
{
    ++stats_.inserts;
    Result<bool> result = pipeline_.insert(bucket, line);
    if (!result.is_ok())
        return result.status();
    return Status::ok();
}

void
HwTreeCacheIndex::erase(BucketIndex bucket)
{
    ++stats_.erases;
    pipeline_.erase(bucket);
}

}  // namespace fidr::cache
