/**
 * @file
 * The two cache index implementations the paper contrasts:
 *
 *  - BTreeCacheIndex: the baseline's host-software B+ tree (PALM-like,
 *    Sec 7.1) — every lookup/update consumes CPU (Table 2's 43.9%);
 *  - HwTreeCacheIndex: FIDR's Cache HW-Engine pipelined tree — the
 *    index work moves to FPGA cycles accounted by TreePipeline, and
 *    the CPU only sees the resulting cache line numbers (Sec 5.5).
 *
 * Both expose operation counters so the system models can bill the
 * right resource for the same functional behaviour.
 */
#pragma once

#include <cstdint>

#include "fidr/btree/bplus_tree.h"
#include "fidr/cache/table_cache.h"
#include "fidr/hwtree/hw_tree.h"
#include "fidr/hwtree/tree_pipeline.h"

namespace fidr::cache {

/** Operation counters shared by both index flavours. */
struct IndexStats {
    std::uint64_t lookups = 0;
    std::uint64_t inserts = 0;
    std::uint64_t erases = 0;
};

/** Baseline: software B+ tree index run on host CPU. */
class BTreeCacheIndex : public CacheIndex {
  public:
    explicit BTreeCacheIndex(unsigned order = 64) : tree_(order) {}

    std::optional<std::size_t> find(BucketIndex bucket) override;
    Status insert(BucketIndex bucket, std::size_t line) override;
    void erase(BucketIndex bucket) override;
    std::size_t size() const override { return tree_.size(); }

    const IndexStats &stats() const { return stats_; }
    const btree::BPlusTree &tree() const { return tree_; }

  private:
    btree::BPlusTree tree_;
    IndexStats stats_;
};

/** FIDR: hardware pipelined tree index in the Cache HW-Engine. */
class HwTreeCacheIndex : public CacheIndex {
  public:
    explicit HwTreeCacheIndex(
        hwtree::PipelineConfig pipeline = {},
        hwtree::HwTreeConfig geometry = {});

    std::optional<std::size_t> find(BucketIndex bucket) override;
    Status insert(BucketIndex bucket, std::size_t line) override;
    void erase(BucketIndex bucket) override;
    std::size_t size() const override { return tree_.size(); }

    const IndexStats &stats() const { return stats_; }
    const hwtree::HwTree &tree() const { return tree_; }
    const hwtree::TreePipeline &pipeline() const { return pipeline_; }
    hwtree::TreePipeline &pipeline() { return pipeline_; }

  private:
    hwtree::HwTree tree_;
    hwtree::TreePipeline pipeline_;
    IndexStats stats_;
};

}  // namespace fidr::cache
