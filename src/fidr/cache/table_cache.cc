#include "fidr/cache/table_cache.h"

#include "fidr/fault/failpoint.h"
#include "fidr/obs/trace.h"

namespace fidr::cache {

FreeList::FreeList(std::size_t capacity) : ring_(capacity + 1, 0) {}

void
FreeList::push(std::size_t line)
{
    FIDR_CHECK(count_ < ring_.size());
    ring_[tail_] = line;
    tail_ = (tail_ + 1) % ring_.size();
    ++count_;
}

std::optional<std::size_t>
FreeList::pop()
{
    if (count_ == 0)
        return std::nullopt;
    const std::size_t line = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return line;
}

LruList::LruList(std::size_t lines) : links_(lines) {}

void
LruList::unlink(std::size_t line)
{
    Links &l = links_[line];
    FIDR_CHECK(l.linked);
    if (l.prev != kNil)
        links_[l.prev].next = l.next;
    else
        head_ = l.next;
    if (l.next != kNil)
        links_[l.next].prev = l.prev;
    else
        tail_ = l.prev;
    l = Links{};
    --count_;
}

void
LruList::touch(std::size_t line)
{
    FIDR_CHECK(line < links_.size());
    if (links_[line].linked)
        unlink(line);
    Links &l = links_[line];
    l.linked = true;
    l.prev = kNil;
    l.next = head_;
    if (head_ != kNil)
        links_[head_].prev = line;
    head_ = line;
    if (tail_ == kNil)
        tail_ = line;
    ++count_;
}

std::optional<std::size_t>
LruList::pop_victim()
{
    if (tail_ == kNil)
        return std::nullopt;
    const std::size_t line = tail_;
    unlink(line);
    return line;
}

void
LruList::remove(std::size_t line)
{
    FIDR_CHECK(line < links_.size());
    if (links_[line].linked)
        unlink(line);
}

ShardedCacheIndex::ShardedCacheIndex(
    std::vector<std::unique_ptr<CacheIndex>> subs)
    : subs_(std::move(subs))
{
    FIDR_CHECK(!subs_.empty() &&
               (subs_.size() & (subs_.size() - 1)) == 0);
    mask_ = subs_.size() - 1;
    for (const auto &sub : subs_)
        FIDR_CHECK(sub != nullptr);
}

std::optional<std::size_t>
ShardedCacheIndex::find(BucketIndex bucket)
{
    return subs_[static_cast<std::size_t>(bucket) & mask_]->find(bucket);
}

Status
ShardedCacheIndex::insert(BucketIndex bucket, std::size_t line)
{
    return subs_[static_cast<std::size_t>(bucket) & mask_]->insert(bucket,
                                                                   line);
}

void
ShardedCacheIndex::erase(BucketIndex bucket)
{
    subs_[static_cast<std::size_t>(bucket) & mask_]->erase(bucket);
}

std::size_t
ShardedCacheIndex::size() const
{
    std::size_t total = 0;
    for (const auto &sub : subs_)
        total += sub->size();
    return total;
}

TableCache::TableCache(tables::HashPbnTable &table, CacheIndex &index,
                       std::size_t lines, EvictionPolicy policy,
                       std::size_t shards)
    : table_(table), index_(index), policy_(policy), lines_(lines)
{
    FIDR_CHECK(lines > 0);
    FIDR_CHECK(shards > 0 && (shards & (shards - 1)) == 0);
    FIDR_CHECK(lines >= shards);
    shard_mask_ = shards - 1;
    lines_quot_ = lines / shards;
    lines_rem_ = lines % shards;

    // Contiguous slices, first `rem` shards one line larger — a pure
    // function of (lines, shards), like ThreadPool's shard split.
    shards_.reserve(shards);
    std::size_t base = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t count = lines_quot_ + (s < lines_rem_ ? 1 : 0);
        shards_.push_back(std::make_unique<Shard>(base, count));
        for (std::size_t i = 0; i < count; ++i)
            shards_.back()->free.push(i);
        base += count;
    }
    FIDR_CHECK(base == lines);
}

std::size_t
TableCache::shard_of_line(std::size_t line) const
{
    FIDR_CHECK(line < lines_.size());
    // First `rem` shards hold quot+1 lines, the rest quot.
    const std::size_t big = lines_rem_ * (lines_quot_ + 1);
    if (line < big)
        return line / (lines_quot_ + 1);
    return lines_rem_ + (line - big) / lines_quot_;
}

std::optional<std::size_t>
TableCache::pick_victim(Shard &shard)
{
    if (policy_ == EvictionPolicy::kPrioritizedLru) {
        // Low-priority lines first; the protected class is touched
        // only when nothing else remains.
        if (const auto victim = shard.lru.pop_victim())
            return victim;
        return shard.lru_high.pop_victim();
    }
    if (policy_ != EvictionPolicy::kRandom)
        return shard.lru.pop_victim();  // LRU and FIFO share the list.

    // Random: splitmix64 step over the shard's resident set.
    shard.victim_seed += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = shard.victim_seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    std::size_t candidate = z % shard.count;
    for (std::size_t step = 0; step < shard.count; ++step) {
        const std::size_t slot = (candidate + step) % shard.count;
        if (lines_[shard.base + slot].valid) {
            shard.lru.remove(slot);
            return slot;
        }
    }
    return std::nullopt;
}

tables::Bucket &
TableCache::bucket(std::size_t line)
{
    FIDR_CHECK(line < lines_.size() && lines_[line].valid);
    return lines_[line].bucket;
}

const tables::Bucket &
TableCache::bucket(std::size_t line) const
{
    FIDR_CHECK(line < lines_.size() && lines_[line].valid);
    return lines_[line].bucket;
}

void
TableCache::mark_dirty(std::size_t line)
{
    FIDR_CHECK(line < lines_.size() && lines_[line].valid);
    Shard &shard = *shards_[shard_of_line(line)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    lines_[line].dirty = true;
}

Status
TableCache::evict_one(Shard &shard)
{
    const auto victim = pick_victim(shard);
    if (!victim)
        return Status::internal("no evictable cache line");
    Line &line = lines_[shard.base + *victim];
    FIDR_CHECK(line.valid);
    if (line.dirty) {
        FIDR_TPOINT(obs::Tpoint::kCacheWriteback, line.owner,
                    kBucketSize);
        Status flushed =
            fault::as_status(FIDR_FAULT_EVAL(fault::Site::kCacheWriteback),
                             fault::Site::kCacheWriteback);
        if (flushed.is_ok())
            flushed = table_.write_bucket(line.owner, line.bucket);
        if (!flushed.is_ok()) {
            // Failed flush: the line stays resident (and dirty), so no
            // update is lost; re-link it so the LRU still covers every
            // resident line.  It lands at MRU, which also keeps a
            // persistently failing victim from being retried on every
            // miss.
            shard.lru.touch(*victim);
            return flushed;
        }
        ++shard.stats.dirty_evictions;
    }
    ++shard.stats.evictions;
    index_.erase(line.owner);
    line = Line{};
    shard.free.push(*victim);
    return Status::ok();
}

Result<CacheAccess>
TableCache::access(BucketIndex bucket_index, bool high_priority)
{
    CacheAccess out;
    Shard &shard = shard_for(bucket_index);
    std::lock_guard<std::mutex> lock(shard.mutex);

    // Recency and the index speak different units: the index maps to
    // global line ids, the shard's LRU/free lists to local slots.
    const auto touch = [this, &shard, high_priority](std::size_t slot) {
        if (policy_ == EvictionPolicy::kPrioritizedLru) {
            // The line follows the class of its latest toucher.
            shard.lru.remove(slot);
            shard.lru_high.remove(slot);
            (high_priority ? shard.lru_high : shard.lru).touch(slot);
        } else {
            shard.lru.touch(slot);
        }
    };

    if (const auto line = index_.find(bucket_index)) {
        ++shard.stats.hits;
        // FIFO deliberately does not refresh recency on a hit.
        if (policy_ != EvictionPolicy::kFifo &&
            policy_ != EvictionPolicy::kRandom) {
            touch(*line - shard.base);
        }
        out.line = *line;
        return out;
    }

    ++shard.stats.misses;
    out.miss = true;

    // Injected fetch fault before any structural mutation, so a failed
    // access leaves the cache exactly as it was.
    FIDR_FAULT_RETURN_IF(fault::Site::kCacheFetch);

    if (shard.free.empty()) {
        const std::uint64_t dirty_before = shard.stats.dirty_evictions;
        const Status evicted = evict_one(shard);
        if (!evicted.is_ok())
            return evicted;
        out.evicted = true;
        out.evicted_dirty = shard.stats.dirty_evictions > dirty_before;
    }
    const auto slot = shard.free.pop();
    FIDR_CHECK(slot.has_value());
    const std::size_t global = shard.base + *slot;

    FIDR_TPOINT(obs::Tpoint::kCacheFetch, bucket_index, kBucketSize);
    Result<tables::Bucket> fetched = table_.read_bucket(bucket_index);
    if (!fetched.is_ok()) {
        // A failed fill (e.g. injected table-SSD read error) must not
        // leak the slot: return it so free+resident still partition
        // the cache.
        shard.free.push(*slot);
        return fetched.status();
    }

    Line &line = lines_[global];
    line.bucket = fetched.take();
    line.owner = bucket_index;
    line.valid = true;
    line.dirty = false;

    const Status indexed = index_.insert(bucket_index, global);
    if (!indexed.is_ok())
        return indexed;
    touch(*slot);
    out.line = global;
    return out;
}

Status
TableCache::writeback_all()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (std::size_t i = 0; i < shard->count; ++i) {
            Line &line = lines_[shard->base + i];
            if (!line.valid || !line.dirty)
                continue;
            Status flushed = fault::as_status(
                FIDR_FAULT_EVAL(fault::Site::kCacheWriteback),
                fault::Site::kCacheWriteback);
            if (flushed.is_ok())
                flushed = table_.write_bucket(line.owner, line.bucket);
            if (!flushed.is_ok())
                return flushed;  // Line stays dirty; retry resumes here.
            line.dirty = false;
        }
    }
    return Status::ok();
}

CacheStats
TableCache::stats() const
{
    CacheStats total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.hits += shard->stats.hits;
        total.misses += shard->stats.misses;
        total.evictions += shard->stats.evictions;
        total.dirty_evictions += shard->stats.dirty_evictions;
    }
    return total;
}

CacheStats
TableCache::shard_stats(std::size_t shard) const
{
    FIDR_CHECK(shard < shards_.size());
    std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
    return shards_[shard]->stats;
}

std::size_t
TableCache::resident() const
{
    std::size_t count = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (std::size_t i = 0; i < shard->count; ++i) {
            if (lines_[shard->base + i].valid)
                ++count;
        }
    }
    return count;
}

std::size_t
TableCache::free_lines() const
{
    std::size_t count = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        count += shard->free.size();
    }
    return count;
}

Status
TableCache::validate() const
{
    std::size_t valid_lines = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        std::size_t shard_valid = 0;
        for (std::size_t i = 0; i < shard->count; ++i) {
            const std::size_t global = shard->base + i;
            const Line &line = lines_[global];
            if (!line.valid)
                continue;
            ++shard_valid;
            // Each resident line must be indexed at its owner key, and
            // the owner must route back to the shard holding it.
            const auto found = index_.find(line.owner);
            if (!found || *found != global)
                return Status::internal(
                    "resident line not indexed correctly");
            if (shard_of(line.owner) != shard_of_line(global))
                return Status::internal("resident line in wrong shard");
        }
        if (shard->free.size() + shard_valid != shard->count)
            return Status::internal("free list + resident != capacity");
        if (shard->lru.size() + shard->lru_high.size() != shard_valid)
            return Status::internal(
                "LRU lists do not cover resident lines");
        valid_lines += shard_valid;
    }
    if (index_.size() != valid_lines)
        return Status::internal("index size != resident lines");
    return Status::ok();
}

}  // namespace fidr::cache
