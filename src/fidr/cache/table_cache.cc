#include "fidr/cache/table_cache.h"

#include "fidr/fault/failpoint.h"
#include "fidr/obs/trace.h"

namespace fidr::cache {

FreeList::FreeList(std::size_t capacity) : ring_(capacity + 1, 0) {}

void
FreeList::push(std::size_t line)
{
    FIDR_CHECK(count_ < ring_.size());
    ring_[tail_] = line;
    tail_ = (tail_ + 1) % ring_.size();
    ++count_;
}

std::optional<std::size_t>
FreeList::pop()
{
    if (count_ == 0)
        return std::nullopt;
    const std::size_t line = ring_[head_];
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return line;
}

LruList::LruList(std::size_t lines) : links_(lines) {}

void
LruList::unlink(std::size_t line)
{
    Links &l = links_[line];
    FIDR_CHECK(l.linked);
    if (l.prev != kNil)
        links_[l.prev].next = l.next;
    else
        head_ = l.next;
    if (l.next != kNil)
        links_[l.next].prev = l.prev;
    else
        tail_ = l.prev;
    l = Links{};
    --count_;
}

void
LruList::touch(std::size_t line)
{
    FIDR_CHECK(line < links_.size());
    if (links_[line].linked)
        unlink(line);
    Links &l = links_[line];
    l.linked = true;
    l.prev = kNil;
    l.next = head_;
    if (head_ != kNil)
        links_[head_].prev = line;
    head_ = line;
    if (tail_ == kNil)
        tail_ = line;
    ++count_;
}

std::optional<std::size_t>
LruList::pop_victim()
{
    if (tail_ == kNil)
        return std::nullopt;
    const std::size_t line = tail_;
    unlink(line);
    return line;
}

void
LruList::remove(std::size_t line)
{
    FIDR_CHECK(line < links_.size());
    if (links_[line].linked)
        unlink(line);
}

TableCache::TableCache(tables::HashPbnTable &table, CacheIndex &index,
                       std::size_t lines, EvictionPolicy policy)
    : table_(table), index_(index), policy_(policy), lines_(lines),
      free_(lines), lru_(lines), lru_high_(lines)
{
    FIDR_CHECK(lines > 0);
    for (std::size_t i = 0; i < lines; ++i)
        free_.push(i);
}

std::optional<std::size_t>
TableCache::pick_victim()
{
    if (policy_ == EvictionPolicy::kPrioritizedLru) {
        // Low-priority lines first; the protected class is touched
        // only when nothing else remains.
        if (const auto victim = lru_.pop_victim())
            return victim;
        return lru_high_.pop_victim();
    }
    if (policy_ != EvictionPolicy::kRandom)
        return lru_.pop_victim();  // LRU and FIFO share the list.

    // Random: splitmix64 step over the resident set.
    victim_seed_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = victim_seed_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    std::size_t candidate = z % lines_.size();
    for (std::size_t step = 0; step < lines_.size(); ++step) {
        const std::size_t line = (candidate + step) % lines_.size();
        if (lines_[line].valid) {
            lru_.remove(line);
            return line;
        }
    }
    return std::nullopt;
}

tables::Bucket &
TableCache::bucket(std::size_t line)
{
    FIDR_CHECK(line < lines_.size() && lines_[line].valid);
    return lines_[line].bucket;
}

const tables::Bucket &
TableCache::bucket(std::size_t line) const
{
    FIDR_CHECK(line < lines_.size() && lines_[line].valid);
    return lines_[line].bucket;
}

void
TableCache::mark_dirty(std::size_t line)
{
    FIDR_CHECK(line < lines_.size() && lines_[line].valid);
    lines_[line].dirty = true;
}

Status
TableCache::evict_one()
{
    const auto victim = pick_victim();
    if (!victim)
        return Status::internal("no evictable cache line");
    Line &line = lines_[*victim];
    FIDR_CHECK(line.valid);
    if (line.dirty) {
        FIDR_TPOINT(obs::Tpoint::kCacheWriteback, line.owner,
                    kBucketSize);
        Status flushed =
            fault::as_status(FIDR_FAULT_EVAL(fault::Site::kCacheWriteback),
                             fault::Site::kCacheWriteback);
        if (flushed.is_ok())
            flushed = table_.write_bucket(line.owner, line.bucket);
        if (!flushed.is_ok()) {
            // Failed flush: the line stays resident (and dirty), so no
            // update is lost; re-link it so the LRU still covers every
            // resident line.  It lands at MRU, which also keeps a
            // persistently failing victim from being retried on every
            // miss.
            lru_.touch(*victim);
            return flushed;
        }
        ++stats_.dirty_evictions;
    }
    ++stats_.evictions;
    index_.erase(line.owner);
    line = Line{};
    free_.push(*victim);
    return Status::ok();
}

Result<CacheAccess>
TableCache::access(BucketIndex bucket_index, bool high_priority)
{
    CacheAccess out;

    const auto touch = [this, high_priority](std::size_t line) {
        if (policy_ == EvictionPolicy::kPrioritizedLru) {
            // The line follows the class of its latest toucher.
            lru_.remove(line);
            lru_high_.remove(line);
            (high_priority ? lru_high_ : lru_).touch(line);
        } else {
            lru_.touch(line);
        }
    };

    if (const auto line = index_.find(bucket_index)) {
        ++stats_.hits;
        // FIFO deliberately does not refresh recency on a hit.
        if (policy_ != EvictionPolicy::kFifo &&
            policy_ != EvictionPolicy::kRandom) {
            touch(*line);
        }
        out.line = *line;
        return out;
    }

    ++stats_.misses;
    out.miss = true;

    // Injected fetch fault before any structural mutation, so a failed
    // access leaves the cache exactly as it was.
    FIDR_FAULT_RETURN_IF(fault::Site::kCacheFetch);

    if (free_.empty()) {
        const std::uint64_t dirty_before = stats_.dirty_evictions;
        const Status evicted = evict_one();
        if (!evicted.is_ok())
            return evicted;
        out.evicted = true;
        out.evicted_dirty = stats_.dirty_evictions > dirty_before;
    }
    const auto slot = free_.pop();
    FIDR_CHECK(slot.has_value());

    FIDR_TPOINT(obs::Tpoint::kCacheFetch, bucket_index, kBucketSize);
    Result<tables::Bucket> fetched = table_.read_bucket(bucket_index);
    if (!fetched.is_ok()) {
        // A failed fill (e.g. injected table-SSD read error) must not
        // leak the slot: return it so free+resident still partition
        // the cache.
        free_.push(*slot);
        return fetched.status();
    }

    Line &line = lines_[*slot];
    line.bucket = fetched.take();
    line.owner = bucket_index;
    line.valid = true;
    line.dirty = false;

    const Status indexed = index_.insert(bucket_index, *slot);
    if (!indexed.is_ok())
        return indexed;
    touch(*slot);
    out.line = *slot;
    return out;
}

Status
TableCache::writeback_all()
{
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        Line &line = lines_[i];
        if (line.valid && line.dirty) {
            Status flushed = fault::as_status(
                FIDR_FAULT_EVAL(fault::Site::kCacheWriteback),
                fault::Site::kCacheWriteback);
            if (flushed.is_ok())
                flushed = table_.write_bucket(line.owner, line.bucket);
            if (!flushed.is_ok())
                return flushed;  // Line stays dirty; retry resumes here.
            line.dirty = false;
        }
    }
    return Status::ok();
}

std::size_t
TableCache::resident() const
{
    std::size_t count = 0;
    for (const Line &line : lines_) {
        if (line.valid)
            ++count;
    }
    return count;
}

Status
TableCache::validate() const
{
    std::size_t valid_lines = 0;
    for (std::size_t i = 0; i < lines_.size(); ++i) {
        const Line &line = lines_[i];
        if (!line.valid)
            continue;
        ++valid_lines;
        // Each resident line must be indexed at its owner key.
        const auto found = index_.find(line.owner);
        if (!found || *found != i)
            return Status::internal("resident line not indexed correctly");
    }
    if (index_.size() != valid_lines)
        return Status::internal("index size != resident lines");
    if (free_.size() + valid_lines != lines_.size())
        return Status::internal("free list + resident != capacity");
    if (lru_.size() + lru_high_.size() != valid_lines)
        return Status::internal("LRU lists do not cover resident lines");
    return Status::ok();
}

}  // namespace fidr::cache
