/**
 * @file
 * Hash-PBN table cache (paper Sec 2.1.3, 4.3, 5.5).
 *
 * The full Hash-PBN table is multi-TB and lives on table SSDs; only a
 * slice is cached in host DRAM as 4 KB cache lines, one table bucket
 * per line.  Four data structures cooperate:
 *
 *  - the *index*: (bucket index on SSD) -> (cache line) map.  The
 *    baseline implements it as a software B+ tree on the CPU; FIDR
 *    moves it into the Cache HW-Engine's pipelined tree.  Both hide
 *    behind the CacheIndex interface so the systems share TableCache.
 *  - the *free list*: a circular buffer of unused line slots (the
 *    paper places it in FPGA-board DRAM, Sec 6.3);
 *  - the *LRU list*: eviction order, kept host-side in both systems
 *    (Sec 5.5: the host touches content, so it maintains recency);
 *  - the *lines*: the cached bucket contents in host DRAM, scanned by
 *    host software in both systems (Observation #4).
 *
 * TableCache is write-back: bucket mutations dirty the line and reach
 * the table SSD on eviction or writeback_all().
 *
 * Sharding (Sec 5.5 / Observation #4): the paper's Cache HW-Engine
 * sustains many concurrent index operations because the tree is a
 * hardware pipeline.  The software stand-in gets the same headroom by
 * partitioning the cache into N = 2^k shards keyed by the bucket
 * index's low bits: each shard owns a contiguous slice of the lines
 * plus its own free list, LRU lists, stats, and mutex, so accesses to
 * different shards never contend.  shards = 1 (the default) is
 * byte-identical to the unsharded cache.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/types.h"
#include "fidr/tables/hash_pbn.h"

namespace fidr::cache {

/** Index mapping on-SSD bucket indexes to cache line slots. */
class CacheIndex {
  public:
    virtual ~CacheIndex() = default;

    virtual std::optional<std::size_t> find(BucketIndex bucket) = 0;
    virtual Status insert(BucketIndex bucket, std::size_t line) = 0;
    virtual void erase(BucketIndex bucket) = 0;
    virtual std::size_t size() const = 0;
};

/**
 * Routes each bucket to one of 2^k sub-indexes by the bucket index's
 * low bits — the same key TableCache shards by, so when the sub count
 * matches the cache's shard count, sub-index s is only ever touched
 * under shard s's mutex and any single-threaded CacheIndex backend
 * (software B+ tree or HW-tree model) becomes safe to use from the
 * sharded cache without its own locking.
 */
class ShardedCacheIndex final : public CacheIndex {
  public:
    /** `subs` must be a non-empty power-of-two set of sub-indexes. */
    explicit ShardedCacheIndex(
        std::vector<std::unique_ptr<CacheIndex>> subs);

    std::optional<std::size_t> find(BucketIndex bucket) override;
    Status insert(BucketIndex bucket, std::size_t line) override;
    void erase(BucketIndex bucket) override;
    std::size_t size() const override;

    std::size_t sub_count() const { return subs_.size(); }
    CacheIndex &sub(std::size_t i) { return *subs_[i]; }
    const CacheIndex &sub(std::size_t i) const { return *subs_[i]; }

  private:
    std::vector<std::unique_ptr<CacheIndex>> subs_;
    std::size_t mask_ = 0;
};

/** Fixed-capacity circular buffer of free cache line slots. */
class FreeList {
  public:
    explicit FreeList(std::size_t capacity);

    void push(std::size_t line);
    std::optional<std::size_t> pop();

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

  private:
    std::vector<std::size_t> ring_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    std::size_t count_ = 0;
};

/** Intrusive LRU list over cache line slots. */
class LruList {
  public:
    explicit LruList(std::size_t lines);

    /** Marks `line` most recently used (inserting it if absent). */
    void touch(std::size_t line);

    /** Removes and returns the least recently used line. */
    std::optional<std::size_t> pop_victim();

    /** Removes `line` from the list if present. */
    void remove(std::size_t line);

    std::size_t size() const { return count_; }

  private:
    static constexpr std::size_t kNil = SIZE_MAX;

    struct Links {
        std::size_t prev = kNil;
        std::size_t next = kNil;
        bool linked = false;
    };

    void unlink(std::size_t line);

    std::vector<Links> links_;
    std::size_t head_ = kNil;  ///< Most recently used.
    std::size_t tail_ = kNil;  ///< Least recently used.
    std::size_t count_ = 0;
};

/**
 * Victim-selection policy.  The paper uses plain LRU and notes
 * (Sec 8) that policy is orthogonal — prioritized/differentiated
 * policies slot in the same way; kFifo and kRandom exist for the
 * replacement-policy ablation bench.
 */
enum class EvictionPolicy {
    kLru,     ///< Least recently used (the paper's policy).
    kFifo,    ///< Insertion order; hits do not refresh recency.
    kRandom,  ///< Uniformly random resident line.
    /**
     * Two-class LRU (the Sec 8 multi-tenant suggestion): lines last
     * touched by a high-priority tenant are only evicted when no
     * low-priority victim exists, so a scanning tenant cannot flush a
     * latency-sensitive tenant's working set.
     */
    kPrioritizedLru,
};

/** Result of one cache access. */
struct CacheAccess {
    std::size_t line = 0;
    bool miss = false;
    bool evicted = false;
    bool evicted_dirty = false;
};

/** Hit/miss/eviction counters. */
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;

    double
    hit_rate() const
    {
        const std::uint64_t total = hits + misses;
        return total > 0
                   ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
};

/** Write-back cache of Hash-PBN table buckets. */
class TableCache {
  public:
    /**
     * @param table  backing on-SSD table (fetch/flush target).
     * @param index  bucket->line index implementation (not owned).
     *               With shards > 1 pass a ShardedCacheIndex whose
     *               sub count equals `shards` so index routing matches
     *               cache routing (bucket & (shards-1)).
     * @param lines  cache capacity in 4 KB lines (>= shards).
     * @param policy victim selection policy (LRU in the paper).
     * @param shards power-of-two shard count; 1 = unsharded.
     */
    TableCache(tables::HashPbnTable &table, CacheIndex &index,
               std::size_t lines,
               EvictionPolicy policy = EvictionPolicy::kLru,
               std::size_t shards = 1);

    /**
     * Ensures the bucket is resident, evicting an LRU victim from the
     * bucket's shard when that shard's free list is empty.  The
     * returned line stays valid until the next access() for a bucket
     * of the same shard.  `high_priority` only matters under
     * kPrioritizedLru, where it pins the line into the protected
     * class until a low-priority access touches it.
     */
    Result<CacheAccess> access(BucketIndex bucket,
                               bool high_priority = false);

    /**
     * The cached bucket on `line` (must be valid/resident).  Content
     * ownership follows the access() contract: the caller that mapped
     * the line may read/mutate it without holding the shard lock.
     */
    tables::Bucket &bucket(std::size_t line);
    const tables::Bucket &bucket(std::size_t line) const;

    /** Marks `line` modified so eviction flushes it. */
    void mark_dirty(std::size_t line);

    /** Flushes every dirty line to the table SSD (lines stay cached). */
    Status writeback_all();

    /** Aggregate counters over all shards (by value). */
    CacheStats stats() const;

    std::size_t shard_count() const { return shards_.size(); }

    /** One shard's counters (by value; shard < shard_count()). */
    CacheStats shard_stats(std::size_t shard) const;

    /** The shard that owns `bucket` (routing: bucket & (N-1)). */
    std::size_t shard_of(BucketIndex bucket) const
    { return static_cast<std::size_t>(bucket) & shard_mask_; }

    std::size_t lines() const { return lines_.size(); }

    /** The backing on-SSD table this cache fronts. */
    tables::HashPbnTable &table() { return table_; }
    const tables::HashPbnTable &table() const { return table_; }

    std::size_t resident() const;
    std::size_t free_lines() const;

    /** Cache capacity in bytes (the Table 5 "table cache size"). */
    std::uint64_t capacity_bytes() const
    { return lines_.size() * kBucketSize; }

    /**
     * Invariants: every resident line is indexed exactly once, free
     * and resident line sets partition each shard, the LRU lists cover
     * exactly the resident lines, and every resident owner routes to
     * the shard holding it.
     */
    Status validate() const;

  private:
    struct Line {
        tables::Bucket bucket;
        BucketIndex owner = 0;
        bool valid = false;
        bool dirty = false;
    };

    /**
     * One shard: a contiguous slice of global lines [base, base+count)
     * with private eviction structures over local slots [0, count).
     * unique_ptr because std::mutex is immovable.
     */
    struct Shard {
        Shard(std::size_t base, std::size_t count)
            : base(base), count(count), free(count), lru(count),
              lru_high(count)
        {
        }

        std::size_t base;
        std::size_t count;
        FreeList free;
        LruList lru;
        LruList lru_high;  ///< Protected class under kPrioritizedLru.
        CacheStats stats;
        std::uint64_t victim_seed = 0x9E3779B97F4A7C15ull;
        mutable std::mutex mutex;
    };

    Shard &shard_for(BucketIndex bucket)
    { return *shards_[shard_of(bucket)]; }

    /** The shard owning global line id `line` (size arithmetic). */
    std::size_t shard_of_line(std::size_t line) const;

    Status evict_one(Shard &shard);
    std::optional<std::size_t> pick_victim(Shard &shard);

    tables::HashPbnTable &table_;
    CacheIndex &index_;
    EvictionPolicy policy_;
    std::vector<Line> lines_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::size_t shard_mask_ = 0;
    std::size_t lines_quot_ = 0;  ///< lines / shards.
    std::size_t lines_rem_ = 0;   ///< lines % shards.
};

}  // namespace fidr::cache
