/**
 * @file
 * Hash-PBN table cache (paper Sec 2.1.3, 4.3, 5.5).
 *
 * The full Hash-PBN table is multi-TB and lives on table SSDs; only a
 * slice is cached in host DRAM as 4 KB cache lines, one table bucket
 * per line.  Four data structures cooperate:
 *
 *  - the *index*: (bucket index on SSD) -> (cache line) map.  The
 *    baseline implements it as a software B+ tree on the CPU; FIDR
 *    moves it into the Cache HW-Engine's pipelined tree.  Both hide
 *    behind the CacheIndex interface so the systems share TableCache.
 *  - the *free list*: a circular buffer of unused line slots (the
 *    paper places it in FPGA-board DRAM, Sec 6.3);
 *  - the *LRU list*: eviction order, kept host-side in both systems
 *    (Sec 5.5: the host touches content, so it maintains recency);
 *  - the *lines*: the cached bucket contents in host DRAM, scanned by
 *    host software in both systems (Observation #4).
 *
 * TableCache is write-back: bucket mutations dirty the line and reach
 * the table SSD on eviction or writeback_all().
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/types.h"
#include "fidr/tables/hash_pbn.h"

namespace fidr::cache {

/** Index mapping on-SSD bucket indexes to cache line slots. */
class CacheIndex {
  public:
    virtual ~CacheIndex() = default;

    virtual std::optional<std::size_t> find(BucketIndex bucket) = 0;
    virtual Status insert(BucketIndex bucket, std::size_t line) = 0;
    virtual void erase(BucketIndex bucket) = 0;
    virtual std::size_t size() const = 0;
};

/** Fixed-capacity circular buffer of free cache line slots. */
class FreeList {
  public:
    explicit FreeList(std::size_t capacity);

    void push(std::size_t line);
    std::optional<std::size_t> pop();

    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

  private:
    std::vector<std::size_t> ring_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    std::size_t count_ = 0;
};

/** Intrusive LRU list over cache line slots. */
class LruList {
  public:
    explicit LruList(std::size_t lines);

    /** Marks `line` most recently used (inserting it if absent). */
    void touch(std::size_t line);

    /** Removes and returns the least recently used line. */
    std::optional<std::size_t> pop_victim();

    /** Removes `line` from the list if present. */
    void remove(std::size_t line);

    std::size_t size() const { return count_; }

  private:
    static constexpr std::size_t kNil = SIZE_MAX;

    struct Links {
        std::size_t prev = kNil;
        std::size_t next = kNil;
        bool linked = false;
    };

    void unlink(std::size_t line);

    std::vector<Links> links_;
    std::size_t head_ = kNil;  ///< Most recently used.
    std::size_t tail_ = kNil;  ///< Least recently used.
    std::size_t count_ = 0;
};

/**
 * Victim-selection policy.  The paper uses plain LRU and notes
 * (Sec 8) that policy is orthogonal — prioritized/differentiated
 * policies slot in the same way; kFifo and kRandom exist for the
 * replacement-policy ablation bench.
 */
enum class EvictionPolicy {
    kLru,     ///< Least recently used (the paper's policy).
    kFifo,    ///< Insertion order; hits do not refresh recency.
    kRandom,  ///< Uniformly random resident line.
    /**
     * Two-class LRU (the Sec 8 multi-tenant suggestion): lines last
     * touched by a high-priority tenant are only evicted when no
     * low-priority victim exists, so a scanning tenant cannot flush a
     * latency-sensitive tenant's working set.
     */
    kPrioritizedLru,
};

/** Result of one cache access. */
struct CacheAccess {
    std::size_t line = 0;
    bool miss = false;
    bool evicted = false;
    bool evicted_dirty = false;
};

/** Hit/miss/eviction counters. */
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t dirty_evictions = 0;

    double
    hit_rate() const
    {
        const std::uint64_t total = hits + misses;
        return total > 0
                   ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
};

/** Write-back cache of Hash-PBN table buckets. */
class TableCache {
  public:
    /**
     * @param table  backing on-SSD table (fetch/flush target).
     * @param index  bucket->line index implementation (not owned).
     * @param lines  cache capacity in 4 KB lines.
     * @param policy victim selection policy (LRU in the paper).
     */
    TableCache(tables::HashPbnTable &table, CacheIndex &index,
               std::size_t lines,
               EvictionPolicy policy = EvictionPolicy::kLru);

    /**
     * Ensures the bucket is resident, evicting an LRU victim when the
     * free list is empty.  The returned line stays valid until the
     * next access() call.  `high_priority` only matters under
     * kPrioritizedLru, where it pins the line into the protected
     * class until a low-priority access touches it.
     */
    Result<CacheAccess> access(BucketIndex bucket,
                               bool high_priority = false);

    /** The cached bucket on `line` (must be valid/resident). */
    tables::Bucket &bucket(std::size_t line);
    const tables::Bucket &bucket(std::size_t line) const;

    /** Marks `line` modified so eviction flushes it. */
    void mark_dirty(std::size_t line);

    /** Flushes every dirty line to the table SSD (lines stay cached). */
    Status writeback_all();

    const CacheStats &stats() const { return stats_; }
    std::size_t lines() const { return lines_.size(); }

    /** The backing on-SSD table this cache fronts. */
    tables::HashPbnTable &table() { return table_; }
    const tables::HashPbnTable &table() const { return table_; }

    std::size_t resident() const;
    std::size_t free_lines() const { return free_.size(); }

    /** Cache capacity in bytes (the Table 5 "table cache size"). */
    std::uint64_t capacity_bytes() const
    { return lines_.size() * kBucketSize; }

    /**
     * Invariants: every resident line is indexed exactly once, free
     * and resident line sets partition the cache, LRU covers exactly
     * the resident lines.
     */
    Status validate() const;

  private:
    struct Line {
        tables::Bucket bucket;
        BucketIndex owner = 0;
        bool valid = false;
        bool dirty = false;
    };

    Status evict_one();
    std::optional<std::size_t> pick_victim();

    tables::HashPbnTable &table_;
    CacheIndex &index_;
    EvictionPolicy policy_;
    std::vector<Line> lines_;
    FreeList free_;
    LruList lru_;
    LruList lru_high_;  ///< Protected class under kPrioritizedLru.
    CacheStats stats_;
    std::uint64_t victim_seed_ = 0x9E3779B97F4A7C15ull;
};

}  // namespace fidr::cache
