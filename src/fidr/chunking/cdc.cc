#include "fidr/chunking/cdc.h"

#include <bit>

#include "fidr/chunking/cdc_kernels.h"
#include "fidr/common/rng.h"
#include "fidr/common/simd.h"
#include "fidr/common/status.h"

namespace fidr::chunking {

namespace detail {

const GearTables &
gear_tables()
{
    // Built once per process (thread-safe magic static) from the fixed
    // seed: chunking must be deterministic across runs and machines or
    // dedup against old data breaks.  PR 6 hoisted this out of the
    // GearCdc constructor so per-buffer chunker instances (the
    // ablation benches build one per configuration) stop re-filling
    // 2 KB of table state.
    static const GearTables tables = [] {
        GearTables t;
        Rng rng(0xC0FFEE);
        for (int i = 0; i < 256; ++i) {
            t.gear[i] = rng.next_u64();
            t.g16[i] = static_cast<std::uint32_t>(t.gear[i] & 0xffff);
            t.g16w[i] = static_cast<std::uint16_t>(t.gear[i] & 0xffff);
        }
        return t;
    }();
    return tables;
}

std::size_t
gear_scan_scalar(const std::uint8_t *p, std::size_t from, std::size_t limit,
                 std::uint64_t mask, const GearTables &tables)
{
    const std::uint64_t *const gear = tables.gear;
    std::uint64_t h = 0;
    std::size_t i = from;
    // Unrolled 8 bytes per iteration (PR 1): one boundary test per
    // byte is still required for identical cuts, but the loop bound
    // check amortizes over 8 bytes and the single-exit structure
    // keeps it branch-light.
    const std::size_t unroll_end = from + (limit - from) / 8 * 8;
    for (; i < unroll_end; i += 8) {
#define FIDR_CDC_STEP(off)                                              \
        h = (h << 1) + gear[p[i + (off)]];                              \
        if ((h & mask) == 0)                                            \
            return i + (off) + 1;
        FIDR_CDC_STEP(0)
        FIDR_CDC_STEP(1)
        FIDR_CDC_STEP(2)
        FIDR_CDC_STEP(3)
        FIDR_CDC_STEP(4)
        FIDR_CDC_STEP(5)
        FIDR_CDC_STEP(6)
        FIDR_CDC_STEP(7)
#undef FIDR_CDC_STEP
    }
    for (; i < limit; ++i) {
        h = (h << 1) + gear[p[i]];
        if ((h & mask) == 0)
            return i + 1;
    }
    return limit;
}

}  // namespace detail

GearCdc::GearCdc(CdcParams params)
    : params_(params), tables_(&detail::gear_tables())
{
    FIDR_CHECK(params_.min_size >= 64);
    FIDR_CHECK(params_.min_size < params_.avg_size);
    FIDR_CHECK(params_.avg_size < params_.max_size);
    FIDR_CHECK(std::has_single_bit(params_.avg_size));
    // Boundary probability per byte ~ 1/(avg - min): low (avg - min)
    // rounded to a power of two bits of the hash must be zero.
    const std::size_t window = params_.avg_size - params_.min_size;
    mask_ = std::bit_ceil(window) - 1;
}

std::vector<ChunkSpan>
GearCdc::split(std::span<const std::uint8_t> data) const
{
    // Pick the scan kernel once per call: the SIMD kernels compute the
    // masked hash in 16-bit lanes, so they are exact only while the
    // mask fits 16 bits (avg - min <= 64 KiB; every configuration the
    // benches sweep).  Wider masks fall back to the scalar reference.
    using ScanFn = std::size_t (*)(const std::uint8_t *, std::size_t,
                                   std::size_t, std::uint64_t,
                                   const detail::GearTables &);
    ScanFn scan = detail::gear_scan_scalar;
#if defined(FIDR_SIMD_X86)
    if (mask_ <= 0xffff) {
        switch (simd::active()) {
          case simd::Target::kAvx512:
            scan = detail::gear_scan_avx512;
            break;
          case simd::Target::kAvx2: scan = detail::gear_scan_avx2; break;
          case simd::Target::kSse4: scan = detail::gear_scan_sse4; break;
          case simd::Target::kScalar: break;
        }
    }
#endif

    const std::uint8_t *const base = data.data();
    std::vector<ChunkSpan> out;
    std::size_t start = 0;
    while (start < data.size()) {
        const std::size_t remaining = data.size() - start;
        if (remaining <= params_.min_size) {
            out.push_back({start, remaining});
            break;
        }
        // Skip the minimum region (FastCDC's min-skip optimization),
        // then roll the gear hash until the low bits hit zero, with a
        // forced cut at max_size.
        const std::size_t limit = std::min(remaining, params_.max_size);
        const std::size_t cut =
            scan(base + start, params_.min_size, limit, mask_, *tables_);
        // Every byte from min_size up to (and including) the boundary
        // byte was hashed exactly once — also when no boundary fired
        // and cut == limit.
        hashed_bytes_ += cut - params_.min_size;
        out.push_back({start, cut});
        start += cut;
    }
    return out;
}

std::vector<ChunkSpan>
split_fixed(std::span<const std::uint8_t> data, std::size_t chunk_size)
{
    FIDR_CHECK(chunk_size > 0);
    std::vector<ChunkSpan> out;
    for (std::size_t start = 0; start < data.size();
         start += chunk_size) {
        out.push_back({start, std::min(chunk_size, data.size() - start)});
    }
    return out;
}

}  // namespace fidr::chunking
