#include "fidr/chunking/cdc.h"

#include <bit>

#include "fidr/common/rng.h"
#include "fidr/common/status.h"

namespace fidr::chunking {

GearCdc::GearCdc(CdcParams params) : params_(params)
{
    FIDR_CHECK(params_.min_size >= 64);
    FIDR_CHECK(params_.min_size < params_.avg_size);
    FIDR_CHECK(params_.avg_size < params_.max_size);
    FIDR_CHECK(std::has_single_bit(params_.avg_size));
    // Boundary probability per byte ~ 1/(avg - min): low (avg-min)
    // rounded to a power of two bits of the hash must be zero.
    const std::size_t window = params_.avg_size - params_.min_size;
    mask_ = std::bit_ceil(window) - 1;

    // Fixed-seed gear table: chunking must be deterministic across
    // runs and machines or dedup against old data breaks.
    Rng rng(0xC0FFEE);
    for (auto &entry : gear_)
        entry = rng.next_u64();
}

std::vector<ChunkSpan>
GearCdc::split(std::span<const std::uint8_t> data) const
{
    const std::uint8_t *const base = data.data();
    std::vector<ChunkSpan> out;
    std::size_t start = 0;
    while (start < data.size()) {
        const std::size_t remaining = data.size() - start;
        if (remaining <= params_.min_size) {
            out.push_back({start, remaining});
            break;
        }
        const std::size_t limit = std::min(remaining, params_.max_size);

        // Skip the minimum region (FastCDC's min-skip optimization),
        // then roll the gear hash until the low bits hit zero.  The
        // inner loop is unrolled 8 bytes per iteration (VectorCDC's
        // lane-parallel treatment of the rolling hash, scalar
        // edition): one boundary test per byte is still required for
        // identical cuts, but the loop bound check amortizes over 8
        // bytes and the single-exit structure keeps it branch-light.
        std::size_t cut = limit;
        std::uint64_t h = 0;
        std::size_t i = params_.min_size;
        const std::size_t unroll_end =
            params_.min_size + (limit - params_.min_size) / 8 * 8;
        const std::uint8_t *p = base + start;
        for (; i < unroll_end; i += 8) {
#define FIDR_CDC_STEP(off)                                              \
            h = (h << 1) + gear_[p[i + (off)]];                         \
            if ((h & mask_) == 0) {                                     \
                cut = i + (off) + 1;                                    \
                goto found;                                             \
            }
            FIDR_CDC_STEP(0)
            FIDR_CDC_STEP(1)
            FIDR_CDC_STEP(2)
            FIDR_CDC_STEP(3)
            FIDR_CDC_STEP(4)
            FIDR_CDC_STEP(5)
            FIDR_CDC_STEP(6)
            FIDR_CDC_STEP(7)
#undef FIDR_CDC_STEP
        }
        for (; i < limit; ++i) {
            h = (h << 1) + gear_[p[i]];
            if ((h & mask_) == 0) {
                cut = i + 1;
                break;
            }
        }
    found:
        // Every byte from min_size up to (and including) the boundary
        // byte was hashed exactly once — also when no boundary fired
        // and cut == limit.
        hashed_bytes_ += cut - params_.min_size;
        out.push_back({start, cut});
        start += cut;
    }
    return out;
}

std::vector<ChunkSpan>
split_fixed(std::span<const std::uint8_t> data, std::size_t chunk_size)
{
    FIDR_CHECK(chunk_size > 0);
    std::vector<ChunkSpan> out;
    for (std::size_t start = 0; start < data.size();
         start += chunk_size) {
        out.push_back({start, std::min(chunk_size, data.size() - start)});
    }
    return out;
}

}  // namespace fidr::chunking
