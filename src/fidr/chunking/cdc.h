/**
 * @file
 * Content-defined chunking (CDC).
 *
 * The paper (Sec 2.1.1) weighs fixed-size against variable-size
 * chunking and picks fixed 4 KB "due to high computational overheads
 * of variable sized chunking"; related work accelerates CDC on GPUs
 * and FPGAs [9, 28].  This module implements a gear-hash CDC (the
 * FastCDC family): a 256-entry random gear table drives a rolling
 * hash, and a chunk boundary is declared at the first position past
 * `min_size` where the hash's low bits hit zero, with a forced cut at
 * `max_size`.
 *
 * CDC's value is shift resilience: inserting bytes into a stream only
 * disturbs the chunks around the edit, so dedup still matches the
 * rest — something fixed chunking cannot do.  The ablation bench
 * (bench_ablate_chunking) quantifies both that benefit and the
 * per-byte compute cost that justified the paper's choice.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fidr/common/types.h"

namespace fidr::chunking {

namespace detail {
struct GearTables;
}  // namespace detail

/** CDC size bounds; averages come out near `avg_size`. */
struct CdcParams {
    std::size_t min_size = 2048;
    std::size_t avg_size = 4096;  ///< Must be a power of two.
    std::size_t max_size = 16384;
};

/** One chunk of a split stream. */
struct ChunkSpan {
    std::size_t offset = 0;
    std::size_t length = 0;
};

/**
 * Gear-hash content-defined chunker.
 *
 * The boundary scan dispatches on `fidr::simd::active()`: portable
 * scalar, SSE4 (8 positions/iteration) or AVX2 (16 positions/
 * iteration), all producing bit-identical cuts (the masked hash lives
 * entirely in the low 16 bits of the rolling hash, which the SIMD
 * kernels track exactly in 16-bit lanes — DESIGN.md §12).  The gear
 * table is process-wide immutable state shared by every instance.
 */
class GearCdc {
  public:
    explicit GearCdc(CdcParams params = {});

    /** Splits `data` into content-defined chunks covering it fully. */
    std::vector<ChunkSpan> split(std::span<const std::uint8_t> data) const;

    /**
     * Bytes of rolling-hash work done for the last split() — every
     * byte between min-skip regions is hashed once; the CPU-cost
     * model in the ablation bench bills per hashed byte.
     */
    std::uint64_t hashed_bytes() const { return hashed_bytes_; }

    const CdcParams &params() const { return params_; }

  private:
    CdcParams params_;
    std::uint64_t mask_;
    mutable std::uint64_t hashed_bytes_ = 0;
    const detail::GearTables *tables_;
};

/** Fixed-size splitter with the same interface, for comparison. */
std::vector<ChunkSpan> split_fixed(std::span<const std::uint8_t> data,
                                   std::size_t chunk_size = kChunkSize);

}  // namespace fidr::chunking
