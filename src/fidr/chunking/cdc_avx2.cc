// AVX2 Gear boundary scan: 16 positions per iteration.
//
// Compiled with -mavx2 (src/fidr/chunking/CMakeLists.txt); only
// reached after the runtime cpuid probe admits AVX2.
//
// Same exact mod-2^16 construction as the SSE4 kernel (see
// cdc_sse4.cc / DESIGN.md §12) widened to 16 lanes, with one welcome
// difference: lane 15's carry multiplier is 2^16 == 0 (mod 2^16) —
// 16 fresh bytes fully flush the low 16 hash bits, so consecutive
// iterations have *no* loop-carried dependence through the hash and
// the CPU can overlap the table loads across blocks.

#if defined(FIDR_SIMD_X86)

#include <bit>
#include <immintrin.h>

#include "fidr/chunking/cdc_kernels.h"

namespace fidr::chunking::detail {
namespace {

/** 256-bit byte-wise left shift (toward higher lane indices). */
template <int K>
inline __m256i
shl_bytes(__m256i x)
{
    // carry = [0, x.lo]: feeds x.lo's top bytes into the upper lane.
    const __m256i carry = _mm256_permute2x128_si256(x, x, 0x08);
    if constexpr (K == 16)
        return carry;
    else
        return _mm256_alignr_epi8(x, carry, 16 - K);
}

}  // namespace

std::size_t
gear_scan_avx2(const std::uint8_t *p, std::size_t from, std::size_t limit,
               std::uint64_t mask, const GearTables &tables)
{
    const __m256i vmask = _mm256_set1_epi16(static_cast<short>(mask));
    const __m256i vzero = _mm256_setzero_si256();
    // Lane k multiplies the incoming hash by 2^(k+1); lane 15's
    // multiplier is 2^16 mod 2^16 = 0.
    const __m256i pow2 = _mm256_setr_epi16(
        2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
        16384, static_cast<short>(0x8000), 0);
    const std::uint32_t *t = tables.g16;
    std::uint16_t v = 0;
    std::size_t i = from;
    for (; i + 16 <= limit; i += 16) {
        // Gear lookups are scalar L1 loads packed four-to-a-register:
        // 16 loads against the 1 KB table beat two vpgatherdd (whose
        // throughput caps the whole loop near 1 cycle/byte), and
        // assembling in integer registers avoids the store-forwarding
        // stall a 16x16-bit spill/reload would pay.
        const std::uint8_t *q = p + i;
        const auto pack4 = [t, q](std::size_t o) {
            return static_cast<std::uint64_t>(t[q[o]]) |
                   static_cast<std::uint64_t>(t[q[o + 1]]) << 16 |
                   static_cast<std::uint64_t>(t[q[o + 2]]) << 32 |
                   static_cast<std::uint64_t>(t[q[o + 3]]) << 48;
        };
        const __m256i s0 = _mm256_set_epi64x(
            static_cast<long long>(pack4(12)),
            static_cast<long long>(pack4(8)),
            static_cast<long long>(pack4(4)),
            static_cast<long long>(pack4(0)));
        __m256i s = s0;
        // Weighted Kogge-Stone scan, log2(16) = 4 doubling steps.
        s = _mm256_add_epi16(s, _mm256_slli_epi16(shl_bytes<2>(s), 1));
        s = _mm256_add_epi16(s, _mm256_slli_epi16(shl_bytes<4>(s), 2));
        s = _mm256_add_epi16(s, _mm256_slli_epi16(shl_bytes<8>(s), 4));
        s = _mm256_add_epi16(s, _mm256_slli_epi16(shl_bytes<16>(s), 8));
        const __m256i h = _mm256_add_epi16(
            s, _mm256_mullo_epi16(_mm256_set1_epi16(static_cast<short>(v)),
                                  pow2));
        const __m256i hit =
            _mm256_cmpeq_epi16(_mm256_and_si256(h, vmask), vzero);
        const unsigned m =
            static_cast<unsigned>(_mm256_movemask_epi8(hit));
        if (m != 0)
            return i + (std::countr_zero(m) >> 1) + 1;
        v = static_cast<std::uint16_t>(_mm256_extract_epi16(h, 15));
    }
    for (; i < limit; ++i) {
        v = static_cast<std::uint16_t>(
            (v << 1) + static_cast<std::uint16_t>(tables.g16[p[i]]));
        if ((v & mask) == 0)
            return i + 1;
    }
    return limit;
}

}  // namespace fidr::chunking::detail

#endif  // FIDR_SIMD_X86
