// AVX-512VBMI Gear boundary scan: 32 positions per iteration with the
// gear table held entirely in registers.
//
// Compiled with -mavx512f -mavx512bw -mavx512vbmi
// (src/fidr/chunking/CMakeLists.txt); only reached after the runtime
// cpuid probe admits all three.
//
// The SSE4/AVX2 kernels are capped by lookup bandwidth: 8/16 scalar
// L1 loads per iteration against the 1 KB table (x86 gathers are no
// faster — vpgatherdd on a zmm measured *below* the scalar loop).
// This kernel removes the loads entirely: the 512-byte 16-bit gear
// table fits in eight zmm registers, and vpermi2w performs 32
// lane-parallel 7-bit lookups in one instruction.  Four vpermi2w
// cover table rows 0-63/64-127/128-191/192-255; bits 6 and 7 of each
// byte select among them with three blends.
//
// Exactness is the same mod-2^16 argument as the narrower kernels
// (DESIGN.md §12) at width 32: lane k needs weight 2^(k-j) on gear
// byte j and 2^(k+1) on the incoming hash, and every weight >= 2^16
// is 0 mod 2^16.  So the weighted Kogge-Stone scan still needs only
// 4 doubling steps (window 16), the carry multiplier vector is zero
// from lane 15 up, and — since lane 31's carry weight is 2^32 ≡ 0 —
// the next iteration's carry can be taken from the scan vector `s`
// itself, broadcast in-register without a GPR round-trip.

#if defined(FIDR_SIMD_X86)

#include <bit>
#include <immintrin.h>

#include "fidr/chunking/cdc_kernels.h"

namespace fidr::chunking::detail {

std::size_t
gear_scan_avx512(const std::uint8_t *p, std::size_t from, std::size_t limit,
                 std::uint64_t mask, const GearTables &tables)
{
    // Whole gear table (low 16 bits) in eight zmm registers.
    __m512i t[8];
    for (int r = 0; r < 8; ++r)
        t[r] = _mm512_load_si512(tables.g16w + r * 32);
    const __m512i vmask = _mm512_set1_epi16(static_cast<short>(mask));
    const __m512i vzero = _mm512_setzero_si512();
    // Carry multipliers 2^(k+1); zero from lane 15 up (2^16 ≡ 0).
    alignas(64) short pw[32] = {};
    for (int k = 0; k < 15; ++k)
        pw[k] = static_cast<short>(1u << (k + 1));
    const __m512i pow2 = _mm512_load_si512(pw);
    // Word permutation [0,0,1,...,30]: with lane 0 masked to zero this
    // is a 1-lane left shift (vpermw crosses 128-bit boundaries, which
    // vpalignr cannot).
    alignas(64) short sh1[32];
    for (int k = 0; k < 32; ++k)
        sh1[k] = static_cast<short>(k ? k - 1 : 0);
    const __m512i shift1_idx = _mm512_load_si512(sh1);
    const __m512i idx31 = _mm512_set1_epi16(31);
    const __m512i bit6 = _mm512_set1_epi16(0x40);
    const __m512i bit7 = _mm512_set1_epi16(0x80);
    __m512i vcarry = vzero;
    std::size_t i = from;
    for (; i + 32 <= limit; i += 32) {
        const __m512i idx = _mm512_cvtepu8_epi16(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + i)));
        // In-register table lookup: vpermi2w reads the low 7 index
        // bits across a register pair; bits 6-7 pick the pair.
        const __m512i lo01 = _mm512_permutex2var_epi16(t[0], idx, t[1]);
        const __m512i lo23 = _mm512_permutex2var_epi16(t[2], idx, t[3]);
        const __m512i hi45 = _mm512_permutex2var_epi16(t[4], idx, t[5]);
        const __m512i hi67 = _mm512_permutex2var_epi16(t[6], idx, t[7]);
        const __mmask32 b6 = _mm512_test_epi16_mask(idx, bit6);
        const __mmask32 b7 = _mm512_test_epi16_mask(idx, bit7);
        const __m512i lo = _mm512_mask_blend_epi16(b6, lo01, lo23);
        const __m512i hi = _mm512_mask_blend_epi16(b6, hi45, hi67);
        __m512i s = _mm512_mask_blend_epi16(b7, lo, hi);
        // Weighted Kogge-Stone scan: 4 doubling steps reach the full
        // 16-lane window; shifts of 4/8/16 lanes are whole dwords, so
        // valignd (with a zero source) does the lane shift cheaply.
        s = _mm512_add_epi16(
            s, _mm512_slli_epi16(_mm512_maskz_permutexvar_epi16(
                                     0xFFFFFFFEu, shift1_idx, s), 1));
        s = _mm512_add_epi16(
            s, _mm512_slli_epi16(_mm512_alignr_epi32(s, vzero, 15), 2));
        s = _mm512_add_epi16(
            s, _mm512_slli_epi16(_mm512_alignr_epi32(s, vzero, 14), 4));
        s = _mm512_add_epi16(
            s, _mm512_slli_epi16(_mm512_alignr_epi32(s, vzero, 12), 8));
        const __m512i h =
            _mm512_add_epi16(s, _mm512_mullo_epi16(vcarry, pow2));
        const auto m = static_cast<std::uint32_t>(
            _cvtmask32_u32(_mm512_testn_epi16_mask(h, vmask)));
        if (m != 0)
            return i + std::countr_zero(m) + 1;
        // h[31] == s[31] (carry weight 2^32 ≡ 0): broadcast the next
        // carry straight from s, keeping the loop-carried chain at
        // one in-register shuffle.
        vcarry = _mm512_permutexvar_epi16(idx31, s);
    }
    auto v = static_cast<std::uint16_t>(
        _mm_extract_epi16(_mm512_castsi512_si128(vcarry), 0));
    for (; i < limit; ++i) {
        v = static_cast<std::uint16_t>(
            (v << 1) + static_cast<std::uint16_t>(tables.g16[p[i]]));
        if ((v & mask) == 0)
            return i + 1;
    }
    return limit;
}

}  // namespace fidr::chunking::detail

#endif  // FIDR_SIMD_X86
