/**
 * @file
 * Internal Gear boundary-scan kernels behind GearCdc (one per
 * fidr::simd::Target).  Not part of the public chunking API.
 *
 * All kernels answer the same question: starting the rolling hash at
 * zero, scan bytes `p[from..limit)` and return the cut position (index
 * one past the first byte where `(h & mask) == 0`), or `limit` when no
 * boundary fires.  The SIMD kernels are *exact*, not prefilters: the
 * boundary test only reads `h & mask`, and because `mask` fits in the
 * low 16 bits, `h mod 2^16` — which obeys the same affine recurrence
 * `h' = 2h + gear[byte] (mod 2^16)` — carries the full truth.  A
 * 16-bit-lane weighted prefix scan therefore reproduces every masked
 * hash value, and every boundary, bit-identically (DESIGN.md §12).
 *
 * The SSE4/AVX2 declarations exist only on x86-64 builds
 * (FIDR_SIMD_X86 set by src/fidr/common/CMakeLists.txt); the scalar
 * kernel is always compiled and is the reference the cross-target
 * fuzz suite compares against.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace fidr::chunking::detail {

/**
 * Shared, immutable gear tables, built once per process from the
 * fixed seed (PR 6 hoisted them out of the GearCdc constructor so
 * per-buffer chunker instances stop paying the 2 KB table fill).
 */
struct GearTables {
    /** Full 64-bit gear values: the scalar rolling hash. */
    alignas(64) std::uint64_t gear[256];
    /**
     * Low 16 bits zero-extended to 32: scalar loads of these never
     * need masking before the SIMD kernels shift them into packed
     * 16-bit lane registers, and the whole table is 1 KB of L1.
     */
    alignas(64) std::uint32_t g16[256];
    /**
     * The same low 16 bits packed contiguously: the AVX-512 kernel
     * loads all 512 bytes into eight zmm registers up front and then
     * never touches memory for lookups (vpermi2w).  Kept in the shared
     * tables so kernels pay zero per-call conversion.
     */
    alignas(64) std::uint16_t g16w[256];
};

/** The process-wide tables (thread-safe lazy init, fixed seed). */
const GearTables &gear_tables();

/**
 * Portable reference scan (8-byte unrolled).  `mask` may be any
 * width; the SIMD kernels additionally require `mask <= 0xffff`
 * (GearCdc dispatch enforces this).
 */
std::size_t gear_scan_scalar(const std::uint8_t *p, std::size_t from,
                             std::size_t limit, std::uint64_t mask,
                             const GearTables &tables);

#if defined(FIDR_SIMD_X86)
/** 8 positions per iteration, 16-bit lanes in one XMM register. */
std::size_t gear_scan_sse4(const std::uint8_t *p, std::size_t from,
                           std::size_t limit, std::uint64_t mask,
                           const GearTables &tables);

/** 16 positions per iteration, 16-bit lanes in one YMM register. */
std::size_t gear_scan_avx2(const std::uint8_t *p, std::size_t from,
                           std::size_t limit, std::uint64_t mask,
                           const GearTables &tables);

/**
 * 32 positions per iteration with the gear table held in registers
 * (AVX-512 F+BW+VBMI; vpermi2w lookups, no gathers).
 */
std::size_t gear_scan_avx512(const std::uint8_t *p, std::size_t from,
                             std::size_t limit, std::uint64_t mask,
                             const GearTables &tables);
#endif

}  // namespace fidr::chunking::detail
