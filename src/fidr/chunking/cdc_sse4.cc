// SSE4 Gear boundary scan: 8 positions per iteration.
//
// Compiled with -msse4.1 (src/fidr/chunking/CMakeLists.txt); only
// reached after the runtime cpuid probe admits SSE4, so no illegal
// instructions leak onto older hosts.
//
// Exactness argument (DESIGN.md §12): with v = h mod 2^16 entering an
// iteration, lane k must hold h_{i+k} mod 2^16
//
//   h_{i+k} = 2^{k+1} v + sum_{j=0..k} gear[p_{i+j}] << (k-j)   (mod 2^16)
//
// The sum is a carry-weighted prefix scan computed in log2(8) = 3
// doubling steps; the `2^{k+1} v` term is one pmullw against a
// constant power-of-two vector.  16-bit lane arithmetic wraps mod
// 2^16, which is exactly the modulus the boundary test needs.

#if defined(FIDR_SIMD_X86)

#include <bit>
#include <smmintrin.h>

#include "fidr/chunking/cdc_kernels.h"

namespace fidr::chunking::detail {

std::size_t
gear_scan_sse4(const std::uint8_t *p, std::size_t from, std::size_t limit,
               std::uint64_t mask, const GearTables &tables)
{
    const __m128i vmask = _mm_set1_epi16(static_cast<short>(mask));
    const __m128i vzero = _mm_setzero_si128();
    // Lane k multiplies the incoming hash by 2^(k+1).
    const __m128i pow2 = _mm_setr_epi16(2, 4, 8, 16, 32, 64, 128,
                                        static_cast<short>(256));
    const std::uint32_t *t = tables.g16;
    std::uint16_t v = 0;
    std::size_t i = from;
    for (; i + 8 <= limit; i += 8) {
        // Gear lookups stay scalar (8 L1 loads beat a gather emulation
        // at this width) but are packed in integer registers — four
        // 16-bit entries per uint64_t — so the vector load needs no
        // memory round-trip (a 8x16-bit store / 128-bit reload would
        // stall store-forwarding every iteration).
        const std::uint8_t *q = p + i;
        const std::uint64_t lo =
            static_cast<std::uint64_t>(t[q[0]]) |
            static_cast<std::uint64_t>(t[q[1]]) << 16 |
            static_cast<std::uint64_t>(t[q[2]]) << 32 |
            static_cast<std::uint64_t>(t[q[3]]) << 48;
        const std::uint64_t hi =
            static_cast<std::uint64_t>(t[q[4]]) |
            static_cast<std::uint64_t>(t[q[5]]) << 16 |
            static_cast<std::uint64_t>(t[q[6]]) << 32 |
            static_cast<std::uint64_t>(t[q[7]]) << 48;
        __m128i s = _mm_set_epi64x(static_cast<long long>(hi),
                                   static_cast<long long>(lo));
        // Weighted Kogge-Stone scan: after step d, lane k holds
        // sum_{j=max(0,k-2d+1)..k} g_j << (k-j).
        s = _mm_add_epi16(s, _mm_slli_epi16(_mm_slli_si128(s, 2), 1));
        s = _mm_add_epi16(s, _mm_slli_epi16(_mm_slli_si128(s, 4), 2));
        s = _mm_add_epi16(s, _mm_slli_epi16(_mm_slli_si128(s, 8), 4));
        const __m128i h = _mm_add_epi16(
            s, _mm_mullo_epi16(_mm_set1_epi16(static_cast<short>(v)), pow2));
        const __m128i hit =
            _mm_cmpeq_epi16(_mm_and_si128(h, vmask), vzero);
        const unsigned m =
            static_cast<unsigned>(_mm_movemask_epi8(hit));
        if (m != 0) {
            // Lowest set bit = earliest lane = first boundary, exactly
            // the order the scalar loop tests positions in.
            return i + (std::countr_zero(m) >> 1) + 1;
        }
        v = static_cast<std::uint16_t>(_mm_extract_epi16(h, 7));
    }
    for (; i < limit; ++i) {
        v = static_cast<std::uint16_t>(
            (v << 1) + static_cast<std::uint16_t>(tables.g16[p[i]]));
        if ((v & mask) == 0)
            return i + 1;
    }
    return limit;
}

}  // namespace fidr::chunking::detail

#endif  // FIDR_SIMD_X86
