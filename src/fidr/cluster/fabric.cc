#include "fidr/cluster/fabric.h"

#include "fidr/common/status.h"
#include "fidr/fault/failpoint.h"

namespace fidr::cluster {

Fabric::Fabric(std::size_t nodes, FabricConfig config)
    : config_(config), links_(nodes)
{
    FIDR_CHECK(nodes > 0);
    FIDR_CHECK(config_.link_bandwidth > 0);
    FIDR_CHECK(config_.frame_ops > 0);
}

std::uint64_t
Fabric::descriptor_bytes(Rpc rpc) const
{
    switch (rpc) {
      case Rpc::kWrite: return config_.write_descriptor_bytes;
      case Rpc::kWriteRef: return config_.ref_descriptor_bytes;
      case Rpc::kRead: return config_.read_descriptor_bytes;
      case Rpc::kProbe: return config_.ref_descriptor_bytes;
      case Rpc::kUnmap: return config_.read_descriptor_bytes;
    }
    return config_.write_descriptor_bytes;
}

Status
Fabric::send(std::size_t node, Rpc rpc, std::uint64_t payload_bytes)
{
    FIDR_CHECK(node < links_.size());
    const std::lock_guard<std::mutex> lock(mutex_);
    LinkState &link = links_[node];

    // Link error before anything reaches the wire: nothing billed.
    const fault::FaultDecision send_fd =
        FIDR_FAULT_EVAL(fault::Site::kNetSend);
    if (send_fd.fire && send_fd.kind != fault::FaultKind::kLatencySpike) {
        ++link.counters.send_errors;
        return fault::to_status(send_fd, fault::Site::kNetSend);
    }

    // Injected latency spike: the op succeeds, the link loses time.
    const fault::FaultDecision delay_fd =
        FIDR_FAULT_EVAL(fault::Site::kNetDelay);
    if (delay_fd.fire) {
        ++link.counters.delay_spikes;
        link.counters.delay_ns += delay_fd.latency_ns;
    }

    // Frame accounting: data-plane ops (writes, write-refs, reads —
    // descriptors are self-describing, so kinds mix freely in one
    // frame, NVMe-oF-capsule style); control RPCs close the frame and
    // go alone.
    const bool framed =
        rpc == Rpc::kWrite || rpc == Rpc::kWriteRef || rpc == Rpc::kRead;
    std::uint64_t bytes = descriptor_bytes(rpc) + payload_bytes;
    if (framed) {
        if (link.frame_left == 0) {
            bytes += config_.frame_header_bytes;
            link.frame_left = config_.frame_ops;
            ++link.counters.frames;
            ++link.counters.messages;
        }
        --link.frame_left;
    } else {
        link.frame_left = 0;  // Control RPC closes the open frame.
        bytes += config_.frame_header_bytes;
        ++link.counters.messages;
    }
    link.counters.request_bytes += bytes;
    ++link.counters.operations;

    // Lost after transmit: billed (it crossed the wire), then gone.
    const fault::FaultDecision drop_fd =
        FIDR_FAULT_EVAL(fault::Site::kNetDrop);
    if (drop_fd.fire) {
        ++link.counters.drops;
        return fault::to_status(drop_fd, fault::Site::kNetDrop);
    }
    return Status::ok();
}

void
Fabric::respond(std::size_t node, std::uint64_t payload_bytes)
{
    FIDR_CHECK(node < links_.size());
    const std::lock_guard<std::mutex> lock(mutex_);
    LinkState &link = links_[node];
    link.counters.response_bytes += config_.ack_bytes + payload_bytes;
    if (payload_bytes > 0) {
        // Data-carrying response: its own message.
        link.acks_pending = 0;
        ++link.counters.messages;
    } else if (link.acks_pending++ % config_.frame_ops == 0) {
        // Cumulative ack window: one message per frame_ops acks.
        ++link.counters.messages;
    }
}

void
Fabric::count_retry(std::size_t node)
{
    FIDR_CHECK(node < links_.size());
    const std::lock_guard<std::mutex> lock(mutex_);
    ++links_[node].counters.retries;
}

const LinkCounters &
Fabric::link(std::size_t node) const
{
    FIDR_CHECK(node < links_.size());
    return links_[node].counters;
}

double
Fabric::link_seconds(std::size_t node) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const LinkCounters &c = links_[node].counters;
    const double bytes = static_cast<double>(c.request_bytes) +
                         static_cast<double>(c.response_bytes);
    return bytes / config_.link_bandwidth +
           static_cast<double>(c.messages) *
               (static_cast<double>(config_.rpc_latency) / 1e9) +
           static_cast<double>(c.delay_ns) / 1e9;
}

std::uint64_t
Fabric::total_bytes() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const LinkState &l : links_)
        total += l.counters.request_bytes + l.counters.response_bytes;
    return total;
}

std::uint64_t
Fabric::total_messages() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const LinkState &l : links_)
        total += l.counters.messages;
    return total;
}

std::uint64_t
Fabric::total_operations() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const LinkState &l : links_)
        total += l.counters.operations;
    return total;
}

std::uint64_t
Fabric::total_drops() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const LinkState &l : links_)
        total += l.counters.drops;
    return total;
}

std::uint64_t
Fabric::total_retries() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const LinkState &l : links_)
        total += l.counters.retries;
    return total;
}

std::uint64_t
Fabric::total_send_errors() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const LinkState &l : links_)
        total += l.counters.send_errors;
    return total;
}

std::uint64_t
Fabric::total_delay_spikes() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const LinkState &l : links_)
        total += l.counters.delay_spikes;
    return total;
}

}  // namespace fidr::cluster
