/**
 * @file
 * Simulated cluster network fabric: the cross-node analogue of
 * fidr::pcie::Fabric.
 *
 * The router and its N nodes form a star: one bidirectional link per
 * node.  Like the PCIe model, the fabric is a latency/bandwidth
 * *ledger*, not a packet simulator — every RPC debits per-link byte
 * and message counters, and link_seconds() converts them into the
 * busy time the scaling model charges the network:
 *
 *   seconds = bytes / link_bandwidth
 *           + messages * rpc_latency
 *           + injected delay spikes.
 *
 * RPC framing is batched (Sec 5.4's batching discipline applied to the
 * wire): consecutive data-plane ops (writes, write-refs, reads — the
 * descriptors are self-describing, so kinds mix in one frame the way
 * NVMe-oF capsules share a queue) share one frame header for up to
 * `frame_ops` descriptors, so a 256-chunk write batch costs one header
 * + 256 descriptors + the payloads, not 256 headers.  Control RPCs
 * (probe, unmap) close the open frame and travel as their own
 * message.
 *
 * Fault injection rides the process-wide FailpointRegistry with three
 * sites evaluated on every request-direction send:
 *   net.send  — link error before transmit: nothing billed, the armed
 *               Status surfaces to the router;
 *   net.drop  — the frame transmitted, then vanished: bytes ARE billed
 *               (they crossed the wire) but the op reports
 *               kUnavailable, so the router's transient-retry loop
 *               re-sends and re-bills, exactly like a real lost frame;
 *   net.delay — latency spike: the op succeeds and the armed
 *               latency_ns is added to the link's busy time.
 *
 * Thread safety: all counters live behind one mutex, so concurrent
 * router fan-out threads may bill safely; totals are commutative sums.
 * The determinism contract (bit-identical ledgers) additionally needs
 * the caller to bill in a fixed order, which the router does by
 * serial-billing fan-out joins in node-index order.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/units.h"

namespace fidr::cluster {

/** Fabric sizing and framing parameters. */
struct FabricConfig {
    /** Per-link bandwidth, each direction (a 25 GbE NIC would be ~3
     *  GB/s; the default models a 400 Gb fabric so the *nodes*, not
     *  the wires, bound the scaling bench — the paper's premise when
     *  it adds servers for throughput). */
    Bandwidth link_bandwidth = gb_per_s(50);

    /** Per-message one-way latency (doorbell + switch traversal). */
    SimTime rpc_latency = 1 * kMicrosecond;

    std::uint64_t frame_header_bytes = 64;   ///< One per frame/message.
    std::uint64_t write_descriptor_bytes = 32;  ///< LBA + lengths + crc.
    /** Digest-reference descriptor: 32-byte digest + LBA + check. */
    std::uint64_t ref_descriptor_bytes = 48;
    std::uint64_t read_descriptor_bytes = 16;   ///< LBA + flags.
    std::uint64_t ack_bytes = 16;               ///< Response status.
    /** Max same-kind descriptors sharing one frame header. */
    std::size_t frame_ops = 16;
};

/** RPC kinds the router issues. */
enum class Rpc : std::uint8_t {
    kWrite = 0,  ///< Full 4 KiB chunk write (framed).
    kWriteRef,   ///< Duplicate-suppressed write: digest only (framed).
    kRead,       ///< Read request descriptor (framed).
    kProbe,      ///< Remote fingerprint lookup (standalone message).
    kUnmap,      ///< LBA ownership-move unmap (standalone message).
};

/** Per-link counters (request + response directions). */
struct LinkCounters {
    std::uint64_t request_bytes = 0;
    std::uint64_t response_bytes = 0;
    std::uint64_t messages = 0;    ///< Frames + standalone RPCs + responses.
    std::uint64_t operations = 0;  ///< RPC ops carried (all kinds).
    std::uint64_t frames = 0;      ///< Data-plane frame headers billed.
    std::uint64_t send_errors = 0; ///< net.send fires (nothing billed).
    std::uint64_t drops = 0;       ///< net.drop fires (billed, then lost).
    std::uint64_t delay_spikes = 0;///< net.delay fires.
    std::uint64_t delay_ns = 0;    ///< Injected spike time accumulated.
    std::uint64_t retries = 0;     ///< Router re-sends after a drop.
};

/** Star-topology cluster fabric ledger. */
class Fabric {
  public:
    explicit Fabric(std::size_t nodes, FabricConfig config = {});

    std::size_t nodes() const { return links_.size(); }
    const FabricConfig &config() const { return config_; }

    /**
     * Bills one request-direction RPC op to `node`'s link, evaluating
     * the net.* failpoints (see file comment for each site's billing
     * semantics).  `payload_bytes` is the data carried beyond the
     * descriptor (4 KiB for kWrite, 0 otherwise).
     */
    Status send(std::size_t node, Rpc rpc, std::uint64_t payload_bytes);

    /**
     * Bills one response on `node`'s link: an ack plus `payload_bytes`
     * (read data travels in responses).  Empty acks are cumulative —
     * one response *message* (latency) covers frame_ops acks, the way
     * a storage target coalesces completions; payload-carrying
     * responses are each their own message.  Responses are infallible
     * — loss is modeled at send time, where the retry actually
     * happens.
     */
    void respond(std::size_t node, std::uint64_t payload_bytes);

    /** Counts one router retry after a transient send failure. */
    void count_retry(std::size_t node);

    const LinkCounters &link(std::size_t node) const;

    /** Busy seconds of `node`'s link under the ledger model. */
    double link_seconds(std::size_t node) const;

    /** Aggregates across links. */
    std::uint64_t total_bytes() const;
    std::uint64_t total_messages() const;
    std::uint64_t total_operations() const;
    std::uint64_t total_drops() const;
    std::uint64_t total_retries() const;
    std::uint64_t total_send_errors() const;
    std::uint64_t total_delay_spikes() const;

  private:
    struct LinkState {
        LinkCounters counters;
        /** Open data-plane frame: descriptor slots left. */
        std::size_t frame_left = 0;
        /** Empty acks coalesced into the current response message. */
        std::size_t acks_pending = 0;
    };

    std::uint64_t descriptor_bytes(Rpc rpc) const;

    FabricConfig config_;
    mutable std::mutex mutex_;
    std::vector<LinkState> links_;
};

}  // namespace fidr::cluster
