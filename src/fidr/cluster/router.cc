#include "fidr/cluster/router.h"

#include <algorithm>
#include <thread>

#include "fidr/hash/sha256.h"

namespace fidr::cluster {
namespace {

/** splitmix64 finalizer: LBA stripe mixing (sequential LBAs spread). */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

}  // namespace

const char *
routing_name(Routing routing)
{
    switch (routing) {
      case Routing::kLbaHash: return "lba-hash";
      case Routing::kFingerprint: return "fingerprint";
    }
    return "unknown";
}

ClusterRouter::ClusterRouter(const ClusterConfig &config,
                             const core::FidrConfig &node_config)
    : config_(config), fabric_(config.nodes, config.fabric)
{
    FIDR_CHECK(config_.nodes > 0);
    nodes_.reserve(config_.nodes);
    for (std::size_t i = 0; i < config_.nodes; ++i) {
        nodes_.push_back(std::make_unique<core::FidrNode>(
            static_cast<std::uint32_t>(i), node_config));
    }
}

std::size_t
ClusterRouter::lba_owner(Lba lba) const
{
    return static_cast<std::size_t>(mix64(lba) % nodes_.size());
}

std::size_t
ClusterRouter::digest_owner(const Digest &digest) const
{
    // Hash-prefix ownership (paper Sec 8 scale-out + HPDedup-style
    // fingerprint partitioning): the digest's leading 64 bits name
    // exactly one owner, so identical content always co-locates.
    return static_cast<std::size_t>(digest.prefix64() % nodes_.size());
}

std::optional<std::size_t>
ClusterRouter::read_owner(Lba lba) const
{
    if (config_.routing == Routing::kLbaHash)
        return lba_owner(lba);
    const std::lock_guard<std::mutex> lock(directory_mutex_);
    const auto it = directory_.find(lba);
    if (it == directory_.end())
        return std::nullopt;
    return static_cast<std::size_t>(it->second);
}

Status
ClusterRouter::send_with_retry(std::size_t node, Rpc rpc,
                               std::uint64_t payload_bytes)
{
    Status status = fabric_.send(node, rpc, payload_bytes);
    for (unsigned attempt = 0;
         status.code() == StatusCode::kUnavailable &&
         attempt < config_.transient_retries;
         ++attempt) {
        // A dropped frame re-sends (and re-bills: the lost copy did
        // cross the wire).  Non-transient errors surface immediately.
        fabric_.count_retry(node);
        status = fabric_.send(node, rpc, payload_bytes);
    }
    return status;
}

bool
ClusterRouter::suppression_lookup(const Digest &digest)
{
    const std::lock_guard<std::mutex> lock(suppression_mutex_);
    return suppression_.count(digest.prefix64()) > 0;
}

void
ClusterRouter::suppression_insert(const Digest &digest)
{
    if (config_.suppression_entries == 0 || nodes_.size() < 2)
        return;
    const std::uint64_t key = digest.prefix64();
    const std::lock_guard<std::mutex> lock(suppression_mutex_);
    if (!suppression_.insert(key).second)
        return;
    if (suppression_fifo_.size() < config_.suppression_entries) {
        suppression_fifo_.push_back(key);
        return;
    }
    // Bounded memory: FIFO-displace the oldest remembered digest.
    std::uint64_t &slot = suppression_fifo_[suppression_next_];
    suppression_.erase(slot);
    slot = key;
    suppression_next_ =
        (suppression_next_ + 1) % config_.suppression_entries;
}

Status
ClusterRouter::move_ownership(Lba lba, std::size_t owner)
{
    std::optional<std::size_t> prev;
    {
        const std::lock_guard<std::mutex> lock(directory_mutex_);
        const auto it = directory_.find(lba);
        if (it != directory_.end())
            prev = static_cast<std::size_t>(it->second);
    }
    if (prev && *prev != owner) {
        // The overwrite's content lives on a different owner: drop the
        // old mapping first so no LBA is ever mapped on two nodes.
        const Status sent = send_with_retry(*prev, Rpc::kUnmap, 0);
        if (!sent.is_ok())
            return sent;
        Status unmapped;
        {
            const std::lock_guard<std::mutex> node_lock(
                nodes_[*prev]->serial_lock());
            unmapped = nodes_[*prev]->unmap(lba);
        }
        fabric_.respond(*prev, 0);
        if (!unmapped.is_ok())
            return unmapped;
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.unmaps_sent;
    }
    const std::lock_guard<std::mutex> lock(directory_mutex_);
    directory_[lba] = static_cast<std::uint32_t>(owner);
    return Status::ok();
}

Status
ClusterRouter::forward_write(std::size_t owner, Lba lba, Buffer data)
{
    const Status sent =
        send_with_retry(owner, Rpc::kWrite, data.size());
    if (!sent.is_ok())
        return sent;
    Status written;
    {
        const std::lock_guard<std::mutex> node_lock(
            nodes_[owner]->serial_lock());
        written = nodes_[owner]->write(lba, std::move(data));
    }
    fabric_.respond(owner, 0);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.writes_forwarded;
    return written;
}

Status
ClusterRouter::write(Lba lba, Buffer data)
{
    if (config_.routing == Routing::kLbaHash)
        return forward_write(lba_owner(lba), lba, std::move(data));

    const Digest digest = Sha256::hash(data);
    const std::size_t owner = digest_owner(digest);
    const Status moved = move_ownership(lba, owner);
    if (!moved.is_ok())
        return moved;

    if (nodes_.size() > 1 && config_.suppression_entries > 0 &&
        suppression_lookup(digest)) {
        // Remote duplicate suppression: the owner has (very likely)
        // stored this content already — ship the 48-byte digest
        // reference instead of the 4 KiB payload.
        const Status sent = send_with_retry(owner, Rpc::kWriteRef, 0);
        if (!sent.is_ok())
            return sent;
        Status applied;
        {
            const std::lock_guard<std::mutex> node_lock(
                nodes_[owner]->serial_lock());
            applied = nodes_[owner]->write_ref(lba, digest);
        }
        fabric_.respond(owner, 0);
        if (applied.is_ok()) {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.writes_suppressed;
            return applied;
        }
        if (applied.code() != StatusCode::kNotFound)
            return applied;
        // Not committed there after all (in-flight, GC'd, or a prefix
        // collision in the suppression memory): full write repairs.
        {
            const std::lock_guard<std::mutex> lock(stats_mutex_);
            ++stats_.suppression_misses;
        }
    }

    const Status written = forward_write(owner, lba, std::move(data));
    if (written.is_ok())
        suppression_insert(digest);
    return written;
}

Result<Buffer>
ClusterRouter::read(Lba lba)
{
    const auto owner = read_owner(lba);
    if (!owner)
        return Status::not_found("LBA never written");
    const Status sent = send_with_retry(*owner, Rpc::kRead, 0);
    if (!sent.is_ok())
        return sent;
    Result<Buffer> result = [&] {
        const std::lock_guard<std::mutex> node_lock(
            nodes_[*owner]->serial_lock());
        return nodes_[*owner]->read(lba);
    }();
    fabric_.respond(*owner,
                    result.is_ok() ? result.value().size() : 0);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.reads_forwarded;
    return result;
}

std::vector<Result<Buffer>>
ClusterRouter::read_batch(std::span<const Lba> lbas)
{
    const std::size_t n = lbas.size();
    std::vector<Result<Buffer>> results;
    results.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        results.emplace_back(Status::internal("unresolved cluster read"));

    // Partition by owner.  Never-written LBAs fail their slot here.
    std::vector<std::vector<std::size_t>> groups(nodes_.size());
    for (std::size_t i = 0; i < n; ++i) {
        const auto owner = read_owner(lbas[i]);
        if (!owner) {
            results[i] = Status::not_found("LBA never written");
            continue;
        }
        groups[*owner].push_back(i);
    }

    // Serial request billing in node-index order (determinism
    // contract); a persistently dropped sub-batch fails its slots and
    // skips that node's fan-out.
    std::vector<char> send_ok(nodes_.size(), 1);
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
        for (std::size_t k = 0; k < groups[node].size(); ++k) {
            const Status sent = send_with_retry(node, Rpc::kRead, 0);
            if (!sent.is_ok()) {
                for (const std::size_t idx : groups[node])
                    results[idx] = sent;
                send_ok[node] = 0;
                break;
            }
        }
    }

    // Parallel per-node execution: each node's read plane runs on its
    // own lanes under its own serial lock.
    std::vector<std::vector<Result<Buffer>>> sub(nodes_.size());
    const auto run_node = [&](std::size_t node) {
        std::vector<Lba> node_lbas;
        node_lbas.reserve(groups[node].size());
        for (const std::size_t idx : groups[node])
            node_lbas.push_back(lbas[idx]);
        const std::lock_guard<std::mutex> node_lock(
            nodes_[node]->serial_lock());
        sub[node] = nodes_[node]->read_batch(node_lbas);
    };
    std::vector<std::size_t> involved;
    for (std::size_t node = 0; node < nodes_.size(); ++node) {
        if (send_ok[node] && !groups[node].empty())
            involved.push_back(node);
    }
    if (involved.size() == 1) {
        run_node(involved.front());
    } else if (!involved.empty()) {
        std::vector<std::thread> threads;
        threads.reserve(involved.size());
        for (const std::size_t node : involved)
            threads.emplace_back(run_node, node);
        for (std::thread &t : threads)
            t.join();
    }

    // Serial response billing + scatter, again in node-index order so
    // fabric totals are run-to-run identical.
    for (const std::size_t node : involved) {
        for (std::size_t k = 0; k < groups[node].size(); ++k) {
            Result<Buffer> &r = sub[node][k];
            fabric_.respond(node, r.is_ok() ? r.value().size() : 0);
            results[groups[node][k]] = std::move(r);
        }
    }
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.reads_forwarded += n;
    }
    return results;
}

Status
ClusterRouter::flush()
{
    Status first = Status::ok();
    for (const auto &node : nodes_) {
        const std::lock_guard<std::mutex> node_lock(node->serial_lock());
        const Status flushed = node->flush();
        if (!flushed.is_ok() && first.is_ok())
            first = flushed;
    }
    return first;
}

const core::ReductionStats &
ClusterRouter::reduction() const
{
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    core::ReductionStats merged;
    for (const auto &node : nodes_) {
        const core::ReductionStats &s = node->system().reduction();
        merged.chunks_written += s.chunks_written;
        merged.chunks_read += s.chunks_read;
        merged.duplicates += s.duplicates;
        merged.unique_chunks += s.unique_chunks;
        merged.raw_bytes += s.raw_bytes;
        merged.stored_bytes += s.stored_bytes;
        merged.nic_read_hits += s.nic_read_hits;
    }
    merged_ = merged;
    return merged_;
}

Result<bool>
ClusterRouter::probe(const Digest &digest)
{
    const std::size_t owner = digest_owner(digest);
    const Status sent = send_with_retry(owner, Rpc::kProbe, 0);
    if (!sent.is_ok())
        return sent;
    Result<bool> result = [&] {
        const std::lock_guard<std::mutex> node_lock(
            nodes_[owner]->serial_lock());
        return nodes_[owner]->probe_digest(digest);
    }();
    fabric_.respond(owner, 0);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.probes_sent;
    return result;
}

Status
ClusterRouter::run_gc(double min_dead_fraction)
{
    for (const auto &node : nodes_) {
        const std::lock_guard<std::mutex> node_lock(node->serial_lock());
        const Result<std::uint64_t> reclaimed =
            node->system().run_gc(min_dead_fraction);
        if (!reclaimed.is_ok())
            return reclaimed.status();
    }
    return Status::ok();
}

Status
ClusterRouter::validate()
{
    for (const auto &node : nodes_) {
        const std::lock_guard<std::mutex> node_lock(node->serial_lock());
        const Status valid = node->system().validate();
        if (!valid.is_ok())
            return valid;
    }
    return Status::ok();
}

obs::ObsSnapshot
ClusterRouter::obs_snapshot()
{
    obs::ObsSnapshot snap;
    for (const auto &node : nodes_) {
        obs::ObsSnapshot s = [&] {
            const std::lock_guard<std::mutex> node_lock(
                node->serial_lock());
            return node->system().obs_snapshot();
        }();
        const std::string prefix = node->name() + ".";
        // Node dimension: per-node values keep their identity under a
        // "nodeI." prefix; counters additionally fold into the plain
        // cluster-wide name, so existing dashboards keep working.
        for (const auto &[key, value] : s.counters) {
            snap.counters[prefix + key] = value;
            snap.counters[key] += value;
        }
        for (const auto &[key, value] : s.gauges)
            snap.gauges[prefix + key] = value;
        for (auto &[key, value] : s.histograms)
            snap.histograms[prefix + key] = std::move(value);
        for (auto &[key, value] : s.sections)
            snap.sections[prefix + key] = std::move(value);
    }

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const LinkCounters &link = fabric_.link(i);
        const std::string prefix = "net." + nodes_[i]->name() + ".";
        snap.counters[prefix + "request_bytes"] = link.request_bytes;
        snap.counters[prefix + "response_bytes"] = link.response_bytes;
        snap.counters[prefix + "messages"] = link.messages;
        snap.counters[prefix + "operations"] = link.operations;
        snap.counters[prefix + "drops"] = link.drops;
        snap.counters[prefix + "retries"] = link.retries;
        snap.counters[prefix + "send_errors"] = link.send_errors;
        snap.counters[prefix + "delay_spikes"] = link.delay_spikes;
        snap.gauges[prefix + "link_seconds"] = fabric_.link_seconds(i);
    }
    snap.counters["net.bytes"] = fabric_.total_bytes();
    snap.counters["net.messages"] = fabric_.total_messages();
    snap.counters["net.operations"] = fabric_.total_operations();
    snap.counters["net.drops"] = fabric_.total_drops();
    snap.counters["net.retries"] = fabric_.total_retries();
    snap.counters["net.send_errors"] = fabric_.total_send_errors();
    snap.counters["net.delay_spikes"] = fabric_.total_delay_spikes();

    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        snap.counters["cluster.writes_forwarded"] =
            stats_.writes_forwarded;
        snap.counters["cluster.writes_suppressed"] =
            stats_.writes_suppressed;
        snap.counters["cluster.suppression_misses"] =
            stats_.suppression_misses;
        snap.counters["cluster.reads_forwarded"] = stats_.reads_forwarded;
        snap.counters["cluster.unmaps_sent"] = stats_.unmaps_sent;
        snap.counters["cluster.probes_sent"] = stats_.probes_sent;
    }
    snap.gauges["cluster.nodes"] = static_cast<double>(nodes_.size());
    snap.gauges["cluster.dedup_rate"] = reduction().dedup_rate();
    return snap;
}

ClusterProjection
ClusterRouter::project(Bandwidth target) const
{
    ClusterProjection out;
    out.nodes.reserve(nodes_.size());
    double makespan = 0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        ClusterProjection::Node entry;
        entry.link_seconds = fabric_.link_seconds(i);
        const core::ReductionStats &s = nodes_[i]->system().reduction();
        if (s.chunks_written + s.chunks_read > 0) {
            entry.projection = core::project(nodes_[i]->system(), target);
            const Bandwidth throughput = entry.projection.throughput();
            if (throughput > 0)
                entry.seconds =
                    entry.projection.client_bytes / throughput;
        }
        makespan = std::max(makespan,
                            std::max(entry.seconds, entry.link_seconds));
        out.total_client_bytes += entry.projection.client_bytes;
        out.total_chunks_written += s.chunks_written;
        out.nodes.push_back(entry);
    }
    out.cluster_seconds = makespan;
    if (makespan > 0) {
        out.aggregate_bytes_per_s = out.total_client_bytes / makespan;
        out.aggregate_writes_per_s =
            static_cast<double>(out.total_chunks_written) / makespan;
    }
    return out;
}

}  // namespace fidr::cluster
