/**
 * @file
 * Cluster router: N in-process FIDR nodes behind one StorageServer.
 *
 * The paper scales to PB by adding FIDR servers (Sec 1, Sec 8); this
 * models that scale-out.  The router partitions two spaces across N
 * core::FidrNode instances and forwards every client op over a
 * simulated cluster::Fabric:
 *
 *  - LBA space: which node owns a logical block.  Routing::kLbaHash
 *    stripes LBAs by a mixing hash (static ownership, node-local
 *    dedup); Routing::kFingerprint assigns each *write* to the node
 *    owning its content hash and keeps an LBA -> node directory for
 *    reads, so ownership follows content.
 *  - Fingerprint space (kFingerprint): a chunk's digest prefix names
 *    exactly one owner node, so identical content always lands on the
 *    same node and dedups there — cluster-wide dedup equals
 *    single-node global dedup (bench_cluster_scaling gates the ratio
 *    within 2%).  On an overwrite that moves an LBA's content to a
 *    different owner, the old owner gets an unmap RPC first, so no LBA
 *    is ever mapped on two nodes.
 *
 * Remote duplicate suppression (kFingerprint, N > 1): the router
 * remembers recently forwarded digests; a recurrence sends a 48-byte
 * write_ref descriptor instead of the 4 KiB payload.  The owner maps
 * the LBA to its committed chunk and counts the write exactly like a
 * full duplicate write; kNotFound (chunk still in flight, GC'd, or
 * evicted from the bounded memory) falls back to the full write.  The
 * node outcome is identical either way — only wire bytes differ.
 *
 * Parallelism and determinism: each node runs its own pipelines on its
 * own lanes.  read_batch() fans per-node sub-batches out on threads
 * (each under its node's serial lock) and joins; ALL fabric billing is
 * serial, in node-index order, so ledgers are bit-identical run to
 * run.  Writes forward synchronously (the node acks at NIC admission,
 * so a forwarded write returns as fast as a local one); cross-node
 * overlap for writes comes from different client threads hitting
 * different owners concurrently.
 *
 * Cluster-of-1 contract: with N=1 every op forwards to node 0 with no
 * probes, no suppression, no unmaps and no node-visible side effects,
 * so node 0's ledgers, journal and payloads are bit-identical to a
 * bare FidrSystem fed the same ops; the cluster fabric bills one link
 * as a separate layer.  bench_cluster_scaling and test_cluster gate
 * this.
 *
 * Transient faults: every request-direction send runs a bounded
 * retry loop (net.drop injections re-send and re-bill, like a real
 * lost frame); persistent failures surface to the caller with the
 * op unapplied on the node.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fidr/cluster/fabric.h"
#include "fidr/core/fidr_node.h"
#include "fidr/core/perf_model.h"
#include "fidr/core/server.h"
#include "fidr/hash/digest.h"
#include "fidr/obs/metrics.h"

namespace fidr::cluster {

/** LBA-ownership policy. */
enum class Routing : std::uint8_t {
    kLbaHash = 0,   ///< Static hash-striped LBAs, node-local dedup.
    kFingerprint,   ///< Content-hash ownership, cluster-global dedup.
};

const char *routing_name(Routing routing);

/** Cluster shape and policies. */
struct ClusterConfig {
    std::size_t nodes = 1;
    Routing routing = Routing::kLbaHash;
    FabricConfig fabric;
    /** Digests remembered for duplicate suppression (kFingerprint,
     *  N > 1); 0 disables suppression entirely. */
    std::size_t suppression_entries = 64 * 1024;
    /** Re-sends after a transient (kUnavailable) RPC failure. */
    unsigned transient_retries = 2;
};

/** Router-side counters (node stats live in each node's system). */
struct ClusterStats {
    std::uint64_t writes_forwarded = 0;
    std::uint64_t writes_suppressed = 0;  ///< write_ref replaced payload.
    std::uint64_t suppression_misses = 0; ///< write_ref -> full fallback.
    std::uint64_t reads_forwarded = 0;
    std::uint64_t unmaps_sent = 0;        ///< Ownership moves.
    std::uint64_t probes_sent = 0;        ///< Explicit probe() calls.
};

/** Scaling model: per-node projections + fabric busy time. */
struct ClusterProjection {
    struct Node {
        core::Projection projection;
        double seconds = 0;       ///< client_bytes / throughput().
        double link_seconds = 0;  ///< Fabric busy time of this link.
    };
    std::vector<Node> nodes;
    double total_client_bytes = 0;
    std::uint64_t total_chunks_written = 0;
    /** Makespan: slowest node or busiest link (they overlap). */
    double cluster_seconds = 0;
    Bandwidth aggregate_bytes_per_s = 0;
    double aggregate_writes_per_s = 0;
};

/** N FIDR nodes behind one block-store front door. */
class ClusterRouter final : public core::StorageServer {
  public:
    /** Every node is built from `node_config` (node_index stamped). */
    ClusterRouter(const ClusterConfig &config,
                  const core::FidrConfig &node_config);

    Status write(Lba lba, Buffer data) override;
    Result<Buffer> read(Lba lba) override;
    std::vector<Result<Buffer>> read_batch(
        std::span<const Lba> lbas) override;
    Status flush() override;

    /** Merged reduction stats across nodes (recomputed per call). */
    const core::ReductionStats &reduction() const override;

    /** Explicit remote-fingerprint lookup on the digest's owner. */
    Result<bool> probe(const Digest &digest);

    /** Runs run-to-completion GC on every node (serial). */
    Status run_gc(double min_dead_fraction);

    /** Validates every node's metadata (serial). */
    Status validate();

    std::size_t nodes() const { return nodes_.size(); }
    core::FidrNode &node(std::size_t i) { return *nodes_[i]; }
    const core::FidrNode &node(std::size_t i) const { return *nodes_[i]; }
    Fabric &fabric() { return fabric_; }
    const Fabric &fabric() const { return fabric_; }
    const ClusterConfig &config() const { return config_; }
    const ClusterStats &stats() const { return stats_; }

    /** Owner node of `lba` for writes (directory-aware in kFingerprint
     *  mode: nullopt when the LBA was never written). */
    std::optional<std::size_t> read_owner(Lba lba) const;

    /** Static owners (kLbaHash stripe / digest-prefix ownership). */
    std::size_t lba_owner(Lba lba) const;
    std::size_t digest_owner(const Digest &digest) const;

    /**
     * Merged observability snapshot with a node dimension: every node
     * counter/gauge/histogram/section appears under "nodeI.", counters
     * are additionally summed under their plain name, and the fabric
     * contributes "net.*" counters plus a per-link section.
     */
    obs::ObsSnapshot obs_snapshot();

    /** Ledger-model scaling projection (see ClusterProjection). */
    ClusterProjection project(
        Bandwidth target = calib::kTargetThroughput) const;

  private:
    /** send() with the bounded transient-retry loop. */
    Status send_with_retry(std::size_t node, Rpc rpc,
                           std::uint64_t payload_bytes);

    /** Forwards one full-payload write to `owner`. */
    Status forward_write(std::size_t owner, Lba lba, Buffer data);

    /** Updates the LBA directory; unmaps the old owner on a move. */
    Status move_ownership(Lba lba, std::size_t owner);

    bool suppression_lookup(const Digest &digest);
    void suppression_insert(const Digest &digest);

    ClusterConfig config_;
    std::vector<std::unique_ptr<core::FidrNode>> nodes_;
    Fabric fabric_;

    /** kFingerprint: LBA -> owning node (written LBAs only). */
    mutable std::mutex directory_mutex_;
    std::unordered_map<Lba, std::uint32_t> directory_;

    /** Bounded FIFO-evicted digest memory for suppression. */
    std::mutex suppression_mutex_;
    std::unordered_set<std::uint64_t> suppression_;
    std::vector<std::uint64_t> suppression_fifo_;
    std::size_t suppression_next_ = 0;

    mutable std::mutex stats_mutex_;
    ClusterStats stats_;
    mutable core::ReductionStats merged_;
};

}  // namespace fidr::cluster
