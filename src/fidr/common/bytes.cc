#include "fidr/common/bytes.h"

#include <algorithm>

#include "fidr/common/status.h"

namespace fidr {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int
hex_value(char c)
{
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

}  // namespace

std::string
to_hex(std::span<const std::uint8_t> bytes)
{
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0xF]);
    }
    return out;
}

Buffer
from_hex(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        return {};
    Buffer out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_value(hex[i]);
        const int lo = hex_value(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return {};
        out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    }
    return out;
}

void
store_le(std::uint8_t *dst, std::uint64_t value, std::size_t width)
{
    FIDR_CHECK(width >= 1 && width <= 8);
    for (std::size_t i = 0; i < width; ++i)
        dst[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint64_t
load_le(const std::uint8_t *src, std::size_t width)
{
    FIDR_CHECK(width >= 1 && width <= 8);
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < width; ++i)
        value |= static_cast<std::uint64_t>(src[i]) << (8 * i);
    return value;
}

bool
spans_equal(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b)
{
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace fidr
