/**
 * @file
 * Byte-buffer helpers: hex formatting and little-endian field packing
 * used by the on-disk table encodings.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "fidr/common/types.h"

namespace fidr {

/** Lowercase hex encoding of a byte span. */
std::string to_hex(std::span<const std::uint8_t> bytes);

/** Parses lowercase/uppercase hex; returns empty buffer on bad input. */
Buffer from_hex(const std::string &hex);

/** Writes `width` (1..8) little-endian bytes of `value` at `dst`. */
void store_le(std::uint8_t *dst, std::uint64_t value, std::size_t width);

/** Reads `width` (1..8) little-endian bytes from `src`. */
std::uint64_t load_le(const std::uint8_t *src, std::size_t width);

/** True when two spans have equal length and contents. */
bool spans_equal(std::span<const std::uint8_t> a,
                 std::span<const std::uint8_t> b);

}  // namespace fidr
