/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * We use xoshiro256** (Blackman & Vigna): fast, high quality, and with a
 * tiny state so every workload generator can own an independent stream.
 * Determinism matters here — every benchmark and property test seeds its
 * generators explicitly so runs are reproducible.
 */
#pragma once

#include <cstdint>

namespace fidr {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng {
  public:
    /** Seeds the four 64-bit state words from one seed via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x5DEECE66Dull);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli draw with probability p of true. */
    bool next_bool(double p);

    /**
     * Geometric-ish skewed index in [0, n): repeatedly halves the range
     * with probability `skew`, producing the address locality knob used
     * by the workload generators.
     */
    std::uint64_t next_skewed(std::uint64_t n, double skew);

    /** UniformRandomBitGenerator interface for <algorithm> shuffles. */
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }
    result_type operator()() { return next_u64(); }

  private:
    std::uint64_t state_[4];
};

}  // namespace fidr
