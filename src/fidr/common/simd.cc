#include "fidr/common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace fidr::simd {
namespace {

// Kernel TUs are only compiled on x86-64 (src/fidr/*/CMakeLists.txt
// sets FIDR_SIMD_X86 alongside the per-file -msse4.1/-mavx2 flags);
// everywhere else only the scalar reference exists.
bool
cpu_probe(Target target)
{
#if defined(FIDR_SIMD_X86)
    switch (target) {
      case Target::kScalar: return true;
      case Target::kSse4: return __builtin_cpu_supports("sse4.1");
      case Target::kAvx2: return __builtin_cpu_supports("avx2");
      case Target::kAvx512:
        // The AVX-512 chunker keeps the gear table in zmm registers
        // via vpermi2w, which needs VBMI on top of F+BW.
        return __builtin_cpu_supports("avx512f") &&
               __builtin_cpu_supports("avx512bw") &&
               __builtin_cpu_supports("avx512vbmi");
    }
    return false;
#else
    return target == Target::kScalar;
#endif
}

Target
probe_detected()
{
    if (cpu_probe(Target::kAvx512))
        return Target::kAvx512;
    if (cpu_probe(Target::kAvx2))
        return Target::kAvx2;
    if (cpu_probe(Target::kSse4))
        return Target::kSse4;
    return Target::kScalar;
}

Target
initial_target()
{
    const char *env = std::getenv("FIDR_SIMD");
    if (env == nullptr || std::string_view(env).empty())
        return detected();
    const std::optional<Target> parsed = parse(env);
    if (!parsed) {
        std::fprintf(stderr,
                     "fidr: FIDR_SIMD=%s not recognized "
                     "(auto|avx512|avx2|sse4|scalar); using %s\n",
                     env, name(detected()));
        return detected();
    }
    if (!supported(*parsed)) {
        std::fprintf(stderr,
                     "fidr: FIDR_SIMD=%s unsupported on this host; "
                     "using %s\n",
                     env, name(detected()));
        return detected();
    }
    return *parsed;
}

std::atomic<Target> &
active_slot()
{
    static std::atomic<Target> slot(initial_target());
    return slot;
}

}  // namespace

bool
supported(Target target)
{
    return target <= detected();
}

Target
detected()
{
    static const Target cached = probe_detected();
    return cached;
}

Target
active()
{
    return active_slot().load(std::memory_order_relaxed);
}

Target
set_target(Target target)
{
    const Target clamped = supported(target) ? target : detected();
    active_slot().store(clamped, std::memory_order_relaxed);
    return clamped;
}

const char *
name(Target target)
{
    switch (target) {
      case Target::kScalar: return "scalar";
      case Target::kSse4: return "sse4";
      case Target::kAvx2: return "avx2";
      case Target::kAvx512: return "avx512";
    }
    return "?";
}

std::optional<Target>
parse(std::string_view text)
{
    if (text == "auto")
        return detected();
    if (text == "scalar")
        return Target::kScalar;
    if (text == "sse4")
        return Target::kSse4;
    if (text == "avx2")
        return Target::kAvx2;
    if (text == "avx512")
        return Target::kAvx512;
    return std::nullopt;
}

}  // namespace fidr::simd
