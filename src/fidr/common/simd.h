/**
 * @file
 * CPU-feature dispatch for the data-reduction kernels.
 *
 * The two dominant write-plane primitives — GearCdc boundary scanning
 * and SHA-256 fingerprinting — ship in multiple implementations:
 * portable scalar (always compiled, always the reference), SSE4, AVX2,
 * and (for the chunker) AVX-512VBMI with the gear table held entirely
 * in zmm registers.  This module owns the choice: a one-time cpuid
 * probe picks the best target the host supports, the `FIDR_SIMD`
 * environment variable (`auto|avx512|avx2|sse4|scalar`) or
 * `set_target()` can force a lower one, and every kernel call site
 * reads `active()` so tests can flip targets at runtime and prove
 * bit-identical results.
 *
 * The contract mirrors PR 1's lane-count determinism rule: dispatch
 * targets may only change wall-clock, never results.  Chunk boundaries
 * and digests are bit-identical across all targets by construction
 * (see DESIGN.md §12), and tests/test_simd_dispatch.cpp fuzzes that
 * equivalence.
 */
#pragma once

#include <optional>
#include <string_view>

namespace fidr::simd {

/** Kernel dispatch targets, ordered weakest to strongest. */
enum class Target {
    kScalar = 0,  ///< Portable C++; the reference implementation.
    kSse4 = 1,    ///< 128-bit SSE4.1 kernels (x86-64 only).
    kAvx2 = 2,    ///< 256-bit AVX2 kernels (x86-64 only).
    /**
     * 512-bit kernels needing AVX-512 F+BW+VBMI (vpermi2w).  Only the
     * chunker has a dedicated AVX-512 kernel; hashing reuses the AVX2
     * multi-buffer transform under this target.
     */
    kAvx512 = 3,
};

/** True if this binary has kernels for `target` and the CPU runs them. */
bool supported(Target target);

/** Strongest target this host supports (cpuid probe, cached). */
Target detected();

/**
 * The target kernels dispatch on right now.  Initialized on first use
 * from `FIDR_SIMD` (unset or `auto` means detected()); unknown values
 * or targets the host lacks fall back to detected() with a warning on
 * stderr rather than aborting, so a config written on an AVX2 host
 * still runs on an older one.
 */
Target active();

/**
 * Forces the dispatch target (tests/benches).  Requests above what the
 * host supports clamp to detected().  Returns the target actually
 * installed.
 */
Target set_target(Target target);

/** `"scalar"`, `"sse4"`, `"avx2"` or `"avx512"`. */
const char *name(Target target);

/** Parses a FIDR_SIMD value; `"auto"` maps to detected(); nullopt on
 *  unknown input. */
std::optional<Target> parse(std::string_view text);

}  // namespace fidr::simd
