#include "fidr/common/status.h"

namespace fidr {

const char *
status_code_name(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
      case StatusCode::kNotFound: return "NOT_FOUND";
      case StatusCode::kOutOfSpace: return "OUT_OF_SPACE";
      case StatusCode::kCorruption: return "CORRUPTION";
      case StatusCode::kUnavailable: return "UNAVAILABLE";
      case StatusCode::kInternal: return "INTERNAL";
    }
    return "UNKNOWN";
}

std::string
Status::to_string() const
{
    std::string out = status_code_name(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

namespace detail {

void
check_failed(const char *file, int line, const char *expr)
{
    std::fprintf(stderr, "FIDR_CHECK failed at %s:%d: %s\n", file, line, expr);
    std::abort();
}

}  // namespace detail
}  // namespace fidr
