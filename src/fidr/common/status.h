/**
 * @file
 * Lightweight error handling: Status codes plus a Result<T> carrier.
 *
 * FIDR is a library, so fatal conditions caused by callers surface as
 * Status values rather than aborts; internal invariant violations use
 * FIDR_CHECK (which aborts, gem5 panic() style).
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace fidr {

/** Canonical error codes used across the storage stack. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,  ///< Caller passed a malformed request.
    kNotFound,         ///< Lookup key absent (LBA never written, etc.).
    kOutOfSpace,       ///< Device or table capacity exhausted.
    kCorruption,       ///< Stored data failed an integrity check.
    kUnavailable,      ///< Device busy or queue full; retryable.
    kInternal,         ///< Invariant violation that was recoverable.
};

/** Human-readable name of a status code (stable, for logs and tests). */
const char *status_code_name(StatusCode code);

/**
 * A status code plus optional context message.  Cheap to copy when OK
 * (empty message), allocation only on the error path.
 */
class Status {
  public:
    /** Constructs an OK status. */
    Status() = default;

    /** Constructs an error status with a context message. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {}

    static Status ok() { return Status(); }
    static Status invalid_argument(std::string msg)
    { return Status(StatusCode::kInvalidArgument, std::move(msg)); }
    static Status not_found(std::string msg)
    { return Status(StatusCode::kNotFound, std::move(msg)); }
    static Status out_of_space(std::string msg)
    { return Status(StatusCode::kOutOfSpace, std::move(msg)); }
    static Status corruption(std::string msg)
    { return Status(StatusCode::kCorruption, std::move(msg)); }
    static Status unavailable(std::string msg)
    { return Status(StatusCode::kUnavailable, std::move(msg)); }
    static Status internal(std::string msg)
    { return Status(StatusCode::kInternal, std::move(msg)); }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** Formats as "CODE: message" for logging and assertions. */
    std::string to_string() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * Value-or-Status carrier.  A Result is either a T (status OK) or an
 * error Status; accessing value() on an error aborts.
 */
template <typename T>
class Result {
  public:
    /** Implicit from a value: success. */
    Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

    /** Implicit from an error status.  Must not be OK. */
    Result(Status status) : data_(std::move(status))  // NOLINT
    {
        if (std::holds_alternative<Status>(data_) &&
            std::get<Status>(data_).is_ok()) {
            std::fprintf(stderr, "Result constructed from OK status\n");
            std::abort();
        }
    }

    bool is_ok() const { return std::holds_alternative<T>(data_); }

    const Status &status() const
    {
        static const Status ok_status;
        return is_ok() ? ok_status : std::get<Status>(data_);
    }

    /** Returns the contained value; aborts if this holds an error. */
    const T &
    value() const
    {
        check_ok();
        return std::get<T>(data_);
    }

    T &
    value()
    {
        check_ok();
        return std::get<T>(data_);
    }

    /** Moves the contained value out; aborts if this holds an error. */
    T
    take()
    {
        check_ok();
        return std::move(std::get<T>(data_));
    }

  private:
    void
    check_ok() const
    {
        if (!is_ok()) {
            std::fprintf(stderr, "Result::value() on error: %s\n",
                         std::get<Status>(data_).to_string().c_str());
            std::abort();
        }
    }

    std::variant<T, Status> data_;
};

namespace detail {
[[noreturn]] void check_failed(const char *file, int line, const char *expr);
}  // namespace detail

/**
 * Internal invariant check: aborts with location info when violated.
 * Use for programmer errors only, never for caller-triggerable paths.
 */
#define FIDR_CHECK(expr)                                                   \
    do {                                                                   \
        if (!(expr)) {                                                     \
            ::fidr::detail::check_failed(__FILE__, __LINE__, #expr);       \
        }                                                                  \
    } while (0)

}  // namespace fidr
