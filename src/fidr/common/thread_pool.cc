#include "fidr/common/thread_pool.h"

#include <algorithm>

#include "fidr/common/status.h"

namespace fidr {
namespace {

/** Join state shared by the shards of one parallel_for call. */
struct ForkJoin {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::exception_ptr error;

    void
    finish(std::exception_ptr e)
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (e && !error)
            error = std::move(e);
        if (--pending == 0)
            done.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        done.wait(lock, [this] { return pending == 0; });
    }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    workers = std::max<std::size_t>(workers, 1);
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            // Graceful shutdown: drain what was queued before stopping.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)> &body)
{
    if (n == 0)
        return;
    const std::size_t shards = std::min(n, workers());
    if (shards <= 1) {
        body(0, n);
        return;
    }

    // Contiguous shards: shard s covers [s*q + min(s,r), ...) where
    // q = n/shards, r = n%shards — the first r shards get one extra
    // index.  Purely a function of (n, shards), so deterministic.
    const std::size_t q = n / shards;
    const std::size_t r = n % shards;

    // On a one-lane host the enqueue/wake/join round trip cannot buy
    // concurrency — the OS would just timeshare the same core — so run
    // the shards inline, sequentially, with the exact same shard
    // boundaries (per-shard tracing and any shard-local state stay
    // byte-identical to the pooled execution).
    static const bool kSingleLaneHost = hardware_lanes() == 1;
    if (kSingleLaneHost) {
        std::exception_ptr error;
        std::size_t begin = 0;
        for (std::size_t s = 0; s < shards; ++s) {
            const std::size_t end = begin + q + (s < r ? 1 : 0);
            try {
                body(begin, end);
            } catch (...) {
                // Match the pooled contract: remaining shards still
                // run; the first exception is rethrown after.
                if (!error)
                    error = std::current_exception();
            }
            begin = end;
        }
        FIDR_CHECK(begin == n);
        if (error)
            std::rethrow_exception(error);
        return;
    }

    ForkJoin join;
    join.pending = shards;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FIDR_CHECK(!stopping_);
        std::size_t begin = 0;
        for (std::size_t s = 0; s < shards; ++s) {
            const std::size_t len = q + (s < r ? 1 : 0);
            const std::size_t end = begin + len;
            queue_.push_back([&body, &join, begin, end] {
                std::exception_ptr error;
                try {
                    body(begin, end);
                } catch (...) {
                    error = std::current_exception();
                }
                join.finish(std::move(error));
            });
            begin = end;
        }
        FIDR_CHECK(begin == n);
    }
    work_ready_.notify_all();
    join.wait();
    if (join.error)
        std::rethrow_exception(join.error);
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        FIDR_CHECK(!stopping_);
        queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
}

std::size_t
ThreadPool::hardware_lanes()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

}  // namespace fidr
