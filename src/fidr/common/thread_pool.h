/**
 * @file
 * Fixed-size worker pool for the parallel data plane.
 *
 * The paper's accelerators are arrays of identical lanes (Table 4
 * instantiates multiple SHA-256 cores per NIC; the Compression Engine
 * packs several LZ cores).  This pool is the software stand-in: a
 * fixed set of worker threads and a `parallel_for` that shards an
 * index range across them, one contiguous shard per lane.  There is
 * deliberately no work stealing and no dynamic chunking — the shard a
 * lane computes is a pure function of (range size, lane count), so a
 * run is reproducible and easy to reason about under TSan.
 *
 * Determinism contract: `parallel_for` only runs the caller's functor
 * on worker threads; everything order-sensitive (ledger billing, DMA
 * accounting, stats) must happen on the calling thread after the call
 * returns.  The call blocks until every shard finished, so the caller
 * observes fully joined state.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fidr {

/** Fixed worker pool; see file comment for the determinism contract. */
class ThreadPool {
  public:
    /**
     * Spawns `workers` threads (at least 1).  Workers idle on a queue
     * until parallel_for() or submit() hands them shards.
     */
    explicit ThreadPool(std::size_t workers);

    /** Graceful shutdown: drains queued work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t workers() const { return threads_.size(); }

    /**
     * Splits [0, n) into up to workers() contiguous shards and runs
     * `body(begin, end)` for each shard on the pool.  Blocks until all
     * shards completed.  If any shard throws, the first exception (in
     * shard order as observed) is rethrown on the calling thread after
     * the join — remaining shards still run to completion, so the pool
     * stays reusable.  n == 0 is a no-op; n == 1 or workers() == 1
     * runs inline on the caller.
     */
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t, std::size_t)>
                          &body);

    /**
     * Queues one task for asynchronous execution on a worker thread
     * and returns immediately.  Unlike parallel_for, submit() never
     * runs the task inline — the write pipeline relies on submitted
     * work proceeding concurrently with the caller even on one-core
     * hosts (the OS timeshares the lanes).  Tasks run in submission
     * order per worker; exceptions must be handled inside the task.
     */
    void submit(std::function<void()> task);

    /**
     * Lane count to use when a config knob is 0 ("auto"): the hardware
     * concurrency, never less than 1.
     */
    static std::size_t hardware_lanes();

  private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
};

}  // namespace fidr
