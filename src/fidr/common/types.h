/**
 * @file
 * Core value types and sizing constants shared across every FIDR module.
 *
 * The paper (Sec 2.1) fixes the data-reduction granularity at 4 KB chunks,
 * a 38-byte Hash-PBN table entry (32-byte SHA-256 digest + 6-byte physical
 * block number) and 4 KB table buckets.  Those constants live here so the
 * tables, cache, and workload modules agree on them.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fidr {

/** Logical block address of a 4 KB chunk as seen by the client. */
using Lba = std::uint64_t;

/**
 * Physical block number: index of a unique chunk in the deduplicated
 * store.  The paper encodes it in 6 bytes (Sec 2.1.3), which bounds a
 * system to 2^48 unique 4 KB chunks (1 exabyte); we keep it in a
 * uint64_t but enforce the 6-byte bound when serializing.
 */
using Pbn = std::uint64_t;

/** Index of a bucket inside the on-SSD Hash-PBN table. */
using BucketIndex = std::uint64_t;

/** Raw byte buffer used for chunk payloads throughout the system. */
using Buffer = std::vector<std::uint8_t>;

/** Data-reduction chunk size: the paper uses fixed 4 KB chunking. */
inline constexpr std::size_t kChunkSize = 4096;

/** Size of one serialized Hash-PBN table entry (32 B hash + 6 B PBN). */
inline constexpr std::size_t kTableEntrySize = 38;

/** Hash-PBN table bucket size; also the table-cache line size (Sec 7.1). */
inline constexpr std::size_t kBucketSize = 4096;

/** Number of Hash-PBN entries that fit in one bucket. */
inline constexpr std::size_t kEntriesPerBucket = kBucketSize / kTableEntrySize;

/** Largest PBN representable in the 6-byte on-disk encoding. */
inline constexpr Pbn kMaxPbn = (Pbn{1} << 48) - 1;

/** Sentinel meaning "no physical block assigned". */
inline constexpr Pbn kInvalidPbn = ~Pbn{0};

/** Sentinel meaning "no logical block". */
inline constexpr Lba kInvalidLba = ~Lba{0};

/** Outcome of deduplicating a single chunk. */
enum class ChunkVerdict : std::uint8_t {
    kUnique,     ///< First occurrence; chunk must be compressed and stored.
    kDuplicate,  ///< Content already stored; only mapping tables change.
};

/** IO direction used by device models and workload traces. */
enum class IoDir : std::uint8_t { kRead, kWrite };

}  // namespace fidr
