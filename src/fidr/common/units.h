/**
 * @file
 * Size, bandwidth, and time units used by the performance models.
 *
 * All bandwidths in FIDR are decimal (1 GB/s = 1e9 B/s) to match the
 * paper's figures (e.g. "170 GB/s theoretical socket bandwidth"); all
 * capacities are binary (1 GiB = 2^30 B) where they describe memory or
 * buffer sizes.  Simulated time is kept in nanoseconds as uint64_t.
 */
#pragma once

#include <cstdint>

namespace fidr {

/** Simulated time in nanoseconds. */
using SimTime = std::uint64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000ull * 1000 * 1000;

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;
inline constexpr std::uint64_t kTiB = 1024 * kGiB;

inline constexpr std::uint64_t kKB = 1000;
inline constexpr std::uint64_t kMB = 1000 * kKB;
inline constexpr std::uint64_t kGB = 1000 * kMB;
inline constexpr std::uint64_t kTB = 1000 * kGB;
inline constexpr std::uint64_t kPB = 1000 * kTB;

/** Bandwidth in bytes per (real or simulated) second. */
using Bandwidth = double;

/** Convenience: express a decimal GB/s figure as bytes/second. */
constexpr Bandwidth gb_per_s(double gb) { return gb * 1e9; }

/** Convenience: express bytes/second as decimal GB/s for reporting. */
constexpr double to_gb_per_s(Bandwidth bytes_per_s) { return bytes_per_s / 1e9; }

}  // namespace fidr
