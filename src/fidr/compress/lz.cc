#include "fidr/compress/lz.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "fidr/common/bytes.h"

namespace fidr {
namespace {

constexpr std::uint8_t kMethodStored = 0;
constexpr std::uint8_t kMethodLz = 1;
constexpr std::size_t kHeaderSize = 5;

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr unsigned kMaxHashBits = 14;
constexpr unsigned kMinHashBits = 10;

/**
 * Hash-table bits sized to the input (~1 slot per position, clamped):
 * a 4 KB chunk gets a 4 K-slot table instead of the former fixed 16 K,
 * so the per-call table clear shrinks 4x on the hot path while big
 * inputs keep the full table.  Deterministic: depends on size only.
 */
unsigned
hash_bits_for(std::size_t size)
{
    unsigned bits = kMinHashBits;
    while (bits < kMaxHashBits && (std::size_t{1} << bits) < size)
        ++bits;
    return bits;
}

std::uint32_t
hash4(const std::uint8_t *p, unsigned bits)
{
    // 64-bit golden-ratio mix of the 4-byte key: the table index comes
    // from the top bits of a full 64-bit product, which spreads low-
    // entropy keys (runs, text) far better than the old 32-bit
    // Knuth multiply — fewer collisions means the depth-1 "FPGA"
    // search level lands on real candidates more often.
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return static_cast<std::uint32_t>(
        (v * 0x9E3779B185EBCA87ull) >> (64 - bits));
}

std::size_t
match_length(const std::uint8_t *a, const std::uint8_t *b,
             const std::uint8_t *limit)
{
    const std::uint8_t *start = b;
    while (b < limit && *a == *b) {
        ++a;
        ++b;
    }
    return static_cast<std::size_t>(b - start);
}

void
emit_length(Buffer &out, std::size_t extra)
{
    // 255-run extension coding shared by literal and match lengths.
    while (extra >= 255) {
        out.push_back(255);
        extra -= 255;
    }
    out.push_back(static_cast<std::uint8_t>(extra));
}

void
emit_sequence(Buffer &out, const std::uint8_t *lit, std::size_t lit_len,
              std::size_t offset, std::size_t match_len)
{
    const std::size_t lit_code = std::min<std::size_t>(lit_len, 15);
    std::size_t match_code = 0;
    if (match_len > 0) {
        FIDR_CHECK(match_len >= kMinMatch);
        match_code = std::min<std::size_t>(match_len - kMinMatch, 15);
    }
    out.push_back(static_cast<std::uint8_t>((lit_code << 4) | match_code));
    if (lit_code == 15)
        emit_length(out, lit_len - 15);
    out.insert(out.end(), lit, lit + lit_len);
    if (match_len > 0) {
        out.push_back(static_cast<std::uint8_t>(offset & 0xFF));
        out.push_back(static_cast<std::uint8_t>(offset >> 8));
        if (match_code == 15)
            emit_length(out, match_len - kMinMatch - 15);
    }
}

/**
 * Reusable per-thread chain storage: lz_compress runs per 4 KB chunk,
 * and reallocating (and zeroing) the chains for every chunk dominated
 * the match finder's cost.  Each compression lane reuses its own
 * scratch; the head table is re-cleared per call so output depends
 * only on the input.
 */
struct MatchScratch {
    std::vector<std::uint32_t> head;
    std::vector<std::uint32_t> prev;
};

/** Hash-chain match finder over a 64 KiB window. */
class MatchFinder {
  public:
    MatchFinder(const std::uint8_t *base, std::size_t size, int max_depth,
                MatchScratch &scratch)
        : base_(base), size_(size), max_depth_(max_depth),
          hash_bits_(hash_bits_for(size)),
          head_(scratch.head), prev_(scratch.prev)
    {
        head_.assign(std::size_t{1} << hash_bits_, kNone);
        // prev_ entries are only ever read for positions inserted in
        // this call (chains start at the cleared head table), so stale
        // values from a previous chunk are unreachable.
        if (prev_.size() < size_)
            prev_.resize(size_);
    }

    /** Inserts position `pos` into the hash chains. */
    void
    insert(std::size_t pos)
    {
        if (pos + 4 > size_)
            return;
        const std::uint32_t h = hash4(base_ + pos, hash_bits_);
        prev_[pos] = head_[h];
        head_[h] = static_cast<std::uint32_t>(pos);
    }

    /**
     * Finds the longest match for `pos` within the window.  Returns the
     * length (0 if below kMinMatch) and sets `offset`.
     */
    std::size_t
    find(std::size_t pos, std::size_t &offset) const
    {
        if (pos + kMinMatch > size_)
            return 0;
        const std::uint8_t *limit = base_ + size_;
        std::size_t best_len = 0;
        std::size_t best_off = 0;
        std::uint32_t cand = head_[hash4(base_ + pos, hash_bits_)];
        int depth = max_depth_;
        while (cand != kNone && depth-- > 0) {
            const std::size_t cpos = cand;
            if (cpos >= pos || pos - cpos > kMaxOffset)
                break;
            const std::size_t len =
                match_length(base_ + cpos, base_ + pos, limit);
            if (len > best_len) {
                best_len = len;
                best_off = pos - cpos;
            }
            cand = prev_[cpos];
        }
        if (best_len < kMinMatch)
            return 0;
        offset = best_off;
        return best_len;
    }

  private:
    static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

    const std::uint8_t *base_;
    std::size_t size_;
    int max_depth_;
    unsigned hash_bits_;
    std::vector<std::uint32_t> &head_;
    std::vector<std::uint32_t> &prev_;
};

Buffer
make_stored(std::span<const std::uint8_t> input)
{
    Buffer out(kHeaderSize + input.size());
    out[0] = kMethodStored;
    store_le(out.data() + 1, input.size(), 4);
    std::memcpy(out.data() + kHeaderSize, input.data(), input.size());
    return out;
}

}  // namespace

std::size_t
lz_max_compressed_size(std::size_t raw_size)
{
    return kHeaderSize + raw_size;
}

Buffer
lz_compress(std::span<const std::uint8_t> input, LzLevel level)
{
    if (input.size() < kMinMatch + 1 || input.size() > 0xFFFFFFFFull)
        return make_stored(input);

    Buffer out;
    out.reserve(input.size() / 2 + kHeaderSize);
    out.push_back(kMethodLz);
    out.resize(kHeaderSize);
    store_le(out.data() + 1, input.size(), 4);

    const int depth = level == LzLevel::kFast ? 1 : 32;
    thread_local MatchScratch scratch;
    MatchFinder finder(input.data(), input.size(), depth, scratch);

    std::size_t pos = 0;
    std::size_t lit_start = 0;
    while (pos < input.size()) {
        std::size_t offset = 0;
        const std::size_t len = finder.find(pos, offset);
        if (len == 0) {
            finder.insert(pos);
            ++pos;
            continue;
        }
        emit_sequence(out, input.data() + lit_start, pos - lit_start,
                      offset, len);
        // Index every position covered by the match so later data can
        // reference into it.
        const std::size_t end = pos + len;
        while (pos < end) {
            finder.insert(pos);
            ++pos;
        }
        lit_start = pos;
        if (out.size() + (input.size() - pos) >= input.size()) {
            // Already no better than stored; bail out early.
            return make_stored(input);
        }
    }
    emit_sequence(out, input.data() + lit_start, input.size() - lit_start,
                  0, 0);

    if (out.size() >= kHeaderSize + input.size())
        return make_stored(input);
    return out;
}

Result<Buffer>
lz_decompress(std::span<const std::uint8_t> block)
{
    if (block.size() < kHeaderSize)
        return Status::corruption("block shorter than header");
    const std::uint8_t method = block[0];
    const std::size_t raw_size = load_le(block.data() + 1, 4);

    if (method == kMethodStored) {
        if (block.size() != kHeaderSize + raw_size)
            return Status::corruption("stored block size mismatch");
        return Buffer(block.begin() + kHeaderSize, block.end());
    }
    if (method != kMethodLz)
        return Status::corruption("unknown method byte");

    Buffer out;
    out.reserve(raw_size);
    std::size_t pos = kHeaderSize;

    auto read_ext = [&](std::size_t &len) -> bool {
        std::uint8_t b;
        do {
            if (pos >= block.size())
                return false;
            b = block[pos++];
            len += b;
        } while (b == 255);
        return true;
    };

    while (out.size() < raw_size) {
        if (pos >= block.size())
            return Status::corruption("truncated token stream");
        const std::uint8_t token = block[pos++];
        std::size_t lit_len = token >> 4;
        if (lit_len == 15 && !read_ext(lit_len))
            return Status::corruption("truncated literal length");
        if (pos + lit_len > block.size())
            return Status::corruption("truncated literals");
        out.insert(out.end(), block.begin() + pos,
                   block.begin() + pos + lit_len);
        pos += lit_len;
        if (out.size() >= raw_size)
            break;

        if (pos + 2 > block.size())
            return Status::corruption("truncated match offset");
        const std::size_t offset = load_le(block.data() + pos, 2);
        pos += 2;
        std::size_t match_len = (token & 0xF) + kMinMatch;
        if ((token & 0xF) == 15) {
            std::size_t extra = 0;
            if (!read_ext(extra))
                return Status::corruption("truncated match length");
            match_len += extra;
        }
        if (offset == 0 || offset > out.size())
            return Status::corruption("match offset out of window");
        if (out.size() + match_len > raw_size)
            return Status::corruption("match overruns raw size");
        // Byte-by-byte copy: overlapping matches (offset < length) are
        // the RLE case and must replicate the just-written bytes.
        std::size_t src = out.size() - offset;
        for (std::size_t i = 0; i < match_len; ++i)
            out.push_back(out[src + i]);
    }
    if (out.size() != raw_size)
        return Status::corruption("decompressed size mismatch");
    return out;
}

std::size_t
lz_raw_size(std::span<const std::uint8_t> block)
{
    if (block.size() < kHeaderSize)
        return 0;
    return load_le(block.data() + 1, 4);
}

double
lz_reduction_ratio(std::size_t raw_size, std::size_t compressed_size)
{
    if (raw_size == 0 || compressed_size >= raw_size)
        return 0.0;
    return 1.0 - static_cast<double>(compressed_size) /
                     static_cast<double>(raw_size);
}

}  // namespace fidr
