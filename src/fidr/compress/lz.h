/**
 * @file
 * From-scratch LZ-family block compressor.
 *
 * This is the software counterpart of the FPGA gzip-class compression
 * cores the paper places in the Compression Engine (Sec 2.3, 6.1).  The
 * format is a byte-aligned LZ77 token stream (LZ4-like) chosen because
 * it is what high-throughput FPGA compressors implement in practice:
 *
 *   block   := header payload
 *   header  := method:u8 raw_size:u32le
 *   method  := 0 (stored, incompressible escape) | 1 (LZ tokens)
 *   payload := raw bytes (stored) | sequence* (LZ)
 *   sequence:= token:u8 [lit_ext*] literal* [offset:u16le [match_ext*]]
 *
 * The token's high nibble is the literal count (15 => extension bytes
 * follow, 255-run coded) and the low nibble is match_length - 4.  The
 * final sequence of a block carries literals only; the decoder stops
 * when raw_size bytes have been produced.  Matches reference a 64 KiB
 * sliding window with hash-chain search.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "fidr/common/status.h"
#include "fidr/common/types.h"

namespace fidr {

/** Effort knob for the match finder. */
enum class LzLevel {
    kFast,     ///< First hash hit only (shallow search), FPGA-like.
    kDefault,  ///< Hash-chain search with bounded depth.
};

/** Upper bound on compress() output size for a given input size. */
std::size_t lz_max_compressed_size(std::size_t raw_size);

/**
 * Compresses `input` into a self-describing block.  Falls back to a
 * stored block when compression would expand the data, so output size
 * never exceeds lz_max_compressed_size(input.size()).
 */
Buffer lz_compress(std::span<const std::uint8_t> input,
                   LzLevel level = LzLevel::kDefault);

/**
 * Decompresses a block produced by lz_compress.  Returns kCorruption
 * for truncated or malformed input rather than reading out of bounds.
 */
Result<Buffer> lz_decompress(std::span<const std::uint8_t> block);

/** Raw (uncompressed) size recorded in a block header, 0 if malformed. */
std::size_t lz_raw_size(std::span<const std::uint8_t> block);

/**
 * Fraction of input bytes removed by compression, in [0, 1).  A 4 KB
 * chunk that compresses to 2 KB has ratio 0.5, matching the paper's
 * "50% compression ratio" convention.
 */
double lz_reduction_ratio(std::size_t raw_size, std::size_t compressed_size);

}  // namespace fidr
