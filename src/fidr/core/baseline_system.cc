#include "fidr/core/baseline_system.h"

#include "fidr/host/calibration.h"

namespace fidr::core {

BaselineSystem::BaselineSystem(const BaselineConfig &config)
    : config_(config),
      platform_(config.platform),
      index_(),
      table_cache_(platform_.hash_table(), index_, platform_.cache_lines()),
      dedup_(table_cache_),
      containers_(platform_.data_ssds(), config.container_bytes),
      predictor_(config.predictor_window,
                 config.predictor_fingerprint_bits),
      accel_(LzLevel::kFast)
{
    // The table cache content and the staging buffers live in host
    // DRAM in the baseline.
    FIDR_CHECK(platform_.memory()
                   .claim("table cache", table_cache_.capacity_bytes())
                   .is_ok());
    FIDR_CHECK(platform_.memory()
                   .claim("staging buffers",
                          config.batch_chunks * kChunkSize +
                              config.container_bytes)
                   .is_ok());
}

Status
BaselineSystem::write(Lba lba, Buffer data)
{
    if (data.size() != kChunkSize)
        return Status::invalid_argument("writes must be 4 KB chunks");

    // Fig 2a step 1: the NIC DMAs the payload into a host buffer.
    platform_.fabric().dma(platform_.nic(), pcie::kHostMemory, kChunkSize,
                           memtag::kNicHost);
    platform_.cpu().bill_us(cputag::kOrchestration,
                            calib::kCpuOrchestrationPerChunk);

    pending_newest_[lba] = pending_.size();
    pending_.push_back(PendingWrite{lba, std::move(data)});
    ++stats_.chunks_written;
    stats_.raw_bytes += kChunkSize;

    if (pending_.size() >= config_.batch_chunks)
        return process_batch();
    return Status::ok();
}

void
BaselineSystem::bill_container_seals()
{
    // Containers are staged in host memory; when one seals, a data SSD
    // DMA-reads it out through the root complex.
    while (sealed_billed_ < containers_.sealed_containers()) {
        const std::size_t ssd =
            sealed_billed_ % platform_.data_ssd_dev_count();
        platform_.fabric().dma(pcie::kHostMemory, platform_.data_ssd_dev(ssd),
                               config_.container_bytes, memtag::kDataSsd);
        ++sealed_billed_;
    }
}

Status
BaselineSystem::process_batch()
{
    if (pending_.empty())
        return Status::ok();
    const std::size_t n = pending_.size();
    const std::uint64_t batch_bytes = n * kChunkSize;
    pcie::Fabric &fabric = platform_.fabric();
    host::HostCpu &cpu = platform_.cpu();

    std::vector<Buffer> chunks;
    chunks.reserve(n);
    for (PendingWrite &w : pending_)
        chunks.push_back(std::move(w.data));

    // Step 2: the unique-chunk predictor scans every buffered byte.
    fabric.host_memory().add(memtag::kPrediction,
                             static_cast<double>(batch_bytes));
    cpu.bill_us(cputag::kPredictor, n * calib::kCpuPredictorPerChunk);
    const std::vector<bool> predicted = predictor_.predict_batch(chunks);

    // Step 3: one batch transfer to the integrated accelerator, which
    // hashes everything and compresses the predicted-unique chunks.
    fabric.dma(pcie::kHostMemory, platform_.compression_engine(),
               batch_bytes, memtag::kFpga);
    accel::BaselineBatchResult accel_out =
        accel_.process_batch(chunks, predicted);

    // Step 4: digests plus compressed predicted-unique data return to
    // host memory.
    std::uint64_t return_bytes = n * Digest::kSize;
    for (const accel::CompressedChunk &c : accel_out.compressed)
        return_bytes += c.data.size();
    fabric.dma(platform_.compression_engine(), pcie::kHostMemory,
               return_bytes, memtag::kFpga);

    // Step 5: host-side table management validates every prediction
    // against the Hash-PBN table cache.
    std::vector<Pbn> retire_candidates;
    for (std::size_t i = 0; i < n; ++i) {
        const Lba lba = pending_[i].lba;
        const Digest &digest = accel_out.digests[i];

        Result<DedupLookup> looked =
            dedup_.lookup_or_insert(digest, next_pbn_);
        if (!looked.is_ok())
            return looked.status();
        const DedupLookup &lookup = looked.value();

        // CPU: B+-tree lookups per probed bucket, update + table-SSD
        // stack per miss, then the content scan / LRU / bookkeeping.
        cpu.bill_us(cputag::kTreeIndex,
                    lookup.buckets_probed * calib::kCpuTreeLookupPerChunk +
                        lookup.cache_misses * calib::kCpuTreeUpdatePerMiss);
        cpu.bill_us(cputag::kTableSsd,
                    lookup.cache_misses * calib::kCpuTableSsdPerMiss);
        cpu.bill_us(cputag::kScan, calib::kCpuBucketScanPerChunk);
        cpu.bill_us(cputag::kLru, calib::kCpuLruPerChunk);
        cpu.bill_us(cputag::kTableMisc, calib::kCpuTableMiscPerChunk);

        // DRAM: bucket content scans, bucket fetches from the table
        // SSD, and dirty-bucket flushes back to it.
        fabric.host_memory().add(
            memtag::kTableCache,
            lookup.buckets_probed * calib::kBucketScanFraction *
                static_cast<double>(kBucketSize));
        for (unsigned m = 0; m < lookup.cache_misses; ++m) {
            fabric.dma(platform_.table_ssd_dev(), pcie::kHostMemory,
                       kBucketSize, memtag::kTableCache);
        }
        for (unsigned f = 0; f < lookup.dirty_evictions; ++f) {
            fabric.dma(pcie::kHostMemory, platform_.table_ssd_dev(),
                       kBucketSize, memtag::kTableCache);
        }

        if (lookup.verdict == ChunkVerdict::kDuplicate) {
            ++stats_.duplicates;
            if (predicted[i])
                ++false_uniques_;  // Compressed for nothing.
            const auto prev = lba_table_.map_lba(lba, lookup.pbn);
            if (prev && *prev != lookup.pbn)
                retire_candidates.push_back(*prev);
            continue;
        }

        // Actually unique.
        ++stats_.unique_chunks;
        const Pbn pbn = next_pbn_++;
        accel::CompressedChunk compressed;
        if (predicted[i]) {
            compressed = std::move(accel_out.compressed[i]);
        } else {
            // Misprediction: the accelerator never compressed this
            // chunk, forcing a second round trip (Sec 2.3).
            ++false_duplicates_;
            fabric.dma(pcie::kHostMemory, platform_.compression_engine(),
                       kChunkSize, memtag::kFpga);
            compressed = accel_.process_batch(
                std::span<const Buffer>(&chunks[i], 1),
                std::vector<bool>{true}).compressed[0];
            fabric.dma(platform_.compression_engine(), pcie::kHostMemory,
                       compressed.data.size(), memtag::kFpga);
        }

        Result<tables::ChunkLocation> placed =
            containers_.append(compressed.data);
        if (!placed.is_ok())
            return placed.status();
        stats_.stored_bytes += compressed.data.size();
        const auto prev = lba_table_.map_lba(lba, pbn);
        if (prev && *prev != pbn)
            retire_candidates.push_back(*prev);
        lba_table_.set_location(pbn, placed.value());
        space_.on_store(pbn, digest, placed.value());
        bill_container_seals();
    }

    // Retire overwritten chunks only after the whole batch is mapped:
    // a later duplicate may re-reference a transiently dead PBN.
    for (const Pbn pbn : retire_candidates)
        retire_if_dead(pbn);

    pending_.clear();
    pending_newest_.clear();
    return Status::ok();
}

void
BaselineSystem::retire_if_dead(Pbn pbn)
{
    if (lba_table_.refcount(pbn) != 0)
        return;
    lba_table_.reclaim(pbn);
    if (const auto digest = space_.on_dead(pbn)) {
        Result<DedupLookup> removed = dedup_.remove(*digest);
        FIDR_CHECK(removed.is_ok());
    }
}

Status
BaselineSystem::flush()
{
    const Status batch = process_batch();
    if (!batch.is_ok())
        return batch;
    const Status sealed = containers_.flush();
    if (!sealed.is_ok())
        return sealed;
    bill_container_seals();
    return table_cache_.writeback_all();
}

Result<Buffer>
BaselineSystem::read(Lba lba)
{
    ++stats_.chunks_read;
    pcie::Fabric &fabric = platform_.fabric();

    // Serve from the host-side request buffer when the write has not
    // been reduced yet.
    const auto pit = pending_newest_.find(lba);
    if (pit != pending_newest_.end()) {
        ++stats_.nic_read_hits;
        fabric.dma(pcie::kHostMemory, platform_.nic(), kChunkSize,
                   memtag::kNicHost);
        return pending_[pit->second].data;
    }

    platform_.cpu().bill_us(cputag::kReadPath, calib::kCpuReadPerChunk);

    const auto location = lba_table_.lookup(lba);
    if (!location)
        return Status::not_found("LBA never written");

    Result<Buffer> compressed = containers_.read(*location);
    if (!compressed.is_ok())
        return compressed.status();

    // Data SSD -> host -> decompression engine -> host -> NIC (Fig 2b).
    fabric.dma(platform_.data_ssd_dev(0), pcie::kHostMemory,
               compressed.value().size(), memtag::kDataSsd);
    fabric.dma(pcie::kHostMemory, platform_.decompression_engine(),
               compressed.value().size(), memtag::kFpga);
    Result<Buffer> raw = decomp_.decompress(compressed.value());
    if (!raw.is_ok())
        return raw.status();
    fabric.dma(platform_.decompression_engine(), pcie::kHostMemory,
               raw.value().size(), memtag::kFpga);
    fabric.dma(pcie::kHostMemory, platform_.nic(), raw.value().size(),
               memtag::kNicHost);
    return raw;
}

}  // namespace fidr::core
