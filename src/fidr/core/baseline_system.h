/**
 * @file
 * The baseline storage system: CIDR extended with 4 KB chunking and
 * software table caching (paper Sec 2.3, Fig 2).
 *
 * Write flow: the NIC DMAs client data into host memory; the
 * unique-chunk predictor scans the buffer; the batch scheduler ships
 * the whole batch to the integrated accelerator, which hashes every
 * chunk and compresses the predicted-unique ones; results return to
 * host memory; host software validates predictions against the
 * Hash-PBN table cache (B+-tree indexed, CPU managed); mispredicted
 * unique chunks take a second accelerator round-trip; compressed
 * unique chunks are staged in a host-memory container and the data
 * SSDs DMA it out.
 *
 * Read flow: LBA-PBA lookup on host, data SSD -> host memory ->
 * decompression engine -> host memory -> NIC.
 *
 * Every hop debits the host-DRAM ledger with its Table 1 tag and the
 * CPU ledger with its Fig 5b / Table 2 task tag, which is where the
 * bottleneck figures (Figs 4-5) come from.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fidr/accel/engines.h"
#include "fidr/accel/predictor.h"
#include "fidr/cache/indexes.h"
#include "fidr/cache/table_cache.h"
#include "fidr/core/dedup_index.h"
#include "fidr/core/platform.h"
#include "fidr/core/server.h"
#include "fidr/core/space.h"
#include "fidr/tables/container.h"
#include "fidr/tables/lba_pba.h"

namespace fidr::core {

/** Baseline system parameters. */
struct BaselineConfig {
    PlatformConfig platform;
    std::size_t batch_chunks = 256;         ///< Accelerator batch size.
    std::size_t predictor_window = 1 << 20; ///< Fingerprints kept.
    unsigned predictor_fingerprint_bits = 64;
    std::uint64_t container_bytes = 4 * kMiB;
};

/** The CIDR-like baseline server. */
class BaselineSystem : public StorageServer {
  public:
    explicit BaselineSystem(const BaselineConfig &config);

    Status write(Lba lba, Buffer data) override;
    Result<Buffer> read(Lba lba) override;
    Status flush() override;
    const ReductionStats &reduction() const override { return stats_; }

    Platform &platform() { return platform_; }
    const Platform &platform() const { return platform_; }
    cache::CacheStats cache_stats() const { return table_cache_.stats(); }
    const cache::IndexStats &index_stats() const { return index_.stats(); }
    tables::LbaPbaTable &lba_table() { return lba_table_; }

    /** Mispredictions that forced a second accelerator pass. */
    std::uint64_t false_duplicate_predictions() const
    { return false_duplicates_; }
    std::uint64_t false_unique_predictions() const { return false_uniques_; }

    /** Live/dead space accounting (same bookkeeping as FIDR's). */
    const SpaceTracker &space() const { return space_; }

  private:
    Status process_batch();
    void bill_container_seals();
    void retire_if_dead(Pbn pbn);

    BaselineConfig config_;
    Platform platform_;
    cache::BTreeCacheIndex index_;
    cache::TableCache table_cache_;
    DedupIndex dedup_;
    tables::LbaPbaTable lba_table_;
    tables::ContainerLog containers_;
    accel::UniqueChunkPredictor predictor_;
    accel::BaselineReductionAccelerator accel_;
    accel::DecompressionEngine decomp_;

    struct PendingWrite {
        Lba lba;
        Buffer data;
    };
    std::vector<PendingWrite> pending_;
    std::unordered_map<Lba, std::size_t> pending_newest_;

    SpaceTracker space_;
    Pbn next_pbn_ = 0;
    std::uint64_t sealed_billed_ = 0;
    std::uint64_t false_duplicates_ = 0;
    std::uint64_t false_uniques_ = 0;
    ReductionStats stats_;
};

}  // namespace fidr::core
