#include "fidr/core/dedup_index.h"

namespace fidr::core {

Result<DedupLookup>
DedupIndex::lookup_or_insert(const Digest &digest, Pbn new_pbn,
                             bool high_priority)
{
    return walk(digest, new_pbn, true, high_priority);
}

Result<DedupLookup>
DedupIndex::lookup(const Digest &digest)
{
    return walk(digest, kInvalidPbn, false, false);
}

// Removal can strand entries that spilled past the emptied bucket
// (open-addressing deletion): stranded *live* entries stay readable
// through the LBA-PBA table and at worst cost a duplicate re-insert if
// their content recurs — a bounded space leak, never a correctness
// problem; stranded *dead* entries are invisible to lookups, which is
// exactly what removal wants.
Result<DedupLookup>
DedupIndex::remove(const Digest &digest)
{
    tables::HashPbnTable &table = cache_.table();
    const BucketIndex base = table.bucket_for(digest);

    DedupLookup out;
    for (unsigned probe = 0; probe < tables::HashPbnTable::kMaxProbes;
         ++probe) {
        const BucketIndex index = (base + probe) % table.num_buckets();
        Result<cache::CacheAccess> accessed = cache_.access(index);
        if (!accessed.is_ok())
            return accessed.status();
        const cache::CacheAccess &access = accessed.value();
        ++out.buckets_probed;
        if (access.miss)
            ++out.cache_misses;
        if (access.evicted_dirty)
            ++out.dirty_evictions;

        tables::Bucket &bucket = cache_.bucket(access.line);
        std::size_t scanned = 0;
        const auto hit = bucket.lookup(digest, &scanned);
        out.entries_scanned += scanned;
        if (hit) {
            bucket.remove(digest);
            cache_.mark_dirty(access.line);
            out.verdict = ChunkVerdict::kDuplicate;
            out.pbn = *hit;
            return out;
        }
        // Probe chains end at the first non-full bucket, same as
        // lookups: the digest cannot live beyond it.
        if (!bucket.full())
            break;
    }
    out.verdict = ChunkVerdict::kUnique;
    return out;
}

Result<DedupLookup>
DedupIndex::walk(const Digest &digest, Pbn new_pbn, bool insert_if_absent,
                 bool high_priority)
{
    tables::HashPbnTable &table = cache_.table();
    const BucketIndex base = table.bucket_for(digest);

    DedupLookup out;
    for (unsigned probe = 0; probe < tables::HashPbnTable::kMaxProbes;
         ++probe) {
        const BucketIndex index = (base + probe) % table.num_buckets();
        Result<cache::CacheAccess> accessed =
            cache_.access(index, high_priority);
        if (!accessed.is_ok())
            return accessed.status();
        const cache::CacheAccess &access = accessed.value();
        ++out.buckets_probed;
        if (access.miss)
            ++out.cache_misses;
        if (access.evicted_dirty)
            ++out.dirty_evictions;

        tables::Bucket &bucket = cache_.bucket(access.line);
        std::size_t scanned = 0;
        const auto hit = bucket.lookup(digest, &scanned);
        out.entries_scanned += scanned;
        if (hit) {
            out.verdict = ChunkVerdict::kDuplicate;
            out.pbn = *hit;
            return out;
        }

        // Inserts stop at the first non-full bucket, so a miss there
        // proves the digest is absent from the whole probe chain.
        if (!bucket.full()) {
            out.verdict = ChunkVerdict::kUnique;
            if (insert_if_absent) {
                const Status inserted = bucket.insert(digest, new_pbn);
                if (!inserted.is_ok())
                    return inserted;
                cache_.mark_dirty(access.line);
                out.pbn = new_pbn;
                out.inserted = true;
            }
            return out;
        }
    }

    if (insert_if_absent) {
        return Status::out_of_space(
            "Hash-PBN probe chain exhausted; table undersized");
    }
    out.verdict = ChunkVerdict::kUnique;
    return out;
}

}  // namespace fidr::core
