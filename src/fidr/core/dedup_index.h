/**
 * @file
 * Deduplication lookup over the cached Hash-PBN table, shared by both
 * systems (they differ only in *which index* backs the TableCache and
 * which resources the work is billed to).
 *
 * A lookup resolves a digest to duplicate-with-PBN or unique (in which
 * case the entry is inserted with the freshly assigned PBN).  Bucket
 * overflow spills to the next bucket with bounded linear probing, so
 * one chunk may touch several cache lines; every access, scan length
 * and miss/flush event is reported so callers can debit the right
 * ledgers.
 */
#pragma once

#include <cstdint>

#include "fidr/cache/table_cache.h"
#include "fidr/hash/digest.h"

namespace fidr::core {

/** Everything one dedup lookup did, for resource billing. */
struct DedupLookup {
    ChunkVerdict verdict = ChunkVerdict::kUnique;
    Pbn pbn = kInvalidPbn;           ///< Matched or newly assigned.
    unsigned buckets_probed = 0;     ///< Cache accesses performed.
    unsigned cache_misses = 0;       ///< Bucket fetches from table SSD.
    unsigned dirty_evictions = 0;    ///< Bucket flushes to table SSD.
    std::size_t entries_scanned = 0; ///< Hash comparisons executed.
    bool inserted = false;           ///< New entry written (unique).
};

/** Dedup front-end over a TableCache. */
class DedupIndex {
  public:
    explicit DedupIndex(cache::TableCache &table_cache)
        : cache_(table_cache) {}

    /**
     * Looks `digest` up; when absent, inserts it mapped to `new_pbn`
     * and reports kUnique.  kOutOfSpace when every probe target is
     * full (table sized too small).
     */
    Result<DedupLookup> lookup_or_insert(const Digest &digest, Pbn new_pbn,
                                         bool high_priority = false);

    /** Lookup without insertion (used by verification paths). */
    Result<DedupLookup> lookup(const Digest &digest);

    /**
     * Removes the entry for `digest` (space reclamation: the last LBA
     * referencing its chunk is gone).  Reports kDuplicate when an
     * entry was found and removed, kUnique when it was absent.
     */
    Result<DedupLookup> remove(const Digest &digest);

    cache::TableCache &table_cache() { return cache_; }

  private:
    Result<DedupLookup> walk(const Digest &digest, Pbn new_pbn,
                             bool insert_if_absent, bool high_priority);

    cache::TableCache &cache_;
};

}  // namespace fidr::core
