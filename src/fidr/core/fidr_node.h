/**
 * @file
 * One FIDR server inside a scale-out cluster.
 *
 * The paper's scalability story is horizontal (Sec 1, Sec 8): capacity
 * and throughput grow to PB scale by adding FIDR servers.  A FidrNode
 * is the unit that gets added — the full single-server orchestration
 * (FidrSystem: NIC, pipelines, tables, container log, GC) plus the two
 * things cluster membership needs:
 *
 *  - identity: a node index, stamped into FidrConfig::node_index so
 *    every trace id the node mints carries it (obs/request.h) and
 *    merged cluster obs dumps attribute spans correctly;
 *  - serialization: FidrSystem's entry points expect one orchestrating
 *    caller at a time (the single-server contract).  The node exposes
 *    a serial lock; cluster callers (cluster::ClusterRouter) hold it
 *    across each forwarded operation, and cross-node parallelism comes
 *    from different nodes' locks being held concurrently.
 *
 * A FidrNode is also the node side of the router's remote-fingerprint
 * protocol: probe_digest / write_ref / unmap forward to the system's
 * cluster surface.  A standalone deployment simply never calls them,
 * so node 0 of a cluster-of-1 behaves bit-identically to a bare
 * FidrSystem (the gate bench_cluster_scaling enforces).
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "fidr/core/fidr_system.h"

namespace fidr::core {

/** One FIDR server: a FidrSystem plus cluster identity + serial lock. */
class FidrNode {
  public:
    /** Builds the node's system with `config.node_index` = `index`. */
    FidrNode(std::uint32_t index, FidrConfig config)
        : index_(index),
          name_("node" + std::to_string(index)),
          system_((config.node_index = index, config))
    {
    }

    FidrNode(const FidrNode &) = delete;
    FidrNode &operator=(const FidrNode &) = delete;

    std::uint32_t index() const { return index_; }
    const std::string &name() const { return name_; }

    FidrSystem &system() { return system_; }
    const FidrSystem &system() const { return system_; }

    /**
     * Per-node serialization lock.  Callers hold it across every
     * forwarded operation (write, read_batch, flush, GC, the remote
     * fingerprint surface); FidrSystem itself stays single-caller.
     */
    std::mutex &serial_lock() { return mutex_; }

    // Node side of the router's RPCs (see fidr_system.h for contracts;
    // call under serial_lock()).
    Status write(Lba lba, Buffer data)
    { return system_.write(lba, std::move(data)); }
    Result<Buffer> read(Lba lba) { return system_.read(lba); }
    std::vector<Result<Buffer>> read_batch(std::span<const Lba> lbas)
    { return system_.read_batch(lbas); }
    Status flush() { return system_.flush(); }
    Result<bool> probe_digest(const Digest &digest)
    { return system_.probe_digest(digest); }
    Status write_ref(Lba lba, const Digest &digest)
    { return system_.write_ref(lba, digest); }
    Status unmap(Lba lba) { return system_.unmap(lba); }

  private:
    std::uint32_t index_;
    std::string name_;
    FidrSystem system_;
    std::mutex mutex_;
};

}  // namespace fidr::core
