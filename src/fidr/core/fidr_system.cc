#include "fidr/core/fidr_system.h"

#include "fidr/common/bytes.h"
#include "fidr/host/calibration.h"
#include "fidr/obs/trace.h"

namespace fidr::core {

FidrSystem::FidrSystem(const FidrConfig &config)
    : config_(config),
      platform_(config.platform),
      nic_(config.nic),
      containers_(platform_.data_ssds(), config.container_bytes),
      compressor_(LzLevel::kFast)
{
    const std::size_t compress_lanes =
        config_.compress_lanes == 0 ? ThreadPool::hardware_lanes()
                                    : config_.compress_lanes;
    if (compress_lanes > 1)
        compress_pool_ = std::make_unique<ThreadPool>(compress_lanes);
    if (config.hw_cache_engine) {
        hwtree::PipelineConfig pipeline;
        pipeline.update_lanes = config.tree_update_lanes;
        auto hw = std::make_unique<cache::HwTreeCacheIndex>(pipeline);
        hw_index_ = hw.get();
        index_ = std::move(hw);
    } else {
        index_ = std::make_unique<cache::BTreeCacheIndex>();
    }
    table_cache_ = std::make_unique<cache::TableCache>(
        platform_.hash_table(), *index_, platform_.cache_lines(),
        config.eviction_policy);
    dedup_ = std::make_unique<DedupIndex>(*table_cache_);

    // Host DRAM holds only the table cache content; payload buffering
    // moved to NIC DRAM and containers to the Compression Engine.
    FIDR_CHECK(platform_.memory()
                   .claim("table cache", table_cache_->capacity_bytes())
                   .is_ok());

    if (config.journal_metadata) {
        // Reserve [buckets | snapshot | journal] on the table SSD.
        snapshot_base_ =
            (platform_.hash_table().table_bytes() + 4095) / 4096 * 4096;
        const std::uint64_t journal_base =
            snapshot_base_ + config.snapshot_bytes;
        journal_ = std::make_unique<tables::MetadataJournal>(
            platform_.table_ssd(), journal_base, config.journal_bytes);
    }

    // Resolve stage-histogram handles once; eager creation also makes
    // every Fig 6 stage show up in obs_snapshot() from the start.
    hist_.nic_buffer = &metrics_.histogram("write.nic_buffer");
    hist_.batch = &metrics_.histogram("write.batch");
    hist_.hash = &metrics_.histogram("write.hash");
    hist_.digest_xfer = &metrics_.histogram("write.digest_xfer");
    hist_.bucket_index = &metrics_.histogram("write.bucket_index");
    hist_.dedup_resolve = &metrics_.histogram("write.dedup_resolve");
    hist_.verdict_xfer = &metrics_.histogram("write.verdict_xfer");
    hist_.map_update = &metrics_.histogram("write.map_update");
    hist_.compress = &metrics_.histogram("write.compress");
    hist_.container_append = &metrics_.histogram("write.container_append");
    hist_.journal = &metrics_.histogram("write.journal");
    hist_.read_total = &metrics_.histogram("read.total");
    hist_.read_resolve = &metrics_.histogram("read.lba_resolve");
    hist_.read_fetch = &metrics_.histogram("read.ssd_fetch");
    hist_.read_decompress = &metrics_.histogram("read.decompress");
    hist_.read_return = &metrics_.histogram("read.nic_return");
}

Status
FidrSystem::journal_append(const tables::JournalRecord &record)
{
    if (!journal_)
        return Status::ok();
    const obs::StageTimer timer;
    FIDR_TPOINT(obs::Tpoint::kWriteJournal, record.pbn, record.lba);
    Status appended = journal_->append(record);
    if (appended.code() == StatusCode::kOutOfSpace) {
        // Journal full: checkpoint truncates it, then retry.
        const Status checkpointed = checkpoint();
        if (!checkpointed.is_ok())
            return checkpointed;
        appended = journal_->append(record);
    }
    hist_.journal->record(timer.elapsed_ns());
    return appended;
}

Status
FidrSystem::write(Lba lba, Buffer data)
{
    if (data.size() != kChunkSize)
        return Status::invalid_argument("writes must be 4 KB chunks");

    // Fig 6a step 1: buffer in the NIC and ack immediately.  The FIDR
    // device manager's per-request work stays on the host CPU.
    platform_.cpu().bill_us(cputag::kOrchestration,
                            calib::kCpuOrchestrationPerChunk);
    if (nic_.buffered_bytes() + kChunkSize > nic_.config().buffer_capacity) {
        // Back-pressure: drain the buffered batch before accepting more.
        const Status drained = process_batch();
        if (!drained.is_ok())
            return drained;
    }
    Status buffered = Status::ok();
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteNicBuffer, lba,
                        kChunkSize);
        buffered = nic_.buffer_write(lba, std::move(data));
        hist_.nic_buffer->record(timer.elapsed_ns());
    }
    if (!buffered.is_ok())
        return buffered;
    ++stats_.chunks_written;
    stats_.raw_bytes += kChunkSize;

    if (nic_.batch_ready())
        return process_batch();
    return Status::ok();
}

void
FidrSystem::bill_container_seals()
{
    // Sealed containers move Compression Engine -> data SSD under the
    // shared switch: peer-to-peer, no host DRAM.  Only the metadata
    // (sizes, PCIe address, destination) touches the host (step 8-9).
    while (sealed_billed_ < containers_.sealed_containers()) {
        const std::size_t ssd =
            sealed_billed_ % platform_.data_ssd_dev_count();
        platform_.fabric().dma(platform_.compression_engine(),
                               platform_.data_ssd_dev(ssd),
                               config_.container_bytes, memtag::kDataSsd);
        platform_.fabric().dma(platform_.compression_engine(),
                               pcie::kHostMemory, 64, memtag::kFpga);
        ++sealed_billed_;
    }
}

Status
FidrSystem::process_batch()
{
    const std::size_t n = nic_.buffered_chunks();
    if (n == 0)
        return Status::ok();
    pcie::Fabric &fabric = platform_.fabric();
    host::HostCpu &cpu = platform_.cpu();

    const std::uint64_t batch_id = ++batch_seq_;
    const obs::StageTimer batch_timer;
    FIDR_TRACE_SPAN(batch_span, obs::Tpoint::kWriteBatch, batch_id, n);

    // Step 2: in-NIC hashing; only digests cross to the host.
    std::vector<Digest> digests;
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteHash, batch_id, n);
        digests = nic_.hash_buffered();
        hist_.hash->record(timer.elapsed_ns());
    }
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteDigestXfer, batch_id,
                        n * Digest::kSize);
        fabric.dma(platform_.nic(), pcie::kHostMemory, n * Digest::kSize,
                   memtag::kNicHost);
        hist_.digest_xfer->record(timer.elapsed_ns());
    }

    // Step 3: bucket indexes to the Cache HW-Engine (8 B per chunk —
    // the "negligible PCIe bandwidth" of Sec 5.6).
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteBucketIndex, batch_id,
                        n * 8);
        fabric.dma(pcie::kHostMemory, platform_.cache_engine(), n * 8,
                   memtag::kTableCache);
        hist_.bucket_index->record(timer.elapsed_ns());
    }

    // Steps 4-5: resolve cache lines and scan bucket content on host.
    std::vector<ChunkVerdict> verdicts(n, ChunkVerdict::kUnique);
    std::vector<Pbn> pbns(n, kInvalidPbn);
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteDedupResolve, batch_id,
                        n);
        for (std::size_t i = 0; i < n; ++i) {
            Result<DedupLookup> looked = dedup_->lookup_or_insert(
                digests[i], next_pbn_, high_priority_);
            if (!looked.is_ok())
                return looked.status();
            const DedupLookup &lookup = looked.value();

            if (!config_.hw_cache_engine) {
                // NIC+P2P-only configuration: the index stays a
                // software B+ tree, so its CPU cost remains (Fig 14
                // config b).
                cpu.bill_us(cputag::kTreeIndex,
                            lookup.buckets_probed *
                                    calib::kCpuTreeLookupPerChunk +
                                lookup.cache_misses *
                                    calib::kCpuTreeUpdatePerMiss);
                cpu.bill_us(cputag::kTableSsd,
                            lookup.cache_misses *
                                calib::kCpuTableSsdPerMiss);
            }
            cpu.bill_us(cputag::kScan, calib::kCpuBucketScanPerChunk);
            cpu.bill_us(cputag::kLru, calib::kCpuLruPerChunk);
            cpu.bill_us(cputag::kTableMisc, calib::kCpuTableMiscPerChunk);

            fabric.host_memory().add(
                memtag::kTableCache,
                lookup.buckets_probed * calib::kBucketScanFraction *
                    static_cast<double>(kBucketSize));
            for (unsigned m = 0; m < lookup.cache_misses; ++m) {
                fabric.dma(platform_.table_ssd_dev(), pcie::kHostMemory,
                           kBucketSize, memtag::kTableCache);
            }
            for (unsigned f = 0; f < lookup.dirty_evictions; ++f) {
                fabric.dma(pcie::kHostMemory, platform_.table_ssd_dev(),
                           kBucketSize, memtag::kTableCache);
            }

            verdicts[i] = lookup.verdict;
            pbns[i] = lookup.pbn;
            if (lookup.verdict == ChunkVerdict::kUnique) {
                ++stats_.unique_chunks;
                ++next_pbn_;
            } else {
                ++stats_.duplicates;
            }
        }
        hist_.dedup_resolve->record(timer.elapsed_ns());
    }

    // Step 6: verdicts (and destination metadata) back to the NIC.
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteVerdictXfer, batch_id,
                        n * 2);
        fabric.dma(pcie::kHostMemory, platform_.nic(), n * 2,
                   memtag::kNicHost);
        hist_.verdict_xfer->record(timer.elapsed_ns());
    }

    // LBA-PBA mappings are pure host metadata updates: duplicates map
    // to the matched PBN, uniques to their freshly assigned PBN.
    const std::vector<Lba> lbas = nic_.buffered_lbas();
    FIDR_CHECK(lbas.size() == n);
    std::vector<Pbn> unique_pbns;
    std::vector<Digest> unique_digests;
    // Overwritten chunks are retired only after the whole batch is
    // mapped and stored: a later duplicate in the same batch may
    // re-reference a PBN whose refcount transiently hit zero.
    std::vector<Pbn> retire_candidates;
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteMapUpdate, batch_id, n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto prev = lba_table_.map_lba(lbas[i], pbns[i]);
            if (journal_) {
                tables::JournalRecord rec;
                rec.op = tables::JournalOp::kMapLba;
                rec.lba = lbas[i];
                rec.pbn = pbns[i];
                const Status logged = journal_append(rec);
                if (!logged.is_ok())
                    return logged;
            }
            if (prev && *prev != pbns[i])
                retire_candidates.push_back(*prev);
            if (verdicts[i] == ChunkVerdict::kUnique) {
                unique_pbns.push_back(pbns[i]);
                unique_digests.push_back(digests[i]);
            }
        }
        hist_.map_update->record(timer.elapsed_ns());
    }

    // Step 7: the compression scheduler ships only unique chunks,
    // NIC -> Compression Engine peer-to-peer.
    Result<std::vector<nic::BufferedChunk>> scheduled =
        nic_.schedule_unique(verdicts);
    if (!scheduled.is_ok())
        return scheduled.status();
    const std::vector<nic::BufferedChunk> unique = scheduled.take();
    FIDR_CHECK(unique.size() == unique_pbns.size());

    std::uint64_t unique_bytes = 0;
    for (const nic::BufferedChunk &chunk : unique)
        unique_bytes += chunk.data.size();
    if (unique_bytes > 0) {
        fabric.dma(platform_.nic(), platform_.compression_engine(),
                   unique_bytes, memtag::kNicHost);
    }

    // Steps 8-9: compression and container packing in engine memory;
    // sealed containers DMA straight to the data SSDs.  The engine's
    // LZ cores compress disjoint chunks concurrently; container
    // appends, engine counters, ledgers and journaling stay on this
    // thread after the join so accounting is lane-count-invariant.
    std::vector<accel::CompressedChunk> compressed_batch(unique.size());
    const auto compress_range = [this, &unique, &compressed_batch](
                                    std::size_t begin, std::size_t end) {
        // One span per LZ lane shard (worker-thread trace ring).
        FIDR_TRACE_SPAN(lane_span, obs::Tpoint::kWriteCompressLane,
                        begin, end - begin);
        for (std::size_t j = begin; j < end; ++j) {
            compressed_batch[j] =
                compressor_.compress_stateless(unique[j].data);
        }
    };
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteCompress, batch_id,
                        unique_bytes);
        if (compress_pool_)
            compress_pool_->parallel_for(unique.size(), compress_range);
        else
            compress_range(0, unique.size());
        hist_.compress->record(timer.elapsed_ns());
    }

    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteContainerAppend,
                        batch_id, unique.size());
        for (std::size_t j = 0; j < unique.size(); ++j) {
            const accel::CompressedChunk &compressed = compressed_batch[j];
            compressor_.record(compressed);
            Result<tables::ChunkLocation> placed =
                containers_.append(compressed.data);
            if (!placed.is_ok())
                return placed.status();
            stats_.stored_bytes += compressed.data.size();
            // Step 10: the host updates the metadata for the new chunk.
            lba_table_.set_location(unique_pbns[j], placed.value());
            space_.on_store(unique_pbns[j], unique_digests[j],
                            placed.value());
            if (journal_) {
                tables::JournalRecord rec;
                rec.op = tables::JournalOp::kSetLocation;
                rec.pbn = unique_pbns[j];
                rec.location = placed.value();
                const Status logged = journal_append(rec);
                if (!logged.is_ok())
                    return logged;
            }
            bill_container_seals();
        }
        hist_.container_append->record(timer.elapsed_ns());
    }

    for (const Pbn pbn : retire_candidates)
        retire_if_dead(pbn);
    hist_.batch->record(batch_timer.elapsed_ns());
    return Status::ok();
}

void
FidrSystem::retire_if_dead(Pbn pbn)
{
    if (lba_table_.refcount(pbn) != 0)
        return;
    lba_table_.reclaim(pbn);
    if (journal_) {
        tables::JournalRecord rec;
        rec.op = tables::JournalOp::kRetirePbn;
        rec.pbn = pbn;
        FIDR_CHECK(journal_append(rec).is_ok());
    }
    if (const auto digest = space_.on_dead(pbn)) {
        // Drop the Hash-PBN entry so the content, if it recurs, is
        // stored fresh rather than mapped to a reclaimed chunk.
        Result<DedupLookup> removed = dedup_->remove(*digest);
        FIDR_CHECK(removed.is_ok());
    }
}

Result<FidrSystem::ScrubReport>
FidrSystem::scrub()
{
    ScrubReport report;
    for (const auto &[container, space] : space_.containers()) {
        for (const Pbn pbn : space_.live_pbns(container)) {
            const auto digest = space_.digest_of(pbn);
            const auto location = lba_table_.location_of(pbn);
            FIDR_CHECK(digest.has_value());
            if (!location) {
                ++report.mapping_errors;
                continue;
            }
            Result<Buffer> compressed = containers_.read(*location);
            if (!compressed.is_ok()) {
                ++report.mapping_errors;
                continue;
            }
            Result<Buffer> raw = decomp_.decompress(compressed.value());
            ++report.chunks_verified;
            if (!raw.is_ok() ||
                Sha256::hash(raw.value()) != *digest) {
                ++report.digest_mismatches;
                continue;
            }
            // The Hash-PBN table must still resolve this digest to
            // this physical block.
            Result<DedupLookup> looked = dedup_->lookup(*digest);
            if (!looked.is_ok())
                return looked.status();
            if (looked.value().verdict != ChunkVerdict::kDuplicate ||
                looked.value().pbn != pbn) {
                ++report.mapping_errors;
            }
        }
    }
    return report;
}

Status
FidrSystem::checkpoint()
{
    if (!journal_)
        return Status::invalid_argument("journaling is not enabled");
    const Buffer image = lba_table_.serialize();
    if (image.size() + 8 > config_.snapshot_bytes)
        return Status::out_of_space("snapshot region too small");
    Buffer framed(8);
    store_le(framed.data(), image.size(), 8);
    framed.insert(framed.end(), image.begin(), image.end());
    const Status written =
        platform_.table_ssd().write(snapshot_base_, framed);
    if (!written.is_ok())
        return written;
    journal_->reset();
    return journal_->log_checkpoint();
}

Status
FidrSystem::simulate_crash_and_recover()
{
    if (!journal_)
        return Status::invalid_argument("journaling is not enabled");

    // Crash: the in-DRAM mapping state is gone.
    lba_table_ = tables::LbaPbaTable();

    // Restart: load the snapshot (if one was taken)...
    Result<Buffer> header = platform_.table_ssd().read(snapshot_base_, 8);
    if (!header.is_ok())
        return header.status();
    const std::uint64_t image_len = load_le(header.value().data(), 8);
    if (image_len > 0) {
        Result<Buffer> image = platform_.table_ssd().read(
            snapshot_base_ + 8, image_len);
        if (!image.is_ok())
            return image.status();
        Result<tables::LbaPbaTable> loaded =
            tables::LbaPbaTable::deserialize(image.value());
        if (!loaded.is_ok())
            return loaded.status();
        lba_table_ = loaded.take();
    }

    // ...then replay the journal tail on top.
    Result<std::vector<tables::JournalRecord>> records =
        journal_->replay();
    if (!records.is_ok())
        return records.status();
    tables::MetadataJournal::apply(records.value(), lba_table_);
    return Status::ok();
}

Result<std::uint64_t>
FidrSystem::compact(double min_dead_fraction)
{
    std::uint64_t reclaimed = 0;
    for (const std::uint64_t container :
         space_.candidates(min_dead_fraction)) {
        if (!containers_.sealed(container))
            continue;  // The open container compacts on its own seal.

        // Move the survivors: Compression Engine pulls them from the
        // old container and repacks them into the open one, P2P.
        for (const Pbn pbn : space_.live_pbns(container)) {
            const auto location = lba_table_.location_of(pbn);
            const auto digest = space_.digest_of(pbn);
            FIDR_CHECK(location.has_value() && digest.has_value());
            Result<Buffer> data = containers_.read(*location);
            if (!data.is_ok())
                return data.status();
            platform_.fabric().dma(
                platform_.data_ssd_dev(
                    containers_.ssd_index_of(location->container_id)),
                platform_.compression_engine(),
                data.value().size(), memtag::kDataSsd);
            Result<tables::ChunkLocation> moved =
                containers_.append(data.value());
            if (!moved.is_ok())
                return moved.status();
            lba_table_.set_location(pbn, moved.value());
            space_.on_store(pbn, *digest, moved.value());
            if (journal_) {
                tables::JournalRecord rec;
                rec.op = tables::JournalOp::kSetLocation;
                rec.pbn = pbn;
                rec.location = moved.value();
                const Status logged = journal_append(rec);
                if (!logged.is_ok())
                    return logged;
            }
            bill_container_seals();
        }

        Result<std::uint64_t> released = containers_.discard(container);
        if (!released.is_ok())
            return released.status();
        reclaimed += released.value();
        space_.release_container(container);
    }
    return reclaimed;
}

Status
FidrSystem::flush()
{
    const Status batch = process_batch();
    if (!batch.is_ok())
        return batch;
    const Status sealed = containers_.flush();
    if (!sealed.is_ok())
        return sealed;
    bill_container_seals();
    return table_cache_->writeback_all();
}

Result<Buffer>
FidrSystem::read(Lba lba)
{
    ++stats_.chunks_read;
    pcie::Fabric &fabric = platform_.fabric();
    const obs::StageTimer read_timer;
    FIDR_TRACE_SPAN(read_span, obs::Tpoint::kReadRequest, lba,
                    kChunkSize);

    // Fig 6b step 2: LBA Lookup against the in-NIC write buffer.
    if (auto buffered = nic_.lookup_buffered(lba)) {
        FIDR_TPOINT(obs::Tpoint::kReadNicLookup, lba, 1);
        ++stats_.nic_read_hits;
        hist_.read_total->record(read_timer.elapsed_ns());
        return std::move(*buffered);
    }
    FIDR_TPOINT(obs::Tpoint::kReadNicLookup, lba, 0);

    // Steps 3-4: LBA to host, LBA-PBA lookup.  With the read-stack
    // offload extension, the NVMe submission/completion handling and
    // data forwarding move to the FPGA and only the mapping lookup
    // stays on the CPU.
    const auto location = [&] {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kReadLbaResolve, lba, 0);
        fabric.dma(platform_.nic(), pcie::kHostMemory, 16,
                   memtag::kNicHost);
        platform_.cpu().bill_us(cputag::kReadPath,
                                config_.offload_read_stack
                                    ? calib::kCpuReadOffloadResidual
                                    : calib::kCpuReadPerChunk);
        const auto found = lba_table_.lookup(lba);
        hist_.read_resolve->record(timer.elapsed_ns());
        return found;
    }();
    if (!location)
        return Status::not_found("LBA never written");

    // Steps 5-7: data SSD -> Decompression Engine -> NIC, both P2P.
    // The source device is the SSD the chunk's container landed on
    // (same rotation bill_container_seals used when sealing it).
    Result<Buffer> compressed = [&]() -> Result<Buffer> {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kReadSsdFetch, lba,
                        location->container_id);
        Result<Buffer> data = containers_.read(*location);
        if (data.is_ok()) {
            fabric.dma(
                platform_.data_ssd_dev(
                    containers_.ssd_index_of(location->container_id)),
                platform_.decompression_engine(), data.value().size(),
                memtag::kDataSsd);
        }
        hist_.read_fetch->record(timer.elapsed_ns());
        return data;
    }();
    if (!compressed.is_ok())
        return compressed.status();

    Result<Buffer> raw = [&]() -> Result<Buffer> {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kReadDecompress, lba,
                        compressed.value().size());
        Result<Buffer> out = decomp_.decompress(compressed.value());
        hist_.read_decompress->record(timer.elapsed_ns());
        return out;
    }();
    if (!raw.is_ok())
        return raw.status();

    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kReadNicReturn, lba,
                        raw.value().size());
        fabric.dma(platform_.decompression_engine(), platform_.nic(),
                   raw.value().size(), memtag::kNicHost);
        hist_.read_return->record(timer.elapsed_ns());
    }
    hist_.read_total->record(read_timer.elapsed_ns());
    return raw;
}

obs::ObsSnapshot
FidrSystem::obs_snapshot() const
{
    obs::ObsSnapshot snap = metrics_.snapshot();

    // Flow counters: reduction accounting plus cache and tree state.
    snap.counters["write.chunks"] = stats_.chunks_written;
    snap.counters["write.unique_chunks"] = stats_.unique_chunks;
    snap.counters["write.duplicate_chunks"] = stats_.duplicates;
    snap.counters["write.raw_bytes"] = stats_.raw_bytes;
    snap.counters["write.stored_bytes"] = stats_.stored_bytes;
    snap.counters["read.chunks"] = stats_.chunks_read;
    snap.counters["read.nic_buffer_hits"] = stats_.nic_read_hits;
    snap.counters["journal.records"] = journal_records();

    const cache::CacheStats &cache = table_cache_->stats();
    snap.counters["cache.hits"] = cache.hits;
    snap.counters["cache.misses"] = cache.misses;
    snap.counters["cache.evictions"] = cache.evictions;
    snap.counters["cache.dirty_evictions"] = cache.dirty_evictions;
    snap.gauges["cache.hit_rate"] = cache.hit_rate();

    snap.gauges["write.dedup_rate"] = stats_.dedup_rate();
    snap.gauges["write.reduction_ratio"] =
        stats_.stored_bytes > 0
            ? static_cast<double>(stats_.raw_bytes) /
                  static_cast<double>(stats_.stored_bytes)
            : 0.0;

    if (hw_index_) {
        const hwtree::PipelineStats &tree = hw_index_->pipeline().stats();
        snap.counters["tree.searches"] = tree.searches;
        snap.counters["tree.updates"] = tree.updates;
        snap.counters["tree.crashes"] = tree.crashes;
        snap.counters["tree.replays"] = tree.replays;
        snap.gauges["tree.crash_rate"] = tree.crash_rate();
    }

    const auto ledger_rows = [](const std::vector<sim::LedgerRow> &rows) {
        std::vector<obs::SnapshotRow> out;
        out.reserve(rows.size());
        for (const sim::LedgerRow &row : rows)
            out.push_back({row.tag, row.value, row.share});
        return out;
    };
    snap.sections["host_dram_bandwidth_bytes"] =
        ledger_rows(platform_.fabric().host_memory().report());
    snap.sections["cpu_core_seconds"] =
        ledger_rows(platform_.cpu().ledger().report());

    std::vector<obs::SnapshotRow> capacity;
    const host::HostMemory &memory = platform_.memory();
    for (const auto &[component, bytes] : memory.breakdown()) {
        capacity.push_back(
            {component, static_cast<double>(bytes),
             memory.used() > 0 ? static_cast<double>(bytes) /
                                     static_cast<double>(memory.used())
                               : 0.0});
    }
    snap.sections["host_dram_capacity_bytes"] = std::move(capacity);
    return snap;
}

}  // namespace fidr::core
