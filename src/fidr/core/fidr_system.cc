#include "fidr/core/fidr_system.h"

#include "fidr/common/bytes.h"
#include "fidr/fault/failpoint.h"
#include "fidr/host/calibration.h"
#include "fidr/obs/trace.h"

namespace fidr::core {

FidrSystem::FidrSystem(const FidrConfig &config)
    : config_(config),
      platform_(config.platform),
      nic_(config.nic),
      containers_(platform_.data_ssds(), config.container_bytes,
                  config.gc.superblock_interval,
                  config.chunk_cache_bytes > 0 &&
                          config.chunk_cache_two_tier
                      ? config.chunk_cache_spill_bytes
                      : 0),
      compressor_(LzLevel::kFast),
      gc_scheduler_(config.gc)
{
    const std::size_t compress_lanes =
        config_.compress_lanes == 0 ? ThreadPool::hardware_lanes()
                                    : config_.compress_lanes;
    if (compress_lanes > 1)
        compress_pool_ = std::make_unique<ThreadPool>(compress_lanes);
    read_pipeline_ = std::make_unique<ReadPipeline>(config_.read_lanes);
    if (config_.chunk_cache_bytes > 0) {
        cache::ChunkCacheTuning tuning;
        tuning.two_tier = config_.chunk_cache_two_tier;
        tuning.admission = config_.chunk_cache_admission;
        tuning.demote_batch =
            std::max<std::size_t>(1, config_.chunk_cache_demote_batch);
        if (tuning.two_tier && containers_.spill_capacity_bytes() > 0) {
            spill_device_ = std::make_unique<SpillDevice>(
                *this, containers_.spill_ssd_index(),
                containers_.spill_base(),
                containers_.spill_capacity_bytes());
        }
        chunk_cache_ = std::make_unique<cache::ChunkReadCache>(
            config_.chunk_cache_bytes, config_.chunk_cache_shards,
            tuning, spill_device_.get());
    }
    build_cache_structures();

    // Host DRAM holds only the table cache content; payload buffering
    // moved to NIC DRAM and containers to the Compression Engine.
    FIDR_CHECK(platform_.memory()
                   .claim("table cache", table_cache_->capacity_bytes())
                   .is_ok());
    if (chunk_cache_) {
        FIDR_CHECK(platform_.memory()
                       .claim("chunk read cache",
                              chunk_cache_->capacity_bytes())
                       .is_ok());
    }

    if (config.journal_metadata) {
        // Reserve [buckets | snapshot | journal] on the table SSD.
        snapshot_base_ =
            (platform_.hash_table().table_bytes() + 4095) / 4096 * 4096;
        const std::uint64_t journal_base =
            snapshot_base_ + config.snapshot_bytes;
        journal_ = std::make_unique<tables::MetadataJournal>(
            platform_.table_ssd(), journal_base, config.journal_bytes);
    }

    // Resolve stage-histogram handles once; eager creation also makes
    // every Fig 6 stage show up in obs_snapshot() from the start.
    hist_.nic_buffer = &metrics_.histogram("write.nic_buffer");
    hist_.batch = &metrics_.histogram("write.batch");
    hist_.hash = &metrics_.histogram("write.hash");
    hist_.digest_xfer = &metrics_.histogram("write.digest_xfer");
    hist_.bucket_index = &metrics_.histogram("write.bucket_index");
    hist_.dedup_resolve = &metrics_.histogram("write.dedup_resolve");
    hist_.verdict_xfer = &metrics_.histogram("write.verdict_xfer");
    hist_.map_update = &metrics_.histogram("write.map_update");
    hist_.compress = &metrics_.histogram("write.compress");
    hist_.container_append = &metrics_.histogram("write.container_append");
    hist_.journal = &metrics_.histogram("write.journal");
    hist_.read_total = &metrics_.histogram("read.total");
    hist_.read_resolve = &metrics_.histogram("read.lba_resolve");
    hist_.read_fetch = &metrics_.histogram("read.ssd_fetch");
    hist_.read_decompress = &metrics_.histogram("read.decompress");
    hist_.read_return = &metrics_.histogram("read.nic_return");
    read_ssd_fetches_ = &metrics_.counter("read.ssd_fetches");
    read_spill_reads_ = &metrics_.counter("read.cache.spill.reads");
    // GC pause cost per step, visible from the first snapshot even
    // before any step runs (eager creation, like the stage set).
    gc_pause_ = &metrics_.histogram("gc.pause_ns");

    // Stage-occupancy histograms exist at every depth so a depth sweep
    // compares like for like (aggregate busy > wall-clock shows real
    // overlap; at depth 1 busy == wall by construction).
    pipe_hash_busy_ = &metrics_.histogram("pipeline.stage.hash.busy_ns");
    pipe_execute_busy_ =
        &metrics_.histogram("pipeline.stage.execute.busy_ns");

    if (config_.tail_exemplars > 0) {
        // Tail exemplars on every Fig 6 stage histogram: the slowest
        // recorded samples keep their request trace id, so a fat p99
        // names concrete traces.  Configured here, before any record,
        // per the quiescence contract.
        for (obs::Histogram *h :
             {hist_.nic_buffer, hist_.batch, hist_.hash,
              hist_.digest_xfer, hist_.bucket_index, hist_.dedup_resolve,
              hist_.verdict_xfer, hist_.map_update, hist_.compress,
              hist_.container_append, hist_.journal, hist_.read_total,
              hist_.read_resolve, hist_.read_fetch,
              hist_.read_decompress, hist_.read_return})
            h->set_exemplar_capacity(config_.tail_exemplars);
    }
    if (config_.in_flight_batches > 1) {
        WritePipelineConfig pipeline;
        pipeline.depth = config_.in_flight_batches;
        pipeline.hash_workers = config_.pipeline_hash_workers;
        WritePipelineMetrics sinks;
        sinks.submit_stall_ns =
            &metrics_.histogram("pipeline.submit_stall_ns");
        sinks.queue_depth = &metrics_.histogram("pipeline.queue_depth");
        sinks.batches = &metrics_.counter("pipeline.batches");
        sinks.stalls = &metrics_.counter("pipeline.stalls");
        sinks.overlap_ns = &metrics_.counter("pipeline.overlap_ns");
        pipeline_ = std::make_unique<WritePipeline>(
            pipeline, nic_,
            [this](nic::SealedBatch &batch) { stage_hash(batch); },
            [this](nic::SealedBatch &batch) {
                return execute_batch(batch);
            },
            sinks);
    }
}

Status
FidrSystem::SpillDevice::write(std::uint64_t offset,
                               std::span<const std::uint8_t> data)
{
    // Called from serial contexts only (the read plane's billing
    // stage, the commit sequencer), so the ledger writes below are
    // deterministic.  Flash first; an error means nothing was billed
    // and the cache drops the entry (spill is best-effort).
    const Status written = system_.platform_.data_ssds()
                               .at(ssd_)
                               .write(base_ + offset, data);
    if (!written.is_ok())
        return written;
    // The evicted image leaves host DRAM for the spill SSD — the
    // "cheap sequential write" the tier is built on, billed like the
    // rest of the chunk-cache traffic.
    system_.platform_.fabric().dma(
        pcie::kHostMemory, system_.platform_.data_ssd_dev(ssd_),
        data.size(), memtag::kChunkCache);
    FIDR_TPOINT(obs::Tpoint::kReadCacheSpillWrite, offset, data.size());
    return Status::ok();
}

Result<Buffer>
FidrSystem::SpillDevice::read(std::uint64_t offset,
                              std::uint64_t size) const
{
    // Raw flash read; fetch lanes call this concurrently (Ssd read
    // counters are atomic).  The read plane bills the transfer
    // serially after the lane join.
    return system_.platform_.data_ssds().at(ssd_).read(base_ + offset,
                                                       size);
}

void
FidrSystem::build_cache_structures()
{
    // (Re)build index + cache + dedup view; shared by the constructor
    // and crash recovery so both produce the same sharded layout.
    hw_shards_.clear();
    const std::size_t shards = config_.cache_shards;
    const auto make_index = [this]() -> std::unique_ptr<cache::CacheIndex> {
        if (config_.hw_cache_engine) {
            hwtree::PipelineConfig pipeline;
            pipeline.update_lanes = config_.tree_update_lanes;
            auto hw = std::make_unique<cache::HwTreeCacheIndex>(pipeline);
            hw_shards_.push_back(hw.get());
            return hw;
        }
        return std::make_unique<cache::BTreeCacheIndex>();
    };
    if (shards > 1) {
        // One sub-index per cache shard: sub s is only ever touched
        // under shard s's mutex, so single-threaded backends (the HW
        // tree, the B+ tree) stay safe without their own locking.
        std::vector<std::unique_ptr<cache::CacheIndex>> subs;
        subs.reserve(shards);
        for (std::size_t s = 0; s < shards; ++s)
            subs.push_back(make_index());
        index_ =
            std::make_unique<cache::ShardedCacheIndex>(std::move(subs));
    } else {
        index_ = make_index();
    }
    table_cache_ = std::make_unique<cache::TableCache>(
        platform_.hash_table(), *index_, platform_.cache_lines(),
        config_.eviction_policy, shards);
    dedup_ = std::make_unique<DedupIndex>(*table_cache_);
}

std::uint64_t
FidrSystem::backoff_for(unsigned attempt) const
{
    // Exponential backoff, saturated: `retry_backoff_ns << attempt`
    // is UB past 63 and silently wraps long before that for large
    // base values, so the shift is capped and the product clamps to
    // the accumulator's ceiling instead of wrapping to ~0.
    constexpr unsigned kMaxBackoffShift = 20;
    const unsigned shift =
        attempt < kMaxBackoffShift ? attempt : kMaxBackoffShift;
    if (config_.retry_backoff_ns > (UINT64_MAX >> shift))
        return UINT64_MAX;
    return config_.retry_backoff_ns << shift;
}

Status
FidrSystem::retry_transient(const std::function<Status()> &op)
{
    Status status = op();
    for (unsigned attempt = 0;
         status.code() == StatusCode::kUnavailable &&
         attempt < config_.transient_retries;
         ++attempt) {
        // Transient device error: back off (accounted, not slept) and
        // re-issue.  Non-transient errors surface immediately.
        ++fault_stats_.transient_retries;
        fault_stats_.backoff_ns += backoff_for(attempt);
        status = op();
    }
    if (status.code() == StatusCode::kUnavailable)
        ++fault_stats_.retry_exhausted;
    return status;
}

Status
FidrSystem::dma_checked(pcie::DeviceId src, pcie::DeviceId dst,
                        std::uint64_t bytes, const std::string &tag)
{
    return retry_transient([&] {
        const Result<pcie::DmaPath> moved =
            platform_.fabric().try_dma(src, dst, bytes, tag);
        return moved.is_ok() ? Status::ok() : moved.status();
    });
}

Status
FidrSystem::journal_append(const tables::JournalRecord &record)
{
    if (!journal_)
        return Status::ok();
    const obs::StageTimer timer;
    FIDR_TPOINT(obs::Tpoint::kWriteJournal, record.pbn, record.lba);
    Status appended = journal_->append(record);
    if (appended.code() == StatusCode::kOutOfSpace) {
        // Journal full: checkpoint truncates it, then retry.
        const Status checkpointed = checkpoint();
        if (!checkpointed.is_ok())
            return checkpointed;
        appended = journal_->append(record);
    }
    hist_.journal->record(timer.elapsed_ns(),
                          obs::ScopedRequest::current_trace());
    return appended;
}

Status
FidrSystem::write(Lba lba, Buffer data)
{
    if (data.size() != kChunkSize)
        return Status::invalid_argument("writes must be 4 KB chunks");

    // Fig 6a step 1: buffer in the NIC and ack immediately.  The FIDR
    // device manager's per-request CPU work is billed per chunk on the
    // commit sequencer (execute_batch) so the work ledgers have exactly
    // one writer at any pipeline depth.
    if (nic_.pending_bytes() + kChunkSize > nic_.config().buffer_capacity) {
        // Back-pressure: the NVRAM budget covers open *and* in-flight
        // sealed batches — commit everything before accepting more.
        const Status committed = drain_pipeline();
        if (!committed.is_ok())
            return committed;
        const Status sealed = process_batch();
        if (!sealed.is_ok())
            return sealed;
        const Status drained = drain_pipeline();
        if (!drained.is_ok())
            return drained;
    }
    Status buffered = Status::ok();
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteNicBuffer, lba,
                        kChunkSize);
        buffered = nic_.buffer_write(lba, std::move(data));
        hist_.nic_buffer->record(timer.elapsed_ns());
    }
    if (!buffered.is_ok())
        return buffered;
    ++stats_.chunks_written;
    stats_.raw_bytes += kChunkSize;

    if (nic_.batch_ready())
        return process_batch();
    return Status::ok();
}

Status
FidrSystem::bill_container_seals()
{
    // Sealed containers move Compression Engine -> data SSD under the
    // shared switch: peer-to-peer, no host DRAM.  Only the metadata
    // (sizes, PCIe address, destination) touches the host (step 8-9).
    while (sealed_billed_ < containers_.sealed_containers()) {
        const std::size_t ssd =
            sealed_billed_ % platform_.data_ssd_dev_count();
        const Status payload = dma_checked(
            platform_.compression_engine(), platform_.data_ssd_dev(ssd),
            config_.container_bytes, memtag::kDataSsd);
        if (!payload.is_ok())
            return payload;
        const Status meta = dma_checked(platform_.compression_engine(),
                                        pcie::kHostMemory, 64,
                                        memtag::kFpga);
        if (!meta.is_ok())
            return meta;
        ++sealed_billed_;
    }
    return Status::ok();
}

Status
FidrSystem::process_batch()
{
    nic::SealedBatch *batch = nic_.seal_batch();
    if (batch == nullptr)
        return Status::ok();

    // The sealed batch is one client-visible request: give it a causal
    // id here, at the seal, and let it ride in the batch — hash
    // workers and the commit sequencer restore the context from there.
    if (batch->trace_id == 0)
        batch->trace_id =
            obs::RequestContext::next_id_for_node(config_.node_index);
    batch->stream_tag = stream_tag_;
    obs::ScopedRequest request(batch->trace_id, batch->stream_tag);

    if (!pipeline_) {
        // Depth 1: the whole Fig 6a flow runs synchronously on the
        // caller, exactly the pre-pipeline behaviour.
        stage_hash(*batch);
        const Status done = execute_batch(*batch);
        if (!done.is_ok()) {
            // A failed batch stays buffered (NVRAM) and retries at the
            // next flush, after the fault clears.
            nic_.unseal_all();
        }
        return done;
    }
    if (pipeline_->failed()) {
        // An earlier batch already failed asynchronously on the commit
        // sequencer.  This write was acked at NVRAM admission exactly
        // like every non-sealing write, so don't fail it on the
        // sequencer's behalf: the batch stays sealed next to the
        // aborted ones (a power cut replays all of them from NVRAM)
        // and the next flush surfaces the sticky error and retries.
        // Surfacing here would make the ack contract depend on a race
        // between the caller's seal points and the executor.
        return Status::ok();
    }
    // Submit under the batch's context: admission stalls trace as this
    // request's queueing time.
    const Status submitted = pipeline_->submit(batch->epoch);
    if (!submitted.is_ok() && pipeline_->failed()) {
        // Same race, lost inside submit's admission wait: the executor
        // went sticky-failed while this batch queued.  It stays sealed
        // for the flush-time retry; the ack stands.
        return Status::ok();
    }
    return submitted;
}

Status
FidrSystem::drain_pipeline()
{
    if (!pipeline_)
        return Status::ok();
    pipeline_->quiesce();
    if (pipeline_->failed())
        return surface_pipeline_error();
    return Status::ok();
}

Status
FidrSystem::surface_pipeline_error()
{
    pipeline_->quiesce();
    const Status error = pipeline_->take_error();
    // Failed/aborted batches return to the open buffer (their chunks
    // keep computed digests) and retry at the next flush.
    nic_.unseal_all();
    return error;
}

void
FidrSystem::stage_hash(nic::SealedBatch &batch)
{
    // Step 2: in-NIC hashing; only digests cross to the host.  The one
    // stage safe off the commit sequencer: pure per-batch data, no
    // shared-state reads.
    const obs::StageTimer timer;
    FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteHash, batch.epoch,
                    batch.chunks.size());
    nic_.hash_sealed(batch);
    const std::uint64_t elapsed = timer.elapsed_ns();
    hist_.hash->record(elapsed, obs::ScopedRequest::current_trace());
    pipe_hash_busy_->record(elapsed);
}

Status
FidrSystem::stage_digest_transfer(const nic::SealedBatch &batch)
{
    const std::size_t n = batch.chunks.size();
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteDigestXfer, batch.epoch,
                        n * Digest::kSize);
        const Status moved = dma_checked(platform_.nic(), pcie::kHostMemory,
                                         n * Digest::kSize,
                                         memtag::kNicHost);
        hist_.digest_xfer->record(timer.elapsed_ns(),
                                  obs::ScopedRequest::current_trace());
        if (!moved.is_ok())
            return moved;
    }

    // Step 3: bucket indexes to the Cache HW-Engine (8 B per chunk —
    // the "negligible PCIe bandwidth" of Sec 5.6).
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteBucketIndex, batch.epoch,
                        n * 8);
        const Status moved =
            dma_checked(pcie::kHostMemory, platform_.cache_engine(), n * 8,
                        memtag::kTableCache);
        hist_.bucket_index->record(timer.elapsed_ns(),
                                   obs::ScopedRequest::current_trace());
        if (!moved.is_ok())
            return moved;
    }
    return Status::ok();
}

Status
FidrSystem::stage_resolve(const nic::SealedBatch &batch, BatchPlan &plan)
{
    // Steps 4-5: resolve cache lines and scan bucket content on host.
    const std::size_t n = batch.chunks.size();
    plan.verdicts.assign(n, ChunkVerdict::kUnique);
    plan.pbns.assign(n, kInvalidPbn);
    const Pbn batch_first_pbn = next_pbn_;
    const obs::StageTimer timer;
    FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteDedupResolve, batch.epoch,
                    n);
    for (std::size_t i = 0; i < n; ++i) {
        const Digest &digest = batch.chunks[i].digest;
        Result<DedupLookup> looked = dedup_->lookup_or_insert(
            digest, next_pbn_, high_priority_);
        if (!looked.is_ok())
            return looked.status();
        DedupLookup lookup = looked.value();

        if (lookup.verdict == ChunkVerdict::kDuplicate &&
            lookup.pbn < batch_first_pbn &&
            (lba_table_.refcount(lookup.pbn) == 0 ||
             !lba_table_.location_of(lookup.pbn))) {
            // Dangling Hash-PBN entry: its bucket reached the table
            // SSD before a crash, but the chunk's data never made
            // it into a container (or the PBN was since reclaimed
            // and the removal failed).  A refcount-0 PBN that still
            // has a location is a retirement a journal fault
            // deferred: mapping new LBAs to it would revive a chunk
            // the space ledger (and, post-recovery, GC) already
            // counts dead, so finish the retirement instead — this
            // is the retry the degraded path promises.  Either way,
            // re-point the digest at a fresh PBN and store the
            // chunk as unique.
            if (lba_table_.refcount(lookup.pbn) == 0 &&
                lba_table_.location_of(lookup.pbn))
                retire_if_dead(lookup.pbn);
            Result<DedupLookup> removed = dedup_->remove(digest);
            if (!removed.is_ok())
                return removed.status();
            Result<DedupLookup> reinserted = dedup_->lookup_or_insert(
                digest, next_pbn_, high_priority_);
            if (!reinserted.is_ok())
                return reinserted.status();
            lookup = reinserted.value();
            ++fault_stats_.dangling_repairs;
        }

        bill_dedup_lookup(lookup);

        plan.verdicts[i] = lookup.verdict;
        plan.pbns[i] = lookup.pbn;
        if (lookup.verdict == ChunkVerdict::kUnique) {
            plan.unique_pbns.push_back(lookup.pbn);
            plan.unique_digests.push_back(digest);
            ++next_pbn_;
        }
    }
    hist_.dedup_resolve->record(timer.elapsed_ns(),
                                obs::ScopedRequest::current_trace());
    return Status::ok();
}

Status
FidrSystem::stage_schedule(const nic::SealedBatch &batch, BatchPlan &plan)
{
    const std::size_t n = batch.chunks.size();

    // Step 6: verdicts (and destination metadata) back to the NIC.
    {
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteVerdictXfer, batch.epoch,
                        n * 2);
        const Status moved = dma_checked(pcie::kHostMemory,
                                         platform_.nic(), n * 2,
                                         memtag::kNicHost);
        hist_.verdict_xfer->record(timer.elapsed_ns(),
                                   obs::ScopedRequest::current_trace());
        if (!moved.is_ok())
            return moved;
    }

    // Step 7 (crash-consistent handoff): the compression scheduler
    // exposes the unique chunks while the battery-backed NIC buffer
    // keeps the whole batch; it is released only at the commit point,
    // after every chunk's metadata is applied and journaled, so a
    // failure anywhere in between leaves the acknowledged data
    // replayable instead of lost.
    Result<std::vector<const nic::BufferedChunk *>> scheduled =
        nic_.peek_unique_sealed(batch, plan.verdicts);
    if (!scheduled.is_ok())
        return scheduled.status();
    plan.unique = scheduled.take();
    FIDR_CHECK(plan.unique.size() == plan.unique_pbns.size());

    std::uint64_t unique_bytes = 0;
    for (const nic::BufferedChunk *chunk : plan.unique)
        unique_bytes += chunk->data.size();
    if (unique_bytes > 0) {
        const Status moved =
            dma_checked(platform_.nic(), platform_.compression_engine(),
                        unique_bytes, memtag::kNicHost);
        if (!moved.is_ok())
            return moved;
    }
    return Status::ok();
}

Status
FidrSystem::stage_compress(const nic::SealedBatch &batch, BatchPlan &plan)
{
    // Step 8: compression in engine memory.  The engine's LZ cores
    // compress disjoint chunks concurrently; engine counters, ledgers
    // and journaling stay on the commit sequencer after the join so
    // accounting is lane-count-invariant.
    std::uint64_t unique_bytes = 0;
    for (const nic::BufferedChunk *chunk : plan.unique)
        unique_bytes += chunk->data.size();
    plan.compressed.resize(plan.unique.size());
    const auto compress_range = [this, &plan](std::size_t begin,
                                              std::size_t end) {
        // One span per LZ lane shard (worker-thread trace ring).
        FIDR_TRACE_SPAN(lane_span, obs::Tpoint::kWriteCompressLane,
                        begin, end - begin);
        for (std::size_t j = begin; j < end; ++j) {
            plan.compressed[j] =
                compressor_.compress_stateless(plan.unique[j]->data);
        }
    };
    const obs::StageTimer timer;
    FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteCompress, batch.epoch,
                    unique_bytes);
    if (compress_pool_)
        compress_pool_->parallel_for(plan.unique.size(), compress_range);
    else
        compress_range(0, plan.unique.size());
    hist_.compress->record(timer.elapsed_ns(),
                           obs::ScopedRequest::current_trace());
    return Status::ok();
}

Status
FidrSystem::stage_store(const nic::SealedBatch &batch, BatchPlan &plan)
{
    // Steps 9-10: container packing; sealed containers DMA straight to
    // the data SSDs.
    const obs::StageTimer timer;
    FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteContainerAppend,
                    batch.epoch, plan.unique.size());
    for (std::size_t j = 0; j < plan.unique.size(); ++j) {
        const accel::CompressedChunk &compressed = plan.compressed[j];
        compressor_.record(compressed);
        Result<tables::ChunkLocation> placed =
            containers_.append(compressed.data);
        if (!placed.is_ok())
            return placed.status();
        stats_.stored_bytes += compressed.data.size();
        // Journal the chunk's location *before* the in-DRAM update, so
        // the durable log is never behind the table it protects.  If
        // the append fails here the stored bytes leak as dead container
        // space, but the mapping stays consistent and a retried batch
        // re-stores the chunk through the dangling-entry repair in
        // stage_resolve.
        if (journal_) {
            tables::JournalRecord rec;
            rec.op = tables::JournalOp::kSetLocation;
            rec.pbn = plan.unique_pbns[j];
            rec.location = placed.value();
            const Status logged = journal_append(rec);
            if (!logged.is_ok())
                return logged;
        }
        lba_table_.set_location(plan.unique_pbns[j], placed.value());
        space_.on_store(plan.unique_pbns[j], plan.unique_digests[j],
                        placed.value());
        const Status billed = bill_container_seals();
        if (!billed.is_ok())
            return billed;
    }
    hist_.container_append->record(timer.elapsed_ns(),
                                   obs::ScopedRequest::current_trace());
    return Status::ok();
}

Status
FidrSystem::stage_apply(const nic::SealedBatch &batch, BatchPlan &plan)
{
    // LBA-PBA mappings are applied only after every unique chunk of
    // the batch is physically stored (data-before-metadata): a crash
    // can leave stored-but-unmapped chunks (dead space), never mapped
    // LBAs whose data is gone.  Duplicates map to the matched PBN,
    // uniques to their freshly assigned PBN.  Overwritten chunks are
    // retired only at commit: a later duplicate in the same batch may
    // re-reference a PBN whose refcount transiently hit zero.
    const std::size_t n = batch.chunks.size();
    const obs::StageTimer timer;
    FIDR_TRACE_SPAN(span, obs::Tpoint::kWriteMapUpdate, batch.epoch, n);
    for (std::size_t i = 0; i < n; ++i) {
        const Lba lba = batch.chunks[i].lba;
        if (journal_) {
            tables::JournalRecord rec;
            rec.op = tables::JournalOp::kMapLba;
            rec.lba = lba;
            rec.pbn = plan.pbns[i];
            const Status logged = journal_append(rec);
            if (!logged.is_ok())
                return logged;
        }
        const auto prev = lba_table_.map_lba(lba, plan.pbns[i]);
        if (prev && *prev != plan.pbns[i])
            plan.retire_candidates.push_back(*prev);
    }
    hist_.map_update->record(timer.elapsed_ns(),
                             obs::ScopedRequest::current_trace());
    return Status::ok();
}

void
FidrSystem::stage_commit(nic::SealedBatch &batch, const BatchPlan &plan)
{
    // Commit point: every chunk of the batch is stored, journaled and
    // mapped — the NIC may finally release the acknowledged payloads.
    nic_.drop_sealed(batch.epoch);

    // Verdict statistics are deferred to the commit so an aborted and
    // retried batch is not counted twice.
    for (const ChunkVerdict verdict : plan.verdicts) {
        if (verdict == ChunkVerdict::kUnique)
            ++stats_.unique_chunks;
        else
            ++stats_.duplicates;
    }

    for (const Pbn pbn : plan.retire_candidates)
        retire_if_dead(pbn);
}

Status
FidrSystem::execute_batch(nic::SealedBatch &batch)
{
    const std::size_t n = batch.chunks.size();
    const obs::StageTimer batch_timer;
    FIDR_TRACE_SPAN(exec_span, obs::Tpoint::kPipelineExecute, batch.epoch,
                    n);
    FIDR_TRACE_SPAN(batch_span, obs::Tpoint::kWriteBatch, batch.epoch, n);

    // Fig 6a step 1 accounting: the device manager's per-request CPU
    // work, billed here (one add per chunk, in chunk order) instead of
    // in write() so the ledgers have a single writer at any depth and
    // totals stay bit-identical to the per-write billing they replace.
    for (std::size_t i = 0; i < n; ++i) {
        platform_.cpu().bill_us(cputag::kOrchestration,
                                calib::kCpuOrchestrationPerChunk);
    }

    BatchPlan plan;
    Status status = stage_digest_transfer(batch);
    if (status.is_ok())
        status = stage_resolve(batch, plan);
    if (status.is_ok())
        status = stage_schedule(batch, plan);
    if (status.is_ok())
        status = stage_compress(batch, plan);
    if (status.is_ok())
        status = stage_store(batch, plan);
    if (status.is_ok())
        status = stage_apply(batch, plan);
    if (status.is_ok()) {
        stage_commit(batch, plan);
        hist_.batch->record(batch_timer.elapsed_ns(),
                            obs::ScopedRequest::current_trace());
        // Incremental GC rides the commit sequencer: one budgeted step
        // after each committed batch, so reclamation interleaves with
        // the write plane at batch granularity instead of stopping the
        // world.  Step errors never fail the (already committed) batch.
        if (config_.gc.auto_run)
            run_auto_gc();
    }
    pipe_execute_busy_->record(batch_timer.elapsed_ns());
    return status;
}

void
FidrSystem::retire_if_dead(Pbn pbn)
{
    if (lba_table_.refcount(pbn) != 0)
        return;
    if (journal_) {
        tables::JournalRecord rec;
        rec.op = tables::JournalOp::kRetirePbn;
        rec.pbn = pbn;
        if (!journal_append(rec).is_ok()) {
            // Degraded mode: without the durable record the reclaim
            // must not happen — a replay would resurrect the mapping
            // to space we freed.  Keeping the dead PBN around is only
            // a space leak; a later overwrite retries the retirement.
            ++fault_stats_.retire_deferred;
            return;
        }
    }
    // The physical chunk is dead: its decompressed image must leave
    // the read cache before the location mapping disappears, or a new
    // chunk written into the reclaimed slot would read stale bytes.
    if (chunk_cache_) {
        if (const auto location = lba_table_.location_of(pbn)) {
            chunk_cache_->invalidate(
                {location->container_id, location->offset_units});
        }
    }
    lba_table_.reclaim(pbn);
    if (const auto digest = space_.on_dead(pbn)) {
        // Drop the Hash-PBN entry so the content, if it recurs, is
        // stored fresh rather than mapped to a reclaimed chunk.  A
        // failed removal (injected cache fault) leaves a dangling
        // entry, which the dedup-resolve repair re-points on the next
        // occurrence of this digest.
        (void)dedup_->remove(*digest);
    }
}

void
FidrSystem::bill_dedup_lookup(const DedupLookup &lookup)
{
    pcie::Fabric &fabric = platform_.fabric();
    host::HostCpu &cpu = platform_.cpu();
    if (!config_.hw_cache_engine) {
        // NIC+P2P-only configuration: the index stays a
        // software B+ tree, so its CPU cost remains (Fig 14
        // config b).
        cpu.bill_us(cputag::kTreeIndex,
                    lookup.buckets_probed *
                            calib::kCpuTreeLookupPerChunk +
                        lookup.cache_misses *
                            calib::kCpuTreeUpdatePerMiss);
        cpu.bill_us(cputag::kTableSsd,
                    lookup.cache_misses *
                        calib::kCpuTableSsdPerMiss);
    }
    cpu.bill_us(cputag::kScan, calib::kCpuBucketScanPerChunk);
    cpu.bill_us(cputag::kLru, calib::kCpuLruPerChunk);
    cpu.bill_us(cputag::kTableMisc, calib::kCpuTableMiscPerChunk);

    fabric.host_memory().add(
        memtag::kTableCache,
        lookup.buckets_probed * calib::kBucketScanFraction *
            static_cast<double>(kBucketSize));
    for (unsigned m = 0; m < lookup.cache_misses; ++m) {
        fabric.dma(platform_.table_ssd_dev(), pcie::kHostMemory,
                   kBucketSize, memtag::kTableCache);
    }
    for (unsigned f = 0; f < lookup.dirty_evictions; ++f) {
        fabric.dma(pcie::kHostMemory, platform_.table_ssd_dev(),
                   kBucketSize, memtag::kTableCache);
    }
}

Result<std::optional<Pbn>>
FidrSystem::resolve_committed_digest(const Digest &digest)
{
    Result<DedupLookup> looked = dedup_->lookup(digest);
    if (!looked.is_ok())
        return looked.status();
    const DedupLookup lookup = looked.value();
    bill_dedup_lookup(lookup);
    if (lookup.verdict != ChunkVerdict::kDuplicate)
        return std::optional<Pbn>{};
    // A dangling or retirement-deferred entry is not a committed
    // readable chunk; the caller falls back to a full write, whose
    // resolve stage repairs the entry.
    if (lba_table_.refcount(lookup.pbn) == 0 ||
        !lba_table_.location_of(lookup.pbn))
        return std::optional<Pbn>{};
    return std::optional<Pbn>{lookup.pbn};
}

Result<bool>
FidrSystem::probe_digest(const Digest &digest)
{
    // Commit NIC-buffered writes first: the probe answers for durable
    // state only, so a just-acknowledged duplicate is still a hit.
    const Status flushed = flush();
    if (!flushed.is_ok())
        return flushed;
    Result<std::optional<Pbn>> resolved = resolve_committed_digest(digest);
    if (!resolved.is_ok())
        return resolved.status();
    return resolved.value().has_value();
}

Status
FidrSystem::write_ref(Lba lba, const Digest &digest)
{
    // An in-flight batch may hold an older write of this LBA whose
    // commit would override the mapping made below; barrier first.
    // This is cheap when the pipeline is idle and leaves the open NIC
    // batch intact, so cluster duplicate suppression does not break
    // the node's write batching.
    const Status drained = drain_pipeline();
    if (!drained.is_ok())
        return drained;
    // A NIC-buffered write of this LBA would commit after (and undo)
    // the reference; bounce so the router's full-write fallback
    // replaces the buffered chunk instead (newest-write-wins).
    if (nic_.lookup_buffered(lba))
        return Status::not_found("LBA has a buffered write pending");
    Result<std::optional<Pbn>> resolved = resolve_committed_digest(digest);
    if (!resolved.is_ok())
        return resolved.status();
    if (!resolved.value())
        return Status::not_found("digest is not a committed chunk here");
    const Pbn pbn = *resolved.value();

    // Mirror stage_apply/stage_commit for one duplicate chunk: journal
    // before the in-memory map, count at commit, retire a displaced
    // previous mapping.
    if (journal_) {
        tables::JournalRecord rec;
        rec.op = tables::JournalOp::kMapLba;
        rec.lba = lba;
        rec.pbn = pbn;
        const Status logged = journal_append(rec);
        if (!logged.is_ok())
            return logged;
    }
    const auto prev = lba_table_.map_lba(lba, pbn);
    ++stats_.chunks_written;
    stats_.raw_bytes += kChunkSize;
    ++stats_.duplicates;
    if (prev && *prev != pbn)
        retire_if_dead(*prev);
    return Status::ok();
}

Status
FidrSystem::unmap(Lba lba)
{
    // A NIC-buffered (acknowledged) write for this LBA must commit
    // before the mapping is dropped, or replaying it would resurrect
    // the mapping the router just moved to another node.
    const Status flushed = flush();
    if (!flushed.is_ok())
        return flushed;
    if (!lba_table_.pbn_of(lba))
        return Status::ok();
    if (journal_) {
        tables::JournalRecord rec;
        rec.op = tables::JournalOp::kUnmapLba;
        rec.lba = lba;
        const Status logged = journal_append(rec);
        if (!logged.is_ok())
            return logged;
    }
    const auto prev = lba_table_.unmap_lba(lba);
    if (prev)
        retire_if_dead(*prev);
    return Status::ok();
}

Result<FidrSystem::ScrubReport>
FidrSystem::scrub()
{
    const Status drained = drain_pipeline();
    if (!drained.is_ok())
        return drained;
    ScrubReport report;
    for (const auto &[container, space] : space_.containers()) {
        for (const Pbn pbn : space_.live_pbns(container)) {
            // Chunks adopted by crash recovery carry no recorded
            // digest (the ledger is rebuilt from the LBA-PBA table);
            // scrub then recomputes and checks only self-consistency.
            const auto digest = space_.digest_of(pbn);
            const auto location = lba_table_.location_of(pbn);
            if (!location) {
                ++report.mapping_errors;
                continue;
            }
            Result<Buffer> compressed = containers_.read(*location);
            if (!compressed.is_ok()) {
                ++report.mapping_errors;
                continue;
            }
            Result<Buffer> raw = decomp_.decompress(compressed.value());
            ++report.chunks_verified;
            if (!raw.is_ok()) {
                ++report.digest_mismatches;
                continue;
            }
            const Digest computed = Sha256::hash(raw.value());
            if (digest && computed != *digest) {
                ++report.digest_mismatches;
                continue;
            }
            // The Hash-PBN table must still resolve this content to
            // this physical block.
            Result<DedupLookup> looked = dedup_->lookup(computed);
            if (!looked.is_ok())
                return looked.status();
            if (looked.value().verdict != ChunkVerdict::kDuplicate ||
                looked.value().pbn != pbn) {
                ++report.mapping_errors;
            }
        }
    }
    return report;
}

Status
FidrSystem::checkpoint()
{
    if (!journal_)
        return Status::invalid_argument("journaling is not enabled");
    const Buffer image = lba_table_.serialize();
    if (image.size() + 8 > config_.snapshot_bytes)
        return Status::out_of_space("snapshot region too small");
    Buffer framed(8);
    store_le(framed.data(), image.size(), 8);
    framed.insert(framed.end(), image.begin(), image.end());
    const Status written = retry_transient([&] {
        const Status injected = fault::as_status(
            FIDR_FAULT_EVAL(fault::Site::kSnapshotWrite),
            fault::Site::kSnapshotWrite);
        if (!injected.is_ok())
            return injected;
        return platform_.table_ssd().write(snapshot_base_, framed);
    });
    if (!written.is_ok()) {
        // The journal is only truncated after the snapshot is durable,
        // so a failed checkpoint loses nothing.
        return written;
    }
    journal_->reset();
    return journal_->log_checkpoint();
}

Status
FidrSystem::simulate_crash_and_recover()
{
    if (!journal_)
        return Status::invalid_argument("journaling is not enabled");

    // A power cut stops the pipeline wherever it is: quiesce so no
    // stage touches the structures mid-rebuild, discard any sticky
    // error (the crash supersedes it) and return in-flight sealed
    // batches to the open NVRAM buffer — unacked work is lost, but
    // every acknowledged chunk is either journaled or still buffered
    // and re-enters the pipeline on the next flush.
    if (pipeline_) {
        pipeline_->quiesce();
        (void)pipeline_->take_error();
    }
    nic_.unseal_all();

    // Crash: everything in host DRAM is gone — the LBA-PBA table and
    // the table cache, including dirty Hash-PBN lines that never made
    // it back to the table SSD.  Entries whose data the crash orphaned
    // are repaired lazily at dedup-resolve time (dangling_repairs).
    lba_table_ = tables::LbaPbaTable();
    build_cache_structures();
    if (chunk_cache_)
        chunk_cache_->clear();
    // The host-DRAM capacity claim is unchanged: the rebuilt caches
    // have exactly the footprint the constructor already accounted.

    // Restart: load the snapshot (if one was taken)...
    FIDR_FAULT_RETURN_IF(fault::Site::kSnapshotRead);
    Result<Buffer> header = platform_.table_ssd().read(snapshot_base_, 8);
    if (!header.is_ok())
        return header.status();
    const std::uint64_t image_len = load_le(header.value().data(), 8);
    if (image_len > 0) {
        Result<Buffer> image = platform_.table_ssd().read(
            snapshot_base_ + 8, image_len);
        if (!image.is_ok())
            return image.status();
        Result<tables::LbaPbaTable> loaded =
            tables::LbaPbaTable::deserialize(image.value());
        if (!loaded.is_ok())
            return loaded.status();
        lba_table_ = loaded.take();
    }

    // ...then replay the journal tail on top, adopting the on-device
    // head/epoch so post-recovery appends continue the recovered log.
    Result<std::vector<tables::JournalRecord>> records =
        journal_->recover();
    if (!records.is_ok())
        return records.status();
    tables::MetadataJournal::apply(records.value(), lba_table_);

    // Container log: rebuild the directory from the on-device layout
    // (superblock + slot-header scan) instead of trusting the
    // pre-crash in-memory maps.  The open container's buffer is
    // battery-backed engine memory and survives in place.
    const Status log = containers_.recover();
    if (!log.is_ok())
        return log;

    // Rebuild the live/dead space ledger from the recovered mapping
    // table.  Digests did not survive (they live in Hash-PBN cache
    // lines that died with the host), so records are adopted
    // digest-less; on_dead then skips the dedup removal and the
    // dangling entry is repaired lazily at dedup-resolve time.
    space_ = SpaceTracker();
    std::vector<Pbn> dead;
    lba_table_.for_each_pbn(
        [&](Pbn pbn, std::uint32_t refcount,
            const std::optional<tables::ChunkLocation> &location) {
            if (!location)
                return;
            space_.on_store(pbn, std::nullopt, *location);
            if (refcount == 0)
                dead.push_back(pbn);  // Stored, no longer referenced.
        });
    for (const Pbn pbn : dead)
        (void)space_.on_dead(pbn);
    // Payload whose PBNs were fully retired before the crash (their
    // kRetirePbn records replayed) is dead weight the table no longer
    // names: seed the gap between each container's sealed payload and
    // the bytes the rebuilt ledger accounts, so GC still sees it.
    for (std::uint64_t id = 0; id < containers_.containers(); ++id) {
        const auto info = containers_.info_of(id);
        if (!info || info->discarded)
            continue;
        const auto &ledger = space_.containers();
        const auto it = ledger.find(id);
        const std::uint64_t accounted =
            it == ledger.end()
                ? 0
                : it->second.live_bytes + it->second.dead_bytes;
        if (info->payload_bytes > accounted)
            space_.seed_dead(id, info->payload_bytes - accounted);
    }
    // Any in-progress evacuation restarts from scratch.
    gc_victim_.reset();
    return Status::ok();
}

Status
FidrSystem::validate() const
{
    const Status mapping = lba_table_.validate();
    if (!mapping.is_ok())
        return mapping;
    return table_cache_->validate();
}

Status
FidrSystem::gc_relocate(Pbn pbn)
{
    FIDR_FAULT_RETURN_IF(fault::Site::kGcRelocate);
    const auto location = lba_table_.location_of(pbn);
    if (!location)
        return Status::internal("GC: live PBN without a location");
    const tables::ChunkLocation old_loc = *location;
    Result<Buffer> data = containers_.read(old_loc);
    if (!data.is_ok())
        return data.status();

    // Relocation rides the normal write billing path: the Compression
    // Engine pulls the survivor from the old container's SSD (with
    // degraded-mode retry) before repacking it into the open one, and
    // the eventual seal is billed by bill_container_seals below.
    const Status pulled = dma_checked(
        platform_.data_ssd_dev(
            containers_.ssd_index_of(old_loc.container_id)),
        platform_.compression_engine(), data.value().size(),
        memtag::kDataSsd);
    if (!pulled.is_ok())
        return pulled;
    Result<tables::ChunkLocation> placed = containers_.append(data.value());
    if (!placed.is_ok())
        return placed.status();

    // Journal before the DRAM update, exactly like stage_store: a
    // crash between the two replays the new location (or never saw
    // it), and either copy is durable — the new one in battery-backed
    // open-buffer memory, the old one in a slot not yet trimmed.
    if (journal_) {
        tables::JournalRecord rec;
        rec.op = tables::JournalOp::kSetLocation;
        rec.pbn = pbn;
        rec.location = placed.value();
        const Status logged = journal_append(rec);
        if (!logged.is_ok())
            return logged;
    }
    const std::optional<Digest> digest = space_.digest_of(pbn);
    lba_table_.set_location(pbn, placed.value());
    space_.on_store(pbn, digest, placed.value());

    // The PBN kept its identity but the physical key moved: re-key the
    // cached decompressed image instead of dropping the whole
    // container's worth of cache (the compact()-era behaviour, which
    // made every GC pass a read-latency cliff).
    if (chunk_cache_ &&
        chunk_cache_->rekey(
            {old_loc.container_id, old_loc.offset_units},
            {placed.value().container_id, placed.value().offset_units})) {
        ++gc_stats_.cache_rekeys;
    }
    const Status billed = bill_container_seals();
    if (!billed.is_ok())
        return billed;
    ++gc_stats_.relocated_chunks;
    gc_stats_.relocated_bytes += data.value().size();
    FIDR_TPOINT(obs::Tpoint::kGcRelocate, pbn, data.value().size());
    return Status::ok();
}

Status
FidrSystem::gc_step_impl(const GcScheduler &sched, std::uint64_t budget)
{
    // Keep evacuating the current victim across steps; forget it if a
    // crash/recovery or a completed discard invalidated it.
    if (gc_victim_) {
        const auto info = containers_.info_of(*gc_victim_);
        if (!info || info->discarded || !info->sealed)
            gc_victim_.reset();
    }
    if (!gc_victim_) {
        gc_victim_ = sched.select_victim(
            space_, containers_.free_slot_fraction(),
            [this](std::uint64_t id) {
                const auto info = containers_.info_of(id);
                return info && info->sealed && !info->discarded;
            });
    }
    if (!gc_victim_) {
        ++gc_stats_.idle_steps;
        return Status::ok();
    }
    const std::uint64_t victim = *gc_victim_;
    ++gc_stats_.steps;
    // Concurrency witness: other write batches in flight while this
    // step runs on the commit sequencer (in_flight counts this batch).
    if (pipeline_ && pipeline_->in_flight() > 1)
        ++gc_stats_.concurrent_steps;

    const obs::StageTimer timer;
    FIDR_TRACE_SPAN(span, obs::Tpoint::kGcStep, victim, budget);
    Status status = Status::ok();
    bool evacuated = true;
    const std::uint64_t start_bytes = gc_stats_.relocated_bytes;
    for (const Pbn pbn : space_.live_pbns(victim)) {
        if (budget != 0 &&
            gc_stats_.relocated_bytes - start_bytes >= budget) {
            evacuated = false;  // Budget spent; resume next step.
            break;
        }
        status = gc_relocate(pbn);
        if (!status.is_ok())
            break;
    }
    if (status.is_ok() && evacuated) {
        FIDR_CHECK(space_.container_live_bytes(victim) == 0);
        Result<std::uint64_t> released = containers_.discard(victim);
        if (released.is_ok()) {
            space_.release_container(victim);
            // Backstop for images cached for chunks that died while
            // cached: survivors were re-keyed out one by one, so this
            // only sweeps entries already semantically dead.
            if (chunk_cache_)
                chunk_cache_->invalidate_container(victim);
            ++gc_stats_.containers_reclaimed;
            gc_stats_.reclaimed_bytes += released.value();
            gc_victim_.reset();
        } else {
            status = released.status();
        }
    }
    gc_pause_->record(timer.elapsed_ns());
    return status;
}

Status
FidrSystem::gc_step()
{
    return gc_step_impl(gc_scheduler_, config_.gc.step_budget_bytes);
}

void
FidrSystem::run_auto_gc()
{
    // One budgeted step per committed batch in steady state.  At or
    // below the reserve watermark, keep stepping (bounded, so one
    // commit can never stall indefinitely) until the log climbs back
    // above it or nothing is left to collect.  Errors are absorbed
    // into failed_steps: the batch this rides on already committed.
    constexpr int kMaxStepsPerCommit = 64;
    for (int i = 0; i < kMaxStepsPerCommit; ++i) {
        const std::uint64_t idle_before = gc_stats_.idle_steps;
        const Status status =
            gc_step_impl(gc_scheduler_, config_.gc.step_budget_bytes);
        if (!status.is_ok()) {
            ++gc_stats_.failed_steps;
            return;
        }
        if (gc_stats_.idle_steps != idle_before)
            return;  // Nothing eligible.
        if (!gc_scheduler_.under_pressure(
                containers_.free_slot_fraction()))
            return;
    }
}

Result<std::uint64_t>
FidrSystem::run_gc(double min_dead_fraction)
{
    const Status drained = drain_pipeline();
    if (!drained.is_ok())
        return drained;
    // Run to completion at the caller's threshold: unbudgeted steps
    // (whole victim per step) until selection comes up empty.
    GcConfig config = config_.gc;
    config.dead_fraction = min_dead_fraction;
    const GcScheduler scheduler(config);
    const std::uint64_t start_bytes = gc_stats_.reclaimed_bytes;
    for (;;) {
        const std::uint64_t idle_before = gc_stats_.idle_steps;
        const Status stepped = gc_step_impl(scheduler, 0);
        if (!stepped.is_ok())
            return stepped;
        if (gc_stats_.idle_steps != idle_before)
            break;
    }
    return gc_stats_.reclaimed_bytes - start_bytes;
}

Result<FidrSystem::FsckReport>
FidrSystem::fsck()
{
    const Status drained = drain_pipeline();
    if (!drained.is_ok())
        return drained;
    FsckReport report;
    report.superblock_seq = containers_.superblock_seq();
    if (report.superblock_seq < last_fsck_superblock_seq_)
        ++report.superblock_regressions;
    else
        last_fsck_superblock_seq_ = report.superblock_seq;

    if (!lba_table_.validate().is_ok())
        ++report.refcount_errors;

    // Reachability: every PBN any LBA references must resolve to a
    // readable chunk in a live (non-discarded) container.  Along the
    // way, sum the table's view of live payload per container for the
    // ledger cross-check below.
    std::unordered_map<std::uint64_t, std::uint64_t> table_live;
    lba_table_.for_each_pbn(
        [&](Pbn pbn, std::uint32_t refcount,
            const std::optional<tables::ChunkLocation> &location) {
            (void)pbn;
            if (refcount == 0)
                return;
            ++report.live_pbns_checked;
            if (!location) {
                ++report.missing_locations;
                return;
            }
            table_live[location->container_id] +=
                location->compressed_size;
            const auto info = containers_.info_of(location->container_id);
            if (!info || info->discarded ||
                !containers_.read(*location).is_ok()) {
                ++report.unreachable_chunks;
            }
        });

    // Space ledger vs mapping table, per container: ledger live bytes
    // must equal the table's located live payload, and live + dead
    // must never exceed the payload actually appended there.
    for (const auto &[container, usage] : space_.containers()) {
        const auto it = table_live.find(container);
        const std::uint64_t expect =
            it == table_live.end() ? 0 : it->second;
        if (usage.live_bytes != expect)
            ++report.space_mismatches;
        const auto info = containers_.info_of(container);
        if (!info || info->discarded ||
            usage.live_bytes + usage.dead_bytes > info->payload_bytes)
            ++report.space_mismatches;
    }
    for (const auto &[container, bytes] : table_live) {
        if (bytes > 0 && space_.containers().count(container) == 0)
            ++report.space_mismatches;
    }
    return report;
}

Status
FidrSystem::flush()
{
    // Pipeline barrier: surface any asynchronous failure (unsealing
    // retained batches back into the open buffer) before sealing the
    // remainder, then wait for everything to commit.
    const Status committed = drain_pipeline();
    if (!committed.is_ok())
        return committed;
    const Status batch = process_batch();
    if (!batch.is_ok())
        return batch;
    const Status drained = drain_pipeline();
    if (!drained.is_ok())
        return drained;
    const Status sealed = containers_.flush();
    if (!sealed.is_ok())
        return sealed;
    const Status billed = bill_container_seals();
    if (!billed.is_ok())
        return billed;
    return table_cache_->writeback_all();
}

Result<Buffer>
FidrSystem::read(Lba lba)
{
    // The size-1 batch: identical stage order, billing and fault
    // accounting to the pre-batching serial read path.
    const Lba one[1] = {lba};
    std::vector<Result<Buffer>> out = read_batch(one);
    return std::move(out.front());
}

void
FidrSystem::run_read_jobs(std::vector<ReadJob> &jobs)
{
    pcie::Fabric &fabric = platform_.fabric();

    // Fan-out stage: fetch + decompress every cache-miss job.  Pure
    // per-job work only — flash page copies, the LZ kernel, job-local
    // retry counts and timings.  No ledger, stat or histogram is
    // touched here (the determinism contract of read_pipeline.h).
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        if (!jobs[j].cache_hit)
            pending.push_back(j);
    }
    read_pipeline_->run(
        jobs, pending,
        [this](ReadJob &job) {
            // Warm-tier hit: the compressed image is already in hand;
            // the lane only decompresses.
            if (job.tier == cache::CacheTier::kWarm) {
                job.compressed_bytes = job.compressed.size();
                const obs::StageTimer decompress_timer;
                Result<Buffer> raw =
                    decomp_.decompress_stateless(job.compressed);
                job.decompress_ns = decompress_timer.elapsed_ns();
                if (!raw.is_ok()) {
                    job.status = raw.status();
                    return;
                }
                job.fetch_ok = true;
                job.payload = raw.take();
                return;
            }
            // Spill-tier hit: read the image back from the ring, then
            // decompress.  Any failure (transient budget exhausted,
            // torn/lapped bytes failing decode or the size check)
            // falls back to the authoritative container fetch below —
            // the spill tier is best-effort by contract.
            if (job.tier == cache::CacheTier::kSpill) {
                const obs::StageTimer fetch_timer;
                Result<Buffer> data =
                    spill_device_->read(job.spill.offset, job.spill.size);
                while (!data.is_ok() &&
                       data.status().code() == StatusCode::kUnavailable &&
                       job.fetch_attempts < config_.transient_retries) {
                    ++job.fetch_attempts;
                    data = spill_device_->read(job.spill.offset,
                                               job.spill.size);
                }
                job.fetch_ns = fetch_timer.elapsed_ns();
                if (data.is_ok()) {
                    job.compressed = data.take();
                    job.compressed_bytes = job.compressed.size();
                    const obs::StageTimer decompress_timer;
                    Result<Buffer> raw =
                        decomp_.decompress_stateless(job.compressed);
                    job.decompress_ns = decompress_timer.elapsed_ns();
                    if (raw.is_ok() &&
                        raw.value().size() == job.raw_size) {
                        job.fetch_ok = true;
                        job.payload = raw.take();
                        return;
                    }
                }
                job.spill_fallback = true;
                job.fetch_attempts = 0;
                job.compressed.clear();
                job.compressed_bytes = 0;
            }
            const obs::StageTimer fetch_timer;
            Result<Buffer> data = containers_.read(job.location);
            // Degraded mode: transient flash errors retry with
            // backoff; attempts are counted locally and accounted
            // after the join.
            while (!data.is_ok() &&
                   data.status().code() == StatusCode::kUnavailable &&
                   job.fetch_attempts < config_.transient_retries) {
                ++job.fetch_attempts;
                data = containers_.read(job.location);
            }
            job.fetch_ns = fetch_timer.elapsed_ns();
            if (!data.is_ok()) {
                job.status = data.status();
                return;
            }
            job.fetch_ok = true;
            // Keep the compressed image: the two-tier cache fill wants
            // it alongside the decompressed payload.
            job.compressed = data.take();
            job.compressed_bytes = job.compressed.size();
            const obs::StageTimer decompress_timer;
            Result<Buffer> raw =
                decomp_.decompress_stateless(job.compressed);
            job.decompress_ns = decompress_timer.elapsed_ns();
            if (!raw.is_ok()) {
                job.status = raw.status();
                return;
            }
            job.payload = raw.take();
        },
        obs::ScopedRequest::current_trace(),
        obs::ScopedRequest::current_stream());

    // Serial billing stage, in job order: every fabric DMA, per-SSD
    // attribution, fault-stat merge, engine counter and cache fill
    // happens here, on the orchestrating thread, so ledgers are
    // bit-identical across lane counts.
    for (ReadJob &job : jobs) {
        if (job.cache_hit) {
            job.ready = true;
            continue;
        }
        fault_stats_.transient_retries += job.fetch_attempts;
        for (unsigned attempt = 0; attempt < job.fetch_attempts;
             ++attempt) {
            fault_stats_.backoff_ns += backoff_for(attempt);
        }
        const cache::ChunkKey key{job.location.container_id,
                                  job.location.offset_units};
        if (job.tier == cache::CacheTier::kWarm) {
            // Warm hit: the image moves host DRAM -> Decompression
            // Engine (no data-SSD DMA, no read.ssd_fetches).
            const Status moved = dma_checked(
                pcie::kHostMemory, platform_.decompression_engine(),
                job.compressed_bytes, memtag::kChunkCache);
            if (!moved.is_ok()) {
                job.status = moved;
                job.payload.clear();
                continue;
            }
            hist_.read_decompress->record(
                job.decompress_ns, obs::ScopedRequest::current_trace());
            if (!job.status.is_ok())
                continue;  // Decompression failed (kCorruption).
            decomp_.record();
            job.ready = true;
            chunk_cache_->promote(key, job.payload, job.compressed);
            continue;
        }
        if (job.tier == cache::CacheTier::kSpill && !job.spill_fallback) {
            // Spill hit: a ring read off the spill SSD (billed as
            // chunk-cache traffic, not a chunk fetch) feeds the
            // engine, and the image promotes back into DRAM.
            read_spill_reads_->add();
            hist_.read_fetch->record(job.fetch_ns,
                                     obs::ScopedRequest::current_trace());
            const Status moved = dma_checked(
                platform_.data_ssd_dev(spill_device_->ssd_index()),
                platform_.decompression_engine(), job.compressed_bytes,
                memtag::kChunkCache);
            if (!moved.is_ok()) {
                job.status = moved;
                job.payload.clear();
                continue;
            }
            hist_.read_decompress->record(
                job.decompress_ns, obs::ScopedRequest::current_trace());
            decomp_.record();
            job.ready = true;
            chunk_cache_->promote(key, job.payload, job.compressed);
            continue;
        }
        if (!job.fetch_ok) {
            if (job.status.code() == StatusCode::kUnavailable)
                ++fault_stats_.retry_exhausted;
            // The failed flash read still occupied the owning SSD's
            // channel: bill the attempted transfer to the SSD that
            // holds the container, not to nobody (and not to SSD 0).
            if (containers_.sealed(job.location.container_id)) {
                fabric.dma(platform_.data_ssd_dev(job.source_ssd),
                           platform_.decompression_engine(),
                           job.location.compressed_size,
                           memtag::kDataSsd);
            }
            hist_.read_fetch->record(job.fetch_ns,
                                 obs::ScopedRequest::current_trace());
            continue;
        }
        // Fig 6b step 5: data SSD -> Decompression Engine, P2P.  The
        // source device is the SSD the chunk's container landed on
        // (same rotation bill_container_seals used when sealing it).
        FIDR_TPOINT(obs::Tpoint::kReadSsdFetch, job.location.container_id,
                    job.compressed_bytes);
        read_ssd_fetches_->add();
        hist_.read_fetch->record(job.fetch_ns,
                                 obs::ScopedRequest::current_trace());
        const Status moved = dma_checked(
            platform_.data_ssd_dev(job.source_ssd),
            platform_.decompression_engine(), job.compressed_bytes,
            memtag::kDataSsd);
        if (!moved.is_ok()) {
            // The chunk never reached the engine: the speculative
            // decompression result is discarded unbilled.
            job.status = moved;
            job.payload.clear();
            continue;
        }
        hist_.read_decompress->record(job.decompress_ns,
                                      obs::ScopedRequest::current_trace());
        if (!job.status.is_ok())
            continue;  // Decompression failed (kCorruption).
        decomp_.record();
        job.ready = true;
        if (chunk_cache_) {
            FIDR_TPOINT(obs::Tpoint::kReadCacheInsert,
                        job.location.container_id,
                        job.location.offset_units);
            if (job.spill_fallback) {
                // The ring copy failed to serve: the refetched image
                // re-enters DRAM as a promotion (it already passed
                // admission once) and displaces the stale spill entry.
                chunk_cache_->promote(key, job.payload, job.compressed);
            } else {
                chunk_cache_->insert(key, job.payload, job.compressed);
            }
        }
    }
}

std::vector<Result<Buffer>>
FidrSystem::read_batch(std::span<const Lba> lbas)
{
    // The whole batched read is one client-visible request: scope its
    // causal id over everything below, including the pipeline barrier
    // (time spent draining writes is genuinely this read's queueing).
    const std::uint64_t read_trace =
        obs::RequestContext::next_id_for_node(config_.node_index);
    obs::ScopedRequest request(read_trace, stream_tag_);

    // One pipeline barrier for the whole batch: in-flight write
    // batches commit before the NIC lookups and LBA resolves, so every
    // read sees its own preceding writes.  A sticky failure keeps its
    // error for the next write/flush; the affected data stays readable
    // from the unsealed NIC buffer.
    if (pipeline_) {
        pipeline_->quiesce();
        if (pipeline_->failed())
            nic_.unseal_all();
    }
    pcie::Fabric &fabric = platform_.fabric();
    const obs::StageTimer batch_timer;
    FIDR_TRACE_SPAN(batch_span, obs::Tpoint::kReadBatch, lbas.size(),
                    kChunkSize);

    constexpr std::size_t kNoJob = SIZE_MAX;
    std::vector<Result<Buffer>> results(
        lbas.size(), Result<Buffer>(Status::internal("read pending")));
    std::vector<std::size_t> slot_job(lbas.size(), kNoJob);
    std::vector<ReadJob> jobs;
    std::unordered_map<cache::ChunkKey, std::size_t, cache::ChunkKeyHash>
        job_of;

    // Serial resolve stage, in input order: NIC buffer short-circuit,
    // LBA transfer + CPU billing, LBA-PBA lookup, then coalescing —
    // slots that resolve to the same physical chunk (duplicates under
    // dedup, repeated LBAs) collapse into one job in first-occurrence
    // order, so the chunk is fetched and decompressed exactly once.
    for (std::size_t i = 0; i < lbas.size(); ++i) {
        const Lba lba = lbas[i];
        ++stats_.chunks_read;
        FIDR_TPOINT(obs::Tpoint::kReadRequest, lba, kChunkSize);

        // Fig 6b step 2: LBA Lookup against the in-NIC write buffer.
        if (auto buffered = nic_.lookup_buffered(lba)) {
            FIDR_TPOINT(obs::Tpoint::kReadNicLookup, lba, 1);
            ++stats_.nic_read_hits;
            hist_.read_total->record(batch_timer.elapsed_ns(),
                                     obs::ScopedRequest::current_trace());
            results[i] = std::move(*buffered);
            continue;
        }
        FIDR_TPOINT(obs::Tpoint::kReadNicLookup, lba, 0);

        // Steps 3-4: LBA to host, LBA-PBA lookup.  With the read-stack
        // offload extension, the NVMe submission/completion handling
        // and data forwarding move to the FPGA and only the mapping
        // lookup stays on the CPU.
        const auto location = [&] {
            const obs::StageTimer timer;
            FIDR_TRACE_SPAN(span, obs::Tpoint::kReadLbaResolve, lba, 0);
            fabric.dma(platform_.nic(), pcie::kHostMemory, 16,
                       memtag::kNicHost);
            platform_.cpu().bill_us(cputag::kReadPath,
                                    config_.offload_read_stack
                                        ? calib::kCpuReadOffloadResidual
                                        : calib::kCpuReadPerChunk);
            const auto found = lba_table_.lookup(lba);
            hist_.read_resolve->record(timer.elapsed_ns(),
                                       obs::ScopedRequest::current_trace());
            return found;
        }();
        if (!location) {
            results[i] = Status::not_found("LBA never written");
            continue;
        }

        const cache::ChunkKey key{location->container_id,
                                  location->offset_units};
        const auto coalesced = job_of.find(key);
        if (coalesced != job_of.end()) {
            jobs[coalesced->second].slots.push_back(i);
            slot_job[i] = coalesced->second;
            continue;
        }
        ReadJob job;
        job.location = *location;
        job.source_ssd = containers_.ssd_index_of(location->container_id);
        job.slots.push_back(i);
        // Chunk-cache probe (serial, so hit/miss order, LRU state and
        // ghost adaptation are deterministic).  A hot hit serves the
        // decompressed payload straight from host DRAM and skips the
        // lane stage entirely; a warm hit hands the lane the compressed
        // image (decompress, no SSD); a spill hit hands it the ring
        // location (spill read + decompress, no chunk fetch).
        if (chunk_cache_) {
            cache::TierLookup cached = chunk_cache_->lookup(key);
            switch (cached.tier) {
              case cache::CacheTier::kHot:
                FIDR_TPOINT(obs::Tpoint::kReadCacheHit,
                            key.container_id, key.offset_units);
                job.cache_hit = true;
                job.tier = cache::CacheTier::kHot;
                job.payload = std::move(cached.raw);
                break;
              case cache::CacheTier::kWarm:
                FIDR_TPOINT(obs::Tpoint::kReadCacheWarmHit,
                            key.container_id, key.offset_units);
                job.tier = cache::CacheTier::kWarm;
                job.compressed = std::move(cached.compressed);
                job.raw_size = cached.raw_size;
                break;
              case cache::CacheTier::kSpill:
                FIDR_TPOINT(obs::Tpoint::kReadCacheSpillHit,
                            key.container_id, key.offset_units);
                job.tier = cache::CacheTier::kSpill;
                job.spill = cached.spill;
                job.raw_size = cached.raw_size;
                break;
              case cache::CacheTier::kNone:
                break;
            }
        }
        slot_job[i] = jobs.size();
        job_of.emplace(key, jobs.size());
        jobs.push_back(std::move(job));
    }
    FIDR_TPOINT(obs::Tpoint::kReadCoalesce, lbas.size(), jobs.size());

    // Steps 5-6 (fan-out + serial billing).
    run_read_jobs(jobs);

    // Step 7, serial in input order: payload to the NIC, out to the
    // client.  Cache hits travel host DRAM -> NIC (the chunk lives
    // decompressed in host memory); misses travel Decompression
    // Engine -> NIC peer-to-peer as before.
    for (std::size_t i = 0; i < lbas.size(); ++i) {
        if (slot_job[i] == kNoJob)
            continue;  // NIC buffer hit or resolve failure.
        const ReadJob &job = jobs[slot_job[i]];
        if (!job.ready) {
            results[i] = job.status;
            continue;
        }
        const obs::StageTimer timer;
        FIDR_TRACE_SPAN(span, obs::Tpoint::kReadNicReturn, lbas[i],
                        job.payload.size());
        const Status moved =
            job.cache_hit
                ? dma_checked(pcie::kHostMemory, platform_.nic(),
                              job.payload.size(), memtag::kChunkCache)
                : dma_checked(platform_.decompression_engine(),
                              platform_.nic(), job.payload.size(),
                              memtag::kNicHost);
        hist_.read_return->record(timer.elapsed_ns(),
                                  obs::ScopedRequest::current_trace());
        if (!moved.is_ok()) {
            results[i] = moved;
            continue;
        }
        results[i] = job.payload;
        hist_.read_total->record(batch_timer.elapsed_ns(),
                                     obs::ScopedRequest::current_trace());
    }
    return results;
}

obs::ObsSnapshot
FidrSystem::obs_snapshot() const
{
    obs::ObsSnapshot snap = metrics_.snapshot();

    // Flow counters: reduction accounting plus cache and tree state.
    snap.counters["write.chunks"] = stats_.chunks_written;
    snap.counters["write.unique_chunks"] = stats_.unique_chunks;
    snap.counters["write.duplicate_chunks"] = stats_.duplicates;
    snap.counters["write.raw_bytes"] = stats_.raw_bytes;
    snap.counters["write.stored_bytes"] = stats_.stored_bytes;
    snap.counters["read.chunks"] = stats_.chunks_read;
    snap.counters["read.nic_buffer_hits"] = stats_.nic_read_hits;
    snap.counters["journal.records"] = journal_records();

    // Degraded-mode and crash-repair accounting.
    snap.counters["fault.transient_retries"] =
        fault_stats_.transient_retries;
    snap.counters["fault.retry_exhausted"] = fault_stats_.retry_exhausted;
    snap.counters["fault.backoff_ns"] = fault_stats_.backoff_ns;
    snap.counters["fault.retire_deferred"] = fault_stats_.retire_deferred;
    snap.counters["write.dangling_repairs"] =
        fault_stats_.dangling_repairs;
#if FIDR_FAULT_ENABLED
    // Per-site failpoint counters (quiet sites stay out of the report).
    const fault::FailpointRegistry &failpoints =
        fault::FailpointRegistry::instance();
    for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
        const auto site = static_cast<fault::Site>(s);
        const std::uint64_t hits = failpoints.hits(site);
        const std::uint64_t fires = failpoints.fires(site);
        if (hits == 0 && fires == 0)
            continue;
        const std::string prefix =
            std::string("fault.") + fault::site_name(site);
        snap.counters[prefix + ".hits"] = hits;
        snap.counters[prefix + ".fires"] = fires;
        if (failpoints.spike_ns(site) > 0)
            snap.counters[prefix + ".spike_ns"] = failpoints.spike_ns(site);
    }
#endif

    const cache::CacheStats cache = table_cache_->stats();
    snap.counters["cache.hits"] = cache.hits;
    snap.counters["cache.misses"] = cache.misses;
    snap.counters["cache.evictions"] = cache.evictions;
    snap.counters["cache.dirty_evictions"] = cache.dirty_evictions;
    snap.gauges["cache.hit_rate"] = cache.hit_rate();
    if (table_cache_->shard_count() > 1) {
        // Per-shard breakdown (Sec 5.5): imbalance shows up as skewed
        // hit/miss distributions across shards.
        for (std::size_t s = 0; s < table_cache_->shard_count(); ++s) {
            const cache::CacheStats shard = table_cache_->shard_stats(s);
            const std::string prefix =
                "cache.shard" + std::to_string(s);
            snap.counters[prefix + ".hits"] = shard.hits;
            snap.counters[prefix + ".misses"] = shard.misses;
            snap.counters[prefix + ".evictions"] = shard.evictions;
            snap.counters[prefix + ".dirty_evictions"] =
                shard.dirty_evictions;
        }
    }

    // Chunk read cache (zeros when disabled, so dashboards diffing a
    // cache-on run against cache-off see the keys either way).
    const cache::ChunkCacheStats read_cache =
        chunk_cache_ ? chunk_cache_->stats() : cache::ChunkCacheStats{};
    snap.counters["read.cache.hits"] = read_cache.hits;
    snap.counters["read.cache.misses"] = read_cache.misses;
    snap.counters["read.cache.insertions"] = read_cache.insertions;
    snap.counters["read.cache.evictions"] = read_cache.evictions;
    snap.counters["read.cache.invalidations"] = read_cache.invalidations;
    snap.counters["read.cache.rekeys"] = read_cache.rekeys;
    snap.counters["read.cache.bytes"] =
        chunk_cache_ ? chunk_cache_->used_bytes() : 0;
    snap.gauges["read.cache.hit_rate"] = read_cache.hit_rate();

    // Per-tier breakdown (two-tier cache, PR 9): where the hits came
    // from, the demotion/promotion flux between tiers, what admission
    // turned away, and the ghost-LRU signals steering the hot/warm
    // split.  Zeros in one-tier mode and with the cache off.
    snap.counters["read.cache.hot.hits"] = read_cache.hot.hits;
    snap.counters["read.cache.warm.hits"] = read_cache.warm.hits;
    snap.counters["read.cache.spill.hits"] = read_cache.spill.hits;
    snap.counters["read.cache.demotions"] = read_cache.demotions;
    snap.counters["read.cache.demote_passes"] =
        read_cache.demote_passes;
    snap.counters["read.cache.promotions"] = read_cache.promotions;
    snap.counters["read.cache.spill.writes"] = read_cache.spill_writes;
    snap.counters["read.cache.spill.write_failures"] =
        read_cache.spill_write_failures;
    snap.counters["read.cache.spill.overwritten"] =
        read_cache.spill_overwritten;
    snap.counters["read.cache.rejected.incompressible"] =
        read_cache.rejected_incompressible;
    snap.counters["read.cache.rejected.doorkeeper"] =
        read_cache.rejected_doorkeeper;
    snap.counters["read.cache.ghost.hot_hits"] =
        read_cache.ghost_hot_hits;
    snap.counters["read.cache.ghost.warm_hits"] =
        read_cache.ghost_warm_hits;
    snap.counters["read.cache.hot.bytes"] =
        chunk_cache_ ? chunk_cache_->hot_used_bytes() : 0;
    snap.counters["read.cache.warm.bytes"] =
        chunk_cache_ ? chunk_cache_->warm_used_bytes() : 0;
    snap.counters["read.cache.spill.bytes"] =
        chunk_cache_ ? chunk_cache_->spill_used_bytes() : 0;
    // Where the adaptive split currently sits, and the ghost-estimated
    // marginal gain per tier: the fraction of all probes a bigger
    // hot/warm tier would have upgraded (warm hit -> hot hit, miss ->
    // DRAM hit respectively).  These are the auto-sizing inputs.
    snap.gauges["read.cache.hot_target_fraction"] =
        chunk_cache_ && chunk_cache_->capacity_bytes() > 0
            ? static_cast<double>(chunk_cache_->hot_target_bytes()) /
                  static_cast<double>(chunk_cache_->capacity_bytes())
            : 0.0;
    const std::uint64_t probes = read_cache.hits + read_cache.misses;
    snap.gauges["read.cache.ghost.hot_gain"] =
        probes > 0 ? static_cast<double>(read_cache.ghost_hot_hits) /
                         static_cast<double>(probes)
                   : 0.0;
    snap.gauges["read.cache.ghost.warm_gain"] =
        probes > 0 ? static_cast<double>(read_cache.ghost_warm_hits) /
                         static_cast<double>(probes)
                   : 0.0;
    if (chunk_cache_ && chunk_cache_->tuning().two_tier) {
        // Per-tier section: hit share of each tier plus the ghost
        // gains, rendered by `fidr_obs_report snapshot`.
        const auto share = [&](std::uint64_t n) {
            return probes > 0 ? static_cast<double>(n) /
                                    static_cast<double>(probes)
                              : 0.0;
        };
        std::vector<obs::SnapshotRow> tiers;
        tiers.push_back({"hot hits (DRAM, decompressed)",
                         static_cast<double>(read_cache.hot.hits),
                         share(read_cache.hot.hits)});
        tiers.push_back({"warm hits (DRAM, compressed)",
                         static_cast<double>(read_cache.warm.hits),
                         share(read_cache.warm.hits)});
        tiers.push_back({"spill hits (SSD ring)",
                         static_cast<double>(read_cache.spill.hits),
                         share(read_cache.spill.hits)});
        tiers.push_back({"misses",
                         static_cast<double>(read_cache.misses),
                         share(read_cache.misses)});
        tiers.push_back({"ghost: marginal hot gain",
                         static_cast<double>(read_cache.ghost_hot_hits),
                         share(read_cache.ghost_hot_hits)});
        tiers.push_back({"ghost: marginal warm gain",
                         static_cast<double>(read_cache.ghost_warm_hits),
                         share(read_cache.ghost_warm_hits)});
        snap.sections["read_cache_tiers"] = std::move(tiers);
    }

    // Incremental GC and container-log durability accounting.
    snap.counters["gc.steps"] = gc_stats_.steps;
    snap.counters["gc.idle_steps"] = gc_stats_.idle_steps;
    snap.counters["gc.failed_steps"] = gc_stats_.failed_steps;
    snap.counters["gc.relocated_chunks"] = gc_stats_.relocated_chunks;
    snap.counters["gc.relocated_bytes"] = gc_stats_.relocated_bytes;
    snap.counters["gc.containers_reclaimed"] =
        gc_stats_.containers_reclaimed;
    snap.counters["gc.reclaimed_bytes"] = gc_stats_.reclaimed_bytes;
    snap.counters["gc.cache_rekeys"] = gc_stats_.cache_rekeys;
    snap.counters["gc.concurrent_steps"] = gc_stats_.concurrent_steps;
    // Relocation overhead relative to user payload: the write-amp GC
    // adds on top of the unique-chunk stores.
    snap.gauges["gc.write_amp"] =
        stats_.stored_bytes > 0
            ? static_cast<double>(gc_stats_.relocated_bytes) /
                  static_cast<double>(stats_.stored_bytes)
            : 0.0;
    const tables::ContainerLogStats &log_stats = containers_.stats();
    snap.counters["container.superblock_writes"] =
        log_stats.superblock_writes;
    snap.counters["container.superblock_write_failures"] =
        log_stats.superblock_write_failures;
    snap.counters["container.superblock_seq"] =
        containers_.superblock_seq();
    snap.counters["container.discards"] = log_stats.discards;
    snap.counters["container.headers_scanned"] =
        log_stats.headers_scanned;
    snap.counters["container.recovered"] = log_stats.containers_recovered;
    snap.counters["container.tail_adopted"] = log_stats.tail_adopted;
    snap.counters["container.used_slots"] = containers_.used_slots();
    snap.counters["container.total_slots"] = containers_.total_slots();
    snap.gauges["container.free_slot_fraction"] =
        containers_.free_slot_fraction();

    snap.gauges["write.dedup_rate"] = stats_.dedup_rate();
    snap.gauges["write.reduction_ratio"] =
        stats_.stored_bytes > 0
            ? static_cast<double>(stats_.raw_bytes) /
                  static_cast<double>(stats_.stored_bytes)
            : 0.0;

    if (!hw_shards_.empty()) {
        // Aggregate over the per-shard trees (one tree per cache shard
        // when cache_shards > 1, a single tree otherwise).
        hwtree::PipelineStats tree;
        for (const cache::HwTreeCacheIndex *hw : hw_shards_) {
            const hwtree::PipelineStats &s = hw->pipeline().stats();
            tree.searches += s.searches;
            tree.updates += s.updates;
            tree.crashes += s.crashes;
            tree.replays += s.replays;
        }
        snap.counters["tree.searches"] = tree.searches;
        snap.counters["tree.updates"] = tree.updates;
        snap.counters["tree.crashes"] = tree.crashes;
        snap.counters["tree.replays"] = tree.replays;
        snap.gauges["tree.crash_rate"] = tree.crash_rate();
    }

    const auto ledger_rows = [](const std::vector<sim::LedgerRow> &rows) {
        std::vector<obs::SnapshotRow> out;
        out.reserve(rows.size());
        for (const sim::LedgerRow &row : rows)
            out.push_back({row.tag, row.value, row.share});
        return out;
    };
    snap.sections["host_dram_bandwidth_bytes"] =
        ledger_rows(platform_.fabric().host_memory().report());
    snap.sections["cpu_core_seconds"] =
        ledger_rows(platform_.cpu().ledger().report());

    std::vector<obs::SnapshotRow> capacity;
    const host::HostMemory &memory = platform_.memory();
    for (const auto &[component, bytes] : memory.breakdown()) {
        capacity.push_back(
            {component, static_cast<double>(bytes),
             memory.used() > 0 ? static_cast<double>(bytes) /
                                     static_cast<double>(memory.used())
                               : 0.0});
    }
    snap.sections["host_dram_capacity_bytes"] = std::move(capacity);
    return snap;
}

}  // namespace fidr::core
