/**
 * @file
 * The FIDR storage system (paper Sec 5, Fig 6).
 *
 * Write flow (10 steps, Fig 6a): client chunks buffer *in the NIC*
 * and are acknowledged immediately; the NIC's SHA-256 engines hash the
 * batch and send only the 32-byte digests to the host; the host maps
 * digests to bucket indexes and hands them to the Cache HW-Engine,
 * whose pipelined tree resolves cache lines (fetching missed buckets
 * from the table SSD straight into the host-DRAM cache); host software
 * scans the cached buckets to decide unique/duplicate; the verdicts
 * return to the NIC, whose compression scheduler ships *only unique
 * chunks* peer-to-peer to the Compression Engine; sealed ~4 MB
 * containers move Compression Engine -> data SSD peer-to-peer.  Client
 * payloads never touch host DRAM.
 *
 * Read flow (8 steps, Fig 6b): the NIC's LBA-lookup serves reads that
 * hit its write buffer; otherwise the host resolves LBA->PBA and
 * orchestrates data SSD -> Decompression Engine -> NIC peer-to-peer
 * transfers.
 *
 * Three configurations reproduce Fig 14's ablation:
 *  - hw_cache_engine=false: NIC offload + P2P only (software B+-tree
 *    cache index stays on the CPU);
 *  - hw_cache_engine=true, tree_update_lanes=1: single-update HW tree;
 *  - hw_cache_engine=true, tree_update_lanes=4: the full system with
 *    speculative concurrent updates.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fidr/accel/engines.h"
#include "fidr/common/thread_pool.h"
#include "fidr/cache/chunk_cache.h"
#include "fidr/cache/indexes.h"
#include "fidr/cache/table_cache.h"
#include "fidr/core/dedup_index.h"
#include "fidr/core/gc.h"
#include "fidr/core/platform.h"
#include "fidr/core/read_pipeline.h"
#include "fidr/core/server.h"
#include "fidr/core/space.h"
#include "fidr/core/write_pipeline.h"
#include "fidr/nic/fidr_nic.h"
#include "fidr/obs/metrics.h"
#include "fidr/tables/container.h"
#include "fidr/tables/journal.h"
#include "fidr/tables/lba_pba.h"

namespace fidr::core {

/** FIDR system parameters. */
struct FidrConfig {
    PlatformConfig platform;
    nic::FidrNicConfig nic;
    std::uint64_t container_bytes = 4 * kMiB;
    bool hw_cache_engine = true;  ///< false => software cache index.
    unsigned tree_update_lanes = 4;
    /**
     * LZ cores in the Compression Engine working concurrently on
     * disjoint unique chunks of a batch.  0 = one lane per hardware
     * thread; 1 = serial compression on the calling thread.  Output
     * and accounting are bit-identical across lane counts.
     */
    std::size_t compress_lanes = 0;
    cache::EvictionPolicy eviction_policy = cache::EvictionPolicy::kLru;

    /**
     * Multi-batch write pipeline depth: sealed batches in flight at
     * once (hash stage overlaps the serial commit stages and client
     * ingest; see write_pipeline.h).  1 = fully synchronous, the
     * pre-pipeline behaviour.  Every depth produces bit-identical end
     * state; errors surface at the next write/flush barrier instead
     * of from the admitting write().
     */
    std::size_t in_flight_batches = 4;

    /** Hash-stage workers; 0 = min(depth, hardware lanes). */
    std::size_t pipeline_hash_workers = 0;

    /**
     * Read-plane fan-out: lanes fetching and decompressing the
     * coalesced chunks of a read_batch() concurrently.  0 = one lane
     * per hardware thread; 1 = serial on the calling thread.  Results
     * and ledgers are bit-identical across lane counts (all billing is
     * serialized after the join; see read_pipeline.h).
     */
    std::size_t read_lanes = 0;

    /**
     * Chunk read cache capacity in bytes (decompressed chunk content
     * keyed by physical location; cache/chunk_cache.h).  0 disables
     * the cache entirely — the default, so the read path's DMA and
     * device accounting is unchanged unless the knob is set.  The
     * capacity is claimed from host DRAM at construction.
     */
    std::uint64_t chunk_cache_bytes = 0;

    /** Chunk-cache shards (power of two; the cache_shards pattern). */
    std::size_t chunk_cache_shards = 1;

    /**
     * Two-tier chunk cache (cache/chunk_cache.h): hot decompressed
     * entries above a warm tier of compressed images under the same
     * chunk_cache_bytes budget, with demotion/promotion and ghost-LRU
     * auto-sizing of the split.  false = the PR 5 one-tier LRU, the
     * equal-budget baseline the read bench compares against.
     */
    bool chunk_cache_two_tier = true;

    /**
     * Chunk-cache admission filters (incompressible rejection + the
     * frequency-sketch doorkeeper).  Off by default: with admission on
     * the cache is no longer a pure always-admit optimization (a chunk
     * only enters on its second miss), which benchmarks want but the
     * cache-equivalence tests do not.
     */
    bool chunk_cache_admission = false;

    /**
     * Spill-tier bytes reserved off the tail of the last data SSD for
     * evicted compressed chunks (sequential ring writes; see
     * chunk_cache.h).  0 disables the tier.  Only meaningful with
     * chunk_cache_bytes > 0 and two-tier mode; the reservation is
     * carved out of the container log's slot space at construction.
     */
    std::uint64_t chunk_cache_spill_bytes = 0;

    /**
     * Hot-tier demotion batch for the two-tier chunk cache: demote up
     * to this many tail entries per rebalance pass once the hot byte
     * target forces one (cache/chunk_cache.h).  1 = legacy
     * demote-exactly-to-target, bit-for-bit.
     */
    std::size_t chunk_cache_demote_batch = 1;

    /**
     * This system's node index inside a cluster (cluster::ClusterRouter).
     * Embedded in every minted trace id (obs/request.h) so merged
     * multi-node obs dumps attribute spans to the right node.  0 — the
     * default — leaves ids numerically identical to a standalone
     * system.
     */
    std::uint32_t node_index = 0;

    /**
     * Hash-PBN table cache shards (power of two, Sec 5.5).  Shard
     * routing is bucket & (N-1) with per-shard free/LRU lists, stats
     * and mutexes; 1 keeps the unsharded layout (and its exact
     * eviction order).
     */
    std::size_t cache_shards = 1;
    /**
     * Extension (the paper's stated future work, Sec 7.5): offload the
     * read-path NVMe software stack to the FPGA as well, leaving only
     * the LBA-PBA lookup on the host.  Lifts Read-Mixed's CPU bound.
     */
    bool offload_read_stack = false;

    /**
     * Extension: journal LBA-PBA mutations to a reserved table-SSD
     * region so the mapping survives a host crash (the paper's NVRAM
     * buffer covers the *data*; this covers the metadata).
     */
    bool journal_metadata = false;
    std::uint64_t journal_bytes = 64 * kMiB;
    std::uint64_t snapshot_bytes = 64 * kMiB;

    /**
     * Degraded mode: PCIe/SSD operations that fail with kUnavailable
     * (transient device errors) are retried transparently up to this
     * many extra attempts before the error surfaces; each retry
     * accounts exponential backoff to the fault counters.
     */
    unsigned transient_retries = 2;
    std::uint64_t retry_backoff_ns = 20'000;

    /**
     * Tail exemplars retained per stage histogram: each keeps the N
     * slowest (latency, trace_id) pairs seen, so a p99 bucket points
     * at concrete captured request traces (`fidr_obs_report
     * attribute` resolves them).  0 disables the reservoirs.  With
     * FIDR_TRACE=OFF no trace ids exist, so reservoirs stay empty and
     * the record path is unchanged.
     */
    std::size_t tail_exemplars = 4;

    /**
     * Incremental container-log GC (core/gc.h): budgeted relocation
     * steps on the commit sequencer, victim selection thresholds, the
     * free-space reserve watermark and the superblock write cadence.
     */
    GcConfig gc;
};

/** The FIDR server. */
class FidrSystem : public StorageServer {
  public:
    explicit FidrSystem(const FidrConfig &config);

    Status write(Lba lba, Buffer data) override;
    Result<Buffer> read(Lba lba) override;

    /**
     * Batched Fig 6b reads: one pipeline barrier for the whole batch,
     * slots resolving to the same physical chunk coalesce into a
     * single fetch+decompress, and the fetch stage fans across
     * `read_lanes` with all billing serialized after the join
     * (read_pipeline.h).  read() is the size-1 case.  Per-slot errors
     * (unknown LBA, degraded-mode device failures) fail only their own
     * slot.
     */
    std::vector<Result<Buffer>> read_batch(
        std::span<const Lba> lbas) override;

    Status flush() override;
    const ReductionStats &reduction() const override { return stats_; }

    // ------------------------------------------------------------------
    // Cluster surface (cluster::ClusterRouter).  These are the node
    // side of the router's remote-fingerprint protocol; a standalone
    // system never calls them, so the single-node flows are unchanged.
    // All three serialize against the write pipeline (drain/flush)
    // before touching shared metadata — the router calls them under
    // the node's serial lock, like every other entry point.
    // ------------------------------------------------------------------

    /**
     * Remote-fingerprint lookup: is `digest` a committed, readable
     * chunk on this node?  Billed like a duplicate dedup resolve (the
     * CPU scan + bucket traffic the Cache HW-Engine would do for a
     * write of this content).  Flushes buffered writes first: only
     * committed state answers, so a yes is stable until the caller
     * drops the node lock.
     */
    Result<bool> probe_digest(const Digest &digest);

    /**
     * Duplicate-suppressed remote write: maps `lba` to the committed
     * chunk holding `digest` without shipping or re-hashing the 4 KiB
     * payload.  Counts exactly like a full write of duplicate content
     * (chunks_written, raw_bytes, duplicates) and journals the map
     * like stage_apply.  Deliberately does NOT flush (that would
     * defeat the node's write batching); it drains in-flight batches,
     * then returns kNotFound when the digest is not a committed
     * readable chunk here or the LBA has a NIC-buffered write pending
     * — the caller falls back to a full write either way.
     */
    Status write_ref(Lba lba, const Digest &digest);

    /**
     * Drops `lba`'s mapping (fingerprint routing moved the LBA's
     * ownership to another node on overwrite).  Flushes first so a
     * NIC-buffered write for the LBA cannot resurrect the mapping
     * after the unmap.  Idempotent: unmapping an unknown LBA is ok.
     */
    Status unmap(Lba lba);

    Platform &platform() { return platform_; }
    const Platform &platform() const { return platform_; }
    nic::FidrNic &nic_model() { return nic_; }
    /** Aggregate cache counters over all shards (by value). */
    cache::CacheStats cache_stats() const { return table_cache_->stats(); }
    const cache::TableCache &table_cache() const { return *table_cache_; }
    tables::LbaPbaTable &lba_table() { return lba_table_; }

    /**
     * Null when running with the software cache index; with
     * cache_shards > 1 this is shard 0's tree (obs_snapshot aggregates
     * all shards).
     */
    const cache::HwTreeCacheIndex *hw_index() const
    { return hw_shards_.empty() ? nullptr : hw_shards_.front(); }

    /** Live/dead space accounting (GC extension). */
    const SpaceTracker &space() const { return space_; }

    /** Append-only container log (slot occupancy, superblock seq). */
    const tables::ContainerLog &container_log() const
    { return containers_; }

    /** Null when chunk_cache_bytes == 0 (cache disabled). */
    const cache::ChunkReadCache *chunk_cache() const
    { return chunk_cache_.get(); }

    /**
     * Runs GC to completion at an explicit dead-fraction threshold:
     * drains the pipeline, then evacuates and discards every eligible
     * victim in full-container steps until none remain.  Returns the
     * container bytes reclaimed.  Mappings are preserved (PBNs keep
     * their identity; only their physical locations move), so
     * concurrent readers are unaffected.
     */
    Result<std::uint64_t> run_gc(double min_dead_fraction);

    /** Historical name for run_gc() (stop-the-world compaction). */
    Result<std::uint64_t> compact(double min_dead_fraction = 0.5)
    { return run_gc(min_dead_fraction); }

    /**
     * One incremental GC step at the configured budget: picks (or
     * continues with) a victim container, relocates up to
     * `gc.step_budget_bytes` of its live payload through the normal
     * write path, and discards it once empty.  Runs automatically on
     * the commit sequencer after each batch when `gc.auto_run` is set;
     * callers invoking it directly must not have batches in flight.
     */
    Status gc_step();

    const GcStats &gc_stats() const { return gc_stats_; }

    /**
     * Checkpoint (journaling extension): snapshots the LBA-PBA table
     * to the table SSD and truncates the journal.  Requires
     * journal_metadata; call after flush().
     */
    Status checkpoint();

    /**
     * Crash test hook (journaling extension): discards the in-DRAM
     * LBA-PBA table and rebuilds it from the snapshot plus the
     * journal tail, exactly as a restart would.  Buffered-but-unflushed
     * writes survive in the NIC's non-volatile buffer and re-enter the
     * pipeline on the next flush, matching Sec 7.6.1's durability
     * story.
     */
    Status simulate_crash_and_recover();

    /**
     * Multi-tenant hint (Sec 8 extension): subsequent writes touch
     * the table cache as a high- or low-priority tenant; only
     * meaningful under EvictionPolicy::kPrioritizedLru.
     */
    void set_priority_hint(bool high) { high_priority_ = high; }

    /**
     * Stream/tenant tag stamped into the request context of subsequent
     * write batches and read batches (0 = untagged).  The tag rides
     * the same channel as the trace id (nic::SealedBatch,
     * ReadPipeline::run) — the plumbing ROADMAP item 1's per-tenant
     * QoS dimension will use.
     */
    void set_stream_tag(std::uint64_t tag) { stream_tag_ = tag; }
    std::uint64_t stream_tag() const { return stream_tag_; }

    /** Outcome of an integrity scrub pass. */
    struct ScrubReport {
        std::uint64_t chunks_verified = 0;
        std::uint64_t digest_mismatches = 0;  ///< Payload corruption.
        std::uint64_t mapping_errors = 0;     ///< Hash-PBN disagreement.

        bool clean() const
        { return digest_mismatches == 0 && mapping_errors == 0; }
    };

    /**
     * Integrity scrub (extension): re-reads every live chunk,
     * decompresses it, recomputes its SHA-256 and cross-checks both
     * the recorded digest and the Hash-PBN table's verdict.  A clean
     * store returns a report with zero errors; flipped bits in the
     * simulated flash show up as digest mismatches.
     */
    Result<ScrubReport> scrub();

    /** Outcome of an fsck pass over the mapping/log invariants. */
    struct FsckReport {
        std::uint64_t live_pbns_checked = 0;
        std::uint64_t missing_locations = 0;  ///< Referenced, unlocated.
        std::uint64_t unreachable_chunks = 0; ///< Location unreadable in
                                              ///< the container log.
        std::uint64_t space_mismatches = 0;   ///< Ledger vs table.
        std::uint64_t refcount_errors = 0;    ///< validate() failed.
        std::uint64_t superblock_regressions = 0;  ///< Version moved
                                                   ///< backwards.
        std::uint64_t superblock_seq = 0;     ///< Current version.

        bool
        clean() const
        {
            return missing_locations == 0 && unreachable_chunks == 0 &&
                   space_mismatches == 0 && refcount_errors == 0 &&
                   superblock_regressions == 0;
        }
    };

    /**
     * fsck-style invariant checker (GC extension): every PBN any LBA
     * references resolves to a readable chunk in a live container,
     * refcounts are consistent, the space ledger agrees with the
     * mapping table per container (and never exceeds the sealed
     * payload), and the superblock version never moves backwards
     * across calls — including across simulate_crash_and_recover().
     * The soak and crash tests run it after every scenario.
     */
    Result<FsckReport> fsck();

    /** Journal occupancy (0 when journaling is disabled). */
    std::uint64_t journal_records() const
    { return journal_ ? journal_->records() : 0; }

    /** Degraded-mode / crash-repair counters (also in obs_snapshot). */
    struct FaultStats {
        std::uint64_t transient_retries = 0;  ///< Retry attempts issued.
        std::uint64_t retry_exhausted = 0;    ///< Ops dead after retries.
        std::uint64_t backoff_ns = 0;         ///< Accounted retry backoff.
        std::uint64_t retire_deferred = 0;    ///< Reclaims skipped on a
                                              ///< journal-append failure.
        std::uint64_t dangling_repairs = 0;   ///< Hash-PBN entries whose
                                              ///< data a crash lost,
                                              ///< re-pointed on re-write.
    };
    const FaultStats &fault_stats() const { return fault_stats_; }

    /**
     * Structural self-check: LBA-PBA refcount consistency plus the
     * table-cache invariants.  The crash harness runs it after every
     * recovery.
     */
    Status validate() const;

    /** Live metric registry (per-stage histograms, flow counters). */
    obs::MetricRegistry &metrics() { return metrics_; }
    const obs::MetricRegistry &metrics() const { return metrics_; }

    /**
     * Unified observability snapshot: every stage histogram and
     * counter from the registry, plus reduction/cache/tree/journal
     * counters, derived gauges (hit rate, crash rate, reduction
     * ratio) and the host DRAM-bandwidth / CPU-core / DRAM-capacity
     * ledgers as report sections.  Quiescent read: snapshot after
     * flush(), not while lanes are running.
     */
    obs::ObsSnapshot obs_snapshot() const;

  private:
    /**
     * Cached histogram handles for the Fig 6 flow stages, resolved
     * once in the constructor so the hot path never does a name
     * lookup.  Write stages mirror the step numbering of Fig 6a;
     * read stages mirror Fig 6b.
     */
    struct StageHistograms {
        obs::Histogram *nic_buffer = nullptr;       ///< 6a step 1.
        obs::Histogram *batch = nullptr;            ///< Whole batch.
        obs::Histogram *hash = nullptr;             ///< 6a step 2.
        obs::Histogram *digest_xfer = nullptr;      ///< 6a step 2b.
        obs::Histogram *bucket_index = nullptr;     ///< 6a step 3.
        obs::Histogram *dedup_resolve = nullptr;    ///< 6a steps 4-5.
        obs::Histogram *verdict_xfer = nullptr;     ///< 6a step 6.
        obs::Histogram *map_update = nullptr;       ///< LBA-PBA maps.
        obs::Histogram *compress = nullptr;         ///< 6a steps 7-8.
        obs::Histogram *container_append = nullptr; ///< 6a steps 9-10.
        obs::Histogram *journal = nullptr;          ///< Metadata log.
        obs::Histogram *read_total = nullptr;       ///< Whole read.
        obs::Histogram *read_resolve = nullptr;     ///< 6b steps 3-4.
        obs::Histogram *read_fetch = nullptr;       ///< 6b step 5.
        obs::Histogram *read_decompress = nullptr;  ///< 6b step 6.
        obs::Histogram *read_return = nullptr;      ///< 6b step 7.
    };

    /**
     * Per-batch working state threaded through the serial stages.
     * Everything in here is private to one batch's execution.
     */
    struct BatchPlan {
        std::vector<ChunkVerdict> verdicts;
        std::vector<Pbn> pbns;
        std::vector<Pbn> unique_pbns;
        std::vector<Digest> unique_digests;
        std::vector<const nic::BufferedChunk *> unique;
        std::vector<accel::CompressedChunk> compressed;
        std::vector<Pbn> retire_candidates;
    };

    /** Seals the open batch and runs/submits it (depth-dependent). */
    Status process_batch();

    // The Fig 6a write path as explicit stages.  stage_hash runs on
    // hash-stage workers at depth > 1 (pure per-batch work); every
    // other stage runs inside execute_batch on the commit sequencer,
    // in batch-epoch order, because each one reads state an earlier
    // batch's commit mutates (dedup verdicts, cache recency, journal
    // order, PBN allocation).
    void stage_hash(nic::SealedBatch &batch);             ///< Step 2.
    Status stage_digest_transfer(const nic::SealedBatch &batch);
    Status stage_resolve(const nic::SealedBatch &batch,
                         BatchPlan &plan);                ///< Steps 4-5.
    Status stage_schedule(const nic::SealedBatch &batch,
                          BatchPlan &plan);               ///< Steps 6-7.
    Status stage_compress(const nic::SealedBatch &batch,
                          BatchPlan &plan);               ///< Step 8.
    Status stage_store(const nic::SealedBatch &batch,
                       BatchPlan &plan);                  ///< Steps 9-10.
    Status stage_apply(const nic::SealedBatch &batch,
                       BatchPlan &plan);                  ///< Map LBAs.
    void stage_commit(nic::SealedBatch &batch,
                      const BatchPlan &plan);             ///< Drop+retire.

    /** All serial stages for one batch (commit-sequencer body). */
    Status execute_batch(nic::SealedBatch &batch);

    /** Builds the (possibly sharded) cache index + table cache. */
    void build_cache_structures();

    /** Barrier: waits for in-flight batches; ok at depth 1 / no work. */
    Status drain_pipeline();

    /** Consumes a sticky pipeline error, unsealing retained batches. */
    Status surface_pipeline_error();

    Status bill_container_seals();

    /**
     * Fallible DMA with degraded-mode retry: transient (kUnavailable)
     * failures re-issue the descriptor up to config.transient_retries
     * times with accounted exponential backoff.
     */
    Status dma_checked(pcie::DeviceId src, pcie::DeviceId dst,
                       std::uint64_t bytes, const std::string &tag);

    /**
     * Degraded-mode retry loop shared by every transient-fallible
     * operation (DMA descriptors, flash reads, snapshot writes):
     * re-runs `op` while it fails kUnavailable, up to
     * config.transient_retries extra attempts, accounting each retry
     * and its backoff into FaultStats; an exhausted op counts
     * retry_exhausted.  Non-transient errors surface immediately.
     */
    Status retry_transient(const std::function<Status()> &op);

    /**
     * Backoff accounted for retry attempt `attempt` (0-based):
     * retry_backoff_ns << attempt, with the shift capped and the
     * product saturated so large transient_retries configurations
     * cannot overflow the 64-bit accumulator.
     */
    std::uint64_t backoff_for(unsigned attempt) const;

    /** Serial resolve + coalesce + fan-out + serial billing of one
     *  read batch; see read_pipeline.h for the stage contract. */
    void run_read_jobs(std::vector<ReadJob> &jobs);

    FidrConfig config_;
    Platform platform_;
    nic::FidrNic nic_;
    std::unique_ptr<cache::CacheIndex> index_;
    /** Per-shard HW trees (owned by index_); empty under B+ tree. */
    std::vector<cache::HwTreeCacheIndex *> hw_shards_;
    std::unique_ptr<cache::TableCache> table_cache_;
    std::unique_ptr<DedupIndex> dedup_;
    tables::LbaPbaTable lba_table_;
    tables::ContainerLog containers_;
    accel::CompressionEngine compressor_;
    accel::DecompressionEngine decomp_;
    /** Compression lanes; null when compress_lanes resolves to 1. */
    std::unique_ptr<ThreadPool> compress_pool_;
    /** Read-plane fan-out (inline when read_lanes resolves to 1). */
    std::unique_ptr<ReadPipeline> read_pipeline_;

    /**
     * Spill backend over the container log's reserved tail region of
     * the last data SSD: writes bill host DRAM -> data SSD through the
     * fabric (the "cheap sequential write" of the spill tier); reads
     * are raw flash reads, billed serially by the read plane after the
     * lane join.  Declared before chunk_cache_ so the cache (which
     * holds a raw pointer to it) is destroyed first.
     */
    class SpillDevice final : public cache::SpillBackend {
      public:
        SpillDevice(FidrSystem &system, std::size_t ssd_index,
                    std::uint64_t base, std::uint64_t capacity)
            : system_(system), ssd_(ssd_index), base_(base),
              capacity_(capacity)
        {}

        std::uint64_t capacity_bytes() const override
        { return capacity_; }
        Status write(std::uint64_t offset,
                     std::span<const std::uint8_t> data) override;
        Result<Buffer> read(std::uint64_t offset,
                            std::uint64_t size) const override;
        std::size_t ssd_index() const { return ssd_; }

      private:
        FidrSystem &system_;
        std::size_t ssd_;
        std::uint64_t base_;
        std::uint64_t capacity_;
    };
    std::unique_ptr<SpillDevice> spill_device_;
    /** Null when chunk_cache_bytes == 0. */
    std::unique_ptr<cache::ChunkReadCache> chunk_cache_;

    void retire_if_dead(Pbn pbn);
    Status journal_append(const tables::JournalRecord &record);

    /** Debits CPU + DRAM + table-SSD traffic for one dedup lookup
     *  (shared by stage_resolve and the cluster probe surface). */
    void bill_dedup_lookup(const DedupLookup &lookup);

    /** Committed, readable chunk behind `digest`?  Shared probe core
     *  of probe_digest / write_ref (caller drained the pipeline). */
    Result<std::optional<Pbn>> resolve_committed_digest(
        const Digest &digest);

    /**
     * Relocates one live chunk out of its container through the
     * normal write billing path: read, DMA to the engine, re-append,
     * journal + apply the new location, re-key the chunk read cache.
     * The PBN keeps its identity; only the location changes.
     */
    Status gc_relocate(Pbn pbn);

    /**
     * One GC step under `sched`'s policy with `budget` bytes of
     * relocation allowance (0 = unbounded).  Shared by the
     * incremental gc_step() and the run-to-completion run_gc().
     */
    Status gc_step_impl(const GcScheduler &sched, std::uint64_t budget);

    /** Post-commit hook: budgeted steps, errors swallowed into
     *  gc.failed_steps (the batch itself already committed). */
    void run_auto_gc();

    std::unique_ptr<tables::MetadataJournal> journal_;
    std::uint64_t snapshot_base_ = 0;
    SpaceTracker space_;
    GcScheduler gc_scheduler_;
    GcStats gc_stats_;
    /** Victim being evacuated across incremental steps. */
    std::optional<std::uint64_t> gc_victim_;
    obs::Histogram *gc_pause_ = nullptr;
    /** fsck monotonicity cursor over the container-log superblock. */
    std::uint64_t last_fsck_superblock_seq_ = 0;
    FaultStats fault_stats_;
    bool high_priority_ = false;
    std::uint64_t stream_tag_ = 0;
    Pbn next_pbn_ = 0;
    std::uint64_t sealed_billed_ = 0;
    ReductionStats stats_;
    obs::MetricRegistry metrics_;
    StageHistograms hist_;
    /** Pipeline stage-occupancy histograms (recorded at every depth
     *  so depth sweeps compare like for like). */
    obs::Histogram *pipe_hash_busy_ = nullptr;
    obs::Histogram *pipe_execute_busy_ = nullptr;
    /** Physical chunk fetches issued to data SSDs (cache misses);
     *  the read-bench's cache-effectiveness signal. */
    obs::Counter *read_ssd_fetches_ = nullptr;
    /** Compressed images served from the spill ring (they touch the
     *  spill SSD but are *not* chunk fetches: they never count toward
     *  read.ssd_fetches, which the bench gates on). */
    obs::Counter *read_spill_reads_ = nullptr;
    /** Null at depth 1 (synchronous).  Declared last: it must be
     *  destroyed (quiesced/joined) before any state its stages use. */
    std::unique_ptr<WritePipeline> pipeline_;
};

}  // namespace fidr::core
