/**
 * @file
 * Incremental, rate-limited garbage collection over the append-only
 * container log.
 *
 * The stop-the-world compact() of earlier revisions drained the write
 * pipeline and rewrote whole containers in one pass; at steady state
 * (write-until-churn) that turns every capacity stall into a latency
 * cliff.  This module splits reclamation into *steps*: each step
 * relocates at most `step_budget_bytes` of live payload out of one
 * victim container, and the FidrSystem runs one step on the commit
 * sequencer after each batch commit — GC interleaves with the write
 * plane at batch granularity instead of blocking it, and with the
 * read plane trivially (relocation preserves PBN identity; only the
 * physical location moves, and the chunk read cache is re-keyed per
 * moved chunk).
 *
 * Victim selection is a greedy highest-dead-fraction policy over the
 * SpaceTracker ledger (ties break to the lowest container id so every
 * run of the same history picks the same victims).  Under free-space
 * pressure — the log's free-slot fraction at or below the reserve
 * watermark — the dead-fraction threshold is waived: any container
 * with dead bytes is fair game, because reclaiming *something* beats
 * preserving write-amp.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "fidr/core/space.h"

namespace fidr::core {

/** GC knobs (FidrConfig::gc). */
struct GcConfig {
    /**
     * Run one budgeted GC step on the commit sequencer after every
     * batch commit.  Off by default: the explicit compact()/run_gc()
     * entry points work either way.
     */
    bool auto_run = false;

    /**
     * Max live payload bytes relocated per step; 0 = a whole victim
     * container per step.  The knob trades reclamation latency for
     * per-batch pause (gc.pause_ns tracks the cost).
     */
    std::uint64_t step_budget_bytes = 256 * 1024;

    /** Steady-state victim threshold: collect containers whose dead
     *  share reaches this fraction. */
    double dead_fraction = 0.5;

    /**
     * Reserve watermark: when the container log's free-slot fraction
     * drops to (or below) this, GC ignores dead_fraction and collects
     * whatever has dead bytes until the log climbs back above it.
     */
    double reserve_free_fraction = 0.10;

    /** Seals between best-effort superblock writes (container log). */
    std::uint64_t superblock_interval = 8;
};

/** Monotonic GC counters (exported via obs_snapshot as gc.*). */
struct GcStats {
    std::uint64_t steps = 0;            ///< Steps that found a victim.
    std::uint64_t idle_steps = 0;       ///< Steps with nothing to do.
    std::uint64_t failed_steps = 0;     ///< Steps aborted by an error.
    std::uint64_t relocated_chunks = 0;
    std::uint64_t relocated_bytes = 0;  ///< Compressed payload moved.
    std::uint64_t containers_reclaimed = 0;
    std::uint64_t reclaimed_bytes = 0;
    std::uint64_t cache_rekeys = 0;     ///< Read-cache entries moved.
    /** Steps that ran while other write batches were in flight — the
     *  concurrency witness (nonzero = GC overlapped the write plane),
     *  meaningful even on one-core hosts where wall-clock overlap of
     *  two runnable threads can round to zero. */
    std::uint64_t concurrent_steps = 0;
};

/** Deterministic victim selection over the space ledger. */
class GcScheduler {
  public:
    explicit GcScheduler(const GcConfig &config) : config_(config) {}

    /** True when free space is at or below the reserve watermark. */
    bool
    under_pressure(double free_fraction) const
    {
        return free_fraction <= config_.reserve_free_fraction;
    }

    /**
     * The container GC should collect next: highest dead fraction
     * among eligible containers meeting the threshold (waived under
     * pressure), ties to the lowest id.  `eligible` filters out
     * containers the log cannot discard (open / already discarded).
     */
    std::optional<std::uint64_t>
    select_victim(const SpaceTracker &space, double free_fraction,
                  const std::function<bool(std::uint64_t)> &eligible) const
    {
        const bool pressure = under_pressure(free_fraction);
        std::optional<std::uint64_t> best;
        std::uint64_t best_dead = 0;
        std::uint64_t best_total = 1;
        for (const auto &[container, usage] : space.containers()) {
            if (usage.dead_bytes == 0 || !eligible(container))
                continue;
            if (!pressure &&
                usage.dead_fraction() < config_.dead_fraction)
                continue;
            const std::uint64_t total =
                usage.live_bytes + usage.dead_bytes;
            // Cross-multiplied fraction compare: container payloads
            // are < 2^23 bytes, so the products fit comfortably.
            const bool better =
                !best ||
                usage.dead_bytes * best_total > best_dead * total ||
                (usage.dead_bytes * best_total == best_dead * total &&
                 container < *best);
            if (better) {
                best = container;
                best_dead = usage.dead_bytes;
                best_total = total;
            }
        }
        return best;
    }

    const GcConfig &config() const { return config_; }

  private:
    GcConfig config_;
};

}  // namespace fidr::core
