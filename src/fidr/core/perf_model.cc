#include "fidr/core/perf_model.h"

namespace fidr::core {
namespace {

constexpr Bandwidth kUnbounded = 1e18;

/** Ceilings common to both systems, from platform ledgers. */
Projection
project_platform(const Platform &platform, const ReductionStats &stats,
                 Bandwidth target)
{
    Projection out;
    out.client_bytes = static_cast<double>(
        (stats.chunks_written + stats.chunks_read) * kChunkSize);
    FIDR_CHECK(out.client_bytes > 0);
    out.pcie_target = target;

    const double mem_total = platform.fabric().host_memory().total();
    out.mem_required = mem_total / out.client_bytes * target;
    out.mem_cap =
        mem_total > 0
            ? platform.config().memory_bandwidth * out.client_bytes /
                  mem_total
            : kUnbounded;

    const double cpu_total = platform.cpu().ledger().total();
    out.cores_required = cpu_total / out.client_bytes * target;
    out.cpu_cap = cpu_total > 0 ? platform.config().cpu_cores *
                                      out.client_bytes / cpu_total
                                : kUnbounded;

    const auto &table_ssd = platform.config().table_ssd;
    // Read and write streams use independent channels in the model;
    // the tighter one limits.
    const double t_read =
        static_cast<double>(platform.table_ssd().bytes_read());
    const double t_write =
        static_cast<double>(platform.table_ssd().bytes_written());
    Bandwidth ssd_cap = kUnbounded;
    if (t_read > 0)
        ssd_cap = std::min(ssd_cap, table_ssd.read_bandwidth *
                                        out.client_bytes / t_read);
    if (t_write > 0)
        ssd_cap = std::min(ssd_cap, table_ssd.write_bandwidth *
                                        out.client_bytes / t_write);
    out.table_ssd_cap = ssd_cap;

    out.tree_cap = kUnbounded;
    return out;
}

}  // namespace

const char *
Projection::bottleneck() const
{
    const Bandwidth t = throughput();
    if (t >= pcie_target)
        return "PCIe target";
    if (t == mem_cap)
        return "host DRAM bandwidth";
    if (t == cpu_cap)
        return "CPU cores";
    if (t == tree_cap)
        return "Cache HW-Engine";
    return "table SSD bandwidth";
}

Projection
project(const BaselineSystem &system, Bandwidth target)
{
    return project_platform(system.platform(), system.reduction(), target);
}

Projection
project(const FidrSystem &system, Bandwidth target)
{
    Projection out =
        project_platform(system.platform(), system.reduction(), target);
    if (const cache::HwTreeCacheIndex *hw = system.hw_index()) {
        const double busy = hw->pipeline().busy_seconds();
        if (busy > 0)
            out.tree_cap = out.client_bytes / busy;
    }
    return out;
}

}  // namespace fidr::core
