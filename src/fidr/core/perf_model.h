/**
 * @file
 * Bottleneck projection: the paper's evaluation method (Sec 7.1/7.5).
 *
 * The authors measure resource demand at low throughput and project to
 * the per-socket target with a "basic simulation model based on our
 * measured CPU utilization, memory bandwidth and the throughput of
 * FIDR Cache HW-Engine".  We do the same: after driving a workload
 * through a system, every ledger knows demand-per-client-byte, and the
 * projected system throughput is the minimum over
 *
 *   - the conservative PCIe target (75 GB/s per socket),
 *   - host DRAM bandwidth / DRAM-traffic-per-byte  (Fig 4),
 *   - socket cores / core-time-per-byte            (Fig 5),
 *   - the Cache HW-Engine ceiling                  (Fig 13),
 *   - table SSD bandwidth / table-IO-per-byte      (Table 5 "All").
 */
#pragma once

#include "fidr/common/units.h"
#include "fidr/core/baseline_system.h"
#include "fidr/core/fidr_system.h"

namespace fidr::core {

/** Per-resource ceilings and target-rate requirements. */
struct Projection {
    double client_bytes = 0;

    Bandwidth pcie_target = 0;      ///< Configured socket target.
    Bandwidth mem_cap = 0;          ///< DRAM-bandwidth ceiling.
    Bandwidth cpu_cap = 0;          ///< Core-count ceiling.
    Bandwidth tree_cap = 0;         ///< Cache HW-Engine ceiling (or inf).
    Bandwidth table_ssd_cap = 0;    ///< Table SSD bandwidth ceiling.

    Bandwidth mem_required = 0;     ///< DRAM BW needed at pcie_target.
    double cores_required = 0;      ///< Cores needed at pcie_target.

    /** Projected achievable client throughput. */
    Bandwidth
    throughput() const
    {
        Bandwidth t = pcie_target;
        t = std::min(t, mem_cap);
        t = std::min(t, cpu_cap);
        t = std::min(t, tree_cap);
        t = std::min(t, table_ssd_cap);
        return t;
    }

    /** Name of the resource that limits throughput(). */
    const char *bottleneck() const;
};

/** Projects a driven baseline system to `target` client throughput. */
Projection project(const BaselineSystem &system,
                   Bandwidth target = calib::kTargetThroughput);

/** Projects a driven FIDR system to `target` client throughput. */
Projection project(const FidrSystem &system,
                   Bandwidth target = calib::kTargetThroughput);

}  // namespace fidr::core
