#include "fidr/core/pipeline_sim.h"

#include <algorithm>

#include "fidr/common/rng.h"
#include "fidr/common/status.h"
#include "fidr/common/types.h"
#include "fidr/sim/event_queue.h"

namespace fidr::core {

const char *
PipelineSimResult::bottleneck() const
{
    const struct {
        const char *name;
        double utilization;
    } stages[] = {
        {"NIC SHA array", sha_utilization},
        {"host CPU", host_utilization},
        {"Cache HW-Engine", tree_utilization},
        {"Compression Engines", comp_utilization},
        {"data SSDs", ssd_utilization},
        {"table SSDs", table_ssd_utilization},
        {"Decompression Engines", decomp_utilization},
    };
    const char *best = stages[0].name;
    double most = stages[0].utilization;
    for (const auto &stage : stages) {
        if (stage.utilization > most) {
            most = stage.utilization;
            best = stage.name;
        }
    }
    return best;
}

PipelineSimResult
simulate_write_pipeline(const PipelineSimConfig &config,
                        std::uint64_t chunks, std::uint64_t seed)
{
    FIDR_CHECK(chunks > 0);
    Rng rng(seed);

    sim::MultiServerQueue sha(config.sha_cores);
    sim::MultiServerQueue host(config.host_cores);
    // One engine: each chunk occupies the pipeline for its search
    // cycles plus, on a miss, two lane-amortized update slots (the
    // calibrated Fig 13 model).
    sim::MultiServerQueue tree(1);
    sim::MultiServerQueue comp(config.comp_engines);
    sim::MultiServerQueue ssd(config.data_ssds);
    sim::MultiServerQueue table_ssd(config.table_ssds);
    sim::MultiServerQueue decomp(config.decomp_engines);

    const auto ns_of = [](double seconds) {
        return static_cast<SimTime>(seconds * 1e9);
    };
    const SimTime sha_service =
        ns_of(kChunkSize / config.sha_core_rate);
    const SimTime host_service =
        ns_of(config.host_us_per_chunk * 1e-6);
    const SimTime search_service =
        ns_of(calib::kHwTreeSearchCycles / config.tree_clock_hz);
    const SimTime update_service = ns_of(
        calib::kHwTreeUpdateCyclesPerLevel * config.tree_levels /
        (config.tree_clock_hz *
         static_cast<double>(config.tree_update_lanes)));
    const SimTime comp_service =
        ns_of(kChunkSize / config.comp_engine_rate);
    const SimTime ssd_service = ns_of(
        kChunkSize * (1.0 - config.comp_ratio) / config.ssd_write_rate);
    const SimTime table_fetch_service =
        ns_of(kBucketSize / config.table_ssd_rate);
    const SimTime read_host_service =
        ns_of(config.read_us_per_chunk * 1e-6);
    const SimTime ssd_read_service = ns_of(
        kChunkSize * (1.0 - config.comp_ratio) / config.ssd_read_rate);
    const SimTime decomp_service =
        ns_of(kChunkSize / config.decomp_engine_rate);

    SimTime makespan = 0;
    for (std::uint64_t i = 0; i < chunks; ++i) {
        // Open-loop offered load: everything is available at t=0; the
        // pipeline's own service rates pace the stream.
        if (rng.next_bool(config.read_fraction)) {
            // Read path: host LBA-PBA + NVMe stack, data SSD read of
            // the compressed chunk, decompression, NIC egress (P2P).
            SimTime t = host.serve(0, read_host_service);
            t = ssd.serve(t, ssd_read_service);
            t = decomp.serve(t, decomp_service);
            makespan = std::max(makespan, t);
            continue;
        }
        SimTime t = sha.serve(0, sha_service);
        t = host.serve(t, host_service);
        SimTime tree_service = search_service;
        if (rng.next_bool(config.miss_rate)) {
            // Miss: fetch the bucket from a table SSD, then insert it
            // and delete the victim in the tree.
            t = table_ssd.serve(t, table_fetch_service);
            tree_service += 2 * update_service;
        }
        t = tree.serve(t, tree_service);
        if (rng.next_bool(1.0 - config.dedup_ratio)) {
            // Unique chunk: compress and (in its container) hit flash.
            t = comp.serve(t, comp_service);
            t = ssd.serve(t, ssd_service);
        }
        makespan = std::max(makespan, t);
    }

    PipelineSimResult out;
    out.seconds = static_cast<double>(makespan) * 1e-9;
    out.throughput =
        static_cast<double>(chunks) * kChunkSize / out.seconds;
    out.sha_utilization = sha.utilization(out.seconds);
    out.host_utilization = host.utilization(out.seconds);
    out.tree_utilization = tree.utilization(out.seconds);
    out.comp_utilization = comp.utilization(out.seconds);
    out.ssd_utilization = ssd.utilization(out.seconds);
    out.table_ssd_utilization = table_ssd.utilization(out.seconds);
    out.decomp_utilization = decomp.utilization(out.seconds);
    return out;
}

}  // namespace fidr::core
