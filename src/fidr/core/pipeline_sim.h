/**
 * @file
 * Discrete-event simulation of the FIDR write pipeline.
 *
 * The analytic projection (perf_model.h) finds the bottleneck from
 * per-byte resource demands; this simulator complements it by running
 * chunks through the staged pipeline with explicit queueing:
 *
 *   NIC SHA-256 core array -> host verdict processing (core pool) ->
 *   Cache HW-Engine (pipelined tree) -> [unique only] Compression
 *   Engine pool -> data SSD writes
 *
 * Each stage is a MultiServerQueue (or a rate-derived service time),
 * so the simulated throughput reflects both the bottleneck *and* the
 * pipeline's queueing behaviour, and per-stage utilizations show who
 * is saturated.  The validation bench cross-checks this DES against
 * the analytic projection on the Table 3 workloads — the paper's
 * Sec 7.1 "simulation model" rebuilt both ways.
 */
#pragma once

#include <cstdint>

#include "fidr/common/units.h"
#include "fidr/host/calibration.h"

namespace fidr::core {

/** Hardware sizing of the simulated write pipeline (one socket). */
struct PipelineSimConfig {
    // NIC SHA array: enough 4 Gbps cores across the NIC group for the
    // socket target (Sec 6.2 scaled to 75 GB/s).
    unsigned sha_cores = 152;
    Bandwidth sha_core_rate = gb_per_s(0.5);

    // Host verdict processing (bucket scan + LRU + bookkeeping +
    // orchestration, the FIDR-resident CPU work).
    unsigned host_cores = 22;
    double host_us_per_chunk = calib::kCpuOrchestrationPerChunk +
                               calib::kCpuBucketScanPerChunk +
                               calib::kCpuLruPerChunk +
                               calib::kCpuTableMiscPerChunk;

    // Cache HW-Engine (single pipelined tree).
    unsigned tree_update_lanes = 4;
    unsigned tree_levels = calib::kHwTreePipelineLevels;
    double tree_clock_hz = calib::kHwTreeClockHz;

    // Compression Engine pool.
    unsigned comp_engines = 4;
    Bandwidth comp_engine_rate = gb_per_s(20);

    // Data SSD array (compressed stream).
    unsigned data_ssds = 8;
    Bandwidth ssd_write_rate = gb_per_s(2.7);

    // Table SSD pool serving 4 KB bucket fetches on cache misses.
    unsigned table_ssds = 1;
    Bandwidth table_ssd_rate = gb_per_s(16);

    // Decompression Engine pool (read path).
    unsigned decomp_engines = 2;
    Bandwidth decomp_engine_rate = gb_per_s(20);
    Bandwidth ssd_read_rate = gb_per_s(3.5);

    // Workload statistics.
    double miss_rate = 0.19;
    double dedup_ratio = 0.84;
    double comp_ratio = 0.5;
    double read_fraction = 0.0;
    /** Host work per read chunk; drops to the offload residual when
     *  the Sec 7.5 extension is enabled. */
    double read_us_per_chunk = calib::kCpuReadPerChunk;
};

/** Simulation outcome. */
struct PipelineSimResult {
    double seconds = 0;          ///< Makespan for the chunk stream.
    Bandwidth throughput = 0;    ///< Client bytes per second.
    double sha_utilization = 0;
    double host_utilization = 0;
    double tree_utilization = 0;
    double comp_utilization = 0;
    double ssd_utilization = 0;
    double table_ssd_utilization = 0;
    double decomp_utilization = 0;

    /** Name of the most-utilized stage. */
    const char *bottleneck() const;
};

/** Runs `chunks` 4 KB writes through the pipeline. */
PipelineSimResult simulate_write_pipeline(const PipelineSimConfig &config,
                                          std::uint64_t chunks,
                                          std::uint64_t seed = 1);

}  // namespace fidr::core
