#include "fidr/core/platform.h"

namespace fidr::core {

Platform::Platform(const PlatformConfig &config)
    : config_(config),
      fabric_(pcie::FabricConfig{}),
      cpu_(config.cpu_cores),
      memory_(config.memory_capacity),
      data_ssds_(config.data_ssd_count, config.data_ssd),
      table_ssd_(config.table_ssd),
      hash_table_(table_ssd_,
                  tables::HashPbnTable::buckets_for_capacity(
                      config.expected_unique_chunks))
{
    // Switch group 0: the data path (NIC -> Compression Engine -> data
    // SSDs, and data SSDs -> Decompression Engine -> NIC for reads).
    const pcie::SwitchId data_switch = fabric_.add_switch("data-path");
    nic_ = fabric_.add_device("fidr-nic", data_switch);
    comp_ = fabric_.add_device("compression-engine", data_switch);
    decomp_ = fabric_.add_device("decompression-engine", data_switch);
    for (std::size_t i = 0; i < config.data_ssd_count; ++i) {
        data_ssd_devs_.push_back(fabric_.add_device(
            "data-ssd-" + std::to_string(i), data_switch));
    }

    // Switch group 1: the metadata path (Cache HW-Engine + table SSD).
    const pcie::SwitchId meta_switch = fabric_.add_switch("metadata-path");
    cache_engine_ = fabric_.add_device("cache-hw-engine", meta_switch);
    table_ssd_dev_ = fabric_.add_device("table-ssd", meta_switch);
}

std::size_t
Platform::cache_lines() const
{
    const double lines = static_cast<double>(hash_table_.num_buckets()) *
                         config_.cache_fraction;
    return static_cast<std::size_t>(lines) + 1;
}

}  // namespace fidr::core
