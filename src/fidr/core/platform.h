/**
 * @file
 * The shared hardware platform both storage systems run on: one CPU
 * socket, host DRAM, a PCIe fabric with switch-grouped devices, data
 * SSDs, a table SSD, and the Hash-PBN table living on it.
 *
 * Topology (paper Sec 5.6, Fig 6): the NIC, Compression Engine,
 * Decompression Engine and data SSDs share a PCIe switch so FIDR's
 * peer-to-peer transfers never cross the root complex; the Cache
 * HW-Engine and the table SSD share a second switch.  The baseline
 * uses the same physical topology but stages every transfer through
 * host memory (it never issues P2P DMA).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fidr/host/calibration.h"
#include "fidr/host/host.h"
#include "fidr/pcie/fabric.h"
#include "fidr/ssd/ssd.h"
#include "fidr/tables/hash_pbn.h"

namespace fidr::core {

/** Sizing of one experiment platform. */
struct PlatformConfig {
    double cpu_cores = calib::kSocketCores;
    Bandwidth memory_bandwidth = calib::kSocketMemBandwidth;
    std::uint64_t memory_capacity = 256ull * kGiB;

    std::size_t data_ssd_count = 2;
    ssd::SsdConfig data_ssd;
    ssd::SsdConfig table_ssd;

    /** Hash-PBN table sizing: expected unique chunks. */
    std::uint64_t expected_unique_chunks = 2'000'000;

    /** Table cache size as a fraction of the table (Sec 7.1: 2.8%). */
    double cache_fraction = 0.028;

    PlatformConfig()
    {
        data_ssd.name = "data-ssd";
        data_ssd.capacity_bytes = 1 * kTB;
        table_ssd.name = "table-ssd";
        table_ssd.capacity_bytes = 1 * kTB;
        // Table SSDs serve small random buckets; the paper's Table 5
        // budget is 2 GB/s.
        table_ssd.read_bandwidth = gb_per_s(2.0);
        table_ssd.write_bandwidth = gb_per_s(2.0);
    }
};

/** Instantiated devices + resource ledgers of one server socket. */
class Platform {
  public:
    explicit Platform(const PlatformConfig &config);

    const PlatformConfig &config() const { return config_; }

    pcie::Fabric &fabric() { return fabric_; }
    const pcie::Fabric &fabric() const { return fabric_; }
    host::HostCpu &cpu() { return cpu_; }
    const host::HostCpu &cpu() const { return cpu_; }
    host::HostMemory &memory() { return memory_; }
    const host::HostMemory &memory() const { return memory_; }

    ssd::SsdArray &data_ssds() { return data_ssds_; }
    const ssd::SsdArray &data_ssds() const { return data_ssds_; }
    ssd::Ssd &table_ssd() { return table_ssd_; }
    const ssd::Ssd &table_ssd() const { return table_ssd_; }
    tables::HashPbnTable &hash_table() { return hash_table_; }
    const tables::HashPbnTable &hash_table() const { return hash_table_; }

    /** Cache lines implied by config (cache_fraction of the table). */
    std::size_t cache_lines() const;

    // PCIe endpoints.
    pcie::DeviceId nic() const { return nic_; }
    pcie::DeviceId compression_engine() const { return comp_; }
    pcie::DeviceId decompression_engine() const { return decomp_; }
    pcie::DeviceId cache_engine() const { return cache_engine_; }
    pcie::DeviceId table_ssd_dev() const { return table_ssd_dev_; }
    pcie::DeviceId data_ssd_dev(std::size_t i) const
    { return data_ssd_devs_.at(i); }
    std::size_t data_ssd_dev_count() const { return data_ssd_devs_.size(); }

  private:
    PlatformConfig config_;
    pcie::Fabric fabric_;
    host::HostCpu cpu_;
    host::HostMemory memory_;
    ssd::SsdArray data_ssds_;
    ssd::Ssd table_ssd_;
    tables::HashPbnTable hash_table_;

    pcie::DeviceId nic_;
    pcie::DeviceId comp_;
    pcie::DeviceId decomp_;
    pcie::DeviceId cache_engine_;
    pcie::DeviceId table_ssd_dev_;
    std::vector<pcie::DeviceId> data_ssd_devs_;
};

/** Canonical ledger tags: Table 1 rows (host DRAM traffic). */
namespace memtag {
inline const std::string kNicHost = "NIC<->host memory";
inline const std::string kPrediction = "Host memory (unique prediction)";
inline const std::string kFpga = "Host memory<->FPGAs";
inline const std::string kTableCache = "Table cache management";
inline const std::string kDataSsd = "Host memory<->data SSD";
inline const std::string kChunkCache = "Chunk read cache<->NIC";
}  // namespace memtag

/** Canonical CPU task tags: Fig 5b / Table 2 categories. */
namespace cputag {
inline const std::string kPredictor = "unique chunk predictor";
inline const std::string kOrchestration = "request/IO orchestration";
inline const std::string kTreeIndex = "table cache tree indexing";
inline const std::string kTableSsd = "table SSD access";
inline const std::string kScan = "table cache content access";
inline const std::string kLru = "table cache replacement";
inline const std::string kTableMisc = "table cache misc";
inline const std::string kReadPath = "read path";
}  // namespace cputag

}  // namespace fidr::core
