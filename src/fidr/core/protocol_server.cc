#include "fidr/core/protocol_server.h"

namespace fidr::core {

Buffer
ProtocolServer::ack_for(const nic::Frame &request)
{
    nic::Frame ack;
    ack.op = nic::Op::kAck;
    ack.lba = request.lba;

    if (request.op == nic::Op::kWrite) {
        ++stats_.writes;
        Buffer payload = request.payload;
        const Status written =
            server_.write(request.lba, std::move(payload));
        if (!written.is_ok())
            ++stats_.errors;
        // Write ack carries one status byte (0 = OK).
        ack.payload.push_back(written.is_ok() ? 0 : 1);
        return nic::encode(ack);
    }

    ++stats_.reads;
    Result<Buffer> data = server_.read(request.lba);
    if (data.is_ok()) {
        ack.payload = data.take();
    } else {
        ++stats_.errors;  // Empty payload signals the failure.
    }
    return nic::encode(ack);
}

Result<Buffer>
ProtocolServer::handle(std::span<const std::uint8_t> wire)
{
    Buffer out;
    std::size_t offset = 0;
    while (offset < wire.size()) {
        Result<nic::Frame> frame = nic::decode(wire, offset);
        if (!frame.is_ok()) {
            ++stats_.errors;
            return frame.status();
        }
        ++stats_.frames_decoded;
        if (frame.value().op == nic::Op::kAck) {
            ++stats_.errors;
            return Status::invalid_argument(
                "client sent an acknowledgment frame");
        }
        const Buffer ack = ack_for(frame.value());
        out.insert(out.end(), ack.begin(), ack.end());
    }
    return out;
}

}  // namespace fidr::core
