/**
 * @file
 * Wire-protocol front end: the piece of the NIC that decodes client
 * frames (Sec 6.2's simplified storage protocol) and drives a
 * StorageServer, producing acknowledgment frames.
 *
 * Flow per the paper: write -> wait -> acknowledgment; read -> wait ->
 * acknowledgment carrying the data.  Errors are acknowledged with an
 * empty payload (length 0 where data was expected) so a client can
 * distinguish a missing LBA from a 4 KB result.
 */
#pragma once

#include <cstdint>

#include "fidr/core/server.h"
#include "fidr/nic/protocol.h"

namespace fidr::core {

/** Per-connection protocol statistics. */
struct ProtocolStats {
    std::uint64_t frames_decoded = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t errors = 0;  ///< Malformed frames or failed ops.
};

/** Decodes a client byte stream and applies it to a storage server. */
class ProtocolServer {
  public:
    explicit ProtocolServer(StorageServer &server)
        : server_(server) {}

    /**
     * Consumes every complete frame in `wire` and returns the
     * concatenated acknowledgment frames.  A trailing partial frame
     * is an error (the NIC's TCP engine delivers whole requests).
     */
    Result<Buffer> handle(std::span<const std::uint8_t> wire);

    const ProtocolStats &stats() const { return stats_; }

  private:
    Buffer ack_for(const nic::Frame &request);

    StorageServer &server_;
    ProtocolStats stats_;
};

}  // namespace fidr::core
