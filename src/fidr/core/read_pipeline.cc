#include "fidr/core/read_pipeline.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "fidr/obs/trace.h"

namespace fidr::core {

ReadPipeline::ReadPipeline(std::size_t lanes)
    : lanes_(lanes == 0 ? ThreadPool::hardware_lanes() : lanes)
{
    if (lanes_ > 1)
        pool_ = std::make_unique<ThreadPool>(lanes_);
}

void
ReadPipeline::run(std::vector<ReadJob> &jobs,
                  const std::vector<std::size_t> &pending,
                  const std::function<void(ReadJob &)> &body,
                  std::uint64_t trace_id, std::uint64_t stream_tag)
{
    if (pending.empty())
        return;
    if (!pool_ || pending.size() == 1) {
        // Serial path: same job order a 1-lane pool would produce.
        // Runs on the orchestrating thread, whose request context is
        // already in scope.
        for (const std::size_t j : pending)
            body(jobs[j]);
        return;
    }
    // Shard like parallel_for (one contiguous shard per lane, shard
    // boundaries a pure function of (n, lanes)) but dispatch with
    // submit(), which never runs inline: on a one-core host
    // parallel_for collapses onto the caller, and the fetch lanes
    // would lose their own trace rings — the request's flow links
    // could never span threads.  Reads tolerate the latch cost; the
    // join keeps the serial-billing determinism contract intact.
    const std::size_t shards = std::min(lanes_, pending.size());
    const std::size_t q = pending.size() / shards;
    const std::size_t r = pending.size() % shards;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t remaining = shards;
    std::size_t begin = 0;
    for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t end = begin + q + (s < r ? 1 : 0);
        pool_->submit([&, begin, end] {
            {
                obs::ScopedRequest request(trace_id, stream_tag);
                FIDR_TRACE_SPAN(span, obs::Tpoint::kReadFetchLane,
                                begin, end - begin);
                for (std::size_t i = begin; i < end; ++i)
                    body(jobs[pending[i]]);
            }
            std::lock_guard<std::mutex> lock(done_mutex);
            if (--remaining == 0)
                done_cv.notify_one();
        });
        begin = end;
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace fidr::core
