#include "fidr/core/read_pipeline.h"

#include "fidr/obs/trace.h"

namespace fidr::core {

ReadPipeline::ReadPipeline(std::size_t lanes)
    : lanes_(lanes == 0 ? ThreadPool::hardware_lanes() : lanes)
{
    if (lanes_ > 1)
        pool_ = std::make_unique<ThreadPool>(lanes_);
}

void
ReadPipeline::run(std::vector<ReadJob> &jobs,
                  const std::vector<std::size_t> &pending,
                  const std::function<void(ReadJob &)> &body)
{
    if (pending.empty())
        return;
    if (!pool_ || pending.size() == 1) {
        // Serial path: same job order a 1-lane pool would produce.
        for (const std::size_t j : pending)
            body(jobs[j]);
        return;
    }
    pool_->parallel_for(
        pending.size(), [&](std::size_t begin, std::size_t end) {
            FIDR_TRACE_SPAN(span, obs::Tpoint::kReadFetchLane, begin,
                            end - begin);
            for (std::size_t i = begin; i < end; ++i)
                body(jobs[pending[i]]);
        });
}

}  // namespace fidr::core
