/**
 * @file
 * Batched Fig 6b read plane: container coalescing + lane fan-out.
 *
 * `FidrSystem::read_batch` mirrors what core::WritePipeline did for
 * Fig 6a — it splits the read flow into what is pure per-chunk work
 * and what is order-sensitive shared-state mutation, and only the
 * former fans out:
 *
 *   1. *Resolve* (serial, input order): NIC LBA-lookup short-circuit,
 *      LBA transfer + CPU billing, LBA->PBA lookup.  Serial because it
 *      bills ledgers and touches the mapping table.
 *   2. *Coalesce* (serial): slots whose LBAs resolve to the same
 *      physical chunk — duplicates under dedup, or the same LBA twice
 *      in a batch — collapse into one ReadJob, in first-occurrence
 *      order, so each chunk is fetched and decompressed exactly once.
 *   3. *Fetch + decompress* (parallel): each miss job reads its
 *      compressed image from the container log and decompresses it.
 *      Pure per-job work: flash page copies, the LZ kernel, and
 *      job-local retry counting only.  Fanned across
 *      `FidrConfig::read_lanes` by this class.
 *   4. *Bill + return* (serial, job then input order): every fabric
 *      DMA, per-SSD attribution, histogram, fault-stat merge and
 *      cache fill runs on the orchestrating thread after the join, so
 *      results and ledgers are bit-identical across lane counts —
 *      the same determinism contract as test_parallel_determinism.
 *
 * This file owns the job shape and the fan-out; the serial stages
 * live in FidrSystem::read_batch because they touch its state.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fidr/cache/chunk_cache.h"
#include "fidr/common/status.h"
#include "fidr/common/thread_pool.h"
#include "fidr/common/types.h"
#include "fidr/tables/lba_pba.h"

namespace fidr::core {

/** One coalesced physical-chunk read serving >= 1 batch slots. */
struct ReadJob {
    tables::ChunkLocation location;
    /** Data SSD holding the chunk's container (per-SSD billing). */
    std::size_t source_ssd = 0;
    /** Batch slot indexes this job's payload serves (>= 1). */
    std::vector<std::size_t> slots;

    bool cache_hit = false;       ///< Hot-tier hit: payload in hand.
    /** Which cache tier answered the probe (kNone = miss).  kHot sets
     *  cache_hit; kWarm carries `compressed`; kSpill carries `spill`.
     *  Warm/spill jobs still run a lane body (decompress, or spill
     *  read + decompress) but skip the container fetch. */
    cache::CacheTier tier = cache::CacheTier::kNone;
    bool fetch_ok = false;        ///< Compressed image in hand.
    Buffer payload;               ///< Decompressed chunk when ok.
    /** The chunk's compressed image: from the warm tier (resolve
     *  stage), the spill ring or the container fetch (lane stage).
     *  Feeds the two-tier cache fill after the join. */
    Buffer compressed;
    cache::SpillRef spill;        ///< kSpill: where the image lives.
    std::uint32_t raw_size = 0;   ///< Expected decompressed size.
    /** Spill read/decode failed; the lane fell back to the normal
     *  container fetch (billed as a plain miss serially). */
    bool spill_fallback = false;
    std::uint64_t compressed_bytes = 0;
    /** Transient-retry attempts consumed by the fetch (job-local;
     *  merged into FaultStats serially after the join). */
    unsigned fetch_attempts = 0;
    Status status;                ///< First fetch/decompress error.
    bool ready = false;           ///< Set serially once billed + ok.

    std::uint64_t fetch_ns = 0;
    std::uint64_t decompress_ns = 0;
};

/**
 * The fan-out stage of the read plane: runs a pure per-job body over
 * the pending jobs on up to `lanes` threads.  Follows the
 * compress_lanes convention: 0 = one lane per hardware thread,
 * 1 = serial on the calling thread (no pool is created, so the
 * single-lane path has zero dispatch overhead — the PR 4 inline
 * discipline).
 */
class ReadPipeline {
  public:
    explicit ReadPipeline(std::size_t lanes);

    /** Resolved lane count (>= 1). */
    std::size_t lanes() const { return lanes_; }

    /**
     * Runs `body(jobs[pending[i]])` for every pending index.  The body
     * must only touch its own job (see the file contract); the call
     * blocks until every job finished.
     *
     * `trace_id`/`stream_tag` name the read request the jobs belong to
     * (obs/request.h): each worker lane re-establishes that context so
     * fetch/decompress records on pool threads join the request's
     * causal chain.  The inline single-lane path inherits the caller's
     * context and ignores them.
     */
    void run(std::vector<ReadJob> &jobs,
             const std::vector<std::size_t> &pending,
             const std::function<void(ReadJob &)> &body,
             std::uint64_t trace_id = 0, std::uint64_t stream_tag = 0);

  private:
    std::size_t lanes_ = 1;
    /** Null when lanes_ == 1 (inline execution). */
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fidr::core
