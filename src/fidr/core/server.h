/**
 * @file
 * Public storage-server interface shared by the baseline and FIDR
 * systems, plus the data-reduction statistics both report.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/types.h"

namespace fidr::core {

/** End-to-end data-reduction counters. */
struct ReductionStats {
    std::uint64_t chunks_written = 0;   ///< Client 4 KB write chunks.
    std::uint64_t chunks_read = 0;      ///< Client 4 KB read chunks.
    std::uint64_t duplicates = 0;       ///< Writes removed by dedup.
    std::uint64_t unique_chunks = 0;    ///< Writes stored.
    std::uint64_t raw_bytes = 0;        ///< Client bytes written.
    std::uint64_t stored_bytes = 0;     ///< Compressed bytes stored.
    std::uint64_t nic_read_hits = 0;    ///< Reads served from buffers.

    /** Fraction of writes removed by deduplication. */
    double
    dedup_rate() const
    {
        return chunks_written > 0
                   ? static_cast<double>(duplicates) /
                         static_cast<double>(chunks_written)
                   : 0.0;
    }

    /** Fraction of client bytes removed end to end (dedup x comp). */
    double
    overall_reduction() const
    {
        return raw_bytes > 0
                   ? 1.0 - static_cast<double>(stored_bytes) /
                               static_cast<double>(raw_bytes)
                   : 0.0;
    }
};

/**
 * A deduplicating, compressing block store at 4 KB granularity.
 *
 * write() may buffer; flush() forces every buffered chunk through the
 * reduction pipeline and seals open containers, after which reads of
 * all previously written LBAs must succeed with the exact bytes last
 * written.
 */
class StorageServer {
  public:
    virtual ~StorageServer() = default;

    /** Writes one 4 KB chunk at `lba`. */
    virtual Status write(Lba lba, Buffer data) = 0;

    /** Reads back the 4 KB chunk at `lba`. */
    virtual Result<Buffer> read(Lba lba) = 0;

    /**
     * Reads a batch of LBAs; result i corresponds to lbas[i], and
     * per-LBA failures (unknown LBA, degraded-mode device errors) fail
     * only their own slot.  The default issues one read() per LBA;
     * systems override it to coalesce and parallelize.
     */
    virtual std::vector<Result<Buffer>>
    read_batch(std::span<const Lba> lbas)
    {
        std::vector<Result<Buffer>> out;
        out.reserve(lbas.size());
        for (const Lba lba : lbas)
            out.push_back(read(lba));
        return out;
    }

    /** Drains buffered writes and seals open containers. */
    virtual Status flush() = 0;

    virtual const ReductionStats &reduction() const = 0;
};

}  // namespace fidr::core
