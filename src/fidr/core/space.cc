#include "fidr/core/space.h"

#include <algorithm>

#include "fidr/common/status.h"

namespace fidr::core {

void
SpaceTracker::on_store(Pbn pbn, const std::optional<Digest> &digest,
                       const tables::ChunkLocation &location)
{
    auto [it, inserted] = chunks_.try_emplace(pbn);
    if (!inserted) {
        // Compaction re-store: retire the old placement's accounting.
        FIDR_CHECK(it->second.live);
        ContainerSpace &old_space =
            containers_[it->second.location.container_id];
        FIDR_CHECK(old_space.live_bytes >=
                   it->second.location.compressed_size);
        old_space.live_bytes -= it->second.location.compressed_size;
        live_bytes_ -= it->second.location.compressed_size;
    }
    it->second.digest = digest;
    it->second.location = location;
    it->second.live = true;

    ContainerSpace &space = containers_[location.container_id];
    space.live_bytes += location.compressed_size;
    space.pbns.push_back(pbn);
    live_bytes_ += location.compressed_size;
}

std::optional<Digest>
SpaceTracker::on_dead(Pbn pbn)
{
    const auto it = chunks_.find(pbn);
    if (it == chunks_.end() || !it->second.live)
        return std::nullopt;
    it->second.live = false;

    ContainerSpace &space = containers_[it->second.location.container_id];
    const std::uint64_t bytes = it->second.location.compressed_size;
    FIDR_CHECK(space.live_bytes >= bytes);
    space.live_bytes -= bytes;
    space.dead_bytes += bytes;
    live_bytes_ -= bytes;
    dead_bytes_ += bytes;
    return it->second.digest;
}

std::vector<std::uint64_t>
SpaceTracker::candidates(double min_dead_fraction) const
{
    std::vector<std::uint64_t> out;
    for (const auto &[container, space] : containers_) {
        if (space.dead_bytes > 0 &&
            space.dead_fraction() >= min_dead_fraction) {
            out.push_back(container);
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Pbn>
SpaceTracker::live_pbns(std::uint64_t container) const
{
    std::vector<Pbn> out;
    const auto it = containers_.find(container);
    if (it == containers_.end())
        return out;
    for (Pbn pbn : it->second.pbns) {
        const auto cit = chunks_.find(pbn);
        if (cit != chunks_.end() && cit->second.live &&
            cit->second.location.container_id == container) {
            out.push_back(pbn);
        }
    }
    return out;
}

std::optional<Digest>
SpaceTracker::digest_of(Pbn pbn) const
{
    const auto it = chunks_.find(pbn);
    if (it == chunks_.end() || !it->second.live)
        return std::nullopt;
    return it->second.digest;
}

void
SpaceTracker::seed_dead(std::uint64_t container, std::uint64_t bytes)
{
    if (bytes == 0)
        return;
    containers_[container].dead_bytes += bytes;
    dead_bytes_ += bytes;
}

std::uint64_t
SpaceTracker::container_live_bytes(std::uint64_t container) const
{
    const auto it = containers_.find(container);
    return it == containers_.end() ? 0 : it->second.live_bytes;
}

void
SpaceTracker::release_container(std::uint64_t container)
{
    const auto it = containers_.find(container);
    if (it == containers_.end())
        return;
    // All live chunks must have been moved out already.
    FIDR_CHECK(it->second.live_bytes == 0);
    dead_bytes_ -= it->second.dead_bytes;
    for (Pbn pbn : it->second.pbns) {
        const auto cit = chunks_.find(pbn);
        if (cit != chunks_.end() && !cit->second.live &&
            cit->second.location.container_id == container) {
            chunks_.erase(cit);
        }
    }
    containers_.erase(it);
}

}  // namespace fidr::core
