/**
 * @file
 * Space reclamation (extension beyond the paper's evaluation).
 *
 * Deduplicated chunks die when the last LBA referencing them is
 * overwritten; their bytes remain inside sealed containers until a
 * compaction pass rewrites the surviving chunks and releases the
 * container.  SpaceTracker keeps the per-container live/dead ledger
 * and the PBN -> (digest, location) records compaction needs; the
 * FidrSystem wires it into the write path and exposes compact().
 */
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fidr/common/types.h"
#include "fidr/hash/digest.h"
#include "fidr/tables/lba_pba.h"

namespace fidr::core {

/** Live/dead payload accounting for one container. */
struct ContainerSpace {
    std::uint64_t live_bytes = 0;
    std::uint64_t dead_bytes = 0;
    std::vector<Pbn> pbns;  ///< Every PBN ever stored here.

    double
    dead_fraction() const
    {
        const std::uint64_t total = live_bytes + dead_bytes;
        return total > 0 ? static_cast<double>(dead_bytes) /
                               static_cast<double>(total)
                         : 0.0;
    }
};

/** Tracks chunk liveness across containers. */
class SpaceTracker {
  public:
    /**
     * Records a newly stored (or re-stored by GC relocation) chunk.
     * The digest is nullopt for chunks adopted by crash recovery —
     * the ledger is rebuilt from the LBA-PBA table, which does not
     * carry digests (the Hash-PBN table does, but its dirty lines may
     * have died with the host).
     */
    void on_store(Pbn pbn, const std::optional<Digest> &digest,
                  const tables::ChunkLocation &location);

    /**
     * Marks `pbn` dead (refcount reached zero).  Returns the digest so
     * the caller can drop the Hash-PBN entry; nullopt when the PBN is
     * unknown or already dead — or when it was recovered without a
     * digest (the dangling Hash-PBN entry is then repaired lazily at
     * dedup-resolve time).
     */
    std::optional<Digest> on_dead(Pbn pbn);

    /**
     * Recovery seeding: accounts `bytes` of dead payload to
     * `container` without naming the PBNs that died (their records
     * did not survive the crash; only the live set is rebuilt).
     */
    void seed_dead(std::uint64_t container, std::uint64_t bytes);

    /** Live payload bytes currently accounted to `container`. */
    std::uint64_t container_live_bytes(std::uint64_t container) const;

    /** Container ids whose dead share is at least `min_dead_fraction`. */
    std::vector<std::uint64_t> candidates(double min_dead_fraction) const;

    /** Live PBNs currently located in `container`. */
    std::vector<Pbn> live_pbns(std::uint64_t container) const;

    /** Digest of a live PBN (compaction support). */
    std::optional<Digest> digest_of(Pbn pbn) const;

    /** Forgets a container after compaction moved its live chunks. */
    void release_container(std::uint64_t container);

    std::uint64_t dead_bytes() const { return dead_bytes_; }
    std::uint64_t live_bytes() const { return live_bytes_; }

    const std::unordered_map<std::uint64_t, ContainerSpace> &
    containers() const
    {
        return containers_;
    }

  private:
    struct ChunkRecord {
        std::optional<Digest> digest;
        tables::ChunkLocation location;
        bool live = true;
    };

    std::unordered_map<Pbn, ChunkRecord> chunks_;
    std::unordered_map<std::uint64_t, ContainerSpace> containers_;
    std::uint64_t dead_bytes_ = 0;
    std::uint64_t live_bytes_ = 0;
};

}  // namespace fidr::core
