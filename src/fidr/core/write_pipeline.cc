#include "fidr/core/write_pipeline.h"

#include <algorithm>

#include "fidr/obs/trace.h"

namespace fidr::core {

WritePipeline::WritePipeline(const WritePipelineConfig &config,
                             nic::FidrNic &nic, HashFn hash,
                             ExecuteFn execute,
                             WritePipelineMetrics metrics)
    : config_(config), nic_(nic), hash_(std::move(hash)),
      execute_(std::move(execute)), metrics_(metrics)
{
    FIDR_CHECK(config_.depth >= 1);
    FIDR_CHECK(hash_ && execute_);
    const std::size_t workers =
        config_.hash_workers != 0
            ? config_.hash_workers
            : std::min(config_.depth, ThreadPool::hardware_lanes());
    hash_pool_ = std::make_unique<ThreadPool>(workers);
    executor_ = std::thread([this] { executor_loop(); });
}

WritePipeline::~WritePipeline()
{
    // Nothing may be running when the executor stops: committed work
    // already drained, failed work was aborted by the executor itself.
    quiesce();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    executor_cv_.notify_all();
    executor_.join();
    hash_pool_.reset();
}

Status
WritePipeline::submit(std::uint64_t epoch)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (in_flight_locked() >= config_.depth && !failed_) {
            if (metrics_.stalls)
                metrics_.stalls->add();
            FIDR_TRACE_SPAN(stall_span, obs::Tpoint::kPipelineStall,
                            epoch, flights_.size());
            obs::StageTimer stall;
            caller_cv_.wait(lock, [this] {
                return in_flight_locked() < config_.depth || failed_;
            });
            if (metrics_.submit_stall_ns)
                metrics_.submit_stall_ns->record(stall.elapsed_ns());
        }
        if (failed_)
            return error_;  // Batch stays sealed; owner unseals.
        flights_.push_back(Flight{epoch, false});
        ++hash_outstanding_;
        if (metrics_.batches)
            metrics_.batches->add();
        if (metrics_.queue_depth)
            metrics_.queue_depth->record(in_flight_locked());
    }
    FIDR_TPOINT(obs::Tpoint::kPipelineSubmit, epoch, config_.depth);
    hash_pool_->submit([this, epoch] { hash_task(epoch); });
    return Status::ok();
}

void
WritePipeline::credit_overlap_locked(
    std::chrono::steady_clock::time_point a,
    std::chrono::steady_clock::time_point b)
{
    if (!metrics_.overlap_ns)
        return;
    const auto now = std::chrono::steady_clock::now();
    const auto from = std::max(a, b);
    if (now > from) {
        metrics_.overlap_ns->add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                 from)
                .count()));
    }
}

void
WritePipeline::begin_hash_activity_locked()
{
    if (hash_active_++ == 0)
        hash_union_start_ = std::chrono::steady_clock::now();
}

void
WritePipeline::end_hash_activity_locked()
{
    FIDR_CHECK(hash_active_ > 0);
    if (--hash_active_ == 0 && executor_busy_)
        credit_overlap_locked(hash_union_start_, exec_start_);
}

void
WritePipeline::hash_task(std::uint64_t epoch)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        begin_hash_activity_locked();
    }
    // The batch cannot disappear underneath us: the commit sequencer
    // only drops an epoch after its hash completed, and unseal_all
    // requires a quiesced pipeline (hash_outstanding_ == 0).
    nic::SealedBatch *batch = nic_.find_sealed(epoch);
    if (batch != nullptr) {
        // Re-establish the batch's request context on this worker so
        // every record the hash stage emits carries its trace id.
        obs::ScopedRequest request(batch->trace_id, batch->stream_tag);
        FIDR_TRACE_SPAN(span, obs::Tpoint::kPipelineHashStage, epoch,
                        batch->chunks.size());
        hash_(*batch);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        end_hash_activity_locked();
        --hash_outstanding_;
        for (Flight &flight : flights_) {
            if (flight.epoch == epoch) {
                flight.hashed = true;
                break;
            }
        }
    }
    executor_cv_.notify_all();
    caller_cv_.notify_all();  // quiesce() also waits on hash work.
}

void
WritePipeline::executor_loop()
{
    for (;;) {
        std::uint64_t epoch = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            executor_cv_.wait(lock, [this] {
                return stop_ ||
                       (!flights_.empty() &&
                        (flights_.front().hashed || failed_));
            });
            if (stop_)
                return;
            if (failed_) {
                // Abort queued epochs: their batches stay sealed in
                // NIC NVRAM for the owner's unseal_all().
                flights_.clear();
                caller_cv_.notify_all();
                continue;
            }
            epoch = flights_.front().epoch;
            flights_.pop_front();
            executor_busy_ = true;
            exec_start_ = std::chrono::steady_clock::now();
        }

        nic::SealedBatch *batch = nic_.find_sealed(epoch);
        FIDR_CHECK(batch != nullptr);
        Status status;
        {
            // The sequencer serves one request at a time; scope its
            // context so the serial commit stages trace under it.
            obs::ScopedRequest request(batch->trace_id,
                                       batch->stream_tag);
            status = execute_(*batch);
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (hash_active_ > 0)
                credit_overlap_locked(exec_start_, hash_union_start_);
            executor_busy_ = false;
            if (!status.is_ok()) {
                if (!failed_) {
                    failed_ = true;
                    error_ = status;
                }
                flights_.clear();
            }
        }
        caller_cv_.notify_all();
        executor_cv_.notify_all();
    }
}

void
WritePipeline::quiesce()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (flights_.empty() && hash_outstanding_ == 0 && !executor_busy_)
        return;
    FIDR_TRACE_SPAN(span, obs::Tpoint::kPipelineDrain, 0,
                    in_flight_locked());
    caller_cv_.wait(lock, [this] {
        return flights_.empty() && hash_outstanding_ == 0 &&
               !executor_busy_;
    });
}

bool
WritePipeline::failed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failed_;
}

Status
WritePipeline::take_error()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!failed_)
        return Status::ok();
    Status error = error_;
    failed_ = false;
    error_ = Status::ok();
    return error;
}

std::size_t
WritePipeline::in_flight() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_locked();
}

}  // namespace fidr::core
