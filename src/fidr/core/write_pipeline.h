/**
 * @file
 * Multi-batch in-flight write pipeline (paper Fig 6a as a *pipeline*).
 *
 * The hardware FIDR write path overlaps batches: while the Compression
 * Engine and the P2P DMAs finish batch E, the NIC's SHA engines are
 * already hashing batch E+1.  This class is the software stand-in: up
 * to `depth` sealed batches are in flight at once, a pool of hash
 * workers runs the (stateless, order-insensitive) SHA stage per batch,
 * and a single **commit sequencer** thread applies every stateful
 * stage — dedup/tree resolve, compression, container DMA, journal
 * append, metadata apply — in strict batch-epoch order.
 *
 * Why only the hash stage fans out: resolve(E+1) reads state that
 * commit(E) mutates (dedup verdicts change when an earlier batch
 * retires a dead PBN, the table cache's LRU/stats move on every probe,
 * the journal is an ordered log).  Running any of that speculatively
 * would change results vs depth=1; the determinism contract here is
 * **bit-identical end state for every depth**, so everything after
 * hashing stays serial, in epoch order, on one thread.  That is also
 * the right performance split: software SHA-256 dominates the write
 * path, and it is the one stage with no cross-batch data dependence.
 *
 * Failure/crash semantics (PR 3 preserved): a batch whose execute
 * stage fails stays sealed in NIC NVRAM, the pipeline goes sticky-
 * failed and aborts queued epochs (their batches also stay sealed).
 * The owner quiesces, unseals everything back into the open buffer,
 * and surfaces the error; a later flush retries the work.  A power
 * cut mid-pipeline loses nothing acknowledged: acked chunks are
 * either committed (journal-before-apply) or still in NIC NVRAM.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "fidr/common/status.h"
#include "fidr/common/thread_pool.h"
#include "fidr/nic/fidr_nic.h"
#include "fidr/obs/metrics.h"

namespace fidr::core {

/** Pipeline sizing. */
struct WritePipelineConfig {
    /** Max batches in flight (admission blocks beyond this). */
    std::size_t depth = 4;
    /** Hash-stage workers; 0 = min(depth, hardware lanes). */
    std::size_t hash_workers = 0;
};

/** Optional instrumentation sinks (null = not recorded). */
struct WritePipelineMetrics {
    obs::Histogram *submit_stall_ns = nullptr;  ///< Per stalled submit.
    obs::Histogram *queue_depth = nullptr;      ///< Sampled at submit.
    obs::Counter *batches = nullptr;
    obs::Counter *stalls = nullptr;
    /**
     * Wall-clock time during which a hash task and the commit
     * sequencer were active *simultaneously* — the direct measurement
     * of stage overlap.  Unlike comparing summed stage-busy spans
     * against wall time (which on a one-core host drowns in scheduler
     * noise), this is exact: any nonzero value proves batches
     * genuinely pipelined.
     */
    obs::Counter *overlap_ns = nullptr;
};

/** See file comment.  One instance per FidrSystem; single submitter. */
class WritePipeline {
  public:
    /** Hash stage: pure per-batch work, safe off the commit thread. */
    using HashFn = std::function<void(nic::SealedBatch &)>;
    /** Serial stages; on success must end with nic.drop_sealed(). */
    using ExecuteFn = std::function<Status(nic::SealedBatch &)>;

    WritePipeline(const WritePipelineConfig &config, nic::FidrNic &nic,
                  HashFn hash, ExecuteFn execute,
                  WritePipelineMetrics metrics);

    /** Quiesces and joins; sealed batches are left to the owner. */
    ~WritePipeline();

    WritePipeline(const WritePipeline &) = delete;
    WritePipeline &operator=(const WritePipeline &) = delete;

    /**
     * Admits sealed batch `epoch`: blocks while `depth` batches are in
     * flight (admission-control back-pressure), then queues the hash
     * stage and returns.  After a failure, returns the sticky error
     * without admitting; the batch stays sealed for unseal_all().
     */
    Status submit(std::uint64_t epoch);

    /** Blocks until no batch is in flight (committed or aborted). */
    void quiesce();

    /** True once any execute stage failed (sticky until take_error). */
    bool failed() const;

    /**
     * Consumes the sticky error (call quiesce() first).  The owner
     * then unseals the NIC and surfaces the status; the pipeline is
     * clean and reusable afterwards.
     */
    Status take_error();

    /** Batches submitted but not yet committed/aborted. */
    std::size_t in_flight() const;

    std::size_t depth() const { return config_.depth; }

  private:
    struct Flight {
        std::uint64_t epoch = 0;
        bool hashed = false;
    };

    void executor_loop();
    void hash_task(std::uint64_t epoch);

    std::size_t in_flight_locked() const
    { return flights_.size() + (executor_busy_ ? 1 : 0); }

    /**
     * Overlap bookkeeping (all under mutex_): the hash stage's
     * activity is the union of its tasks' run intervals; whichever
     * side (hash union or executor) *ends* first credits the
     * intersection with the still-open peer interval, so every
     * overlapped wall segment is counted exactly once.
     */
    void begin_hash_activity_locked();
    void end_hash_activity_locked();
    void credit_overlap_locked(std::chrono::steady_clock::time_point a,
                               std::chrono::steady_clock::time_point b);

    WritePipelineConfig config_;
    nic::FidrNic &nic_;
    HashFn hash_;
    ExecuteFn execute_;
    WritePipelineMetrics metrics_;

    mutable std::mutex mutex_;
    std::condition_variable caller_cv_;    ///< Admission/quiesce waits.
    std::condition_variable executor_cv_;  ///< Work-ready signal.
    std::deque<Flight> flights_;           ///< Epoch order.
    std::size_t hash_outstanding_ = 0;
    std::size_t hash_active_ = 0;  ///< Hash tasks currently running.
    std::chrono::steady_clock::time_point hash_union_start_{};
    std::chrono::steady_clock::time_point exec_start_{};
    bool executor_busy_ = false;
    bool stop_ = false;
    bool failed_ = false;
    Status error_ = Status::ok();

    std::unique_ptr<ThreadPool> hash_pool_;
    std::thread executor_;
};

}  // namespace fidr::core
