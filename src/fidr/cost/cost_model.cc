#include "fidr/cost/cost_model.h"

#include <algorithm>

#include "fidr/common/status.h"
#include "fidr/common/types.h"
#include "fidr/host/calibration.h"

namespace fidr::cost {
namespace {

/** Hash-PBN table bytes per GB of unique (pre-compression) data. */
constexpr double kTableGbPerUniqueGb =
    static_cast<double>(fidr::kTableEntrySize) /
    static_cast<double>(fidr::kChunkSize);

/** In-DRAM cached fraction of the table (Sec 7.1). */
constexpr double kCacheFraction = 0.028;

/** The 75 GB/s socket unit the FPGA complement is sized for. */
constexpr double kSocketUnitGbps = 75.0;

}  // namespace

SystemDemand
baseline_demand()
{
    SystemDemand d;
    // 67 cores at 75 GB/s (Fig 5a).
    d.cores_per_gbps = calib::kRefBaselineCores / kSocketUnitGbps;
    // Integrated hash+compression accelerators: CIDR sustains
    // ~10 GB/s of reduction per board, so a 75 GB/s unit would need
    // ~7.5 boards at roughly half fabric utilization / 70% usable.
    d.fpga_boards = 7.5 * 0.5 / 0.7;
    // The socket saturates at cores / (cores/GBps).
    d.max_socket_throughput =
        gb_per_s(calib::kSocketCores / d.cores_per_gbps);
    return d;
}

SystemDemand
fidr_demand()
{
    SystemDemand d;
    // FIDR retains ~32% of the baseline's CPU demand (Fig 12):
    // orchestration + bucket scanning + LRU + residual bookkeeping.
    d.cores_per_gbps = calib::kRefBaselineCores * 0.32 / kSocketUnitGbps;
    // FPGA complement per 75 GB/s unit, utilization-weighted against
    // 70% usable fabric: ~9.4 NIC FPGAs (64 Gbps each) whose data-
    // reduction support uses ~24.5% of fabric (Table 4), ~3.75
    // dedicated Compression Engines (~20 GB/s each with the hash cores
    // removed, ~40% fabric), and one Cache HW-Engine (~29%, Table 5)
    // => ~5.9 board-equivalents.
    d.fpga_boards = (9.4 * 0.245 + 3.75 * 0.40 + 1.0 * 0.29) / 0.7;
    // Designed to reach the conservative PCIe target.
    d.max_socket_throughput = calib::kTargetThroughput;
    return d;
}

CostBreakdown
cost_no_reduction(double effective_gb, const CostParams &params)
{
    CostBreakdown out;
    out.data_ssd = effective_gb * params.ssd_per_gb;
    return out;
}

CostBreakdown
cost_with_reduction(double effective_gb, Bandwidth throughput,
                    const SystemDemand &demand, const CostParams &params)
{
    FIDR_CHECK(throughput > 0);
    const double target_gbps = to_gb_per_s(throughput);
    const double reduced_gbps =
        std::min(target_gbps, to_gb_per_s(demand.max_socket_throughput));
    // Partial reduction: only the stream the reduction pipeline can
    // keep up with is deduplicated/compressed (Sec 7.8).
    const double f = reduced_gbps / target_gbps;

    CostBreakdown out;
    const double stored_gb =
        effective_gb * (f * params.reduction_factor() + (1.0 - f));
    out.data_ssd = stored_gb * params.ssd_per_gb;

    const double unique_gb = effective_gb * (1.0 - params.dedup_ratio) * f;
    const double table_gb = unique_gb * kTableGbPerUniqueGb;
    out.table_ssd = table_gb * params.ssd_per_gb;
    out.dram = table_gb * kCacheFraction * params.dram_per_gb;

    const double cores = demand.cores_per_gbps * reduced_gbps;
    out.cpu = cores / params.cpu_cores * params.cpu_price;
    out.fpga = demand.fpga_boards * (reduced_gbps / kSocketUnitGbps) *
               params.fpga_price;
    return out;
}

double
cost_saving(const CostBreakdown &reduced, const CostBreakdown &no_reduction)
{
    if (no_reduction.total() <= 0)
        return 0.0;
    return 1.0 - reduced.total() / no_reduction.total();
}

}  // namespace fidr::cost
