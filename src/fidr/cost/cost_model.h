/**
 * @file
 * Storage cost model (paper Sec 7.8, Figs 15-16).
 *
 * Cost of serving an *effective* (logical) capacity at a target
 * throughput = remaining data SSDs after reduction + the added
 * reduction hardware (CPU share, FPGAs scaled by utilization, DRAM
 * for the table cache, table SSDs).  Prices follow the paper: 0.5
 * $/GB SSD, 5.5 $/GB DRAM, $7000 for a 22-core Xeon E5-4669v4, $7000
 * for a VCU9P-class FPGA with 70% of its fabric practically usable.
 *
 * The baseline cannot scale past its per-socket bottleneck (~25 GB/s),
 * so at higher targets it *partially* reduces: only the fraction it
 * can keep up with is deduplicated/compressed and the remainder is
 * stored raw — which is what makes its cost explode in Fig 16.
 */
#pragma once

#include <string>

#include "fidr/common/units.h"

namespace fidr::cost {

/** Unit prices and reduction assumptions. */
struct CostParams {
    double ssd_per_gb = 0.5;
    double dram_per_gb = 5.5;
    double cpu_price = 7000;    ///< One 22-core socket.
    double cpu_cores = 22;
    double fpga_price = 7000;   ///< One VCU9P-class board.
    double fpga_usable = 0.7;   ///< Practically usable fabric fraction.

    double dedup_ratio = 0.5;   ///< Fraction of chunks removed.
    double comp_ratio = 0.5;    ///< Fraction of bytes removed.

    /** Stored bytes per effective byte under full reduction. */
    double
    reduction_factor() const
    {
        return (1.0 - dedup_ratio) * (1.0 - comp_ratio);
    }
};

/** Dollar cost split by component. */
struct CostBreakdown {
    double data_ssd = 0;
    double table_ssd = 0;
    double dram = 0;
    double cpu = 0;
    double fpga = 0;

    double
    total() const
    {
        return data_ssd + table_ssd + dram + cpu + fpga;
    }
};

/** Resource demands of one system, per 75 GB/s socket unit. */
struct SystemDemand {
    double cores_per_gbps = 0;      ///< CPU cores per GB/s sustained.
    double fpga_boards = 0;         ///< Utilization-weighted boards
                                    ///< per 75 GB/s unit.
    Bandwidth max_socket_throughput = 0;  ///< Reduction ceiling.
};

/** Calibrated demands of the two systems (from the perf model). */
SystemDemand baseline_demand();
SystemDemand fidr_demand();

/** Cost of `effective_gb` with no data reduction at all. */
CostBreakdown cost_no_reduction(double effective_gb,
                                const CostParams &params = {});

/**
 * Cost of serving `effective_gb` at `throughput` with full or (when
 * the system cannot keep up) partial reduction.
 */
CostBreakdown cost_with_reduction(double effective_gb, Bandwidth throughput,
                                  const SystemDemand &demand,
                                  const CostParams &params = {});

/** Fractional saving of `reduced` against the no-reduction cost. */
double cost_saving(const CostBreakdown &reduced,
                   const CostBreakdown &no_reduction);

}  // namespace fidr::cost
