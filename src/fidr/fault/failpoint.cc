#include "fidr/fault/failpoint.h"

#include "fidr/obs/trace.h"

namespace fidr::fault {

const char *
site_name(Site site)
{
    switch (site) {
      case Site::kSsdRead: return "ssd.read";
      case Site::kSsdWrite: return "ssd.write";
      case Site::kPcieDma: return "pcie.dma";
      case Site::kCacheFetch: return "cache.fetch";
      case Site::kCacheWriteback: return "cache.writeback";
      case Site::kJournalAppend: return "journal.append";
      case Site::kJournalFence: return "journal.fence";
      case Site::kJournalReplay: return "journal.replay";
      case Site::kNicBuffer: return "nic.buffer";
      case Site::kNicSchedule: return "nic.schedule";
      case Site::kContainerAppend: return "container.append";
      case Site::kContainerSeal: return "container.seal";
      case Site::kHwTreeUpdate: return "hwtree.update";
      case Site::kHwTreeForceCrash: return "hwtree.force_crash";
      case Site::kSnapshotWrite: return "snapshot.write";
      case Site::kSnapshotRead: return "snapshot.read";
      case Site::kGcRelocate: return "gc.relocate";
      case Site::kGcDiscard: return "gc.discard";
      case Site::kGcSuperblock: return "gc.superblock";
      case Site::kGcReplay: return "gc.replay";
      case Site::kNetSend: return "net.send";
      case Site::kNetDrop: return "net.drop";
      case Site::kNetDelay: return "net.delay";
      case Site::kMaxSite: break;
    }
    return "unknown";
}

Status
to_status(const FaultDecision &decision, Site site)
{
    const std::string msg =
        std::string("injected fault at ") + site_name(site);
    return Status(decision.code, msg);
}

FailpointRegistry &
FailpointRegistry::instance()
{
    static FailpointRegistry registry;
    return registry;
}

void
FailpointRegistry::set_seed(std::uint64_t seed)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    seed_ = seed;
}

void
FailpointRegistry::arm(Site site, const FaultPolicy &policy)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    SiteState &state = sites_[idx(site)];
    if (!state.armed)
        armed_count_.fetch_add(1, std::memory_order_relaxed);
    state.armed = true;
    state.policy = policy;
    state.hits_since_arm = 0;
    // Independent deterministic stream per (seed, site): re-arming
    // with the same seed replays the identical fault schedule.
    state.rng = Rng(seed_ ^ (0x9E3779B97F4A7C15ull *
                             (static_cast<std::uint64_t>(site) + 1)));
}

Status
FailpointRegistry::arm(const std::string &name, const FaultPolicy &policy)
{
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        const Site site = static_cast<Site>(i);
        if (name == site_name(site)) {
            arm(site, policy);
            return Status::ok();
        }
    }
    return Status::not_found("unknown failpoint site: " + name);
}

void
FailpointRegistry::disarm(Site site)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    SiteState &state = sites_[idx(site)];
    if (state.armed)
        armed_count_.fetch_sub(1, std::memory_order_relaxed);
    state.armed = false;
}

void
FailpointRegistry::disarm_all()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (SiteState &state : sites_) {
        if (state.armed)
            armed_count_.fetch_sub(1, std::memory_order_relaxed);
        state.armed = false;
    }
}

bool
FailpointRegistry::armed(Site site) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return sites_[idx(site)].armed;
}

std::uint64_t
FailpointRegistry::hits(Site site) const
{
    return sites_[idx(site)].hits.load(std::memory_order_relaxed);
}

std::uint64_t
FailpointRegistry::fires(Site site) const
{
    return sites_[idx(site)].fires.load(std::memory_order_relaxed);
}

std::uint64_t
FailpointRegistry::spike_ns(Site site) const
{
    return sites_[idx(site)].spike_ns.load(std::memory_order_relaxed);
}

void
FailpointRegistry::reset_counters()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (SiteState &state : sites_) {
        state.hits.store(0, std::memory_order_relaxed);
        state.fires.store(0, std::memory_order_relaxed);
        state.spike_ns.store(0, std::memory_order_relaxed);
        state.hits_since_arm = 0;
    }
}

FaultDecision
FailpointRegistry::evaluate(Site site)
{
    SiteState &state = sites_[idx(site)];
    state.hits.fetch_add(1, std::memory_order_relaxed);
    if (armed_count_.load(std::memory_order_relaxed) == 0)
        return FaultDecision{};

    const std::lock_guard<std::mutex> lock(mutex_);
    if (!state.armed)
        return FaultDecision{};
    const FaultPolicy &policy = state.policy;
    ++state.hits_since_arm;

    bool fire = false;
    if (policy.fail_nth != 0 && state.hits_since_arm == policy.fail_nth)
        fire = true;
    // The Bernoulli draw is consumed on every hit so the stream stays
    // aligned with the hit count regardless of fail_nth interleaving.
    if (policy.probability > 0.0 &&
        state.rng.next_bool(policy.probability)) {
        fire = true;
    }
    if (!fire ||
        state.fires.load(std::memory_order_relaxed) >= policy.max_fires)
        return FaultDecision{};

    state.fires.fetch_add(1, std::memory_order_relaxed);
    FaultDecision decision;
    decision.fire = true;
    decision.kind = policy.kind;
    decision.code = policy.code;
    decision.entropy = state.rng.next_u64();
    if (policy.kind == FaultKind::kLatencySpike) {
        decision.latency_ns = policy.latency_ns;
        state.spike_ns.fetch_add(policy.latency_ns,
                                 std::memory_order_relaxed);
    }
    FIDR_TPOINT(obs::Tpoint::kFaultInjected,
                static_cast<std::uint64_t>(site),
                static_cast<std::uint64_t>(policy.kind));
    return decision;
}

}  // namespace fidr::fault
