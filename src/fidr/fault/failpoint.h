/**
 * @file
 * Deterministic failpoint registry for the FIDR data plane.
 *
 * Real storage stacks treat failure as the common case: SPDK ships
 * error-injection bdevs, the kernel has fail_function/failslab, and
 * every serious journal is tested by killing the writer at arbitrary
 * byte boundaries.  This module gives the FIDR model the same lever —
 * a process-wide registry of *named failpoint sites* threaded through
 * the SSD model, the PCIe fabric, the table cache, the journal, the
 * container log, the NIC batch paths, and the HW-tree pipeline.
 *
 * Each site can be armed with one policy:
 *   - kError:        the site returns an injected Status;
 *   - kTornWrite:    a write persists only a deterministic prefix,
 *                    then reports failure (power-cut model);
 *   - kBitFlip:      one deterministic bit of the payload flips
 *                    (silent media corruption);
 *   - kLatencySpike: the operation succeeds but a latency penalty is
 *                    accounted (tail-latency model).
 *
 * Triggers are deterministic and seedable: `fail_nth` fires exactly
 * once, on the nth post-arm hit of the site; `probability` draws an
 * independent Bernoulli per hit from a per-site xoshiro stream seeded
 * from (registry seed, site), so a given seed reproduces the exact
 * same fault schedule.  `max_fires` caps total injections.
 *
 * Every site counts hits (evaluations) and fires (injections) — the
 * crash-consistency harness uses hit counts from a fault-free profile
 * run to place `fail_nth` mid-workload, and `FidrSystem::obs_snapshot`
 * exports both per site.  Fires also emit an `obs` tracepoint
 * (fault.injected) so injections are visible in the Chrome trace.
 *
 * Compile-time kill switch: configure with -DFIDR_FAULT=OFF and every
 * FIDR_FAULT_EVAL / FIDR_FAULT_RETURN_IF site expands to a constant
 * no-fire decision, so the data plane carries zero fault code
 * (scripts/tier1.sh smoke-checks the overhead).  With faults compiled
 * in, an unarmed registry costs one relaxed atomic load per site.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fidr/common/rng.h"
#include "fidr/common/status.h"

namespace fidr::fault {

/** Every failpoint site in the data plane.  Names in site_name(). */
enum class Site : std::uint8_t {
    kSsdRead = 0,       ///< Ssd::read (flash read; bit-flip target).
    kSsdWrite,          ///< Ssd::write (flash write; torn-write target).
    kPcieDma,           ///< Fabric::try_dma (descriptor/link error).
    kCacheFetch,        ///< TableCache miss fill from the table SSD.
    kCacheWriteback,    ///< Dirty-line flush to the table SSD.
    kJournalAppend,     ///< MetadataJournal::append record write.
    kJournalFence,      ///< Journal fence-tombstone write (best effort).
    kJournalReplay,     ///< MetadataJournal::replay record read.
    kNicBuffer,         ///< FidrNic::buffer_write admission.
    kNicSchedule,       ///< Compression-scheduler batch handoff.
    kContainerAppend,   ///< ContainerLog::append packing.
    kContainerSeal,     ///< ContainerLog::flush seal to a data SSD.
    kHwTreeUpdate,      ///< TreePipeline::insert update issue.
    kHwTreeForceCrash,  ///< Forced misspeculation in account_update.
    kSnapshotWrite,     ///< Checkpoint snapshot write (table SSD).
    kSnapshotRead,      ///< Recovery snapshot read (table SSD).
    kGcRelocate,        ///< GC live-chunk relocation step.
    kGcDiscard,         ///< GC container discard (pre-superblock).
    kGcSuperblock,      ///< Container-log superblock write.
    kGcReplay,          ///< Recovery container-log scan read.
    kNetSend,           ///< cluster::Fabric RPC send (link error).
    kNetDrop,           ///< cluster::Fabric RPC lost after transmit.
    kNetDelay,          ///< cluster::Fabric RPC latency spike.

    kMaxSite,
};

inline constexpr std::size_t kSiteCount =
    static_cast<std::size_t>(Site::kMaxSite);

/** Stable display name ("ssd.read", "journal.append", ...). */
const char *site_name(Site site);

/** What an armed site injects when its trigger fires. */
enum class FaultKind : std::uint8_t {
    kError = 0,     ///< Return `code` from the site.
    kTornWrite,     ///< Persist a prefix, then return `code`.
    kBitFlip,       ///< Flip one payload bit; the op "succeeds".
    kLatencySpike,  ///< Succeed, but account `latency_ns`.
};

/** Per-site arming policy. */
struct FaultPolicy {
    FaultKind kind = FaultKind::kError;
    /** Status injected by kError / kTornWrite fires. */
    StatusCode code = StatusCode::kUnavailable;
    /** Fires once, on the nth post-arm hit (1-based); 0 disables. */
    std::uint64_t fail_nth = 0;
    /** Independent per-hit fire probability; 0 disables. */
    double probability = 0.0;
    /** Total injections allowed before the site goes quiet. */
    std::uint64_t max_fires = UINT64_MAX;
    /** Accounted penalty for kLatencySpike fires. */
    std::uint64_t latency_ns = 100'000;
};

/** Outcome of evaluating one site hit. */
struct FaultDecision {
    bool fire = false;
    FaultKind kind = FaultKind::kError;
    StatusCode code = StatusCode::kUnavailable;
    std::uint64_t latency_ns = 0;
    /**
     * Deterministic per-fire randomness: torn-write prefix lengths and
     * bit-flip positions derive from this so a seed reproduces the
     * exact same damage.
     */
    std::uint64_t entropy = 0;
};

/** The injected Status for an error/torn fire at `site`. */
Status to_status(const FaultDecision &decision, Site site);

/** Ok unless `decision` is an error-kind fire (then the injected
 *  Status).  Convenience for sites that fold the check into a chain. */
inline Status
as_status(const FaultDecision &decision, Site site)
{
    if (decision.fire && decision.kind == FaultKind::kError)
        return to_status(decision, site);
    return Status::ok();
}

/**
 * Process-wide failpoint registry.  Evaluation is thread-safe; arming
 * and counter reads are meant for the (single-threaded) test driver.
 */
class FailpointRegistry {
  public:
    static FailpointRegistry &instance();

    /**
     * Seed for the per-site probability/entropy streams.  Applies to
     * sites armed afterwards (each arm() reseeds that site's stream
     * from (seed, site), so re-arming replays the same schedule).
     */
    void set_seed(std::uint64_t seed);

    /** Arms `site` with `policy`, resetting its post-arm hit count. */
    void arm(Site site, const FaultPolicy &policy);

    /** Arms a site by display name; kNotFound for unknown names. */
    Status arm(const std::string &name, const FaultPolicy &policy);

    void disarm(Site site);
    void disarm_all();

    bool armed(Site site) const;

    /** Lifetime evaluations of `site` (armed or not). */
    std::uint64_t hits(Site site) const;

    /** Lifetime injections at `site`. */
    std::uint64_t fires(Site site) const;

    /** Total latency-spike ns accounted at `site`. */
    std::uint64_t spike_ns(Site site) const;

    /** Zeroes every hit/fire/spike counter (armed policies stay). */
    void reset_counters();

    /**
     * Hot path: counts the hit and decides whether the armed policy
     * (if any) fires.  Unarmed cost: one relaxed fetch_add.
     */
    FaultDecision evaluate(Site site);

  private:
    FailpointRegistry() = default;

    struct SiteState {
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> fires{0};
        std::atomic<std::uint64_t> spike_ns{0};
        bool armed = false;
        FaultPolicy policy;
        std::uint64_t hits_since_arm = 0;
        Rng rng{0};
    };

    static std::size_t idx(Site site)
    { return static_cast<std::size_t>(site); }

    /** Nonzero while any site is armed (hot-path early-out). */
    std::atomic<std::uint64_t> armed_count_{0};
    std::uint64_t seed_ = 0x5DEECE66Dull;
    mutable std::mutex mutex_;  ///< Guards armed-site state.
    std::array<SiteState, kSiteCount> sites_;
};

}  // namespace fidr::fault

/**
 * Site evaluation macros.  With -DFIDR_FAULT=OFF both expand to
 * constants the optimizer deletes: the data plane carries no fault
 * code at all.
 */
#if FIDR_FAULT_ENABLED
#define FIDR_FAULT_EVAL(site)                                              \
    (::fidr::fault::FailpointRegistry::instance().evaluate(site))
/** Returns the injected Status from the enclosing function on an
 *  error-kind fire (torn/bit-flip/latency need site-specific code). */
#define FIDR_FAULT_RETURN_IF(site)                                         \
    do {                                                                   \
        const ::fidr::fault::FaultDecision fidr_fault_decision_ =          \
            FIDR_FAULT_EVAL(site);                                         \
        if (fidr_fault_decision_.fire &&                                   \
            fidr_fault_decision_.kind ==                                   \
                ::fidr::fault::FaultKind::kError) {                        \
            return ::fidr::fault::to_status(fidr_fault_decision_, site);   \
        }                                                                  \
    } while (0)
#else
#define FIDR_FAULT_EVAL(site) (::fidr::fault::FaultDecision{})
#define FIDR_FAULT_RETURN_IF(site) ((void)0)
#endif
