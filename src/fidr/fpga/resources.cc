#include "fidr/fpga/resources.h"

#include "fidr/common/status.h"

namespace fidr::fpga {
namespace {

/**
 * Linear interpolation/extrapolation between two calibrated pipeline
 * depths.  Table 5 reports the engine at 8 and 13 on-chip levels;
 * other depths (ablation benches) extrapolate on the same line.
 */
double
by_levels(unsigned levels, double at8, double at13)
{
    return at8 + (at13 - at8) * (static_cast<double>(levels) - 8.0) / 5.0;
}

}  // namespace

Device
vcu1525()
{
    // XCVU9P totals; they reproduce the paper's percentages exactly
    // (e.g. 290K LUTs reported as 24.5%).
    return Device{"VCU1525 (XCVU9P)", 1'182'240, 2'364'480, 2160, 960};
}

Utilization
utilization(const Resources &used, const Device &device)
{
    Utilization out;
    out.luts_pct = 100.0 * used.luts / device.luts;
    out.flip_flops_pct = 100.0 * used.flip_flops / device.flip_flops;
    out.brams_pct = 100.0 * used.brams / device.brams;
    out.urams_pct = device.urams > 0 ? 100.0 * used.urams / device.urams
                                     : 0.0;
    return out;
}

Resources
nic_base()
{
    // Table 4 "Basic NIC + TCP Offload" row: two 32 Gbps TCP offload
    // instances, ethernet MACs, and the storage protocol engine.
    return Resources{166'000, 169'000, 1024, 0};
}

Resources
sha256_core()
{
    // Fitted from Table 4's write-only (16-core) vs mixed (8-core)
    // delta: 41K LUTs / 41K FFs / 20 BRAM per 8 cores.
    return Resources{5125, 5125, 2.5, 0};
}

Resources
nic_reduction_glue()
{
    // DDR buffer controllers, LBA lookup, compression scheduler:
    // Table 4's write-only row minus 16 SHA cores.
    return Resources{43'000, 46'000, 55, 0};
}

Resources
nic_reduction_support(unsigned sha_cores)
{
    return nic_reduction_glue() + sha256_core() * sha_cores;
}

Resources
cache_engine(const CacheEngineConfig &config)
{
    FIDR_CHECK(config.onchip_levels >= 2);
    // LUTs compose as base datapath (search + update pipelines,
    // command generator, crash/replay controller, free list) plus
    // 6.4K per on-chip level: 316K at 8 levels, 348K at 13 (Table 5).
    Resources out;
    out.luts = 264'800 + 6400.0 * config.onchip_levels;
    // FF and BRAM/URAM budgets are fitted to Table 5's two columns;
    // deep trees move node storage from flip-flop-rich pipeline regs
    // into URAM blocks, which is why FFs *fall* as levels grow.
    out.flip_flops = by_levels(config.onchip_levels, 154'000, 137'000);
    out.brams = by_levels(config.onchip_levels, 202, 390);
    out.urams = config.use_uram ? by_levels(config.onchip_levels, 0, 756)
                                : 0;
    if (config.table_ssd_controller) {
        // NVMe submission/completion queues + doorbell logic for the
        // table SSDs: Table 5's "All" minus "Except table SSD access".
        out = out + Resources{4000, 6000, 16, 0};
    }
    return out;
}

}  // namespace fidr::fpga
