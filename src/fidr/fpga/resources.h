/**
 * @file
 * FPGA resource accounting for the FIDR hardware modules
 * (paper Tables 4 and 5).
 *
 * The prototype targets the Xilinx VCU1525 board (XCVU9P device).
 * Module inventories are composed from calibrated per-component
 * budgets: the NIC is a basic NIC + TCP-offload core plus N SHA-256
 * cores and buffering/scheduling glue, and the Cache HW-Engine is the
 * pipelined tree (cost per level) plus free-list and optional table
 * SSD (NVMe) controllers.  Per-component numbers are fitted to the
 * paper's reported rows and documented inline.
 */
#pragma once

#include <string>

namespace fidr::fpga {

/** Absolute resource counts. */
struct Resources {
    double luts = 0;
    double flip_flops = 0;
    double brams = 0;   ///< BRAM36 blocks.
    double urams = 0;

    Resources
    operator+(const Resources &o) const
    {
        return {luts + o.luts, flip_flops + o.flip_flops, brams + o.brams,
                urams + o.urams};
    }

    Resources
    operator*(double k) const
    {
        return {luts * k, flip_flops * k, brams * k, urams * k};
    }
};

/** A target device's totals. */
struct Device {
    std::string name;
    double luts = 0;
    double flip_flops = 0;
    double brams = 0;
    double urams = 0;
};

/** XCVU9P (VCU1525 board): the prototype's device. */
Device vcu1525();

/** Utilization percentages of `used` on `device`. */
struct Utilization {
    double luts_pct = 0;
    double flip_flops_pct = 0;
    double brams_pct = 0;
    double urams_pct = 0;
};
Utilization utilization(const Resources &used, const Device &device);

// --- FIDR NIC components (Table 4) ---------------------------------

/** Ethernet + TCP offload + protocol engine (the "basic NIC"). */
Resources nic_base();

/** One SHA-256 core (opencores-derived, Sec 6.2). */
Resources sha256_core();

/** Buffer/DDR controllers + compression scheduler glue. */
Resources nic_reduction_glue();

/**
 * Full data-reduction support block with `sha_cores` hash cores
 * (write-only sizing uses 16 cores for 64 Gbps; the mixed workload
 * needs half the hash rate, 8 cores).
 */
Resources nic_reduction_support(unsigned sha_cores);

// --- Cache HW-Engine components (Table 5) --------------------------

/** Cache HW-Engine configuration mirroring Table 5's columns. */
struct CacheEngineConfig {
    unsigned onchip_levels = 8;   ///< Non-leaf pipeline stages on chip.
    bool leaf_in_dram = true;     ///< 16-key leaf level in board DRAM.
    bool table_ssd_controller = true;  ///< NVMe queues in the engine.
    bool use_uram = false;        ///< Deep trees keep nodes in URAM.
};

/** Composed engine resources for a configuration. */
Resources cache_engine(const CacheEngineConfig &config);

}  // namespace fidr::fpga
