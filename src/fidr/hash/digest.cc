#include "fidr/hash/digest.h"

#include "fidr/common/bytes.h"

namespace fidr {

std::uint64_t
Digest::prefix64() const
{
    return load_le(bytes_.data(), 8);
}

std::string
Digest::to_hex() const
{
    return fidr::to_hex(std::span<const std::uint8_t>(bytes_));
}

}  // namespace fidr
