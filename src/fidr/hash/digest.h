/**
 * @file
 * 256-bit chunk signature value type.
 *
 * Deduplication compares digests instead of raw chunk bytes (paper Sec
 * 2.1.2); with SHA-256 the collision probability across petabytes of 4 KB
 * chunks is negligible, so digest equality is treated as content equality
 * throughout the system.
 */
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace fidr {

/** A 32-byte digest with value semantics and cheap comparisons. */
class Digest {
  public:
    static constexpr std::size_t kSize = 32;

    /** Zero digest (never produced by SHA-256 in practice). */
    Digest() : bytes_{} {}

    explicit Digest(const std::array<std::uint8_t, kSize> &bytes)
        : bytes_(bytes) {}

    const std::array<std::uint8_t, kSize> &bytes() const { return bytes_; }
    std::array<std::uint8_t, kSize> &bytes() { return bytes_; }

    /** First 8 bytes as a little-endian integer; used for bucket hashing. */
    std::uint64_t prefix64() const;

    /** Lowercase hex string (64 chars). */
    std::string to_hex() const;

    auto operator<=>(const Digest &) const = default;

  private:
    std::array<std::uint8_t, kSize> bytes_;
};

}  // namespace fidr

/** std::hash support so digests can key unordered containers. */
template <>
struct std::hash<fidr::Digest> {
    std::size_t
    operator()(const fidr::Digest &d) const noexcept
    {
        return static_cast<std::size_t>(d.prefix64());
    }
};
