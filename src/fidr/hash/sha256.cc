#include "fidr/hash/sha256.h"

#include <algorithm>
#include <cstring>

#include "fidr/common/status.h"

namespace fidr {
namespace {

constexpr std::uint32_t kInit[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

constexpr std::uint32_t kRound[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

std::uint32_t
rotr(std::uint32_t x, int k)
{
    return (x >> k) | (x << (32 - k));
}

std::uint32_t
load_be32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

// Message-schedule sigmas (FIPS 180-4 Sec 4.1.2).
std::uint32_t
sig0(std::uint32_t x)
{
    return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3);
}

std::uint32_t
sig1(std::uint32_t x)
{
    return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10);
}

}  // namespace

void
Sha256::reset()
{
    std::memcpy(state_, kInit, sizeof(state_));
    block_len_ = 0;
    total_len_ = 0;
}

// One round with rotated register assignment: callers permute the
// a..h arguments instead of the loop shuffling eight registers, and
// the schedule is a rolling 16-word window instead of a 64-word
// expansion pass (the same structure hand-tuned scalar SHA cores and
// the FPGA pipeline use).
#define FIDR_SHA_ROUND(a, b, c, d, e, f, g, h, k, wv)                       \
    do {                                                                    \
        const std::uint32_t t1 = (h) +                                      \
            (rotr((e), 6) ^ rotr((e), 11) ^ rotr((e), 25)) +                \
            (((e) & (f)) ^ (~(e) & (g))) + (k) + (wv);                      \
        const std::uint32_t t2 =                                            \
            (rotr((a), 2) ^ rotr((a), 13) ^ rotr((a), 22)) +                \
            (((a) & (b)) ^ ((a) & (c)) ^ ((b) & (c)));                      \
        (d) += t1;                                                          \
        (h) = t1 + t2;                                                      \
    } while (0)

// w[j] (mod-16 ring) advanced 16 rounds: w[i] = w[i-16] + s0(w[i-15])
// + w[i-7] + s1(w[i-2]), with i-16 == j, i-15 == j+1, i-7 == j+9 and
// i-2 == j+14 modulo 16.
#define FIDR_SHA_SCHED(j)                                                   \
    (w[(j) & 15] += sig0(w[((j) + 1) & 15]) + w[((j) + 9) & 15] +           \
                    sig1(w[((j) + 14) & 15]))

void
Sha256::compress_block(const std::uint8_t *block)
{
    std::uint32_t w[16];
    for (int i = 0; i < 16; ++i)
        w[i] = load_be32(block + 4 * i);

    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

    FIDR_SHA_ROUND(a, b, c, d, e, f, g, h, kRound[0], w[0]);
    FIDR_SHA_ROUND(h, a, b, c, d, e, f, g, kRound[1], w[1]);
    FIDR_SHA_ROUND(g, h, a, b, c, d, e, f, kRound[2], w[2]);
    FIDR_SHA_ROUND(f, g, h, a, b, c, d, e, kRound[3], w[3]);
    FIDR_SHA_ROUND(e, f, g, h, a, b, c, d, kRound[4], w[4]);
    FIDR_SHA_ROUND(d, e, f, g, h, a, b, c, kRound[5], w[5]);
    FIDR_SHA_ROUND(c, d, e, f, g, h, a, b, kRound[6], w[6]);
    FIDR_SHA_ROUND(b, c, d, e, f, g, h, a, kRound[7], w[7]);
    FIDR_SHA_ROUND(a, b, c, d, e, f, g, h, kRound[8], w[8]);
    FIDR_SHA_ROUND(h, a, b, c, d, e, f, g, kRound[9], w[9]);
    FIDR_SHA_ROUND(g, h, a, b, c, d, e, f, kRound[10], w[10]);
    FIDR_SHA_ROUND(f, g, h, a, b, c, d, e, kRound[11], w[11]);
    FIDR_SHA_ROUND(e, f, g, h, a, b, c, d, kRound[12], w[12]);
    FIDR_SHA_ROUND(d, e, f, g, h, a, b, c, kRound[13], w[13]);
    FIDR_SHA_ROUND(c, d, e, f, g, h, a, b, kRound[14], w[14]);
    FIDR_SHA_ROUND(b, c, d, e, f, g, h, a, kRound[15], w[15]);

    // 16 rounds per iteration keeps every w[] index a compile-time
    // constant ((i + k) & 15 == k when i is a multiple of 16), so the
    // whole 16-word window stays in registers.
    for (int i = 16; i < 64; i += 16) {
        FIDR_SHA_ROUND(a, b, c, d, e, f, g, h, kRound[i + 0],
                       FIDR_SHA_SCHED(0));
        FIDR_SHA_ROUND(h, a, b, c, d, e, f, g, kRound[i + 1],
                       FIDR_SHA_SCHED(1));
        FIDR_SHA_ROUND(g, h, a, b, c, d, e, f, kRound[i + 2],
                       FIDR_SHA_SCHED(2));
        FIDR_SHA_ROUND(f, g, h, a, b, c, d, e, kRound[i + 3],
                       FIDR_SHA_SCHED(3));
        FIDR_SHA_ROUND(e, f, g, h, a, b, c, d, kRound[i + 4],
                       FIDR_SHA_SCHED(4));
        FIDR_SHA_ROUND(d, e, f, g, h, a, b, c, kRound[i + 5],
                       FIDR_SHA_SCHED(5));
        FIDR_SHA_ROUND(c, d, e, f, g, h, a, b, kRound[i + 6],
                       FIDR_SHA_SCHED(6));
        FIDR_SHA_ROUND(b, c, d, e, f, g, h, a, kRound[i + 7],
                       FIDR_SHA_SCHED(7));
        FIDR_SHA_ROUND(a, b, c, d, e, f, g, h, kRound[i + 8],
                       FIDR_SHA_SCHED(8));
        FIDR_SHA_ROUND(h, a, b, c, d, e, f, g, kRound[i + 9],
                       FIDR_SHA_SCHED(9));
        FIDR_SHA_ROUND(g, h, a, b, c, d, e, f, kRound[i + 10],
                       FIDR_SHA_SCHED(10));
        FIDR_SHA_ROUND(f, g, h, a, b, c, d, e, kRound[i + 11],
                       FIDR_SHA_SCHED(11));
        FIDR_SHA_ROUND(e, f, g, h, a, b, c, d, kRound[i + 12],
                       FIDR_SHA_SCHED(12));
        FIDR_SHA_ROUND(d, e, f, g, h, a, b, c, kRound[i + 13],
                       FIDR_SHA_SCHED(13));
        FIDR_SHA_ROUND(c, d, e, f, g, h, a, b, kRound[i + 14],
                       FIDR_SHA_SCHED(14));
        FIDR_SHA_ROUND(b, c, d, e, f, g, h, a, kRound[i + 15],
                       FIDR_SHA_SCHED(15));
    }

    state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d;
    state_[4] += e; state_[5] += f; state_[6] += g; state_[7] += h;
}

#undef FIDR_SHA_ROUND
#undef FIDR_SHA_SCHED

void
Sha256::update(std::span<const std::uint8_t> data)
{
    total_len_ += data.size();
    std::size_t offset = 0;

    if (block_len_ > 0) {
        const std::size_t take = std::min(data.size(), 64 - block_len_);
        std::memcpy(block_ + block_len_, data.data(), take);
        block_len_ += take;
        offset += take;
        if (block_len_ == 64) {
            compress_block(block_);
            block_len_ = 0;
        }
    }
    while (offset + 64 <= data.size()) {
        compress_block(data.data() + offset);
        offset += 64;
    }
    if (offset < data.size()) {
        std::memcpy(block_, data.data() + offset, data.size() - offset);
        block_len_ = data.size() - offset;
    }
}

Digest
Sha256::finish()
{
    const std::uint64_t bit_len = total_len_ * 8;

    std::uint8_t pad[72];
    std::size_t pad_len = 0;
    pad[pad_len++] = 0x80;
    while ((block_len_ + pad_len) % 64 != 56)
        pad[pad_len++] = 0x00;
    for (int i = 7; i >= 0; --i)
        pad[pad_len++] = static_cast<std::uint8_t>(bit_len >> (8 * i));
    update(std::span<const std::uint8_t>(pad, pad_len));
    // Padding runs the length up to a block boundary, so update() must
    // have consumed everything.
    FIDR_CHECK(block_len_ == 0);

    Digest out;
    for (int i = 0; i < 8; ++i) {
        out.bytes()[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
        out.bytes()[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        out.bytes()[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        out.bytes()[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
}

Digest
Sha256::hash(std::span<const std::uint8_t> data)
{
    Sha256 ctx;
    ctx.update(data);
    return ctx.finish();
}

std::uint64_t
fnv1a64(std::span<const std::uint8_t> data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t b : data) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

}  // namespace fidr
