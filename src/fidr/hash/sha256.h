/**
 * @file
 * From-scratch SHA-256 (FIPS 180-4).
 *
 * This is the software counterpart of the open-source SHA-256 FPGA core
 * the paper instantiates in the FIDR NIC (Sec 6.2).  The incremental API
 * mirrors the usual init/update/final flow so callers can hash streamed
 * request payloads without copying.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "fidr/hash/digest.h"

namespace fidr {

/** Incremental SHA-256 context. */
class Sha256 {
  public:
    Sha256() { reset(); }

    /** Resets to the initial hash state; the context is reusable. */
    void reset();

    /** Absorbs `data` into the running hash. */
    void update(std::span<const std::uint8_t> data);

    /**
     * Applies padding and returns the digest.  The context must be
     * reset() before reuse after finishing.
     */
    Digest finish();

    /** One-shot convenience over a byte span. */
    static Digest hash(std::span<const std::uint8_t> data);

  private:
    void compress_block(const std::uint8_t *block);

    std::uint32_t state_[8];
    std::uint8_t block_[64];
    std::size_t block_len_;
    std::uint64_t total_len_;
};

/**
 * FNV-1a 64-bit: a fast non-cryptographic hash used for internal index
 * structures where collision resistance against adversaries is not
 * needed (e.g. simulation-side sampling).  Never used as a chunk
 * signature.
 */
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

}  // namespace fidr
