#include "fidr/hash/sha256_mb.h"

#include <cstring>

#include "fidr/common/simd.h"
#include "fidr/hash/sha256.h"
#include "fidr/hash/sha256_mb_kernels.h"

namespace fidr {
namespace {

/**
 * One engine lane's message stream: the payload's whole 64-byte
 * blocks, then 1-2 materialized padding blocks (0x80 marker + zero
 * fill + big-endian bit length, FIPS 180-4 Sec 5.1.1), so every lane
 * advances one block per transform with no mid-stream branching.
 */
struct LaneStream {
    const std::uint8_t *data = nullptr;
    std::size_t full_blocks = 0;
    std::uint8_t tail[128];
    std::size_t tail_blocks = 0;
    std::size_t tail_next = 0;
    std::size_t out = 0;  ///< Digest slot this lane is producing.
    bool active = false;
};

void
prepare(std::span<const std::uint8_t> input, LaneStream &lane,
        std::size_t out_index)
{
    lane.data = input.data();
    lane.full_blocks = input.size() / 64;
    const std::size_t rem = input.size() % 64;
    std::memset(lane.tail, 0, sizeof(lane.tail));
    if (rem > 0)
        std::memcpy(lane.tail, input.data() + input.size() - rem, rem);
    lane.tail[rem] = 0x80;
    const std::size_t padded = rem + 9 <= 64 ? 64 : 128;
    const std::uint64_t bit_len =
        static_cast<std::uint64_t>(input.size()) * 8;
    for (int i = 0; i < 8; ++i) {
        lane.tail[padded - 8 + i] =
            static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    }
    lane.tail_blocks = padded / 64;
    lane.tail_next = 0;
    lane.out = out_index;
    lane.active = true;
}

#if defined(FIDR_SIMD_X86)
/**
 * Lane-refill scheduler: run L interleaved compressions; whenever a
 * lane drains its stream, emit the digest and hand the lane the next
 * pending buffer.  Idle lanes (fewer pending buffers than lanes at
 * the tail of a batch) chew a dummy block; their state columns are
 * never read.
 */
template <std::size_t L, typename TransformFn>
void
run_mb(std::span<const std::span<const std::uint8_t>> inputs, Digest *out,
       TransformFn transform)
{
    static constexpr std::uint8_t kDummyBlock[64] = {};
    std::uint32_t st[8][L];
    LaneStream lanes[L];
    const std::size_t n = inputs.size();
    std::size_t next = 0;
    std::size_t done = 0;

    const auto refill = [&](std::size_t l) {
        if (next >= n) {
            lanes[l].active = false;
            return;
        }
        prepare(inputs[next], lanes[l], next);
        for (int w = 0; w < 8; ++w)
            st[w][l] = hash_detail::kSha256Init[w];
        ++next;
    };
    for (std::size_t l = 0; l < L; ++l)
        refill(l);

    while (done < n) {
        const std::uint8_t *blk[L];
        for (std::size_t l = 0; l < L; ++l) {
            LaneStream &lane = lanes[l];
            if (!lane.active) {
                blk[l] = kDummyBlock;
            } else if (lane.full_blocks > 0) {
                blk[l] = lane.data;
                lane.data += 64;
                --lane.full_blocks;
            } else {
                blk[l] = lane.tail + 64 * lane.tail_next;
                ++lane.tail_next;
            }
        }
        transform(st, blk);
        for (std::size_t l = 0; l < L; ++l) {
            LaneStream &lane = lanes[l];
            if (!lane.active || lane.full_blocks > 0 ||
                lane.tail_next < lane.tail_blocks) {
                continue;
            }
            Digest &digest = out[lane.out];
            for (int w = 0; w < 8; ++w) {
                const std::uint32_t word = st[w][l];
                digest.bytes()[4 * w] =
                    static_cast<std::uint8_t>(word >> 24);
                digest.bytes()[4 * w + 1] =
                    static_cast<std::uint8_t>(word >> 16);
                digest.bytes()[4 * w + 2] =
                    static_cast<std::uint8_t>(word >> 8);
                digest.bytes()[4 * w + 3] =
                    static_cast<std::uint8_t>(word);
            }
            ++done;
            refill(l);
        }
    }
}
#endif  // FIDR_SIMD_X86

}  // namespace

std::size_t
sha256_mb_lanes()
{
    switch (simd::active()) {
      // No dedicated AVX-512 hash kernel: 16-lane interleaving would
      // need batches the write plane rarely fills, so the avx512
      // target reuses the 8-lane AVX2 transform.
      case simd::Target::kAvx512: return 8;
      case simd::Target::kAvx2: return 8;
      case simd::Target::kSse4: return 4;
      case simd::Target::kScalar: return 1;
    }
    return 1;
}

void
sha256_mb_hash(std::span<const std::span<const std::uint8_t>> inputs,
               Digest *out)
{
    const std::size_t n = inputs.size();
    if (n == 0)
        return;
#if defined(FIDR_SIMD_X86)
    // Batches below half the engine width waste more on idle lanes
    // than interleaving saves; hand them to the scalar kernel.
    const simd::Target target = simd::active();
    if ((target == simd::Target::kAvx2 ||
         target == simd::Target::kAvx512) &&
        n >= 4) {
        run_mb<8>(inputs, out, hash_detail::sha256_transform_x8_avx2);
        return;
    }
    if (target == simd::Target::kSse4 && n >= 2) {
        run_mb<4>(inputs, out, hash_detail::sha256_transform_x4_sse4);
        return;
    }
#endif
    for (std::size_t i = 0; i < n; ++i)
        out[i] = Sha256::hash(inputs[i]);
}

}  // namespace fidr
