/**
 * @file
 * Multi-buffer SHA-256: hashes N independent buffers per call.
 *
 * Single-message SIMD SHA-256 gains little — the 64-round compression
 * is a serial dependency chain.  Multi-buffer turns the problem
 * sideways (the ISA-L / OpenSSL "SHA-mb" idea): one 32-bit vector
 * lane per *message*, so an AVX2 register runs eight independent
 * compressions in lockstep and an SSE4 register four.  Each lane
 * executes exactly the FIPS 180-4 math of the scalar `Sha256`, so
 * digests are byte-identical to `Sha256::hash` on every dispatch
 * target (fuzzed by tests/test_simd_dispatch.cpp).
 *
 * The driver is a lane-refill scheduler: when a lane's message (plus
 * its padding blocks) completes, the digest is emitted and the lane
 * immediately picks up the next pending buffer, so unequal lengths
 * don't serialize the batch.  This is the engine behind the FIDR
 * NIC's hash stage (FidrNic::hash_buffered / hash_sealed feed each
 * hash worker's chunk queue through it) and the baseline
 * accelerator's batch hashing.
 */
#pragma once

#include <cstddef>
#include <span>

#include "fidr/hash/digest.h"

namespace fidr {

/**
 * Interleaved lanes of the active dispatch target's engine: 8 (AVX2),
 * 4 (SSE4) or 1 (scalar).  Callers batching work should aim for
 * multiples of this.
 */
std::size_t sha256_mb_lanes();

/**
 * Hashes `inputs.size()` independent buffers into `out[0..n)`;
 * `out[i]` equals `Sha256::hash(inputs[i])` bit-for-bit.  Dispatches
 * on `fidr::simd::active()`; small batches (below half the engine
 * width) take the scalar path, which is faster than padding idle
 * lanes with dummy blocks.
 */
void sha256_mb_hash(std::span<const std::span<const std::uint8_t>> inputs,
                    Digest *out);

}  // namespace fidr
