// AVX2 8-lane multi-buffer SHA-256 transform.
//
// Compiled with -mavx2 (src/fidr/hash/CMakeLists.txt); only reached
// after the runtime cpuid probe admits AVX2.  One 32-bit YMM lane per
// message: the message loads are an 8x8 dword transpose (unpack +
// permute ladder) so each schedule word w[t] holds word t of all
// eight blocks, then the shared round body runs eight FIPS 180-4
// compressions in lockstep.

#if defined(FIDR_SIMD_X86)

#include <immintrin.h>

#include "fidr/hash/sha256_mb_rounds.h"

namespace fidr::hash_detail {
namespace {

struct VAvx2 {
    using vec = __m256i;
    static vec add(vec a, vec b) { return _mm256_add_epi32(a, b); }
    static vec and_(vec a, vec b) { return _mm256_and_si256(a, b); }
    static vec andnot(vec a, vec b) { return _mm256_andnot_si256(a, b); }
    static vec or_(vec a, vec b) { return _mm256_or_si256(a, b); }
    static vec xor_(vec a, vec b) { return _mm256_xor_si256(a, b); }
    static vec srl(vec x, int k) { return _mm256_srli_epi32(x, k); }
    static vec sll(vec x, int k) { return _mm256_slli_epi32(x, k); }
    static vec
    set1(std::uint32_t k)
    {
        return _mm256_set1_epi32(static_cast<int>(k));
    }
};

/** rows[l] = 8 dwords of block l  ->  rows[j] = dword j of all blocks. */
inline void
transpose8x8(__m256i r[8])
{
    const __m256i t0 = _mm256_unpacklo_epi32(r[0], r[1]);
    const __m256i t1 = _mm256_unpackhi_epi32(r[0], r[1]);
    const __m256i t2 = _mm256_unpacklo_epi32(r[2], r[3]);
    const __m256i t3 = _mm256_unpackhi_epi32(r[2], r[3]);
    const __m256i t4 = _mm256_unpacklo_epi32(r[4], r[5]);
    const __m256i t5 = _mm256_unpackhi_epi32(r[4], r[5]);
    const __m256i t6 = _mm256_unpacklo_epi32(r[6], r[7]);
    const __m256i t7 = _mm256_unpackhi_epi32(r[6], r[7]);
    const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);
    const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);
    const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);
    const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);
    const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
    r[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
    r[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
    r[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
    r[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
    r[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
    r[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
    r[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
    r[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
}

inline __m256i
bswap32(__m256i x)
{
    const __m256i shuffle = _mm256_setr_epi8(
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
    return _mm256_shuffle_epi8(x, shuffle);
}

}  // namespace

void
sha256_transform_x8_avx2(std::uint32_t state[8][8],
                         const std::uint8_t *const blocks[8])
{
    __m256i w[16];
    for (int half = 0; half < 2; ++half) {
        __m256i rows[8];
        for (int l = 0; l < 8; ++l) {
            rows[l] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(blocks[l] + 32 * half));
        }
        transpose8x8(rows);
        for (int j = 0; j < 8; ++j)
            w[8 * half + j] = bswap32(rows[j]);
    }

    __m256i s[8];
    for (int i = 0; i < 8; ++i) {
        s[i] = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(state[i]));
    }
    sha256_mb_rounds<VAvx2>(w, s);
    for (int i = 0; i < 8; ++i)
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(state[i]), s[i]);
}

}  // namespace fidr::hash_detail

#endif  // FIDR_SIMD_X86
