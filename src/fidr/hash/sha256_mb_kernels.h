/**
 * @file
 * Internal multi-buffer SHA-256 kernel interface: the per-ISA block
 * transforms plus the FIPS 180-4 constants they share with the
 * scheduler.  Not part of the public hash API.
 *
 * State layout is word-major: `state[w][lane]` is word `w` of lane
 * `lane`'s running hash, so each of the eight working variables loads
 * as one contiguous vector.  A transform consumes exactly one 64-byte
 * block per lane and updates all lanes in lockstep.
 */
#pragma once

#include <cstdint>

namespace fidr::hash_detail {

/** FIPS 180-4 Sec 5.3.3 initial hash value. */
inline constexpr std::uint32_t kSha256Init[8] = {
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
    0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
};

/** FIPS 180-4 Sec 4.2.2 round constants. */
inline constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

#if defined(FIDR_SIMD_X86)
/** One 64-byte block per lane, 4 lanes in XMM registers (SSE4). */
void sha256_transform_x4_sse4(std::uint32_t state[8][4],
                              const std::uint8_t *const blocks[4]);

/** One 64-byte block per lane, 8 lanes in YMM registers (AVX2). */
void sha256_transform_x8_avx2(std::uint32_t state[8][8],
                              const std::uint8_t *const blocks[8]);
#endif

}  // namespace fidr::hash_detail
