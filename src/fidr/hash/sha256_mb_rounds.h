/**
 * @file
 * ISA-generic round body for the multi-buffer SHA-256 transforms.
 *
 * Each kernel TU (sha256_mb_sse4.cc, sha256_mb_avx2.cc) defines a
 * vector-ops traits struct `V` (add/and/andnot/or/xor/shift/set1 over
 * its register type) and instantiates `sha256_mb_rounds<V>` under its
 * own -m<isa> flags, so the one copy of the 64-round schedule below
 * compiles to SSE and AVX2 code without duplication.  The structure
 * mirrors the scalar Sha256::compress_block exactly: rotated register
 * assignment and a rolling 16-word schedule window — every lane
 * computes the same FIPS 180-4 sequence, just eight (or four) at a
 * time.
 */
#pragma once

#include "fidr/hash/sha256_mb_kernels.h"

namespace fidr::hash_detail {

template <typename V>
inline typename V::vec
vrotr(typename V::vec x, int k)
{
    return V::or_(V::srl(x, k), V::sll(x, 32 - k));
}

template <typename V>
inline typename V::vec
vbsig0(typename V::vec a)
{
    return V::xor_(V::xor_(vrotr<V>(a, 2), vrotr<V>(a, 13)),
                   vrotr<V>(a, 22));
}

template <typename V>
inline typename V::vec
vbsig1(typename V::vec e)
{
    return V::xor_(V::xor_(vrotr<V>(e, 6), vrotr<V>(e, 11)),
                   vrotr<V>(e, 25));
}

template <typename V>
inline typename V::vec
vssig0(typename V::vec x)
{
    return V::xor_(V::xor_(vrotr<V>(x, 7), vrotr<V>(x, 18)),
                   V::srl(x, 3));
}

template <typename V>
inline typename V::vec
vssig1(typename V::vec x)
{
    return V::xor_(V::xor_(vrotr<V>(x, 17), vrotr<V>(x, 19)),
                   V::srl(x, 10));
}

template <typename V>
inline typename V::vec
vch(typename V::vec e, typename V::vec f, typename V::vec g)
{
    return V::xor_(V::and_(e, f), V::andnot(e, g));
}

template <typename V>
inline typename V::vec
vmaj(typename V::vec a, typename V::vec b, typename V::vec c)
{
    // maj = (a & b) | ((a ^ b) & c): 4 ops instead of the textbook 5.
    return V::or_(V::and_(a, b), V::and_(V::xor_(a, b), c));
}

/**
 * Runs all 64 rounds over the 16-word schedule window `w` (already
 * byte-swapped to host order) and adds the result into `s[0..7]`.
 */
template <typename V>
inline void
sha256_mb_rounds(typename V::vec w[16], typename V::vec s[8])
{
    using vec = typename V::vec;
    vec a = s[0], b = s[1], c = s[2], d = s[3];
    vec e = s[4], f = s[5], g = s[6], h = s[7];

#define FIDR_MB_ROUND(A, B, C, D, E, F, G, H, t, wv)                        \
    do {                                                                    \
        const vec t1 = V::add(                                              \
            V::add(V::add((H), vbsig1<V>(E)),                               \
                   V::add(vch<V>((E), (F), (G)),                            \
                          V::set1(kSha256K[t]))),                           \
            (wv));                                                          \
        const vec t2 = V::add(vbsig0<V>(A), vmaj<V>((A), (B), (C)));        \
        (D) = V::add((D), t1);                                              \
        (H) = V::add(t1, t2);                                               \
    } while (0)

// w[j] (mod-16 ring) advanced 16 rounds, same as the scalar kernel.
#define FIDR_MB_SCHED(j)                                                    \
    (w[(j) & 15] = V::add(V::add(w[(j) & 15], vssig0<V>(w[((j) + 1) & 15])),\
                          V::add(w[((j) + 9) & 15],                         \
                                 vssig1<V>(w[((j) + 14) & 15]))))

    FIDR_MB_ROUND(a, b, c, d, e, f, g, h, 0, w[0]);
    FIDR_MB_ROUND(h, a, b, c, d, e, f, g, 1, w[1]);
    FIDR_MB_ROUND(g, h, a, b, c, d, e, f, 2, w[2]);
    FIDR_MB_ROUND(f, g, h, a, b, c, d, e, 3, w[3]);
    FIDR_MB_ROUND(e, f, g, h, a, b, c, d, 4, w[4]);
    FIDR_MB_ROUND(d, e, f, g, h, a, b, c, 5, w[5]);
    FIDR_MB_ROUND(c, d, e, f, g, h, a, b, 6, w[6]);
    FIDR_MB_ROUND(b, c, d, e, f, g, h, a, 7, w[7]);
    FIDR_MB_ROUND(a, b, c, d, e, f, g, h, 8, w[8]);
    FIDR_MB_ROUND(h, a, b, c, d, e, f, g, 9, w[9]);
    FIDR_MB_ROUND(g, h, a, b, c, d, e, f, 10, w[10]);
    FIDR_MB_ROUND(f, g, h, a, b, c, d, e, 11, w[11]);
    FIDR_MB_ROUND(e, f, g, h, a, b, c, d, 12, w[12]);
    FIDR_MB_ROUND(d, e, f, g, h, a, b, c, 13, w[13]);
    FIDR_MB_ROUND(c, d, e, f, g, h, a, b, 14, w[14]);
    FIDR_MB_ROUND(b, c, d, e, f, g, h, a, 15, w[15]);

    for (int t = 16; t < 64; t += 16) {
        FIDR_MB_ROUND(a, b, c, d, e, f, g, h, t + 0, FIDR_MB_SCHED(0));
        FIDR_MB_ROUND(h, a, b, c, d, e, f, g, t + 1, FIDR_MB_SCHED(1));
        FIDR_MB_ROUND(g, h, a, b, c, d, e, f, t + 2, FIDR_MB_SCHED(2));
        FIDR_MB_ROUND(f, g, h, a, b, c, d, e, t + 3, FIDR_MB_SCHED(3));
        FIDR_MB_ROUND(e, f, g, h, a, b, c, d, t + 4, FIDR_MB_SCHED(4));
        FIDR_MB_ROUND(d, e, f, g, h, a, b, c, t + 5, FIDR_MB_SCHED(5));
        FIDR_MB_ROUND(c, d, e, f, g, h, a, b, t + 6, FIDR_MB_SCHED(6));
        FIDR_MB_ROUND(b, c, d, e, f, g, h, a, t + 7, FIDR_MB_SCHED(7));
        FIDR_MB_ROUND(a, b, c, d, e, f, g, h, t + 8, FIDR_MB_SCHED(8));
        FIDR_MB_ROUND(h, a, b, c, d, e, f, g, t + 9, FIDR_MB_SCHED(9));
        FIDR_MB_ROUND(g, h, a, b, c, d, e, f, t + 10, FIDR_MB_SCHED(10));
        FIDR_MB_ROUND(f, g, h, a, b, c, d, e, t + 11, FIDR_MB_SCHED(11));
        FIDR_MB_ROUND(e, f, g, h, a, b, c, d, t + 12, FIDR_MB_SCHED(12));
        FIDR_MB_ROUND(d, e, f, g, h, a, b, c, t + 13, FIDR_MB_SCHED(13));
        FIDR_MB_ROUND(c, d, e, f, g, h, a, b, t + 14, FIDR_MB_SCHED(14));
        FIDR_MB_ROUND(b, c, d, e, f, g, h, a, t + 15, FIDR_MB_SCHED(15));
    }

#undef FIDR_MB_ROUND
#undef FIDR_MB_SCHED

    s[0] = V::add(s[0], a);
    s[1] = V::add(s[1], b);
    s[2] = V::add(s[2], c);
    s[3] = V::add(s[3], d);
    s[4] = V::add(s[4], e);
    s[5] = V::add(s[5], f);
    s[6] = V::add(s[6], g);
    s[7] = V::add(s[7], h);
}

}  // namespace fidr::hash_detail
