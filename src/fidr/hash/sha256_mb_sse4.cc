// SSE4 4-lane multi-buffer SHA-256 transform.
//
// Compiled with -msse4.1 (src/fidr/hash/CMakeLists.txt); only reached
// after the runtime cpuid probe admits SSE4.  Same construction as the
// AVX2 kernel at half the width: one 32-bit XMM lane per message, 4x4
// dword transposes for the message loads, shared round body.

#if defined(FIDR_SIMD_X86)

#include <smmintrin.h>
#include <tmmintrin.h>

#include "fidr/hash/sha256_mb_rounds.h"

namespace fidr::hash_detail {
namespace {

struct VSse4 {
    using vec = __m128i;
    static vec add(vec a, vec b) { return _mm_add_epi32(a, b); }
    static vec and_(vec a, vec b) { return _mm_and_si128(a, b); }
    static vec andnot(vec a, vec b) { return _mm_andnot_si128(a, b); }
    static vec or_(vec a, vec b) { return _mm_or_si128(a, b); }
    static vec xor_(vec a, vec b) { return _mm_xor_si128(a, b); }
    static vec srl(vec x, int k) { return _mm_srli_epi32(x, k); }
    static vec sll(vec x, int k) { return _mm_slli_epi32(x, k); }
    static vec
    set1(std::uint32_t k)
    {
        return _mm_set1_epi32(static_cast<int>(k));
    }
};

/** rows[l] = 4 dwords of block l  ->  rows[j] = dword j of all blocks. */
inline void
transpose4x4(__m128i r[4])
{
    const __m128i t0 = _mm_unpacklo_epi32(r[0], r[1]);
    const __m128i t1 = _mm_unpacklo_epi32(r[2], r[3]);
    const __m128i t2 = _mm_unpackhi_epi32(r[0], r[1]);
    const __m128i t3 = _mm_unpackhi_epi32(r[2], r[3]);
    r[0] = _mm_unpacklo_epi64(t0, t1);
    r[1] = _mm_unpackhi_epi64(t0, t1);
    r[2] = _mm_unpacklo_epi64(t2, t3);
    r[3] = _mm_unpackhi_epi64(t2, t3);
}

inline __m128i
bswap32(__m128i x)
{
    const __m128i shuffle = _mm_setr_epi8(
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
    return _mm_shuffle_epi8(x, shuffle);
}

}  // namespace

void
sha256_transform_x4_sse4(std::uint32_t state[8][4],
                         const std::uint8_t *const blocks[4])
{
    __m128i w[16];
    for (int group = 0; group < 4; ++group) {
        __m128i rows[4];
        for (int l = 0; l < 4; ++l) {
            rows[l] = _mm_loadu_si128(reinterpret_cast<const __m128i *>(
                blocks[l] + 16 * group));
        }
        transpose4x4(rows);
        for (int j = 0; j < 4; ++j)
            w[4 * group + j] = bswap32(rows[j]);
    }

    __m128i s[8];
    for (int i = 0; i < 8; ++i) {
        s[i] = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(state[i]));
    }
    sha256_mb_rounds<VSse4>(w, s);
    for (int i = 0; i < 8; ++i)
        _mm_storeu_si128(reinterpret_cast<__m128i *>(state[i]), s[i]);
}

}  // namespace fidr::hash_detail

#endif  // FIDR_SIMD_X86
