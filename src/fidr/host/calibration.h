/**
 * @file
 * Calibration constants for the performance model.
 *
 * The reproduction's data flows are mechanistic (every DMA, buffer
 * copy, bucket scan and tree update debits a ledger), but the paper's
 * testbed fixes the absolute per-event costs.  Every constant here is
 * derived from a number the paper reports and carries its provenance.
 *
 * Reference profiling point: a write-only workload at the Write-M
 * operating point of Table 3 (84% dedup, 50% compression, 81%
 * table-cache hit rate); the baseline then needs 67 Xeon cores and
 * ~317 GB/s of DRAM bandwidth at 75 GB/s of client throughput
 * (Figs 4-5).  Sec 3.2 nominally sets the profiling dedup ratio to
 * 50%, but the paper's own Table 1 shares are only consistent with
 * this Write-M point (see EXPERIMENTS.md), so we calibrate here.
 *
 * CPU costs are core-microseconds per 4 KB chunk.  The total at the
 * reference point is 67 cores / 75 GB/s = 0.893 core-s per GB =
 * 3.659 core-us per chunk, split using Fig 5b (predictor 32.7%, table
 * cache management 52.4%, rest 14.9%) and Table 2 (within table cache
 * management: tree indexing 43.9%, table SSD access 24.7%, content
 * access 6.3%, replacement 1.0%, remainder "other").
 */
#pragma once

#include "fidr/common/units.h"

namespace fidr::calib {

// ---------------------------------------------------------------------
// Socket envelope (paper Sec 3.2, 7.5).
// ---------------------------------------------------------------------

/** Cores in the high-end socket used for projection (Xeon E5-4669 v4). */
inline constexpr double kSocketCores = 22.0;

/** Theoretical socket DRAM bandwidth: 8 channels (Sec 3.2.1). */
inline constexpr Bandwidth kSocketMemBandwidth = gb_per_s(170);

/** Theoretical per-socket PCIe bandwidth (1 Tbps, Sec 1). */
inline constexpr Bandwidth kSocketPcieBandwidth = gb_per_s(128);

/** Conservative client-throughput target: 60% of PCIe (Sec 3.2). */
inline constexpr Bandwidth kTargetThroughput = gb_per_s(75);

// ---------------------------------------------------------------------
// Reference operating point used to derive per-event costs.
// ---------------------------------------------------------------------

/** Table-cache miss rate at the profiling point (Write-M, Table 3). */
inline constexpr double kRefMissRate = 0.19;

/** Cores the baseline needs at 75 GB/s write-only (Fig 5a). */
inline constexpr double kRefBaselineCores = 67.0;

/** Core-us per 4 KB chunk for the baseline at the reference point. */
inline constexpr double kRefBaselineUsPerChunk =
    kRefBaselineCores / (75e9 / 4096.0) * 1e6;  // = 3.659 us

// ---------------------------------------------------------------------
// CPU cost per task, core-microseconds per 4 KB chunk (or per event).
// Shares: Fig 5b and Table 2, applied to kRefBaselineUsPerChunk.
// ---------------------------------------------------------------------

/** Unique-chunk predictor (baseline only): 32.7% of CPU (Fig 5b). */
inline constexpr double kCpuPredictorPerChunk = 1.196;

/**
 * Request handling, batch scheduling, DMA management and the data-SSD
 * NVMe stack on the write path: the 14.9% of Fig 5b that is neither
 * predictor nor table caching.
 */
inline constexpr double kCpuOrchestrationPerChunk = 0.545;

/** Software tree lookup per chunk (part of Table 2's 43.9%). */
inline constexpr double kCpuTreeLookupPerChunk = 0.40;

/**
 * Software tree update work per cache miss (insert of the fetched
 * bucket plus delete of the victim).  Chosen so lookup + miss-rate
 * scaled updates reproduce Table 2's 43.9% share at 19% miss rate:
 * 0.40 + 0.19 * 2.33 = 0.843 us = 43.9% of the 1.917 us table share.
 */
inline constexpr double kCpuTreeUpdatePerMiss = 2.33;

/**
 * Table-SSD software stack per cache miss (submit/poll for the bucket
 * fetch and any dirty flush): Table 2's 24.7% share / 19% miss rate.
 */
inline constexpr double kCpuTableSsdPerMiss = 2.49;

/** Scanning the cached bucket content per chunk: Table 2's 6.3%. */
inline constexpr double kCpuBucketScanPerChunk = 0.121;

/** LRU list maintenance per chunk: Table 2's 1.0%. */
inline constexpr double kCpuLruPerChunk = 0.019;

/**
 * Residual table-cache-management work (allocation, locking, cache
 * bookkeeping) that stays on the host in both systems: the unlisted
 * remainder of Table 2 (~24% of the table-caching share).
 */
inline constexpr double kCpuTableMiscPerChunk = 0.462;

/**
 * Read-path host work per chunk (LBA-PBA lookup, data-SSD NVMe stack,
 * decompression orchestration, data forwarding).  Derived from the
 * mixed-workload constraint of Fig 5b: with reads costing 2.478 us the
 * memory-management share of mixed CPU lands at 50.8%.
 */
inline constexpr double kCpuReadPerChunk = 2.478;

/**
 * Read-path host work remaining when the NVMe software stack is
 * offloaded to the FPGA (the paper's future-work extension, Sec 7.5):
 * only the LBA-PBA lookup and completion notification stay on the CPU.
 */
inline constexpr double kCpuReadOffloadResidual = 0.5;

// ---------------------------------------------------------------------
// Host-DRAM traffic factors (bytes of DRAM traffic per byte involved).
// These make the mechanistic flows land on Table 1's shares.
// ---------------------------------------------------------------------

/**
 * Fraction of a 4 KB bucket the duplicate-detection scan actually
 * touches on average (entries are scanned until a match/mismatch is
 * resolved).  Calibrated so the table-caching share of DRAM traffic
 * matches Table 1's 25.7% at the reference point.
 */
inline constexpr double kBucketScanFraction = 0.8;

/** Fraction of evicted table-cache lines that are dirty (need flush). */
inline constexpr double kDirtyEvictFraction = 0.5;

// ---------------------------------------------------------------------
// FIDR Cache HW-Engine pipeline model (Fig 13, Table 5).
// ---------------------------------------------------------------------

/** Engine clock; VCU1525 designs of this size close around 250 MHz. */
inline constexpr double kHwTreeClockHz = 250e6;

/**
 * Effective engine cycles per chunk lookup, dominated by streaming the
 * 16-key leaf node (608 B) over the 512-bit FPGA DRAM bus (~10 bus
 * beats).  Fitted together with kHwTreeUpdateCyclesPerLevel to Fig
 * 13's two Write-M endpoints (27.1 GB/s at 1 update lane, 63.8 GB/s
 * at 4 lanes, 19% miss rate).
 */
inline constexpr double kHwTreeSearchCycles = 8.8;

/**
 * Engine cycles per tree update *per pipeline level* in single-update
 * mode: an update traverses the search pipeline and then the update
 * pipeline in reverse (Sec 5.5.1), so its cost scales with tree depth.
 * With L update lanes the effective cost divides by L.  14 levels x
 * 5.44 = 76.2 cycles reproduces Fig 13's Write-M endpoints; 9 levels
 * reproduces Table 5's 80 GB/s medium-tree estimate.
 */
inline constexpr double kHwTreeUpdateCyclesPerLevel = 5.44;

/** Tree updates per table-cache miss (insert fetched + delete victim). */
inline constexpr double kHwTreeUpdatesPerMiss = 2.0;

/** Pipeline depth emulated in the Fig 13 experiments (PB-scale tree). */
inline constexpr unsigned kHwTreePipelineLevels = 14;

/** FPGA-board DRAM bandwidth serving leaf nodes (one DDR4 channel). */
inline constexpr Bandwidth kHwTreeDramBandwidth = gb_per_s(19.2);

/** Leaf node size: 16 keys x 38 B entries (Sec 6.3). */
inline constexpr double kHwTreeLeafBytes = 16 * 38.0;

/** Observed misspeculation (crash/replay) rate bound (Sec 5.5.1). */
inline constexpr double kHwTreeCrashRateBound = 0.001;

// ---------------------------------------------------------------------
// Latency model anchors (Sec 7.6: 700 us baseline vs 490 us FIDR
// server-side latency for a batched 4 KB read).
// ---------------------------------------------------------------------

/** Host software stack latency added per staged hop in the baseline. */
inline constexpr SimTime kHostStagingLatency = 100 * kMicrosecond;

/** Batch size (4 KB reads) used in the Sec 7.6 measurement. */
inline constexpr unsigned kLatencyBatchSize = 32;

}  // namespace fidr::calib
