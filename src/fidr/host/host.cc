#include "fidr/host/host.h"

namespace fidr::host {

Status
HostMemory::claim(const std::string &component, std::uint64_t bytes)
{
    if (used_ + bytes > capacity_) {
        return Status::out_of_space("host memory: " + component +
                                    " claim exceeds capacity");
    }
    claims_[component] += bytes;
    used_ += bytes;
    return Status::ok();
}

void
HostMemory::release(const std::string &component, std::uint64_t bytes)
{
    auto it = claims_.find(component);
    FIDR_CHECK(it != claims_.end() && it->second >= bytes);
    it->second -= bytes;
    used_ -= bytes;
    if (it->second == 0)
        claims_.erase(it);
}

std::uint64_t
HostMemory::used_by(const std::string &component) const
{
    const auto it = claims_.find(component);
    return it == claims_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>>
HostMemory::breakdown() const
{
    return {claims_.begin(), claims_.end()};
}

}  // namespace fidr::host
