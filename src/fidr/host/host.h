/**
 * @file
 * Host-side resource models: CPU cores and DRAM capacity.
 *
 * The CPU model bills core-time to named tasks through a WorkLedger and
 * answers the projection questions of Figs 5/12 ("how many cores to
 * sustain X GB/s", "what share of CPU is memory management").  The
 * memory model tracks capacity claims per component (the capacity
 * column of Tables 1-2); DRAM *bandwidth* is tracked by the PCIe
 * fabric's host-memory ledger, which all flows share.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/units.h"
#include "fidr/sim/ledger.h"

namespace fidr::host {

/** Static description of the host socket. */
struct HostConfig {
    double cores = 22.0;
    Bandwidth memory_bandwidth = gb_per_s(170);
    std::uint64_t memory_capacity = 256ull * kGiB;
};

/** CPU-core accounting for one socket. */
class HostCpu {
  public:
    explicit HostCpu(double cores) : cores_(cores) {}

    /** Bills `core_us` microseconds of single-core work to `task`. */
    void
    bill_us(const std::string &task, double core_us)
    {
        ledger_.add(task, core_us * 1e-6);
    }

    double cores() const { return cores_; }
    const sim::WorkLedger &ledger() const { return ledger_; }
    sim::WorkLedger &ledger() { return ledger_; }

    /**
     * Cores required to sustain `throughput` of client data given the
     * ledger accumulated over `client_bytes` of processed client data.
     */
    double
    required_cores(double client_bytes, Bandwidth throughput) const
    {
        return ledger_.required_cores(client_bytes, throughput);
    }

    /** Client throughput at which this socket's cores saturate. */
    Bandwidth
    saturation_throughput(double client_bytes) const
    {
        if (ledger_.total() <= 0)
            return gb_per_s(1e9);  // CPU is never the bottleneck.
        return cores_ * client_bytes / ledger_.total();
    }

    void reset() { ledger_.reset(); }

  private:
    double cores_;
    sim::WorkLedger ledger_;
};

/** DRAM capacity bookkeeping per component. */
class HostMemory {
  public:
    explicit HostMemory(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes) {}

    /** Claims `bytes` of capacity for `component`; kOutOfSpace if over. */
    Status claim(const std::string &component, std::uint64_t bytes);

    /** Releases `bytes` previously claimed by `component`. */
    void release(const std::string &component, std::uint64_t bytes);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t used() const { return used_; }
    std::uint64_t used_by(const std::string &component) const;

    /** (component, bytes) pairs sorted by component name. */
    std::vector<std::pair<std::string, std::uint64_t>> breakdown() const;

  private:
    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::map<std::string, std::uint64_t> claims_;
};

}  // namespace fidr::host
