#include "fidr/hwtree/hw_tree.h"

#include <algorithm>

namespace fidr::hwtree {

struct HwTree::Node {
    NodeId id = 0;
    bool leaf = true;
    std::vector<Key> keys;
    std::vector<Value> values;     ///< Leaf only.
    std::vector<Node *> children;  ///< Internal only.
};

namespace {

std::size_t
child_index(const std::vector<HwTree::Key> &keys, HwTree::Key key)
{
    return static_cast<std::size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

HwTree::HwTree(HwTreeConfig config) : config_(config)
{
    FIDR_CHECK(config_.leaf_capacity >= 4);
    FIDR_CHECK(config_.internal_fanout >= 3);
    FIDR_CHECK(config_.max_levels >= 2);
    root_ = make_node(true);
}

HwTree::~HwTree()
{
    destroy(root_);
}

HwTree::Node *
HwTree::make_node(bool leaf)
{
    Node *n = new Node();
    n->id = next_id_++;
    n->leaf = leaf;
    return n;
}

void
HwTree::destroy(Node *node)
{
    if (!node)
        return;
    if (!node->leaf) {
        for (Node *child : node->children)
            destroy(child);
    }
    delete node;
}

void
HwTree::touch(std::vector<NodeId> *touched, const Node *node) const
{
    if (touched)
        touched->push_back(node->id);
}

unsigned
HwTree::levels() const
{
    unsigned h = 1;
    const Node *node = root_;
    while (!node->leaf) {
        node = node->children[0];
        ++h;
    }
    return h;
}

unsigned
HwTree::levels_for_entries(std::uint64_t entries, const HwTreeConfig &config)
{
    // One leaf level absorbs leaf_capacity keys per node; every level
    // above multiplies addressable leaves by the internal fanout.
    std::uint64_t leaves =
        (entries + config.leaf_capacity - 1) / config.leaf_capacity;
    if (leaves <= 1)
        return 1;
    unsigned levels = 1;
    std::uint64_t reach = 1;
    while (reach < leaves) {
        reach *= config.internal_fanout;
        ++levels;
    }
    return levels;
}

std::optional<HwTree::Value>
HwTree::search(Key key, std::vector<NodeId> *path) const
{
    const Node *node = root_;
    while (true) {
        if (path)
            path->push_back(node->id);
        if (node->leaf)
            break;
        node = node->children[child_index(node->keys, key)];
    }
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key)
        return std::nullopt;
    return node->values[static_cast<std::size_t>(it - node->keys.begin())];
}

Result<bool>
HwTree::insert(Key key, Value value, std::vector<NodeId> *touched)
{
    // Conservative depth guard: if the pipeline is already at its
    // maximum depth and the root is full, a cascading split could need
    // a new level the hardware does not have.
    if (levels() == config_.max_levels && !root_->leaf &&
        root_->keys.size() + 1 >= config_.internal_fanout) {
        return Status::out_of_space("hw tree at pipeline depth limit");
    }

    std::vector<Node *> path;
    Node *node = root_;
    while (!node->leaf) {
        path.push_back(node);
        node = node->children[child_index(node->keys, key)];
    }

    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    if (it != node->keys.end() && *it == key) {
        node->values[pos] = value;
        touch(touched, node);
        return false;
    }
    node->keys.insert(it, key);
    node->values.insert(node->values.begin() + pos, value);
    ++size_;
    touch(touched, node);

    if (node->keys.size() <= config_.leaf_capacity)
        return true;

    const std::size_t mid = node->keys.size() / 2;
    Node *right = make_node(true);
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(node->values.begin() + mid, node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    touch(touched, right);
    insert_into_parent(path, node, right->keys.front(), right, touched);
    return true;
}

void
HwTree::insert_into_parent(std::vector<Node *> &path, Node *left, Key sep,
                           Node *right, std::vector<NodeId> *touched)
{
    if (path.empty()) {
        Node *new_root = make_node(false);
        new_root->keys.push_back(sep);
        new_root->children = {left, right};
        root_ = new_root;
        touch(touched, new_root);
        return;
    }
    Node *parent = path.back();
    path.pop_back();

    const auto cit =
        std::find(parent->children.begin(), parent->children.end(), left);
    FIDR_CHECK(cit != parent->children.end());
    const auto idx = static_cast<std::size_t>(cit - parent->children.begin());
    parent->keys.insert(parent->keys.begin() + idx, sep);
    parent->children.insert(parent->children.begin() + idx + 1, right);
    touch(touched, parent);

    if (parent->keys.size() < config_.internal_fanout)
        return;

    const std::size_t mid = parent->keys.size() / 2;
    const Key promoted = parent->keys[mid];
    Node *new_right = make_node(false);
    new_right->keys.assign(parent->keys.begin() + mid + 1,
                           parent->keys.end());
    new_right->children.assign(parent->children.begin() + mid + 1,
                               parent->children.end());
    parent->keys.resize(mid);
    parent->children.resize(mid + 1);
    touch(touched, new_right);
    insert_into_parent(path, parent, promoted, new_right, touched);
}

bool
HwTree::erase(Key key, std::vector<NodeId> *touched)
{
    std::vector<Node *> path;
    Node *node = root_;
    while (!node->leaf) {
        path.push_back(node);
        node = node->children[child_index(node->keys, key)];
    }

    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key);
    if (it == node->keys.end() || *it != key)
        return false;
    const auto pos = static_cast<std::size_t>(it - node->keys.begin());
    node->keys.erase(it);
    node->values.erase(node->values.begin() + pos);
    --size_;
    touch(touched, node);

    rebalance(path, node, touched);
    return true;
}

void
HwTree::rebalance(std::vector<Node *> &path, Node *node,
                  std::vector<NodeId> *touched)
{
    const auto min_keys = [this](const Node *n) -> std::size_t {
        if (n->leaf)
            return config_.leaf_capacity / 2;
        return (config_.internal_fanout - 1) / 2;
    };

    while (true) {
        if (path.empty()) {
            if (!node->leaf && node->children.size() == 1) {
                root_ = node->children[0];
                delete node;
            }
            return;
        }
        if (node->keys.size() >= min_keys(node))
            return;

        Node *parent = path.back();
        path.pop_back();
        const auto cit = std::find(parent->children.begin(),
                                   parent->children.end(), node);
        FIDR_CHECK(cit != parent->children.end());
        const auto idx =
            static_cast<std::size_t>(cit - parent->children.begin());
        Node *left = idx > 0 ? parent->children[idx - 1] : nullptr;
        Node *right = idx + 1 < parent->children.size()
                          ? parent->children[idx + 1]
                          : nullptr;

        if (left && left->keys.size() > min_keys(left)) {
            if (node->leaf) {
                node->keys.insert(node->keys.begin(), left->keys.back());
                node->values.insert(node->values.begin(),
                                    left->values.back());
                left->keys.pop_back();
                left->values.pop_back();
                parent->keys[idx - 1] = node->keys.front();
            } else {
                node->keys.insert(node->keys.begin(),
                                  parent->keys[idx - 1]);
                node->children.insert(node->children.begin(),
                                      left->children.back());
                parent->keys[idx - 1] = left->keys.back();
                left->keys.pop_back();
                left->children.pop_back();
            }
            touch(touched, node);
            touch(touched, left);
            touch(touched, parent);
            return;
        }
        if (right && right->keys.size() > min_keys(right)) {
            if (node->leaf) {
                node->keys.push_back(right->keys.front());
                node->values.push_back(right->values.front());
                right->keys.erase(right->keys.begin());
                right->values.erase(right->values.begin());
                parent->keys[idx] = right->keys.front();
            } else {
                node->keys.push_back(parent->keys[idx]);
                node->children.push_back(right->children.front());
                parent->keys[idx] = right->keys.front();
                right->keys.erase(right->keys.begin());
                right->children.erase(right->children.begin());
            }
            touch(touched, node);
            touch(touched, right);
            touch(touched, parent);
            return;
        }

        Node *into = left ? left : node;
        Node *from = left ? node : right;
        const std::size_t sep_idx = left ? idx - 1 : idx;
        FIDR_CHECK(from != nullptr);

        if (into->leaf) {
            into->keys.insert(into->keys.end(), from->keys.begin(),
                              from->keys.end());
            into->values.insert(into->values.end(), from->values.begin(),
                                from->values.end());
        } else {
            into->keys.push_back(parent->keys[sep_idx]);
            into->keys.insert(into->keys.end(), from->keys.begin(),
                              from->keys.end());
            into->children.insert(into->children.end(),
                                  from->children.begin(),
                                  from->children.end());
        }
        parent->keys.erase(parent->keys.begin() + sep_idx);
        parent->children.erase(parent->children.begin() + sep_idx + 1);
        touch(touched, into);
        touch(touched, parent);
        delete from;

        node = parent;
    }
}

std::vector<std::pair<HwTree::Key, HwTree::Value>>
HwTree::items() const
{
    std::vector<std::pair<Key, Value>> out;
    out.reserve(size_);
    // DFS left-to-right: leaves emit entries in key order.
    std::vector<const Node *> stack{root_};
    while (!stack.empty()) {
        const Node *n = stack.back();
        stack.pop_back();
        if (n->leaf) {
            for (std::size_t i = 0; i < n->keys.size(); ++i)
                out.emplace_back(n->keys[i], n->values[i]);
            continue;
        }
        for (std::size_t i = n->children.size(); i-- > 0;)
            stack.push_back(n->children[i]);
    }
    return out;
}

Status
HwTree::validate() const
{
    struct Frame {
        const Node *node;
        bool has_lo;
        Key lo;
        bool has_hi;
        Key hi;
        unsigned depth;
    };
    std::vector<Frame> stack{{root_, false, 0, false, 0, 1}};
    std::size_t counted = 0;
    unsigned leaf_depth = 0;
    bool leaf_depth_set = false;

    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const Node *n = f.node;

        if (!std::is_sorted(n->keys.begin(), n->keys.end()) ||
            std::adjacent_find(n->keys.begin(), n->keys.end()) !=
                n->keys.end()) {
            return Status::internal("keys not strictly sorted");
        }
        for (Key k : n->keys) {
            if ((f.has_lo && k < f.lo) || (f.has_hi && k >= f.hi))
                return Status::internal("key outside subtree bounds");
        }

        if (n->leaf) {
            if (n->values.size() != n->keys.size())
                return Status::internal("leaf keys/values mismatch");
            if (n->keys.size() > config_.leaf_capacity)
                return Status::internal("leaf overfilled");
            if (n != root_ && n->keys.size() < config_.leaf_capacity / 2)
                return Status::internal("leaf underfilled");
            if (!leaf_depth_set) {
                leaf_depth = f.depth;
                leaf_depth_set = true;
            } else if (f.depth != leaf_depth) {
                return Status::internal("leaves at different depths");
            }
            counted += n->keys.size();
            continue;
        }

        if (n->children.size() != n->keys.size() + 1)
            return Status::internal("child count != keys + 1");
        if (n->children.size() > config_.internal_fanout)
            return Status::internal("internal node overfilled");
        if (n != root_ && n->keys.size() < (config_.internal_fanout - 1) / 2)
            return Status::internal("internal node underfilled");
        if (f.depth >= config_.max_levels)
            return Status::internal("tree deeper than pipeline budget");

        for (std::size_t i = n->children.size(); i-- > 0;) {
            Frame cf;
            cf.node = n->children[i];
            cf.depth = f.depth + 1;
            cf.has_lo = i > 0 || f.has_lo;
            cf.lo = i > 0 ? n->keys[i - 1] : f.lo;
            cf.has_hi = i < n->keys.size() || f.has_hi;
            cf.hi = i < n->keys.size() ? n->keys[i] : f.hi;
            stack.push_back(cf);
        }
    }

    if (counted != size_)
        return Status::internal("size counter mismatch");
    return Status::ok();
}

}  // namespace fidr::hwtree
