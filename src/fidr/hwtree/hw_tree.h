/**
 * @file
 * Functional model of the FIDR Cache HW-Engine's pipelined tree
 * (paper Sec 5.5, 6.3).
 *
 * The hardware structure is a balanced search tree where each level is
 * a pipeline stage (after Yang & Prasanna [48]) with two FIDR
 * modifications:
 *  - non-leaf nodes keep at most 2 keys (fanout 3) so every non-leaf
 *    level fits in single-cycle on-chip memory, while the *leaf* level
 *    holds 16 keys per node and lives in FPGA-board DRAM — this is
 *    what lets a 13+1-level tree index a ~100 GB table cache;
 *  - updates (insert/delete) are issued speculatively and recovered
 *    via a crash/replay controller (Algorithms 1-2), modelled in
 *    TreePipeline (tree_pipeline.h).
 *
 * This class is the functional tree: a (bucket index -> cache line)
 * map with stable node identifiers so the pipeline model can compute
 * write-sets for conflict detection.  Property tests check it against
 * std::map and its structural invariants after arbitrary op sequences.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fidr/common/status.h"

namespace fidr::hwtree {

/** Geometry of the hardware tree. */
struct HwTreeConfig {
    unsigned leaf_capacity = 16;  ///< Keys per leaf node (FPGA DRAM).
    unsigned internal_fanout = 3; ///< Children per non-leaf node (on-chip).
    unsigned max_levels = 14;     ///< Pipeline depth budget of the FPGA.
};

/** Stable identifier of a tree node, used for conflict detection. */
using NodeId = std::uint64_t;

/** Fixed-geometry balanced tree with modified-node reporting. */
class HwTree {
  public:
    using Key = std::uint64_t;
    using Value = std::uint64_t;

    explicit HwTree(HwTreeConfig config = {});
    ~HwTree();

    HwTree(const HwTree &) = delete;
    HwTree &operator=(const HwTree &) = delete;

    /**
     * Inserts or overwrites.  Returns kOutOfSpace if the insert would
     * grow the tree beyond max_levels (the FPGA pipeline depth).
     * Appends the ids of every node modified (including split products
     * and touched siblings) to `touched` when non-null.
     */
    Result<bool> insert(Key key, Value value,
                        std::vector<NodeId> *touched = nullptr);

    /** Removes `key`; reports modified nodes like insert(). */
    bool erase(Key key, std::vector<NodeId> *touched = nullptr);

    /** Point lookup; records the traversed path when requested. */
    std::optional<Value> search(Key key,
                                std::vector<NodeId> *path = nullptr) const;

    std::size_t size() const { return size_; }
    unsigned levels() const;
    const HwTreeConfig &config() const { return config_; }

    /** Structural invariants; used by property tests. */
    Status validate() const;

    /** All (key, value) pairs in key order (test support). */
    std::vector<std::pair<Key, Value>> items() const;

    /**
     * Pipeline levels needed to index `entries` keys with this
     * geometry: one leaf level of `leaf_capacity` keys plus enough
     * fanout-`internal_fanout` levels above it.  Reproduces the
     * paper's 9 levels for a 410 MB cache and 14 for ~100 GB
     * (Table 5).
     */
    static unsigned levels_for_entries(std::uint64_t entries,
                                       const HwTreeConfig &config = {});

  private:
    struct Node;

    Node *make_node(bool leaf);
    static void destroy(Node *node);
    void touch(std::vector<NodeId> *touched, const Node *node) const;
    void insert_into_parent(std::vector<Node *> &path, Node *left, Key sep,
                            Node *right, std::vector<NodeId> *touched);
    void rebalance(std::vector<Node *> &path, Node *node,
                   std::vector<NodeId> *touched);

    HwTreeConfig config_;
    Node *root_ = nullptr;
    std::size_t size_ = 0;
    NodeId next_id_ = 1;
};

}  // namespace fidr::hwtree
