#include "fidr/hwtree/tree_pipeline.h"

#include <algorithm>

#include "fidr/fault/failpoint.h"
#include "fidr/obs/trace.h"

namespace fidr::hwtree {

TreePipeline::TreePipeline(HwTree &tree, PipelineConfig config)
    : tree_(tree), config_(config)
{
    FIDR_CHECK(config_.update_lanes >= 1);
    FIDR_CHECK(config_.levels >= 2);
}

std::optional<HwTree::Value>
TreePipeline::search(HwTree::Key key)
{
    ++stats_.searches;
    stats_.cycles += config_.search_cycles;
    stats_.dram_bytes += config_.leaf_bytes;  // One leaf-node read.
    return tree_.search(key);
}

void
TreePipeline::account_update(const std::vector<NodeId> &touched)
{
    // An update rides the search pipeline slot of the lookup that
    // triggered it (the batch interface issues lookup+update fused),
    // so it only adds the reverse-traversal/update cost plus one leaf
    // write to FPGA DRAM.
    ++stats_.updates;
    stats_.dram_bytes += config_.leaf_bytes;

    // Crash detection (Algorithm 1/2): the request crashes when its
    // write-set intersects any write-set still in the speculation
    // window.  With L lanes, up to L-1 earlier updates are in flight.
    bool crash = false;
    // Forced misspeculation: the crash-storm tests use this to exercise
    // the replay path regardless of the actual write-set overlap.
    {
        const fault::FaultDecision fd =
            FIDR_FAULT_EVAL(fault::Site::kHwTreeForceCrash);
        crash = fd.fire;
    }
    if (!crash && config_.update_lanes > 1) {
        for (const auto &ws : window_) {
            for (NodeId id : touched) {
                if (std::find(ws.begin(), ws.end(), id) != ws.end()) {
                    crash = true;
                    break;
                }
            }
            if (crash)
                break;
        }
    }

    if (crash) {
        // Replay: the postponed changes are dropped and the request
        // re-executes serially after the window drains.
        ++stats_.crashes;
        ++stats_.replays;
        FIDR_TPOINT(obs::Tpoint::kTreeCrash,
                    touched.empty() ? 0 : touched.front(),
                    window_.size());
        stats_.cycles += serial_update_cycles() / config_.update_lanes +
                         serial_update_cycles();
        stats_.dram_bytes += config_.leaf_bytes;
        window_.clear();
    } else {
        stats_.cycles += serial_update_cycles() / config_.update_lanes;
        if (config_.update_lanes > 1) {
            window_.push_back(touched);
            while (window_.size() >= config_.update_lanes)
                window_.pop_front();
        }
    }
}

Result<bool>
TreePipeline::insert(HwTree::Key key, HwTree::Value value)
{
    FIDR_FAULT_RETURN_IF(fault::Site::kHwTreeUpdate);
    std::vector<NodeId> touched;
    Result<bool> result = tree_.insert(key, value, &touched);
    if (result.is_ok())
        account_update(touched);
    return result;
}

bool
TreePipeline::erase(HwTree::Key key)
{
    std::vector<NodeId> touched;
    const bool erased = tree_.erase(key, &touched);
    // A miss still traverses both pipelines before discovering there
    // is nothing to delete.
    account_update(touched);
    return erased;
}

Bandwidth
TreePipeline::throughput(std::size_t bytes_per_op) const
{
    if (stats_.ops() == 0)
        return 0;
    const double ops = static_cast<double>(stats_.ops());
    const double pipe_ops_per_s = config_.clock_hz / (stats_.cycles / ops);
    const double dram_ops_per_s =
        config_.dram_bandwidth / (stats_.dram_bytes / ops);
    return std::min(pipe_ops_per_s, dram_ops_per_s) *
           static_cast<double>(bytes_per_op);
}

double
TreePipeline::busy_seconds() const
{
    return std::max(stats_.cycles / config_.clock_hz,
                    stats_.dram_bytes / config_.dram_bandwidth);
}

void
TreePipeline::reset_stats()
{
    stats_ = PipelineStats{};
    window_.clear();
}

}  // namespace fidr::hwtree
