/**
 * @file
 * Cycle-approximate model of the Cache HW-Engine's pipelined tree with
 * speculative concurrent updates (paper Sec 5.5.1, Algorithms 1-2).
 *
 * The hardware issues update requests into the search pipeline without
 * waiting for earlier updates to commit.  A request records the nodes
 * it modifies; at commit time the crash/replay controller checks
 * whether an earlier in-flight request speculatively updated any of
 * the same nodes — if so the request "crashes": its postponed changes
 * are dropped and it is re-inserted into the request queue (replay).
 * Because hash-derived keys spread uniformly over a deep tree, crashes
 * are rare (< 0.1%) and the L update lanes scale almost linearly
 * (Fig 13).
 *
 * This model executes the real operations on the functional HwTree (so
 * results are always correct — exactly the property Algorithm 2
 * guarantees) while simulating the speculation window to count
 * crashes/replays and to account cycles:
 *
 *   cycles = ops * search_cycles
 *          + updates * (update_cycles(levels) / lanes)
 *          + replays * update_cycles(levels)
 *
 * plus an FPGA-DRAM bandwidth ceiling of one leaf-node read per op and
 * one leaf write per update.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_set>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/units.h"
#include "fidr/host/calibration.h"
#include "fidr/hwtree/hw_tree.h"

namespace fidr::hwtree {

/** Pipeline parameters; defaults are the paper-calibrated values. */
struct PipelineConfig {
    unsigned update_lanes = 1;          ///< 1 = single-update baseline tree.
    unsigned levels = calib::kHwTreePipelineLevels;
    double clock_hz = calib::kHwTreeClockHz;
    double search_cycles = calib::kHwTreeSearchCycles;
    double update_cycles_per_level = calib::kHwTreeUpdateCyclesPerLevel;
    Bandwidth dram_bandwidth = calib::kHwTreeDramBandwidth;
    double leaf_bytes = calib::kHwTreeLeafBytes;
};

/** Counters accumulated while driving ops through the pipeline. */
struct PipelineStats {
    std::uint64_t searches = 0;  ///< Pure lookups.
    std::uint64_t updates = 0;   ///< Inserts + erases (committed).
    std::uint64_t crashes = 0;   ///< Misspeculations detected at commit.
    std::uint64_t replays = 0;   ///< Requests re-run after a crash.
    double cycles = 0;           ///< Engine cycles consumed.
    double dram_bytes = 0;       ///< FPGA-board DRAM traffic.

    std::uint64_t ops() const { return searches + updates; }

    /** Observed crash rate among update requests. */
    double
    crash_rate() const
    {
        return updates > 0
                   ? static_cast<double>(crashes) /
                         static_cast<double>(updates)
                   : 0.0;
    }
};

/** Drives a HwTree through the speculative pipeline model. */
class TreePipeline {
  public:
    TreePipeline(HwTree &tree, PipelineConfig config);

    /** Lookup through the search pipeline. */
    std::optional<HwTree::Value> search(HwTree::Key key);

    /** Insert through the speculative update path. */
    Result<bool> insert(HwTree::Key key, HwTree::Value value);

    /** Erase through the speculative update path. */
    bool erase(HwTree::Key key);

    const PipelineStats &stats() const { return stats_; }
    const PipelineConfig &config() const { return config_; }

    /** Cycles one update costs when fully serialized. */
    double
    serial_update_cycles() const
    {
        return config_.update_cycles_per_level * config_.levels;
    }

    /**
     * Engine throughput implied by the accumulated stats when each op
     * carries `bytes_per_op` of client data (4 KB chunks): the lesser
     * of the pipeline rate and the FPGA-DRAM ceiling.
     */
    Bandwidth throughput(std::size_t bytes_per_op = 4096) const;

    /**
     * Wall time the engine needs for the accumulated work: the larger
     * of pipeline cycles at the clock and DRAM transfer time.  Used by
     * the bottleneck projection (client_bytes / busy_seconds is the
     * engine's client-throughput ceiling).
     */
    double busy_seconds() const;

    void reset_stats();

  private:
    void account_update(const std::vector<NodeId> &touched);

    HwTree &tree_;
    PipelineConfig config_;
    PipelineStats stats_;
    /** Write-sets of the updates still in the speculation window. */
    std::deque<std::vector<NodeId>> window_;
};

}  // namespace fidr::hwtree
