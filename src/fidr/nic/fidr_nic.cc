#include "fidr/nic/fidr_nic.h"

namespace fidr::nic {

FidrNic::FidrNic(FidrNicConfig config) : config_(config)
{
    FIDR_CHECK(config_.buffer_capacity >= kChunkSize);
    FIDR_CHECK(config_.hash_batch >= 1);
}

Status
FidrNic::buffer_write(Lba lba, Buffer data)
{
    if (data.size() != kChunkSize)
        return Status::invalid_argument("write chunk must be 4 KB");
    if (buffered_bytes() + kChunkSize > config_.buffer_capacity)
        return Status::unavailable("NIC buffer full");
    newest_[lba] = chunks_.size();
    chunks_.push_back(BufferedChunk{lba, std::move(data), Digest{}, false});
    ++total_buffered_;
    return Status::ok();
}

std::vector<Digest>
FidrNic::hash_buffered()
{
    std::vector<Digest> digests;
    digests.reserve(chunks_.size());
    for (BufferedChunk &chunk : chunks_) {
        if (!chunk.hashed) {
            chunk.digest = Sha256::hash(chunk.data);
            chunk.hashed = true;
            ++hashes_computed_;
        }
        digests.push_back(chunk.digest);
    }
    return digests;
}

std::vector<Lba>
FidrNic::buffered_lbas() const
{
    std::vector<Lba> out;
    out.reserve(chunks_.size());
    for (const BufferedChunk &chunk : chunks_)
        out.push_back(chunk.lba);
    return out;
}

std::optional<Buffer>
FidrNic::lookup_buffered(Lba lba) const
{
    const auto it = newest_.find(lba);
    if (it == newest_.end())
        return std::nullopt;
    return chunks_[it->second].data;
}

Result<std::vector<BufferedChunk>>
FidrNic::schedule_unique(std::span<const ChunkVerdict> verdicts)
{
    if (verdicts.size() != chunks_.size()) {
        return Status::invalid_argument(
            "verdict count does not match buffered batch");
    }
    std::vector<BufferedChunk> unique;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] == ChunkVerdict::kUnique)
            unique.push_back(std::move(chunks_[i]));
    }
    chunks_.clear();
    newest_.clear();
    return unique;
}

}  // namespace fidr::nic
