#include "fidr/nic/fidr_nic.h"

#include "fidr/fault/failpoint.h"
#include "fidr/hash/sha256_mb.h"
#include "fidr/obs/trace.h"

namespace fidr::nic {
namespace {

/**
 * Feeds one hash worker's shard of the chunk queue through the
 * multi-buffer SHA-256 engine: unhashed chunks are batched into one
 * sha256_mb_hash call (8 interleaved messages per AVX2 transform)
 * instead of one-at-a-time Sha256 calls.  Digests are bit-identical
 * to the scalar path, so the lane-count and dispatch-target
 * determinism contracts both hold.
 */
template <typename Chunks>
void
hash_shard_mb(Chunks &chunks, std::size_t begin, std::size_t end)
{
    std::vector<std::span<const std::uint8_t>> pending;
    std::vector<std::size_t> slots;
    pending.reserve(end - begin);
    slots.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
        if (!chunks[i].hashed) {
            pending.push_back(chunks[i].data);
            slots.push_back(i);
        }
    }
    if (pending.empty())
        return;
    std::vector<Digest> digests(pending.size());
    sha256_mb_hash(pending, digests.data());
    for (std::size_t j = 0; j < slots.size(); ++j) {
        chunks[slots[j]].digest = digests[j];
        chunks[slots[j]].hashed = true;
    }
}

}  // namespace

FidrNic::FidrNic(FidrNicConfig config) : config_(config)
{
    FIDR_CHECK(config_.buffer_capacity >= kChunkSize);
    FIDR_CHECK(config_.hash_batch >= 1);
    lanes_ = config_.hash_lanes == 0 ? ThreadPool::hardware_lanes()
                                     : config_.hash_lanes;
    if (lanes_ > 1)
        pool_ = std::make_unique<ThreadPool>(lanes_);
}

Status
FidrNic::buffer_write(Lba lba, Buffer data)
{
    if (data.size() != kChunkSize)
        return Status::invalid_argument("write chunk must be 4 KB");
    // Sealed batches still occupy NIC DRAM until their commit point.
    if (pending_bytes() + kChunkSize > config_.buffer_capacity)
        return Status::unavailable("NIC buffer full");
    // Injected admission fault before any mutation: a rejected write
    // is never acknowledged, so it owes the client nothing.
    FIDR_FAULT_RETURN_IF(fault::Site::kNicBuffer);
    newest_[lba] = chunks_.size();
    chunks_.push_back(BufferedChunk{lba, std::move(data), Digest{}, false});
    ++total_buffered_;
    return Status::ok();
}

std::vector<Digest>
FidrNic::hash_buffered()
{
    // Count the work serially first: lifetime counters must not be
    // touched inside the parallel region (determinism contract).
    std::size_t unhashed = 0;
    for (const BufferedChunk &chunk : chunks_)
        unhashed += chunk.hashed ? 0 : 1;

    std::vector<Digest> digests(chunks_.size());
    const auto hash_range = [this, &digests](std::size_t begin,
                                             std::size_t end) {
        // One span per SHA lane shard; worker threads record into
        // their own trace rings, so lanes show as separate Perfetto
        // tracks.  Object id = first chunk index of the shard.
        FIDR_TRACE_SPAN(lane_span, obs::Tpoint::kWriteHashLane, begin,
                        end - begin);
        hash_shard_mb(chunks_, begin, end);
        for (std::size_t i = begin; i < end; ++i)
            digests[i] = chunks_[i].digest;
    };
    // Each lane owns a contiguous shard of the batch, like the paper's
    // independent SHA cores draining disjoint slices of NIC DRAM.
    if (pool_)
        pool_->parallel_for(chunks_.size(), hash_range);
    else
        hash_range(0, chunks_.size());
    hashes_computed_ += unhashed;
    return digests;
}

std::vector<Lba>
FidrNic::buffered_lbas() const
{
    std::vector<Lba> out;
    out.reserve(chunks_.size());
    for (const BufferedChunk &chunk : chunks_)
        out.push_back(chunk.lba);
    return out;
}

std::optional<Buffer>
FidrNic::lookup_buffered(Lba lba) const
{
    const auto it = newest_.find(lba);
    if (it == newest_.end())
        return std::nullopt;
    return chunks_[it->second].data;
}

Result<std::vector<BufferedChunk>>
FidrNic::schedule_unique(std::span<const ChunkVerdict> verdicts)
{
    if (verdicts.size() != chunks_.size()) {
        return Status::invalid_argument(
            "verdict count does not match buffered batch");
    }
    FIDR_FAULT_RETURN_IF(fault::Site::kNicSchedule);
    std::vector<BufferedChunk> unique;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] == ChunkVerdict::kUnique)
            unique.push_back(std::move(chunks_[i]));
    }
    chunks_.clear();
    newest_.clear();
    return unique;
}

Result<std::vector<const BufferedChunk *>>
FidrNic::peek_unique(std::span<const ChunkVerdict> verdicts) const
{
    if (verdicts.size() != chunks_.size()) {
        return Status::invalid_argument(
            "verdict count does not match buffered batch");
    }
    FIDR_FAULT_RETURN_IF(fault::Site::kNicSchedule);
    std::vector<const BufferedChunk *> unique;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] == ChunkVerdict::kUnique)
            unique.push_back(&chunks_[i]);
    }
    return unique;
}

void
FidrNic::drop_batch()
{
    chunks_.clear();
    newest_.clear();
}

SealedBatch *
FidrNic::seal_batch()
{
    if (chunks_.empty())
        return nullptr;
    auto batch = std::make_unique<SealedBatch>();
    batch->chunks.reserve(chunks_.size());
    for (BufferedChunk &chunk : chunks_)
        batch->chunks.push_back(std::move(chunk));
    chunks_.clear();
    newest_.clear();

    std::lock_guard<std::mutex> lock(seal_mutex_);
    batch->epoch = ++next_epoch_;
    sealed_chunk_count_.fetch_add(batch->chunks.size(),
                                  std::memory_order_relaxed);
    sealed_.push_back(std::move(batch));
    return sealed_.back().get();
}

SealedBatch *
FidrNic::find_sealed(std::uint64_t epoch)
{
    std::lock_guard<std::mutex> lock(seal_mutex_);
    for (const auto &batch : sealed_) {
        if (batch->epoch == epoch)
            return batch.get();
    }
    return nullptr;
}

std::size_t
FidrNic::sealed_batches() const
{
    std::lock_guard<std::mutex> lock(seal_mutex_);
    return sealed_.size();
}

void
FidrNic::hash_chunks(std::vector<BufferedChunk> &chunks)
{
    const auto hash_range = [&chunks](std::size_t begin, std::size_t end) {
        FIDR_TRACE_SPAN(lane_span, obs::Tpoint::kWriteHashLane, begin,
                        end - begin);
        hash_shard_mb(chunks, begin, end);
    };
    if (pool_)
        pool_->parallel_for(chunks.size(), hash_range);
    else
        hash_range(0, chunks.size());
}

void
FidrNic::hash_sealed(SealedBatch &batch)
{
    std::uint64_t fresh = 0;
    for (const BufferedChunk &chunk : batch.chunks)
        fresh += chunk.hashed ? 0 : 1;
    hash_chunks(batch.chunks);
    batch.fresh_hashes = fresh;
}

Result<std::vector<const BufferedChunk *>>
FidrNic::peek_unique_sealed(const SealedBatch &batch,
                            std::span<const ChunkVerdict> verdicts) const
{
    if (verdicts.size() != batch.chunks.size()) {
        return Status::invalid_argument(
            "verdict count does not match sealed batch");
    }
    FIDR_FAULT_RETURN_IF(fault::Site::kNicSchedule);
    std::vector<const BufferedChunk *> unique;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] == ChunkVerdict::kUnique)
            unique.push_back(&batch.chunks[i]);
    }
    return unique;
}

void
FidrNic::drop_sealed(std::uint64_t epoch)
{
    std::lock_guard<std::mutex> lock(seal_mutex_);
    FIDR_CHECK(!sealed_.empty() && sealed_.front()->epoch == epoch);
    sealed_chunk_count_.fetch_sub(sealed_.front()->chunks.size(),
                                  std::memory_order_relaxed);
    hashes_computed_ += sealed_.front()->fresh_hashes;
    sealed_.pop_front();
}

void
FidrNic::unseal_all()
{
    std::lock_guard<std::mutex> lock(seal_mutex_);
    if (sealed_.empty())
        return;
    // Sealed chunks predate anything buffered since, so they return to
    // the *front* of the open buffer, oldest epoch first; the rebuilt
    // LBA lookup then resolves to the newest write again.  Digests
    // already computed stay (hashed flags survive), so a retried batch
    // never re-counts them as fresh hashes.
    std::deque<BufferedChunk> merged;
    for (auto &batch : sealed_) {
        // SHA work already done on a failed batch is still work done:
        // credit it now (the batch never reaches drop_sealed), matching
        // the synchronous path, which counted at hash time.
        hashes_computed_ += batch->fresh_hashes;
        for (BufferedChunk &chunk : batch->chunks)
            merged.push_back(std::move(chunk));
    }
    for (BufferedChunk &chunk : chunks_)
        merged.push_back(std::move(chunk));
    chunks_ = std::move(merged);
    sealed_.clear();
    sealed_chunk_count_.store(0, std::memory_order_relaxed);
    newest_.clear();
    for (std::size_t i = 0; i < chunks_.size(); ++i)
        newest_[chunks_[i].lba] = i;
}

}  // namespace fidr::nic
