#include "fidr/nic/fidr_nic.h"

#include "fidr/fault/failpoint.h"
#include "fidr/obs/trace.h"

namespace fidr::nic {

FidrNic::FidrNic(FidrNicConfig config) : config_(config)
{
    FIDR_CHECK(config_.buffer_capacity >= kChunkSize);
    FIDR_CHECK(config_.hash_batch >= 1);
    lanes_ = config_.hash_lanes == 0 ? ThreadPool::hardware_lanes()
                                     : config_.hash_lanes;
    if (lanes_ > 1)
        pool_ = std::make_unique<ThreadPool>(lanes_);
}

Status
FidrNic::buffer_write(Lba lba, Buffer data)
{
    if (data.size() != kChunkSize)
        return Status::invalid_argument("write chunk must be 4 KB");
    if (buffered_bytes() + kChunkSize > config_.buffer_capacity)
        return Status::unavailable("NIC buffer full");
    // Injected admission fault before any mutation: a rejected write
    // is never acknowledged, so it owes the client nothing.
    FIDR_FAULT_RETURN_IF(fault::Site::kNicBuffer);
    newest_[lba] = chunks_.size();
    chunks_.push_back(BufferedChunk{lba, std::move(data), Digest{}, false});
    ++total_buffered_;
    return Status::ok();
}

std::vector<Digest>
FidrNic::hash_buffered()
{
    // Count the work serially first: lifetime counters must not be
    // touched inside the parallel region (determinism contract).
    std::size_t unhashed = 0;
    for (const BufferedChunk &chunk : chunks_)
        unhashed += chunk.hashed ? 0 : 1;

    std::vector<Digest> digests(chunks_.size());
    const auto hash_range = [this, &digests](std::size_t begin,
                                             std::size_t end) {
        // One span per SHA lane shard; worker threads record into
        // their own trace rings, so lanes show as separate Perfetto
        // tracks.  Object id = first chunk index of the shard.
        FIDR_TRACE_SPAN(lane_span, obs::Tpoint::kWriteHashLane, begin,
                        end - begin);
        for (std::size_t i = begin; i < end; ++i) {
            BufferedChunk &chunk = chunks_[i];
            if (!chunk.hashed) {
                chunk.digest = Sha256::hash(chunk.data);
                chunk.hashed = true;
            }
            digests[i] = chunk.digest;
        }
    };
    // Each lane owns a contiguous shard of the batch, like the paper's
    // independent SHA cores draining disjoint slices of NIC DRAM.
    if (pool_)
        pool_->parallel_for(chunks_.size(), hash_range);
    else
        hash_range(0, chunks_.size());
    hashes_computed_ += unhashed;
    return digests;
}

std::vector<Lba>
FidrNic::buffered_lbas() const
{
    std::vector<Lba> out;
    out.reserve(chunks_.size());
    for (const BufferedChunk &chunk : chunks_)
        out.push_back(chunk.lba);
    return out;
}

std::optional<Buffer>
FidrNic::lookup_buffered(Lba lba) const
{
    const auto it = newest_.find(lba);
    if (it == newest_.end())
        return std::nullopt;
    return chunks_[it->second].data;
}

Result<std::vector<BufferedChunk>>
FidrNic::schedule_unique(std::span<const ChunkVerdict> verdicts)
{
    if (verdicts.size() != chunks_.size()) {
        return Status::invalid_argument(
            "verdict count does not match buffered batch");
    }
    FIDR_FAULT_RETURN_IF(fault::Site::kNicSchedule);
    std::vector<BufferedChunk> unique;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] == ChunkVerdict::kUnique)
            unique.push_back(std::move(chunks_[i]));
    }
    chunks_.clear();
    newest_.clear();
    return unique;
}

Result<std::vector<const BufferedChunk *>>
FidrNic::peek_unique(std::span<const ChunkVerdict> verdicts) const
{
    if (verdicts.size() != chunks_.size()) {
        return Status::invalid_argument(
            "verdict count does not match buffered batch");
    }
    FIDR_FAULT_RETURN_IF(fault::Site::kNicSchedule);
    std::vector<const BufferedChunk *> unique;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        if (verdicts[i] == ChunkVerdict::kUnique)
            unique.push_back(&chunks_[i]);
    }
    return unique;
}

void
FidrNic::drop_batch()
{
    chunks_.clear();
    newest_.clear();
}

}  // namespace fidr::nic
