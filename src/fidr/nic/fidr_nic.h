/**
 * @file
 * FIDR NIC model (paper Sec 5.4, Fig 7).
 *
 * A FIDR NIC is a storage NIC with three data-reduction additions:
 *
 *  - in-NIC buffering: write payloads and their LBAs stay in NIC DRAM
 *    instead of host memory, and the write is acknowledged to the
 *    client immediately (non-volatile / battery-backed buffer,
 *    Sec 7.6.1);
 *  - in-NIC hashing: SHA-256 engines hash buffered chunks so unique
 *    chunks are detected *before* any PCIe transfer, replacing the
 *    baseline's host-side unique-chunk predictor;
 *  - compression scheduling: once the host returns per-chunk
 *    unique/duplicate flags, the NIC assembles a batch of only the
 *    unique chunks for peer-to-peer transfer to a Compression Engine.
 *
 * The model performs the real buffering and hashing; PCIe/DRAM ledger
 * debits for its transfers are accounted by the system flows in
 * fidr/core, which orchestrate the device like the FIDR software's
 * device manager does.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/thread_pool.h"
#include "fidr/common/types.h"
#include "fidr/hash/digest.h"
#include "fidr/hash/sha256.h"

namespace fidr::nic {

/** NIC sizing parameters. */
struct FidrNicConfig {
    std::uint64_t buffer_capacity = 64 * 1024 * 1024;  ///< NIC DRAM bytes.
    std::size_t hash_batch = 256;  ///< Chunks hashed per batch.
    /**
     * SHA-256 lanes, mirroring the multiple hash cores the paper
     * instantiates per NIC (Table 4).  0 = one lane per hardware
     * thread; 1 = serial hashing on the calling thread (the
     * pre-parallel behaviour).  Digests are bit-identical for every
     * lane count; only wall-clock changes.
     */
    std::size_t hash_lanes = 0;
};

/** One buffered write chunk awaiting the reduction pipeline. */
struct BufferedChunk {
    Lba lba = 0;
    Buffer data;
    Digest digest;
    bool hashed = false;
};

/** Functional FIDR NIC. */
class FidrNic {
  public:
    explicit FidrNic(FidrNicConfig config = {});

    /**
     * Buffers a client write chunk (exactly kChunkSize bytes) and
     * "acknowledges" it: returns kUnavailable only when NIC DRAM is
     * exhausted, which callers treat as back-pressure.
     */
    Status buffer_write(Lba lba, Buffer data);

    /** Chunks currently buffered. */
    std::size_t buffered_chunks() const { return chunks_.size(); }
    std::uint64_t buffered_bytes() const
    { return chunks_.size() * kChunkSize; }
    bool batch_ready() const
    { return chunks_.size() >= config_.hash_batch; }

    /**
     * Runs the SHA-256 engines over every unhashed buffered chunk and
     * returns the digests of the whole buffered batch in order.
     */
    std::vector<Digest> hash_buffered();

    /**
     * LBA Lookup module (read path, Fig 7): newest buffered write for
     * `lba`, if any — served to the client without touching the host.
     */
    std::optional<Buffer> lookup_buffered(Lba lba) const;

    /** LBAs of the buffered batch, in buffer order. */
    std::vector<Lba> buffered_lbas() const;

    /**
     * Compression scheduler: pops the buffered batch and splits it by
     * the host-provided verdicts (one per buffered chunk, in order).
     * Unique chunks form the batch for the Compression Engine;
     * duplicates are dropped (their LBA mapping was already updated).
     */
    Result<std::vector<BufferedChunk>> schedule_unique(
        std::span<const ChunkVerdict> verdicts);

    /**
     * Crash-consistent variant of the scheduler handoff: returns
     * pointers to the unique chunks *without* releasing the batch, so
     * the (battery-backed) NIC DRAM keeps every acknowledged write
     * until the host calls drop_batch() after its metadata commit.  A
     * crash in between replays from the retained batch instead of
     * losing acknowledged data.  Pointers stay valid until the next
     * buffer_write / schedule_unique / drop_batch.
     */
    Result<std::vector<const BufferedChunk *>> peek_unique(
        std::span<const ChunkVerdict> verdicts) const;

    /** Releases the batch retained across a peek_unique handoff. */
    void drop_batch();

    /** Lifetime counters. */
    std::uint64_t hashes_computed() const { return hashes_computed_; }
    std::uint64_t chunks_buffered_total() const { return total_buffered_; }

    const FidrNicConfig &config() const { return config_; }

    /** Resolved lane count (config.hash_lanes with 0 = hardware). */
    std::size_t hash_lanes() const { return lanes_; }

  private:
    FidrNicConfig config_;
    std::size_t lanes_ = 1;
    /** Hash lanes; null when lanes_ == 1 (serial path). */
    std::unique_ptr<ThreadPool> pool_;
    std::deque<BufferedChunk> chunks_;
    /** lba -> index of newest buffered write, for the LBA Lookup. */
    std::unordered_map<Lba, std::size_t> newest_;
    std::uint64_t hashes_computed_ = 0;
    std::uint64_t total_buffered_ = 0;
};

}  // namespace fidr::nic
