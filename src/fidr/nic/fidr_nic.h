/**
 * @file
 * FIDR NIC model (paper Sec 5.4, Fig 7).
 *
 * A FIDR NIC is a storage NIC with three data-reduction additions:
 *
 *  - in-NIC buffering: write payloads and their LBAs stay in NIC DRAM
 *    instead of host memory, and the write is acknowledged to the
 *    client immediately (non-volatile / battery-backed buffer,
 *    Sec 7.6.1);
 *  - in-NIC hashing: SHA-256 engines hash buffered chunks so unique
 *    chunks are detected *before* any PCIe transfer, replacing the
 *    baseline's host-side unique-chunk predictor;
 *  - compression scheduling: once the host returns per-chunk
 *    unique/duplicate flags, the NIC assembles a batch of only the
 *    unique chunks for peer-to-peer transfer to a Compression Engine.
 *
 * The model performs the real buffering and hashing; PCIe/DRAM ledger
 * debits for its transfers are accounted by the system flows in
 * fidr/core, which orchestrate the device like the FIDR software's
 * device manager does.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/thread_pool.h"
#include "fidr/common/types.h"
#include "fidr/hash/digest.h"
#include "fidr/hash/sha256.h"

namespace fidr::nic {

/** NIC sizing parameters. */
struct FidrNicConfig {
    std::uint64_t buffer_capacity = 64 * 1024 * 1024;  ///< NIC DRAM bytes.
    std::size_t hash_batch = 256;  ///< Chunks hashed per batch.
    /**
     * SHA-256 lanes, mirroring the multiple hash cores the paper
     * instantiates per NIC (Table 4).  0 = one lane per hardware
     * thread; 1 = serial hashing on the calling thread (the
     * pre-parallel behaviour).  Digests are bit-identical for every
     * lane count; only wall-clock changes.
     */
    std::size_t hash_lanes = 0;
};

/** One buffered write chunk awaiting the reduction pipeline. */
struct BufferedChunk {
    Lba lba = 0;
    Buffer data;
    Digest digest;
    bool hashed = false;
};

/**
 * A batch sealed out of the open buffer for the multi-batch write
 * pipeline.  Sealed batches model NIC DRAM regions whose chunks are
 * frozen (no newer write for the same LBA coalesces into them) while
 * the SHA engines and the host pipeline work on them; the chunks stay
 * in (battery-backed) NIC memory until drop_sealed() after the host's
 * metadata commit, exactly like the single-batch peek/drop protocol.
 *
 * Ownership handoff: after seal_batch() exactly one pipeline stage at
 * a time may touch `chunks` (hash stage, then the serial commit
 * stages); the stage-to-stage edges are synchronized by the caller's
 * pipeline, not by the NIC.
 */
struct SealedBatch {
    std::uint64_t epoch = 0;  ///< 1-based monotonic seal order.
    std::vector<BufferedChunk> chunks;
    /** Chunks the hash stage freshly hashed (set by hash_sealed). */
    std::uint64_t fresh_hashes = 0;
    /**
     * Request-scoped causal id (obs/request.h), assigned at seal by
     * the orchestrator.  The batch *is* the cross-thread handoff, so
     * the id rides in it: hash workers and the commit sequencer
     * restore a ScopedRequest from here before running their stage.
     * 0 = untraced (e.g. FIDR_TRACE=OFF builds).
     */
    std::uint64_t trace_id = 0;
    /** Stream/tenant tag for the future QoS dimension (0 = none). */
    std::uint64_t stream_tag = 0;
};

/** Functional FIDR NIC. */
class FidrNic {
  public:
    explicit FidrNic(FidrNicConfig config = {});

    /**
     * Buffers a client write chunk (exactly kChunkSize bytes) and
     * "acknowledges" it: returns kUnavailable only when NIC DRAM is
     * exhausted, which callers treat as back-pressure.
     */
    Status buffer_write(Lba lba, Buffer data);

    /** Chunks currently buffered. */
    std::size_t buffered_chunks() const { return chunks_.size(); }
    std::uint64_t buffered_bytes() const
    { return chunks_.size() * kChunkSize; }
    bool batch_ready() const
    { return chunks_.size() >= config_.hash_batch; }

    /**
     * Runs the SHA-256 engines over every unhashed buffered chunk and
     * returns the digests of the whole buffered batch in order.
     */
    std::vector<Digest> hash_buffered();

    /**
     * LBA Lookup module (read path, Fig 7): newest buffered write for
     * `lba`, if any — served to the client without touching the host.
     */
    std::optional<Buffer> lookup_buffered(Lba lba) const;

    /** LBAs of the buffered batch, in buffer order. */
    std::vector<Lba> buffered_lbas() const;

    /**
     * Compression scheduler: pops the buffered batch and splits it by
     * the host-provided verdicts (one per buffered chunk, in order).
     * Unique chunks form the batch for the Compression Engine;
     * duplicates are dropped (their LBA mapping was already updated).
     */
    Result<std::vector<BufferedChunk>> schedule_unique(
        std::span<const ChunkVerdict> verdicts);

    /**
     * Crash-consistent variant of the scheduler handoff: returns
     * pointers to the unique chunks *without* releasing the batch, so
     * the (battery-backed) NIC DRAM keeps every acknowledged write
     * until the host calls drop_batch() after its metadata commit.  A
     * crash in between replays from the retained batch instead of
     * losing acknowledged data.  Pointers stay valid until the next
     * buffer_write / schedule_unique / drop_batch.
     */
    Result<std::vector<const BufferedChunk *>> peek_unique(
        std::span<const ChunkVerdict> verdicts) const;

    /** Releases the batch retained across a peek_unique handoff. */
    void drop_batch();

    // ------------------------------------------------------------------
    // Sealed-batch protocol (multi-batch write pipeline).  seal/unseal
    // run on the ingest thread; hash_sealed on hash-stage workers;
    // peek_unique_sealed/drop_sealed on the commit sequencer.  The
    // sealed list itself is mutex-guarded; a batch's chunks belong to
    // one stage at a time (see SealedBatch).
    // ------------------------------------------------------------------

    /**
     * Freezes every open chunk into a new sealed batch and returns a
     * pointer to it (stable until drop_sealed/unseal_all), or nullptr
     * when nothing is buffered.  The open buffer and its LBA-lookup
     * map restart empty.
     */
    SealedBatch *seal_batch();

    /** The sealed batch with `epoch`, or nullptr (e.g. already dropped). */
    SealedBatch *find_sealed(std::uint64_t epoch);

    /** Sealed batches currently retained. */
    std::size_t sealed_batches() const;

    /** Chunks across all sealed batches. */
    std::size_t sealed_chunks() const
    { return sealed_chunk_count_.load(std::memory_order_relaxed); }

    /** NIC DRAM in use: open + sealed chunks (capacity back-pressure). */
    std::uint64_t pending_bytes() const
    { return (chunks_.size() + sealed_chunks()) * kChunkSize; }

    /**
     * Runs the SHA-256 engines over the batch's unhashed chunks and
     * records the fresh-hash count in the batch.  The lifetime hash
     * counter is only advanced at drop_sealed(), on the commit
     * sequencer, so it stays in epoch order.
     */
    void hash_sealed(SealedBatch &batch);

    /** peek_unique over a sealed batch (same retention contract). */
    Result<std::vector<const BufferedChunk *>> peek_unique_sealed(
        const SealedBatch &batch,
        std::span<const ChunkVerdict> verdicts) const;

    /**
     * Commit point for a sealed batch: must be the oldest sealed epoch
     * (the commit sequencer applies batches in order).  Folds the
     * batch's fresh-hash count into the lifetime counter and releases
     * the NIC DRAM.
     */
    void drop_sealed(std::uint64_t epoch);

    /**
     * Failure/power-cut path: returns every sealed batch, oldest
     * first, to the front of the open buffer (ahead of any chunks
     * buffered since), rebuilds the LBA lookup, and keeps the already
     * computed digests.  Caller must have quiesced the pipeline.
     */
    void unseal_all();

    /** Lifetime counters. */
    std::uint64_t hashes_computed() const { return hashes_computed_; }
    std::uint64_t chunks_buffered_total() const { return total_buffered_; }

    const FidrNicConfig &config() const { return config_; }

    /** Resolved lane count (config.hash_lanes with 0 = hardware). */
    std::size_t hash_lanes() const { return lanes_; }

  private:
    void hash_chunks(std::vector<BufferedChunk> &chunks);

    FidrNicConfig config_;
    std::size_t lanes_ = 1;
    /** Hash lanes; null when lanes_ == 1 (serial path). */
    std::unique_ptr<ThreadPool> pool_;
    std::deque<BufferedChunk> chunks_;
    /** lba -> index of newest buffered write, for the LBA Lookup. */
    std::unordered_map<Lba, std::size_t> newest_;
    /** Sealed batches, oldest first.  unique_ptr keeps the batches at
     *  stable addresses while the deque grows under the mutex. */
    std::deque<std::unique_ptr<SealedBatch>> sealed_;
    mutable std::mutex seal_mutex_;
    std::atomic<std::size_t> sealed_chunk_count_{0};
    std::uint64_t next_epoch_ = 0;
    std::uint64_t hashes_computed_ = 0;
    std::uint64_t total_buffered_ = 0;
};

}  // namespace fidr::nic
