#include "fidr/nic/protocol.h"

#include <cstring>

#include "fidr/common/bytes.h"

namespace fidr::nic {
namespace {

/** Reads that declare a length only; the payload rides on the ack. */
Buffer
encode_header(Op op, Lba lba, std::uint32_t length)
{
    Buffer out(kFrameHeaderSize);
    out[0] = static_cast<std::uint8_t>(op);
    store_le(out.data() + 1, lba, 8);
    store_le(out.data() + 9, length, 4);
    return out;
}

}  // namespace

Buffer
encode(const Frame &frame)
{
    Buffer out = encode_header(frame.op, frame.lba,
                               static_cast<std::uint32_t>(
                                   frame.payload.size()));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    return out;
}

Buffer
encode_write(Lba lba, std::span<const std::uint8_t> data)
{
    Buffer out =
        encode_header(Op::kWrite, lba,
                      static_cast<std::uint32_t>(data.size()));
    out.insert(out.end(), data.begin(), data.end());
    return out;
}

Buffer
encode_read(Lba lba, std::uint32_t length)
{
    return encode_header(Op::kRead, lba, length);
}

Result<Frame>
decode(std::span<const std::uint8_t> wire, std::size_t &offset)
{
    if (offset + kFrameHeaderSize > wire.size())
        return Status::corruption("truncated frame header");
    Frame frame;
    const std::uint8_t op = wire[offset];
    if (op > static_cast<std::uint8_t>(Op::kAck))
        return Status::corruption("unknown protocol op");
    frame.op = static_cast<Op>(op);
    frame.lba = load_le(wire.data() + offset + 1, 8);
    const std::uint64_t length = load_le(wire.data() + offset + 9, 4);
    offset += kFrameHeaderSize;

    // Read requests declare a length but carry no payload bytes.
    if (frame.op == Op::kRead)
        return frame;
    if (offset + length > wire.size())
        return Status::corruption("truncated frame payload");
    frame.payload.assign(wire.begin() + static_cast<long>(offset),
                         wire.begin() + static_cast<long>(offset + length));
    offset += length;
    return frame;
}

}  // namespace fidr::nic
