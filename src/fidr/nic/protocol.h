/**
 * @file
 * Simplified block-storage wire protocol (paper Sec 6.2).
 *
 * The prototype replaces iSCSI with a minimal request/acknowledgment
 * protocol: each frame carries an operation type, the LBA, a length,
 * and (for writes and read acknowledgments) the data.  Layout:
 *
 *   frame := op:u8 lba:u64le length:u32le payload[length]
 *
 * The NIC's protocol engine decodes client frames after its TCP
 * offload engine reassembles the stream; here the codec is exercised
 * directly by the NIC models and the examples.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "fidr/common/status.h"
#include "fidr/common/types.h"

namespace fidr::nic {

/** Protocol operation codes. */
enum class Op : std::uint8_t {
    kRead = 0,   ///< Client requests `length` bytes at `lba`.
    kWrite = 1,  ///< Client writes payload at `lba`.
    kAck = 2,    ///< Server acknowledgment (payload for reads).
};

/** Decoded protocol frame. */
struct Frame {
    Op op = Op::kRead;
    Lba lba = 0;
    Buffer payload;  ///< Empty for reads and write-acks.
};

/** Fixed header size in bytes. */
inline constexpr std::size_t kFrameHeaderSize = 1 + 8 + 4;

/** Encodes a frame to wire format. */
Buffer encode(const Frame &frame);

/** Encodes a write request. */
Buffer encode_write(Lba lba, std::span<const std::uint8_t> data);

/** Encodes a read request for `length` bytes. */
Buffer encode_read(Lba lba, std::uint32_t length);

/**
 * Decodes one frame from `wire` starting at `offset`, advancing
 * `offset` past it.  kCorruption on truncated/malformed input.
 */
Result<Frame> decode(std::span<const std::uint8_t> wire,
                     std::size_t &offset);

}  // namespace fidr::nic
