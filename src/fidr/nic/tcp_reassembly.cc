#include "fidr/nic/tcp_reassembly.h"

namespace fidr::nic {

Status
TcpReassembler::receive(Segment segment)
{
    ++stats_.segments;
    if (segment.payload.empty())
        return Status::ok();

    std::uint64_t seq = segment.seq;
    Buffer payload = std::move(segment.payload);

    // Trim the part we already delivered (retransmission overlap).
    if (seq < next_seq_) {
        const std::uint64_t overlap =
            std::min<std::uint64_t>(next_seq_ - seq, payload.size());
        stats_.duplicate_bytes += overlap;
        if (overlap == payload.size())
            return Status::ok();  // Pure duplicate.
        payload.erase(payload.begin(),
                      payload.begin() + static_cast<long>(overlap));
        seq = next_seq_;
    }

    if (seq == next_seq_) {
        ++stats_.in_order;
        next_seq_ += payload.size();
        ready_.insert(ready_.end(), payload.begin(), payload.end());
        drain_parked();
        return Status::ok();
    }

    // Out of order: park it, bounded by the reassembly window.
    if (parked_bytes_ + payload.size() > window_) {
        return Status::unavailable(
            "reassembly window full; segment dropped");
    }
    ++stats_.out_of_order;
    // Overlapping parked segments: keep the first arrival, trim this
    // one against an existing segment at the same offset.
    auto [it, inserted] = parked_.try_emplace(seq, std::move(payload));
    if (!inserted) {
        stats_.duplicate_bytes += it->second.size();
        return Status::ok();
    }
    parked_bytes_ += it->second.size();
    return Status::ok();
}

void
TcpReassembler::drain_parked()
{
    auto it = parked_.begin();
    while (it != parked_.end() && it->first <= next_seq_) {
        const std::uint64_t seq = it->first;
        Buffer payload = std::move(it->second);
        parked_bytes_ -= payload.size();
        it = parked_.erase(it);

        if (seq + payload.size() <= next_seq_) {
            stats_.duplicate_bytes += payload.size();
            continue;  // Entirely behind the edge already.
        }
        const std::uint64_t overlap = next_seq_ - seq;
        stats_.duplicate_bytes += overlap;
        ready_.insert(ready_.end(),
                      payload.begin() + static_cast<long>(overlap),
                      payload.end());
        next_seq_ += payload.size() - overlap;
    }
}

Buffer
TcpReassembler::take_ready()
{
    stats_.delivered_bytes += ready_.size();
    Buffer out = std::move(ready_);
    ready_ = Buffer{};
    return out;
}

}  // namespace fidr::nic
