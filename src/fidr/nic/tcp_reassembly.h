/**
 * @file
 * TCP offload engine: in-NIC stream reassembly.
 *
 * The FIDR NIC terminates TCP in hardware (two 32 Gbps offload
 * instances, Sec 6.2) so the protocol engine sees an in-order byte
 * stream even when segments arrive out of order or duplicated.  This
 * model implements the reassembly half of that engine: segments carry
 * a stream offset (the simplified protocol does not need 32-bit
 * sequence wraparound), out-of-order payloads wait in a bounded
 * buffer, retransmissions and overlaps are trimmed, and take_ready()
 * drains the contiguous prefix for the protocol decoder.
 */
#pragma once

#include <cstdint>
#include <map>

#include "fidr/common/status.h"
#include "fidr/common/types.h"

namespace fidr::nic {

/** One received segment. */
struct Segment {
    std::uint64_t seq = 0;  ///< Stream offset of payload[0].
    Buffer payload;
};

/** Reassembly statistics. */
struct ReassemblyStats {
    std::uint64_t segments = 0;
    std::uint64_t in_order = 0;
    std::uint64_t out_of_order = 0;   ///< Parked for later.
    std::uint64_t duplicate_bytes = 0;  ///< Trimmed overlap.
    std::uint64_t delivered_bytes = 0;
};

/** Bounded out-of-order reassembler. */
class TcpReassembler {
  public:
    /** @param window max bytes parked beyond the contiguous edge. */
    explicit TcpReassembler(std::size_t window = 1 << 20)
        : window_(window) {}

    /**
     * Accepts one segment.  kUnavailable when parking it would exceed
     * the reassembly window (sender must retransmit later, exactly
     * like a closed TCP receive window).
     */
    Status receive(Segment segment);

    /** Moves the ready (contiguous) byte stream out. */
    Buffer take_ready();

    /** Next stream offset the engine is waiting for. */
    std::uint64_t next_seq() const { return next_seq_; }

    /** Bytes currently parked out of order. */
    std::size_t parked_bytes() const { return parked_bytes_; }

    const ReassemblyStats &stats() const { return stats_; }

  private:
    void drain_parked();

    std::size_t window_;
    std::uint64_t next_seq_ = 0;
    Buffer ready_;
    std::map<std::uint64_t, Buffer> parked_;  ///< seq -> payload.
    std::size_t parked_bytes_ = 0;
    ReassemblyStats stats_;
};

}  // namespace fidr::nic
