#include "fidr/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fidr::obs {

namespace {

constexpr int kIndentWidth = 2;

}  // namespace

std::string
JsonWriter::escape(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newline_indent()
{
    out_ += '\n';
    out_.append(stack_.size() * kIndentWidth, ' ');
}

void
JsonWriter::prefix(bool is_key)
{
    (void)is_key;
    if (after_key_) {
        // Value directly after "key": stays on the same line.
        after_key_ = false;
        return;
    }
    if (stack_.empty())
        return;  // Document root.
    if (!first_in_container_)
        out_ += ',';
    newline_indent();
    first_in_container_ = false;
}

JsonWriter &
JsonWriter::begin_object()
{
    prefix(false);
    out_ += '{';
    stack_.push_back(true);
    first_in_container_ = true;
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    FIDR_CHECK(!stack_.empty() && stack_.back());
    const bool was_empty = first_in_container_;
    stack_.pop_back();
    if (!was_empty)
        newline_indent();
    out_ += '}';
    first_in_container_ = false;
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    prefix(false);
    out_ += '[';
    stack_.push_back(false);
    first_in_container_ = true;
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    FIDR_CHECK(!stack_.empty() && !stack_.back());
    const bool was_empty = first_in_container_;
    stack_.pop_back();
    if (!was_empty)
        newline_indent();
    out_ += ']';
    first_in_container_ = false;
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    FIDR_CHECK(!stack_.empty() && stack_.back());
    prefix(true);
    out_ += '"';
    out_ += escape(name);
    out_ += "\": ";
    after_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view text)
{
    prefix(false);
    out_ += '"';
    out_ += escape(text);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(double number)
{
    prefix(false);
    if (!std::isfinite(number)) {
        out_ += "null";  // JSON has no inf/nan.
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", number);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t number)
{
    prefix(false);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(number));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t number)
{
    prefix(false);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(number));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool flag)
{
    prefix(false);
    out_ += flag ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prefix(false);
    out_ += "null";
    return *this;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Result<JsonValue>
    parse_document()
    {
        Result<JsonValue> value = parse_value();
        if (!value.is_ok())
            return value;
        skip_ws();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return value;
    }

  private:
    Status
    fail(const std::string &what) const
    {
        return Status::invalid_argument(
            "JSON parse error at offset " + std::to_string(pos_) + ": " +
            what);
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Result<JsonValue>
    parse_value()
    {
        skip_ws();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parse_object();
        if (c == '[')
            return parse_array();
        if (c == '"')
            return parse_string_value();
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parse_number();
        if (text_.compare(pos_, 4, "true") == 0) {
            pos_ += 4;
            JsonValue v;
            v.type = JsonValue::Type::kBool;
            v.boolean = true;
            return v;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            pos_ += 5;
            JsonValue v;
            v.type = JsonValue::Type::kBool;
            v.boolean = false;
            return v;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            pos_ += 4;
            return JsonValue{};
        }
        return fail("unexpected character");
    }

    Result<std::string>
    parse_string_raw()
    {
        if (!consume('"'))
            return Status::invalid_argument("expected string");
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    const unsigned code = static_cast<unsigned>(std::strtoul(
                        std::string(text_.substr(pos_, 4)).c_str(),
                        nullptr, 16));
                    pos_ += 4;
                    // ASCII-range escapes only (all this repo emits).
                    out += static_cast<char>(code & 0x7F);
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    Result<JsonValue>
    parse_string_value()
    {
        Result<std::string> raw = parse_string_raw();
        if (!raw.is_ok())
            return raw.status();
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = raw.take();
        return v;
    }

    Result<JsonValue>
    parse_number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        JsonValue v;
        v.type = JsonValue::Type::kNumber;
        v.number = parsed;
        return v;
    }

    Result<JsonValue>
    parse_array()
    {
        consume('[');
        JsonValue v;
        v.type = JsonValue::Type::kArray;
        skip_ws();
        if (consume(']'))
            return v;
        while (true) {
            Result<JsonValue> element = parse_value();
            if (!element.is_ok())
                return element;
            v.array.push_back(element.take());
            skip_ws();
            if (consume(']'))
                return v;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    Result<JsonValue>
    parse_object()
    {
        consume('{');
        JsonValue v;
        v.type = JsonValue::Type::kObject;
        skip_ws();
        if (consume('}'))
            return v;
        while (true) {
            skip_ws();
            Result<std::string> name = parse_string_raw();
            if (!name.is_ok())
                return name.status();
            skip_ws();
            if (!consume(':'))
                return fail("expected ':'");
            Result<JsonValue> member = parse_value();
            if (!member.is_ok())
                return member;
            v.object.emplace_back(name.take(), member.take());
            skip_ws();
            if (consume('}'))
                return v;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Result<JsonValue>
JsonValue::parse(std::string_view text)
{
    return Parser(text).parse_document();
}

const JsonValue *
JsonValue::find(std::string_view name) const
{
    if (type != Type::kObject)
        return nullptr;
    for (const auto &[key, value] : object) {
        if (key == name)
            return &value;
    }
    return nullptr;
}

}  // namespace fidr::obs
