/**
 * @file
 * Minimal JSON support for the observability subsystem: a streaming
 * writer (used by ObsSnapshot, the Chrome trace exporter, and the
 * bench harness's uniform report schema) and a small recursive-descent
 * parser (used by `fidr_obs_report` and the export round-trip tests).
 *
 * Deliberately tiny rather than general: the writer always produces
 * pretty-printed UTF-8 with 2-space indent; the parser accepts the
 * standard JSON grammar (no comments, no trailing commas) and stores
 * every number as double, which is exact for the integers the
 * snapshots emit (< 2^53).
 */
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "fidr/common/status.h"

namespace fidr::obs {

/** Streaming JSON writer with automatic comma/indent management. */
class JsonWriter {
  public:
    JsonWriter() = default;

    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Emits an object key; the next value/begin_* call is its value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view text);
    JsonWriter &value(const char *text) { return value(std::string_view(text)); }
    JsonWriter &value(double number);
    JsonWriter &value(std::uint64_t number);
    JsonWriter &value(std::int64_t number);
    JsonWriter &value(int number) { return value(static_cast<std::int64_t>(number)); }
    JsonWriter &value(bool flag);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    kv(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** The document written so far (complete once nesting closed). */
    const std::string &str() const { return out_; }

    static std::string escape(std::string_view raw);

  private:
    void prefix(bool is_key);
    void newline_indent();

    std::string out_;
    /** One entry per open container: true = object, false = array. */
    std::vector<bool> stack_;
    bool first_in_container_ = true;
    bool after_key_ = false;
};

/** Parsed JSON value (tree representation). */
struct JsonValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Parses a complete JSON document (trailing whitespace allowed). */
    static Result<JsonValue> parse(std::string_view text);

    bool is_object() const { return type == Type::kObject; }
    bool is_array() const { return type == Type::kArray; }
    bool is_number() const { return type == Type::kNumber; }
    bool is_string() const { return type == Type::kString; }

    /** Member lookup on objects; null for missing keys / non-objects. */
    const JsonValue *find(std::string_view name) const;

    /** number as u64 (0 for non-numbers). */
    std::uint64_t
    as_u64() const
    {
        return type == Type::kNumber ? static_cast<std::uint64_t>(number) : 0;
    }
};

}  // namespace fidr::obs
