#include "fidr/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "fidr/common/status.h"
#include "fidr/obs/json.h"

namespace fidr::obs {

namespace {

// Log-spaced buckets: 64 per power of two covers 1 ns .. ~5 s with
// ~1.1% spacing.
constexpr double kBucketsPerOctave = 64.0;
constexpr std::size_t kNumBuckets = 64 * 33;

void
atomic_min(std::atomic<SimTime> &slot, SimTime value)
{
    SimTime cur = slot.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

void
atomic_max(std::atomic<SimTime> &slot, SimTime value)
{
    SimTime cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value,
                                       std::memory_order_relaxed)) {
    }
}

}  // namespace

Histogram::Histogram()
    : min_(~SimTime{0}), buckets_(kNumBuckets)
{
}

std::size_t
Histogram::bucket_index(SimTime ns)
{
    if (ns <= 1)
        return 0;
    const double idx =
        std::log2(static_cast<double>(ns)) * kBucketsPerOctave;
    return std::min(kNumBuckets - 1, static_cast<std::size_t>(idx));
}

SimTime
Histogram::bucket_upper_edge_ns(std::size_t index)
{
    return static_cast<SimTime>(std::pow(
        2.0, (static_cast<double>(index) + 1.0) / kBucketsPerOctave));
}

std::size_t
Histogram::num_buckets()
{
    return kNumBuckets;
}

void
Histogram::record(SimTime latency_ns, std::uint64_t trace_id)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(latency_ns, std::memory_order_relaxed);
    atomic_min(min_, latency_ns);
    atomic_max(max_, latency_ns);
    buckets_[bucket_index(latency_ns)].fetch_add(
        1, std::memory_order_relaxed);
    if (exemplars_ && trace_id != 0)
        offer_exemplar(latency_ns, trace_id);
}

void
Histogram::set_exemplar_capacity(std::size_t capacity)
{
    if (capacity == 0)
        exemplars_.reset();
    else
        exemplars_ = std::make_unique<ExemplarReservoir>(capacity);
}

void
Histogram::offer_exemplar(SimTime latency_ns, std::uint64_t trace_id)
{
    ExemplarReservoir &res = *exemplars_;
    // Fast reject: once the reservoir is full, `floor` holds the
    // slowest-K threshold; anything at or below it cannot displace a
    // retained sample.  Racing offers may both pass the gate — the
    // mutex below resolves them; the gate only has to be conservative.
    if (latency_ns <= res.floor.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(res.mutex);
    if (res.slots.size() < res.capacity) {
        res.slots.push_back({latency_ns, trace_id});
    } else {
        // slots is sorted slowest-first; the back is the current floor.
        if (latency_ns <= res.slots.back().latency_ns)
            return;
        res.slots.back() = {latency_ns, trace_id};
    }
    std::sort(res.slots.begin(), res.slots.end(),
              [](const Exemplar &a, const Exemplar &b) {
                  return a.latency_ns > b.latency_ns;
              });
    if (res.slots.size() == res.capacity)
        res.floor.store(res.slots.back().latency_ns,
                        std::memory_order_relaxed);
}

double
Histogram::mean_ns() const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
           static_cast<double>(n);
}

SimTime
Histogram::percentile_ns(double q) const
{
    FIDR_CHECK(q >= 0.0 && q <= 1.0);
    const std::uint64_t n = count();
    if (n == 0)
        return 0;
    const SimTime lo = min_ns();
    const SimTime hi = max_ns();
    if (q <= 0.0)
        return lo;
    if (q >= 1.0)
        return hi;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t in_bucket =
            buckets_[i].load(std::memory_order_relaxed);
        seen += in_bucket;
        if (seen >= target && in_bucket > 0) {
            // Bucket upper edge, clamped into the observed range so a
            // single-sample histogram reports the sample exactly.
            return std::clamp(bucket_upper_edge_ns(i), lo, hi);
        }
    }
    return hi;
}

HistogramSummary
Histogram::summary() const
{
    HistogramSummary out;
    out.count = count();
    out.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    out.mean_ns = mean_ns();
    out.min_ns = min_ns();
    out.max_ns = max_ns();
    out.p50_ns = percentile_ns(0.50);
    out.p95_ns = percentile_ns(0.95);
    out.p99_ns = percentile_ns(0.99);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t n =
            buckets_[i].load(std::memory_order_relaxed);
        if (n != 0)
            out.buckets.push_back({static_cast<std::uint32_t>(i), n});
    }
    if (exemplars_) {
        std::lock_guard<std::mutex> lock(exemplars_->mutex);
        out.exemplars = exemplars_->slots;
    }
    return out;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    min_.store(~SimTime{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
    if (exemplars_) {
        std::lock_guard<std::mutex> lock(exemplars_->mutex);
        exemplars_->slots.clear();
        exemplars_->floor.store(0, std::memory_order_relaxed);
    }
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter *
MetricRegistry::find_counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram *
MetricRegistry::find_histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

ObsSnapshot
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ObsSnapshot out;
    for (const auto &[name, counter] : counters_)
        out.counters[name] = counter->get();
    for (const auto &[name, gauge] : gauges_)
        out.gauges[name] = gauge->get();
    for (const auto &[name, histogram] : histograms_)
        out.histograms[name] = histogram->summary();
    return out;
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        counter->reset();
    for (const auto &[name, histogram] : histograms_)
        histogram->reset();
}

StageTimer::StageTimer()
{
    start_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
StageTimer::elapsed_ns() const
{
    const auto now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return now - start_ns_;
}

// ------------------------------------------------------------ snapshot

std::string
ObsSnapshot::to_json() const
{
    JsonWriter json;
    json.begin_object();

    json.key("counters").begin_object();
    for (const auto &[name, value] : counters)
        json.kv(name, value);
    json.end_object();

    json.key("gauges").begin_object();
    for (const auto &[name, value] : gauges)
        json.kv(name, value);
    json.end_object();

    json.key("histograms").begin_object();
    for (const auto &[name, h] : histograms) {
        json.key(name).begin_object();
        json.kv("count", h.count);
        json.kv("sum_ns", h.sum_ns);
        json.kv("mean_ns", h.mean_ns);
        json.kv("min_ns", h.min_ns);
        json.kv("max_ns", h.max_ns);
        json.kv("p50_ns", h.p50_ns);
        json.kv("p95_ns", h.p95_ns);
        json.kv("p99_ns", h.p99_ns);
        if (!h.buckets.empty()) {
            json.key("buckets").begin_array();
            for (const BucketCount &bucket : h.buckets) {
                json.begin_object();
                json.kv("index",
                        static_cast<std::uint64_t>(bucket.index));
                json.kv("count", bucket.count);
                json.end_object();
            }
            json.end_array();
        }
        if (!h.exemplars.empty()) {
            json.key("exemplars").begin_array();
            for (const Exemplar &ex : h.exemplars) {
                json.begin_object();
                json.kv("latency_ns", ex.latency_ns);
                json.kv("trace_id", ex.trace_id);
                json.end_object();
            }
            json.end_array();
        }
        json.end_object();
    }
    json.end_object();

    json.key("sections").begin_object();
    for (const auto &[name, rows] : sections) {
        json.key(name).begin_array();
        for (const SnapshotRow &row : rows) {
            json.begin_object();
            json.kv("label", row.label);
            json.kv("value", row.value);
            json.kv("share", row.share);
            json.end_object();
        }
        json.end_array();
    }
    json.end_object();

    json.end_object();
    return json.str();
}

std::string
ObsSnapshot::pretty() const
{
    std::string out;
    char line[256];

    const auto append = [&out, &line] { out += line; };

    if (!counters.empty()) {
        out += "counters\n";
        for (const auto &[name, value] : counters) {
            std::snprintf(line, sizeof(line), "  %-40s %20llu\n",
                          name.c_str(),
                          static_cast<unsigned long long>(value));
            append();
        }
    }
    if (!gauges.empty()) {
        out += "gauges\n";
        for (const auto &[name, value] : gauges) {
            std::snprintf(line, sizeof(line), "  %-40s %20.6g\n",
                          name.c_str(), value);
            append();
        }
    }
    if (!histograms.empty()) {
        out += "histograms (us)\n";
        std::snprintf(line, sizeof(line),
                      "  %-28s %10s %10s %10s %10s %10s %10s\n", "stage",
                      "count", "mean", "p50", "p95", "p99", "max");
        append();
        for (const auto &[name, h] : histograms) {
            std::snprintf(
                line, sizeof(line),
                "  %-28s %10llu %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                name.c_str(), static_cast<unsigned long long>(h.count),
                h.mean_ns / 1e3, static_cast<double>(h.p50_ns) / 1e3,
                static_cast<double>(h.p95_ns) / 1e3,
                static_cast<double>(h.p99_ns) / 1e3,
                static_cast<double>(h.max_ns) / 1e3);
            append();
        }
    }
    for (const auto &[name, rows] : sections) {
        out += name + "\n";
        for (const SnapshotRow &row : rows) {
            std::snprintf(line, sizeof(line), "  %-40s %18.6g %6.1f%%\n",
                          row.label.c_str(), row.value,
                          row.share * 100.0);
            append();
        }
    }
    return out;
}

}  // namespace fidr::obs
