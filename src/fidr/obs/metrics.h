/**
 * @file
 * Unified metrics for the whole stack: counters, gauges, and
 * log-bucket latency histograms behind one thread-safe registry and
 * one snapshot API.
 *
 * This absorbs the previously separate measurement silos —
 * `sim::StatRegistry` and `sim::LatencyStats` are now thin adapters
 * over these types — so hash/compress lanes can bump counters
 * concurrently and every consumer (benches, `FidrSystem::obs_snapshot`,
 * `fidr_obs_report`) reads the same `ObsSnapshot`.
 *
 * Hot-path cost: a counter add is one relaxed atomic fetch_add; a
 * histogram record is a handful of relaxed atomics (count, sum, CAS
 * min/max, one bucket).  Registry lookups by name take a mutex — hold
 * a `Counter&`/`Histogram&` handle instead on hot paths (handles stay
 * valid for the registry's lifetime).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fidr/common/units.h"

namespace fidr::obs {

/** Monotonic counter (thread-safe). */
class Counter {
  public:
    void
    add(std::uint64_t by = 1)
    {
        value_.fetch_add(by, std::memory_order_relaxed);
    }

    std::uint64_t get() const
    { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-value gauge (thread-safe). */
class Gauge {
  public:
    void set(double value)
    { value_.store(value, std::memory_order_relaxed); }

    double get() const
    { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0};
};

/**
 * Tail exemplar: one concrete request behind a high latency sample.
 * `trace_id` names a captured trace (obs/request.h), so a p99 bucket
 * is no longer anonymous — `fidr_obs_report attribute` can pull that
 * exact request's span tree out of the trace dump.
 */
struct Exemplar {
    SimTime latency_ns = 0;
    std::uint64_t trace_id = 0;
};

/** One nonzero log bucket: (bucket index, sample count). */
struct BucketCount {
    std::uint32_t index = 0;
    std::uint64_t count = 0;
};

/** Summary of a histogram at snapshot time. */
struct HistogramSummary {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    double mean_ns = 0;
    SimTime min_ns = 0;
    SimTime max_ns = 0;
    SimTime p50_ns = 0;
    SimTime p95_ns = 0;
    SimTime p99_ns = 0;
    /**
     * Sparse nonzero buckets, ascending by index.  Lets consumers diff
     * two cumulative snapshots into a *windowed* distribution and
     * recompute true per-window percentiles (obs/slo.h) — cumulative
     * p99s cannot be subtracted.
     */
    std::vector<BucketCount> buckets;
    /** Slowest retained samples, descending; empty unless enabled. */
    std::vector<Exemplar> exemplars;
};

/**
 * Streaming latency histogram: count, mean, min/max, percentiles via
 * log-spaced buckets (64 per power of two => ~1.1% relative error,
 * enough for the 700 us vs 490 us comparison of Sec 7.6).
 *
 * record() is thread-safe (relaxed atomics); percentile reads are
 * consistent when no writer is concurrent — snapshot after joining.
 */
class Histogram {
  public:
    Histogram();

    /**
     * Records one sample.  `trace_id` (0 = none) feeds the tail
     * exemplar reservoir when one is configured; with no reservoir or
     * no id the cost is one extra non-atomic pointer test.
     */
    void record(SimTime latency_ns, std::uint64_t trace_id = 0);

    /**
     * Retains the `capacity` slowest (latency, trace_id) samples seen
     * since the last reset (0 = off, the default).  Offers are cheap:
     * a relaxed floor load rejects everything below the current top-K
     * threshold; only genuine tail samples take the reservoir mutex.
     * Quiescent callers only (configure before recording starts).
     */
    void set_exemplar_capacity(std::size_t capacity);

    std::uint64_t count() const
    { return count_.load(std::memory_order_relaxed); }
    double mean_ns() const;
    SimTime min_ns() const
    { return count() ? min_.load(std::memory_order_relaxed) : 0; }
    SimTime max_ns() const
    { return count() ? max_.load(std::memory_order_relaxed) : 0; }

    /**
     * Latency below which fraction `q` in [0, 1] of samples fall.
     * Edge cases: empty => 0; q = 0 => min; q = 1 => max; results are
     * clamped to [min, max], so a single sample reports itself exactly.
     */
    SimTime percentile_ns(double q) const;

    HistogramSummary summary() const;

    void reset();

    /** Log-bucket geometry, shared with windowed consumers (slo.h). */
    static std::size_t bucket_index(SimTime ns);
    static SimTime bucket_upper_edge_ns(std::size_t index);
    static std::size_t num_buckets();

  private:
    /** Mutex-guarded top-K reservoir behind a relaxed floor gate. */
    struct ExemplarReservoir {
        explicit ExemplarReservoir(std::size_t capacity)
            : capacity(capacity)
        {
        }
        std::size_t capacity;
        std::atomic<SimTime> floor{0};  ///< Admission gate once full.
        mutable std::mutex mutex;
        std::vector<Exemplar> slots;    ///< Sorted slowest-first.
    };

    void offer_exemplar(SimTime latency_ns, std::uint64_t trace_id);

    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_ns_{0};
    std::atomic<SimTime> min_{0};
    std::atomic<SimTime> max_{0};
    std::vector<std::atomic<std::uint64_t>> buckets_;
    std::unique_ptr<ExemplarReservoir> exemplars_;
};

/** One labelled row of a snapshot section (ledger report, ...). */
struct SnapshotRow {
    std::string label;
    double value = 0;
    double share = 0;  ///< Fraction of section total, in [0, 1].
};

/** Point-in-time view of every metric plus attached report sections. */
struct ObsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSummary> histograms;
    /** Named report tables: host-DRAM ledger, CPU ledger, ... */
    std::map<std::string, std::vector<SnapshotRow>> sections;

    /** Serializes the whole snapshot as a JSON document. */
    std::string to_json() const;

    /** Human-readable multi-table rendering (fidr_obs_report). */
    std::string pretty() const;
};

/**
 * Thread-safe registry of named metrics.  Handles returned by
 * counter()/gauge()/histogram() are stable for the registry lifetime.
 */
class MetricRegistry {
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Lookup without creating; null when the name is unknown. */
    const Counter *find_counter(const std::string &name) const;
    const Histogram *find_histogram(const std::string &name) const;

    /** Copies every metric into a snapshot (no sections attached). */
    ObsSnapshot snapshot() const;

    /** Zeroes counters and histograms (gauges keep their value). */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Wall-clock stage timer for per-stage histograms. */
class StageTimer {
  public:
    StageTimer();

    /** Nanoseconds elapsed since construction. */
    std::uint64_t elapsed_ns() const;

  private:
    std::uint64_t start_ns_ = 0;
};

}  // namespace fidr::obs
