/**
 * @file
 * Request-scoped causal context for the FIDR data plane.
 *
 * A *request* is one unit of client-visible work whose latency we want
 * to attribute end to end: one sealed write batch traveling Fig 6a, or
 * one `read_batch()` call traveling Fig 6b.  The orchestrating thread
 * allocates a process-unique trace id per request (plus an optional
 * stream/tenant tag — the channel the future multi-tenant dimension
 * rides), and every layer that picks the request up on another thread
 * (hash-stage workers, the commit sequencer, read fetch lanes)
 * re-establishes the context with a `ScopedRequest` before running.
 *
 * Propagation is deliberately explicit: the id travels *in the work
 * item* (`nic::SealedBatch::trace_id`, `core::ReadJob` via
 * `ReadPipeline::run`), never through hidden queues, so a record's
 * trace id always names the request the recording thread was actually
 * serving.  `Tracer::record` stamps the calling thread's current
 * context into every trace record; `Histogram::record` uses it to
 * attach tail exemplars (metrics.h).
 *
 * Cost: a `ScopedRequest` is two thread-local stores on entry and two
 * on exit; reading the context is one thread-local load.  With
 * -DFIDR_TRACE=OFF the whole class compiles to a no-op (ids are always
 * 0, no thread-local exists), so the stripped hot path is unchanged.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace fidr::obs {

/**
 * Trace-id layout: the top bits carry the originating node index so
 * ids stay unique when N in-process nodes (cluster::ClusterRouter)
 * mint from the same process-wide counter and their obs dumps are
 * merged.  Node 0 ids are numerically identical to the pre-cluster
 * scheme, so single-node traces (and their goldens) are unchanged.
 */
inline constexpr unsigned kTraceNodeShift = 54;
inline constexpr std::uint64_t kTraceSeqMask =
    (std::uint64_t{1} << kTraceNodeShift) - 1;

/** Node index embedded in a trace id (0 for single-node systems). */
constexpr std::uint32_t
trace_node(std::uint64_t trace_id)
{
    return static_cast<std::uint32_t>(trace_id >> kTraceNodeShift);
}

/** Per-process request sequence number within a trace id. */
constexpr std::uint64_t
trace_seq(std::uint64_t trace_id)
{
    return trace_id & kTraceSeqMask;
}

#if FIDR_TRACE_ENABLED

/** Allocates process-unique request trace ids (1-based; 0 = none). */
class RequestContext {
  public:
    static std::uint64_t
    next_id()
    {
        return counter().fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /** next_id() tagged with the minting node's index (see above). */
    static std::uint64_t
    next_id_for_node(std::uint32_t node)
    {
        return (std::uint64_t{node} << kTraceNodeShift) | next_id();
    }

  private:
    static std::atomic<std::uint64_t> &
    counter()
    {
        static std::atomic<std::uint64_t> instance{0};
        return instance;
    }
};

/**
 * RAII request context for the calling thread.  Nests: the previous
 * context is restored on destruction, so a read issued while a batch
 * context is active (tests, compaction) unwinds correctly.
 */
class ScopedRequest {
  public:
    explicit ScopedRequest(std::uint64_t trace_id,
                           std::uint64_t stream_tag = 0)
        : prev_trace_(current().trace_id),
          prev_stream_(current().stream_tag)
    {
        current().trace_id = trace_id;
        current().stream_tag = stream_tag;
    }

    ~ScopedRequest()
    {
        current().trace_id = prev_trace_;
        current().stream_tag = prev_stream_;
    }

    ScopedRequest(const ScopedRequest &) = delete;
    ScopedRequest &operator=(const ScopedRequest &) = delete;

    /** The calling thread's current request trace id (0 = none). */
    static std::uint64_t current_trace() { return current().trace_id; }
    /** The calling thread's current stream/tenant tag (0 = none). */
    static std::uint64_t current_stream()
    { return current().stream_tag; }

  private:
    struct Context {
        std::uint64_t trace_id = 0;
        std::uint64_t stream_tag = 0;
    };

    /**
     * Function-local TLS (the trace.cc ring-cache idiom) rather than a
     * thread_local static member: the out-of-line member definition
     * routes every cross-TU access through the compiler's TLS wrapper
     * function, which GCC's combined ASan+UBSan instrumentation
     * mis-tracks (spurious "null pointer" on every access and real
     * miscompiles in the fault tests).  A function-local thread_local
     * is emitted directly in each referencing TU and sidesteps the
     * wrapper entirely.
     */
    static Context &
    current()
    {
        thread_local Context context;
        return context;
    }

    std::uint64_t prev_trace_;
    std::uint64_t prev_stream_;
};

#else  // !FIDR_TRACE_ENABLED

/** FIDR_TRACE=OFF: ids are never allocated; everything is a no-op. */
class RequestContext {
  public:
    static constexpr std::uint64_t next_id() { return 0; }
    static constexpr std::uint64_t next_id_for_node(std::uint32_t)
    { return 0; }
};

class ScopedRequest {
  public:
    explicit constexpr ScopedRequest(std::uint64_t, std::uint64_t = 0) {}
    static constexpr std::uint64_t current_trace() { return 0; }
    static constexpr std::uint64_t current_stream() { return 0; }
};

#endif  // FIDR_TRACE_ENABLED

}  // namespace fidr::obs
