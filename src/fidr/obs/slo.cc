#include "fidr/obs/slo.h"

#include <algorithm>
#include <cmath>

#include "fidr/common/status.h"
#include "fidr/obs/json.h"

namespace fidr::obs {

double
HistogramDelta::mean_ns() const
{
    if (count == 0)
        return 0.0;
    return static_cast<double>(sum_ns) / static_cast<double>(count);
}

SimTime
HistogramDelta::percentile_ns(double q) const
{
    FIDR_CHECK(q >= 0.0 && q <= 1.0);
    if (count == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(std::max(
        1.0, std::ceil(q * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (const BucketCount &bucket : buckets) {
        seen += bucket.count;
        if (seen >= target)
            return Histogram::bucket_upper_edge_ns(bucket.index);
    }
    return buckets.empty()
               ? 0
               : Histogram::bucket_upper_edge_ns(buckets.back().index);
}

std::uint64_t
HistogramDelta::count_above_ns(SimTime threshold_ns) const
{
    // "Slow" = landed in a bucket strictly above the one holding the
    // threshold; matches the resolution the histogram actually has.
    const std::size_t edge = Histogram::bucket_index(threshold_ns);
    std::uint64_t slow = 0;
    for (const BucketCount &bucket : buckets)
        if (bucket.index > edge)
            slow += bucket.count;
    return slow;
}

WindowedAggregator::WindowedAggregator(std::size_t window_count,
                                       std::uint64_t interval_ns)
    : window_count_(window_count), interval_ns_(interval_ns)
{
    FIDR_CHECK(window_count >= 1);
    FIDR_CHECK(interval_ns >= 1);
}

namespace {

/** new - old for matching sparse bucket vectors (both ascending). */
std::vector<BucketCount>
diff_buckets(const std::vector<BucketCount> &now,
             const std::vector<BucketCount> &then)
{
    std::vector<BucketCount> out;
    std::size_t j = 0;
    for (const BucketCount &bucket : now) {
        std::uint64_t before = 0;
        while (j < then.size() && then[j].index < bucket.index)
            ++j;
        if (j < then.size() && then[j].index == bucket.index)
            before = then[j].count;
        if (bucket.count > before)
            out.push_back({bucket.index, bucket.count - before});
    }
    return out;
}

/** Accumulates sparse deltas into an existing sparse vector. */
void
merge_buckets(std::vector<BucketCount> &into,
              const std::vector<BucketCount> &add)
{
    std::vector<BucketCount> merged;
    merged.reserve(into.size() + add.size());
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < into.size() || b < add.size()) {
        if (b >= add.size() ||
            (a < into.size() && into[a].index < add[b].index)) {
            merged.push_back(into[a++]);
        } else if (a >= into.size() || add[b].index < into[a].index) {
            merged.push_back(add[b++]);
        } else {
            merged.push_back(
                {into[a].index, into[a].count + add[b].count});
            ++a;
            ++b;
        }
    }
    into = std::move(merged);
}

}  // namespace

void
WindowedAggregator::observe(const ObsSnapshot &snapshot,
                            std::uint64_t now_ns)
{
    if (!baselined_) {
        baselined_ = true;
        previous_ = snapshot;
        open_start_ns_ = now_ns;
        open_ = SloWindow{};
        return;
    }

    // Accumulate the delta since the previous snapshot into the open
    // window.  Counters are monotonic; a shrink means a reset upstream
    // and contributes nothing rather than a bogus huge delta.
    for (const auto &[name, value] : snapshot.counters) {
        const auto it = previous_.counters.find(name);
        const std::uint64_t before =
            it == previous_.counters.end() ? 0 : it->second;
        if (value > before)
            open_.counter_deltas[name] += value - before;
    }
    for (const auto &[name, value] : snapshot.gauges)
        open_.gauges[name] = value;
    for (const auto &[name, summary] : snapshot.histograms) {
        const auto it = previous_.histograms.find(name);
        static const HistogramSummary kEmpty;
        const HistogramSummary &before =
            it == previous_.histograms.end() ? kEmpty : it->second;
        if (summary.count <= before.count &&
            summary.exemplars.empty())
            continue;
        HistogramDelta &delta = open_.histograms[name];
        if (summary.count > before.count) {
            delta.count += summary.count - before.count;
            delta.sum_ns += summary.sum_ns - before.sum_ns;
            merge_buckets(delta.buckets,
                          diff_buckets(summary.buckets, before.buckets));
        }
        delta.exemplars = summary.exemplars;
    }
    previous_ = snapshot;

    if (now_ns - open_start_ns_ < interval_ns_)
        return;

    open_.index = next_index_++;
    open_.start_ns = open_start_ns_;
    open_.end_ns = now_ns;
    windows_.push_back(std::move(open_));
    while (windows_.size() > window_count_)
        windows_.pop_front();
    open_ = SloWindow{};
    open_start_ns_ = now_ns;
}

std::string
WindowedAggregator::to_json() const
{
    JsonWriter json;
    json.begin_object();
    json.kv("interval_ns", interval_ns_);
    json.kv("capacity", static_cast<std::uint64_t>(window_count_));
    json.kv("windows_closed", next_index_);
    json.key("windows").begin_array();
    for (const SloWindow &window : windows_) {
        json.begin_object();
        json.kv("index", window.index);
        json.kv("start_ns", window.start_ns);
        json.kv("end_ns", window.end_ns);
        json.key("counters").begin_object();
        for (const auto &[name, delta] : window.counter_deltas)
            json.kv(name, delta);
        json.end_object();
        json.key("gauges").begin_object();
        for (const auto &[name, value] : window.gauges)
            json.kv(name, value);
        json.end_object();
        json.key("histograms").begin_object();
        for (const auto &[name, delta] : window.histograms) {
            json.key(name).begin_object();
            json.kv("count", delta.count);
            json.kv("sum_ns", delta.sum_ns);
            json.kv("mean_ns", delta.mean_ns());
            json.kv("p50_ns", delta.percentile_ns(0.50));
            json.kv("p99_ns", delta.percentile_ns(0.99));
            if (!delta.exemplars.empty()) {
                json.key("exemplars").begin_array();
                for (const Exemplar &ex : delta.exemplars) {
                    json.begin_object();
                    json.kv("latency_ns", ex.latency_ns);
                    json.kv("trace_id", ex.trace_id);
                    json.end_object();
                }
                json.end_array();
            }
            json.end_object();
        }
        json.end_object();
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

void
SloEvaluator::add_target(SloTarget target)
{
    FIDR_CHECK(!target.name.empty());
    FIDR_CHECK(target.eval_windows >= 1);
    FIDR_CHECK(target.quantile > 0.0 && target.quantile < 1.0);
    targets_.push_back(std::move(target));
}

std::vector<SloResult>
SloEvaluator::evaluate(const WindowedAggregator &aggregator) const
{
    const std::deque<SloWindow> &ring = aggregator.windows();
    std::vector<SloResult> results;
    results.reserve(targets_.size());
    for (const SloTarget &target : targets_) {
        SloResult result;
        result.name = target.name;
        const std::size_t lookback =
            std::min(target.eval_windows, ring.size());
        result.windows_evaluated = lookback;

        HistogramDelta merged;
        for (std::size_t w = ring.size() - lookback; w < ring.size();
             ++w) {
            const SloWindow &window = ring[w];
            if (!target.histogram.empty()) {
                const auto it = window.histograms.find(target.histogram);
                if (it != window.histograms.end()) {
                    merged.count += it->second.count;
                    merged.sum_ns += it->second.sum_ns;
                    merge_buckets(merged.buckets, it->second.buckets);
                }
            }
            if (!target.error_counter.empty()) {
                const auto err =
                    window.counter_deltas.find(target.error_counter);
                if (err != window.counter_deltas.end())
                    result.errors += err->second;
                const auto tot =
                    window.counter_deltas.find(target.total_counter);
                if (tot != window.counter_deltas.end())
                    result.total_ops += tot->second;
            }
        }

        if (target.latency_ns > 0 && merged.count > 0) {
            result.samples = merged.count;
            result.slow_samples =
                merged.count_above_ns(target.latency_ns);
            result.observed_quantile_ns =
                merged.percentile_ns(target.quantile);
            const double bad_fraction =
                static_cast<double>(result.slow_samples) /
                static_cast<double>(result.samples);
            const double allowed = 1.0 - target.quantile;
            result.latency_burn = bad_fraction / allowed;
        }
        if (!target.error_counter.empty() &&
            target.max_error_rate > 0.0 && result.total_ops > 0) {
            const double rate =
                static_cast<double>(result.errors) /
                static_cast<double>(result.total_ops);
            result.error_burn = rate / target.max_error_rate;
        }

        result.breached =
            lookback > 0 &&
            (result.latency_burn >= target.burn_threshold ||
             result.error_burn >= target.burn_threshold);
        results.push_back(std::move(result));
    }
    return results;
}

std::string
SloEvaluator::report_json(const std::vector<SloResult> &results)
{
    JsonWriter json;
    json.begin_object();
    json.key("slo").begin_array();
    for (const SloResult &result : results) {
        json.begin_object();
        json.kv("name", result.name);
        json.kv("breached", result.breached);
        json.kv("windows_evaluated",
                static_cast<std::uint64_t>(result.windows_evaluated));
        json.kv("samples", result.samples);
        json.kv("slow_samples", result.slow_samples);
        json.kv("latency_burn", result.latency_burn);
        json.kv("observed_quantile_ns", result.observed_quantile_ns);
        json.kv("total_ops", result.total_ops);
        json.kv("errors", result.errors);
        json.kv("error_burn", result.error_burn);
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

}  // namespace fidr::obs
