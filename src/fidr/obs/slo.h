/**
 * @file
 * Windowed time-series aggregation and SLO evaluation over the
 * cumulative `ObsSnapshot` stream.
 *
 * Everything FIDR measures is cumulative-since-start (counters only go
 * up, histograms only accumulate), which answers "how did the run go"
 * but not "is the system healthy *right now*".  The
 * `WindowedAggregator` turns the cumulative stream into rates: feed it
 * `obs_snapshot()` on whatever cadence you like and it diffs
 * consecutive snapshots into fixed-interval windows kept in a bounded
 * ring (oldest evicted — "window wrap").  Histogram diffs keep the
 * *sparse bucket deltas* (HistogramSummary::buckets), so a window's
 * true p99 is recomputable — cumulative p99s cannot be subtracted.
 *
 * The `SloEvaluator` reads the window ring with Google-SRE-style
 * burn rates.  A latency target "q of requests under T" allows a
 * bad fraction of (1-q); burn = observed_bad_fraction / (1-q), so
 * burn 1.0 consumes error budget exactly as fast as the SLO allows
 * and burn 2.0 breaches twice as fast.  Error-rate targets divide the
 * windowed error rate by the allowed rate the same way.  Targets
 * evaluate over the last `eval_windows` windows so short spikes and
 * sustained burns are distinguishable.
 *
 * Like the rest of obs, this is passive instrumentation: nothing here
 * touches the hot path, and with FIDR_TRACE=OFF the inputs simply
 * carry no exemplars.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "fidr/obs/metrics.h"

namespace fidr::obs {

/** Per-histogram activity within one window (deltas, not cumulative). */
struct HistogramDelta {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::vector<BucketCount> buckets;  ///< Sparse per-window deltas.
    /** Cumulative tail exemplars as of window close (informational). */
    std::vector<Exemplar> exemplars;

    double mean_ns() const;
    /** True windowed percentile from the bucket deltas (0 if empty). */
    SimTime percentile_ns(double q) const;
    /** Samples strictly above the bucket containing `threshold_ns`. */
    std::uint64_t count_above_ns(SimTime threshold_ns) const;
};

/** One closed aggregation window. */
struct SloWindow {
    std::uint64_t index = 0;     ///< Monotonic; survives ring eviction.
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::map<std::string, std::uint64_t> counter_deltas;
    std::map<std::string, double> gauges;  ///< Last value in window.
    std::map<std::string, HistogramDelta> histograms;
};

/**
 * Diffs a cumulative snapshot stream into a bounded ring of
 * fixed-interval windows.  Single-threaded by design: call observe()
 * from the control thread that owns snapshotting.
 */
class WindowedAggregator {
  public:
    /**
     * @param window_count  Ring capacity; the oldest closed window is
     *                      evicted when a newer one closes past it.
     * @param interval_ns   Target window length.  A window closes on
     *                      the first observe() at or past its end, so
     *                      actual spans may exceed the interval when
     *                      polling is slow.
     */
    WindowedAggregator(std::size_t window_count,
                       std::uint64_t interval_ns);

    /**
     * Feeds one cumulative snapshot taken at `now_ns` (any monotonic
     * clock; windows live on the caller's timeline).  The first call
     * only baselines.  Later calls accumulate the delta since the
     * previous snapshot into the open window and close it once the
     * interval has elapsed.
     */
    void observe(const ObsSnapshot &snapshot, std::uint64_t now_ns);

    /** Closed windows, oldest first. */
    const std::deque<SloWindow> &windows() const { return windows_; }

    /** Total windows ever closed (>= windows().size() after wrap). */
    std::uint64_t windows_closed() const { return next_index_; }

    std::uint64_t interval_ns() const { return interval_ns_; }
    std::size_t capacity() const { return window_count_; }

    /** The whole ring as a JSON document (schema in DESIGN.md §13). */
    std::string to_json() const;

  private:
    std::size_t window_count_;
    std::uint64_t interval_ns_;

    bool baselined_ = false;
    ObsSnapshot previous_;
    std::uint64_t open_start_ns_ = 0;
    SloWindow open_;  ///< Accumulating deltas since open_start_ns_.
    std::uint64_t next_index_ = 0;
    std::deque<SloWindow> windows_;
};

/** One service-level objective over windowed metrics. */
struct SloTarget {
    std::string name;

    // Latency objective: `quantile` of samples in `histogram` must
    // finish within `latency_ns` (latency_ns = 0 disables).
    std::string histogram;
    double quantile = 0.99;
    SimTime latency_ns = 0;

    // Error-rate objective: counter(error_counter)/counter(
    // total_counter) must stay at or below max_error_rate
    // (empty error_counter disables).
    std::string error_counter;
    std::string total_counter;
    double max_error_rate = 0.0;

    /** Breach when any burn rate reaches this (1.0 = budget-exact). */
    double burn_threshold = 1.0;
    /** Evaluate over the most recent N closed windows. */
    std::size_t eval_windows = 1;
};

/** Evaluation outcome for one target. */
struct SloResult {
    std::string name;
    bool breached = false;

    // Latency leg (0s when disabled or no traffic).
    std::uint64_t samples = 0;
    std::uint64_t slow_samples = 0;
    double latency_burn = 0.0;
    SimTime observed_quantile_ns = 0;

    // Error leg (0s when disabled or no traffic).
    std::uint64_t total_ops = 0;
    std::uint64_t errors = 0;
    double error_burn = 0.0;

    std::size_t windows_evaluated = 0;
};

/** Evaluates a set of SLO targets against the window ring. */
class SloEvaluator {
  public:
    void add_target(SloTarget target);
    const std::vector<SloTarget> &targets() const { return targets_; }

    std::vector<SloResult>
    evaluate(const WindowedAggregator &aggregator) const;

    /** JSON report of one evaluation pass. */
    static std::string report_json(const std::vector<SloResult> &results);

  private:
    std::vector<SloTarget> targets_;
};

}  // namespace fidr::obs
