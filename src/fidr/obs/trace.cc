#include "fidr/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "fidr/obs/json.h"

namespace fidr::obs {

const char *
tpoint_name(Tpoint tpoint)
{
    switch (tpoint) {
      case Tpoint::kNone: return "none";
      case Tpoint::kWriteBatch: return "write.batch";
      case Tpoint::kWriteNicBuffer: return "write.nic_buffer";
      case Tpoint::kWriteHash: return "write.hash";
      case Tpoint::kWriteHashLane: return "write.hash_lane";
      case Tpoint::kWriteDigestXfer: return "write.digest_xfer";
      case Tpoint::kWriteBucketIndex: return "write.bucket_index";
      case Tpoint::kWriteDedupResolve: return "write.dedup_resolve";
      case Tpoint::kWriteTableFetch: return "write.table_fetch";
      case Tpoint::kWriteBucketScan: return "write.bucket_scan";
      case Tpoint::kWriteVerdictXfer: return "write.verdict_xfer";
      case Tpoint::kWriteMapUpdate: return "write.map_update";
      case Tpoint::kWriteCompress: return "write.compress";
      case Tpoint::kWriteCompressLane: return "write.compress_lane";
      case Tpoint::kWriteContainerAppend: return "write.container_append";
      case Tpoint::kWriteJournal: return "write.journal";
      case Tpoint::kReadRequest: return "read.request";
      case Tpoint::kReadNicLookup: return "read.nic_lookup";
      case Tpoint::kReadLbaResolve: return "read.lba_resolve";
      case Tpoint::kReadSsdFetch: return "read.ssd_fetch";
      case Tpoint::kReadDecompress: return "read.decompress";
      case Tpoint::kReadNicReturn: return "read.nic_return";
      case Tpoint::kDma: return "pcie.dma";
      case Tpoint::kCacheFetch: return "cache.fetch";
      case Tpoint::kCacheWriteback: return "cache.writeback";
      case Tpoint::kTreeCrash: return "hwtree.crash";
      case Tpoint::kFaultInjected: return "fault.injected";
      case Tpoint::kPipelineSubmit: return "pipeline.submit";
      case Tpoint::kPipelineStall: return "pipeline.stall";
      case Tpoint::kPipelineHashStage: return "pipeline.hash";
      case Tpoint::kPipelineExecute: return "pipeline.execute";
      case Tpoint::kPipelineDrain: return "pipeline.drain";
      case Tpoint::kReadBatch: return "read.batch";
      case Tpoint::kReadCoalesce: return "read.coalesce";
      case Tpoint::kReadCacheHit: return "read.cache_hit";
      case Tpoint::kReadCacheInsert: return "read.cache_insert";
      case Tpoint::kReadCacheWarmHit: return "read.cache_warm_hit";
      case Tpoint::kReadCacheSpillHit: return "read.cache_spill_hit";
      case Tpoint::kReadCacheSpillWrite: return "read.cache_spill_write";
      case Tpoint::kReadFetchLane: return "read.fetch_lane";
      case Tpoint::kGcStep: return "gc.step";
      case Tpoint::kGcRelocate: return "gc.relocate";
      case Tpoint::kGcDiscard: return "gc.discard";
      case Tpoint::kGcSuperblock: return "gc.superblock";
      case Tpoint::kMaxTpoint: break;
    }
    return "unknown";
}

std::vector<TraceRecord>
TraceRing::drain_ordered() const
{
    const std::uint64_t pushed_count = pushed();
    const std::uint64_t n = held();
    std::vector<TraceRecord> out;
    out.reserve(n);
    // Oldest surviving record first.
    const std::uint64_t start = pushed_count - n;
    for (std::uint64_t i = start; i < pushed_count; ++i)
        out.push_back(slots_[i % slots_.size()]);
    return out;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::Tracer()
{
    epoch_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
Tracer::wall_now_ns() const
{
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return now - epoch_ns_;
}

void
Tracer::enable(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Tracer::configure_ring_capacity(std::size_t records)
{
    FIDR_CHECK(records >= 1);
    std::lock_guard<std::mutex> lock(rings_mutex_);
    ring_capacity_ = records;
    for (const auto &ring : rings_)
        ring->resize_capacity(records);
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto &ring : rings_)
        ring->clear();
}

TraceRing *
Tracer::my_ring()
{
    // Cache keyed by tracer so tests can run private instances.
    struct Cached {
        Tracer *owner = nullptr;
        TraceRing *ring = nullptr;
    };
    static thread_local Cached cached;
    if (cached.owner == this)
        return cached.ring;
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::make_unique<TraceRing>(ring_capacity_));
    cached = {this, rings_.back().get()};
    return cached.ring;
}

std::size_t
Tracer::ring_count() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    return rings_.size();
}

std::uint64_t
Tracer::total_recorded() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->pushed();
    return total;
}

std::uint64_t
Tracer::total_held() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->held();
    return total;
}

std::vector<std::pair<std::size_t, TraceRecord>>
Tracer::collect() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    std::vector<std::pair<std::size_t, TraceRecord>> out;
    for (std::size_t r = 0; r < rings_.size(); ++r) {
        for (const TraceRecord &rec : rings_[r]->drain_ordered())
            out.emplace_back(r, rec);
    }
    return out;
}

std::string
Tracer::chrome_json_from(
    const std::vector<std::pair<std::size_t, TraceRecord>> &records)
{
    // Flow planning: every begin record that carries a request trace_id
    // becomes a hop on that request's flow chain.  The first hop emits
    // a flow-start ("s"), intermediate hops a step ("t"), the last hop
    // the finish ("f") — Perfetto binds each to the slice opening at
    // the same (tid, ts), drawing the cross-thread request arrows.
    struct FlowHop {
        std::size_t record_index;
        std::uint64_t wall_ts;
    };
    std::map<std::uint64_t, std::vector<FlowHop>> flows;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &rec = records[i].second;
        if (rec.trace_id != 0 &&
            static_cast<TraceFlag>(rec.flags) == TraceFlag::kBegin)
            flows[rec.trace_id].push_back({i, rec.wall_ts});
    }
    // record index -> flow phase ('s'/'t'/'f'); single-hop chains have
    // nothing to connect and emit no flow events.
    std::map<std::size_t, char> flow_phase;
    for (auto &[trace_id, hops] : flows) {
        if (hops.size() < 2)
            continue;
        std::stable_sort(hops.begin(), hops.end(),
                         [](const FlowHop &a, const FlowHop &b) {
                             return a.wall_ts < b.wall_ts;
                         });
        for (std::size_t h = 0; h < hops.size(); ++h) {
            const char phase = h == 0                ? 's'
                               : h + 1 == hops.size() ? 'f'
                                                      : 't';
            flow_phase[hops[h].record_index] = phase;
        }
    }

    JsonWriter json;
    json.begin_object();
    json.key("displayTimeUnit").value("ns");
    json.key("traceEvents").begin_array();
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &[ring, rec] = records[i];
        const auto flag = static_cast<TraceFlag>(rec.flags);
        const char *phase = flag == TraceFlag::kBegin ? "B"
                            : flag == TraceFlag::kEnd ? "E"
                                                      : "i";
        json.begin_object();
        json.key("name").value(
            tpoint_name(static_cast<Tpoint>(rec.tpoint)));
        json.key("cat").value("fidr");
        json.key("ph").value(phase);
        // Chrome trace timestamps are microseconds (double).
        json.key("ts").value(static_cast<double>(rec.wall_ts) / 1000.0);
        json.key("pid").value(std::uint64_t{1});
        json.key("tid").value(static_cast<std::uint64_t>(ring));
        if (flag == TraceFlag::kInstant)
            json.key("s").value("t");
        json.key("args").begin_object();
        json.key("object_id").value(rec.object_id);
        json.key("arg").value(rec.arg);
        json.key("lane").value(static_cast<std::uint64_t>(rec.lane));
        if (rec.trace_id != 0)
            json.key("trace_id").value(rec.trace_id);
        if (rec.sim_ts != 0)
            json.key("sim_ts_ns").value(rec.sim_ts);
        json.end_object();
        json.end_object();

        const auto hop = flow_phase.find(i);
        if (hop == flow_phase.end())
            continue;
        json.begin_object();
        json.key("name").value("request");
        json.key("cat").value("fidr.flow");
        json.key("ph").value(std::string(1, hop->second));
        json.key("id").value(rec.trace_id);
        json.key("ts").value(static_cast<double>(rec.wall_ts) / 1000.0);
        json.key("pid").value(std::uint64_t{1});
        json.key("tid").value(static_cast<std::uint64_t>(ring));
        if (hop->second == 'f') {
            // Bind the finish to the enclosing slice too, not the next.
            json.key("bp").value("e");
        }
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

std::string
Tracer::export_chrome_json() const
{
    return chrome_json_from(collect());
}

namespace {

/**
 * Binary dump header: magic + version + record size + count.
 * Version history: v1 = 40-byte records (no trace_id), v2 = 48-byte
 * records with the request trace_id.  Readers reject other versions
 * with an explicit message rather than misparsing the rows.
 */
struct DumpHeader {
    char magic[8] = {'F', 'I', 'D', 'R', 'T', 'R', 'C', '\0'};
    std::uint32_t version = 2;
    std::uint32_t record_size = sizeof(TraceRecord);
    std::uint64_t record_count = 0;
};

}  // namespace

Status
Tracer::dump_binary(const std::string &path) const
{
    const auto records = collect();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return Status::unavailable("cannot open " + path);
    DumpHeader header;
    header.record_count = records.size();
    bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
    for (const auto &[ring, rec] : records) {
        if (!ok)
            break;
        const std::uint64_t ring_id = ring;
        ok = std::fwrite(&ring_id, sizeof(ring_id), 1, f) == 1 &&
             std::fwrite(&rec, sizeof(rec), 1, f) == 1;
    }
    std::fclose(f);
    if (!ok)
        return Status::unavailable("short write to " + path);
    return Status::ok();
}

Result<std::vector<std::pair<std::size_t, TraceRecord>>>
Tracer::load_binary(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status::not_found("cannot open " + path);
    DumpHeader header;
    if (std::fread(&header, sizeof(header), 1, f) != 1) {
        std::fclose(f);
        return Status::corruption("truncated trace header");
    }
    if (std::memcmp(header.magic, "FIDRTRC", 8) != 0) {
        std::fclose(f);
        return Status::corruption("not a FIDR trace dump");
    }
    if (header.version != DumpHeader{}.version) {
        std::fclose(f);
        return Status::corruption(
            "unsupported trace dump version " +
            std::to_string(header.version) + " (this tool reads version " +
            std::to_string(DumpHeader{}.version) +
            "; re-capture the trace with a matching build)");
    }
    if (header.record_size != sizeof(TraceRecord)) {
        std::fclose(f);
        return Status::corruption(
            "trace dump record size " +
            std::to_string(header.record_size) + " does not match this " +
            "build's " + std::to_string(sizeof(TraceRecord)) + " bytes");
    }
    std::vector<std::pair<std::size_t, TraceRecord>> records;
    records.reserve(header.record_count);
    for (std::uint64_t i = 0; i < header.record_count; ++i) {
        std::uint64_t ring_id = 0;
        TraceRecord rec;
        if (std::fread(&ring_id, sizeof(ring_id), 1, f) != 1 ||
            std::fread(&rec, sizeof(rec), 1, f) != 1) {
            std::fclose(f);
            return Status::corruption("truncated trace record");
        }
        records.emplace_back(static_cast<std::size_t>(ring_id), rec);
    }
    std::fclose(f);
    return records;
}

}  // namespace fidr::obs
