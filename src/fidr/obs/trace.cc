#include "fidr/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "fidr/obs/json.h"

namespace fidr::obs {

const char *
tpoint_name(Tpoint tpoint)
{
    switch (tpoint) {
      case Tpoint::kNone: return "none";
      case Tpoint::kWriteBatch: return "write.batch";
      case Tpoint::kWriteNicBuffer: return "write.nic_buffer";
      case Tpoint::kWriteHash: return "write.hash";
      case Tpoint::kWriteHashLane: return "write.hash_lane";
      case Tpoint::kWriteDigestXfer: return "write.digest_xfer";
      case Tpoint::kWriteBucketIndex: return "write.bucket_index";
      case Tpoint::kWriteDedupResolve: return "write.dedup_resolve";
      case Tpoint::kWriteTableFetch: return "write.table_fetch";
      case Tpoint::kWriteBucketScan: return "write.bucket_scan";
      case Tpoint::kWriteVerdictXfer: return "write.verdict_xfer";
      case Tpoint::kWriteMapUpdate: return "write.map_update";
      case Tpoint::kWriteCompress: return "write.compress";
      case Tpoint::kWriteCompressLane: return "write.compress_lane";
      case Tpoint::kWriteContainerAppend: return "write.container_append";
      case Tpoint::kWriteJournal: return "write.journal";
      case Tpoint::kReadRequest: return "read.request";
      case Tpoint::kReadNicLookup: return "read.nic_lookup";
      case Tpoint::kReadLbaResolve: return "read.lba_resolve";
      case Tpoint::kReadSsdFetch: return "read.ssd_fetch";
      case Tpoint::kReadDecompress: return "read.decompress";
      case Tpoint::kReadNicReturn: return "read.nic_return";
      case Tpoint::kDma: return "pcie.dma";
      case Tpoint::kCacheFetch: return "cache.fetch";
      case Tpoint::kCacheWriteback: return "cache.writeback";
      case Tpoint::kTreeCrash: return "hwtree.crash";
      case Tpoint::kFaultInjected: return "fault.injected";
      case Tpoint::kPipelineSubmit: return "pipeline.submit";
      case Tpoint::kPipelineStall: return "pipeline.stall";
      case Tpoint::kPipelineHashStage: return "pipeline.hash";
      case Tpoint::kPipelineExecute: return "pipeline.execute";
      case Tpoint::kPipelineDrain: return "pipeline.drain";
      case Tpoint::kReadBatch: return "read.batch";
      case Tpoint::kReadCoalesce: return "read.coalesce";
      case Tpoint::kReadCacheHit: return "read.cache_hit";
      case Tpoint::kReadCacheInsert: return "read.cache_insert";
      case Tpoint::kReadFetchLane: return "read.fetch_lane";
      case Tpoint::kMaxTpoint: break;
    }
    return "unknown";
}

std::vector<TraceRecord>
TraceRing::drain_ordered() const
{
    const std::uint64_t pushed_count = pushed();
    const std::uint64_t n = held();
    std::vector<TraceRecord> out;
    out.reserve(n);
    // Oldest surviving record first.
    const std::uint64_t start = pushed_count - n;
    for (std::uint64_t i = start; i < pushed_count; ++i)
        out.push_back(slots_[i % slots_.size()]);
    return out;
}

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

Tracer::Tracer()
{
    epoch_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
Tracer::wall_now_ns() const
{
    const std::uint64_t now = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return now - epoch_ns_;
}

void
Tracer::enable(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
Tracer::configure_ring_capacity(std::size_t records)
{
    FIDR_CHECK(records >= 1);
    std::lock_guard<std::mutex> lock(rings_mutex_);
    ring_capacity_ = records;
    for (const auto &ring : rings_)
        ring->resize_capacity(records);
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto &ring : rings_)
        ring->clear();
}

TraceRing *
Tracer::my_ring()
{
    // Cache keyed by tracer so tests can run private instances.
    struct Cached {
        Tracer *owner = nullptr;
        TraceRing *ring = nullptr;
    };
    static thread_local Cached cached;
    if (cached.owner == this)
        return cached.ring;
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(std::make_unique<TraceRing>(ring_capacity_));
    cached = {this, rings_.back().get()};
    return cached.ring;
}

std::size_t
Tracer::ring_count() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    return rings_.size();
}

std::uint64_t
Tracer::total_recorded() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->pushed();
    return total;
}

std::uint64_t
Tracer::total_held() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->held();
    return total;
}

std::vector<std::pair<std::size_t, TraceRecord>>
Tracer::collect() const
{
    std::lock_guard<std::mutex> lock(rings_mutex_);
    std::vector<std::pair<std::size_t, TraceRecord>> out;
    for (std::size_t r = 0; r < rings_.size(); ++r) {
        for (const TraceRecord &rec : rings_[r]->drain_ordered())
            out.emplace_back(r, rec);
    }
    return out;
}

std::string
Tracer::chrome_json_from(
    const std::vector<std::pair<std::size_t, TraceRecord>> &records)
{
    JsonWriter json;
    json.begin_object();
    json.key("displayTimeUnit").value("ns");
    json.key("traceEvents").begin_array();
    for (const auto &[ring, rec] : records) {
        const auto flag = static_cast<TraceFlag>(rec.flags);
        const char *phase = flag == TraceFlag::kBegin ? "B"
                            : flag == TraceFlag::kEnd ? "E"
                                                      : "i";
        json.begin_object();
        json.key("name").value(
            tpoint_name(static_cast<Tpoint>(rec.tpoint)));
        json.key("cat").value("fidr");
        json.key("ph").value(phase);
        // Chrome trace timestamps are microseconds (double).
        json.key("ts").value(static_cast<double>(rec.wall_ts) / 1000.0);
        json.key("pid").value(std::uint64_t{1});
        json.key("tid").value(static_cast<std::uint64_t>(ring));
        if (flag == TraceFlag::kInstant)
            json.key("s").value("t");
        json.key("args").begin_object();
        json.key("object_id").value(rec.object_id);
        json.key("arg").value(rec.arg);
        json.key("lane").value(static_cast<std::uint64_t>(rec.lane));
        if (rec.sim_ts != 0)
            json.key("sim_ts_ns").value(rec.sim_ts);
        json.end_object();
        json.end_object();
    }
    json.end_array();
    json.end_object();
    return json.str();
}

std::string
Tracer::export_chrome_json() const
{
    return chrome_json_from(collect());
}

namespace {

/** Binary dump header: magic + version + record size + count. */
struct DumpHeader {
    char magic[8] = {'F', 'I', 'D', 'R', 'T', 'R', 'C', '\0'};
    std::uint32_t version = 1;
    std::uint32_t record_size = sizeof(TraceRecord);
    std::uint64_t record_count = 0;
};

}  // namespace

Status
Tracer::dump_binary(const std::string &path) const
{
    const auto records = collect();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return Status::unavailable("cannot open " + path);
    DumpHeader header;
    header.record_count = records.size();
    bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1;
    for (const auto &[ring, rec] : records) {
        if (!ok)
            break;
        const std::uint64_t ring_id = ring;
        ok = std::fwrite(&ring_id, sizeof(ring_id), 1, f) == 1 &&
             std::fwrite(&rec, sizeof(rec), 1, f) == 1;
    }
    std::fclose(f);
    if (!ok)
        return Status::unavailable("short write to " + path);
    return Status::ok();
}

Result<std::vector<std::pair<std::size_t, TraceRecord>>>
Tracer::load_binary(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return Status::not_found("cannot open " + path);
    DumpHeader header;
    if (std::fread(&header, sizeof(header), 1, f) != 1) {
        std::fclose(f);
        return Status::corruption("truncated trace header");
    }
    if (std::memcmp(header.magic, "FIDRTRC", 8) != 0 ||
        header.record_size != sizeof(TraceRecord)) {
        std::fclose(f);
        return Status::corruption("not a FIDR trace dump");
    }
    std::vector<std::pair<std::size_t, TraceRecord>> records;
    records.reserve(header.record_count);
    for (std::uint64_t i = 0; i < header.record_count; ++i) {
        std::uint64_t ring_id = 0;
        TraceRecord rec;
        if (std::fread(&ring_id, sizeof(ring_id), 1, f) != 1 ||
            std::fread(&rec, sizeof(rec), 1, f) != 1) {
            std::fclose(f);
            return Status::corruption("truncated trace record");
        }
        records.emplace_back(static_cast<std::size_t>(ring_id), rec);
    }
    std::fclose(f);
    return records;
}

}  // namespace fidr::obs
