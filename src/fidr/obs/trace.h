/**
 * @file
 * Low-overhead tracepoints for the FIDR data plane (SPDK-style).
 *
 * Design (mirrors spdk_trace): every thread that hits a tracepoint
 * lazily registers a fixed-size ring of binary records with the global
 * Tracer; recording is a relaxed-atomic enabled check, a thread_local
 * ring pointer load, and one 48-byte store — no locks, no allocation,
 * no formatting on the hot path.  The ring overwrites its oldest
 * records on wrap, so a trace always holds the *tail* of activity.
 *
 * Record layout (fixed size, ISSUE taxonomy):
 *   {tpoint_id, flags(begin/end/instant), lane, object_id, sim_ts,
 *    wall_ts, arg, trace_id}
 *
 * `object_id` threads one request through layers: write-flow spans
 * carry the batch sequence number, chunk-scoped points carry the first
 * 8 bytes of the chunk digest, read-flow spans carry the LBA.
 * `trace_id` is the request-scoped causal id (obs/request.h): record()
 * stamps the calling thread's current ScopedRequest, so every record a
 * worker emits while serving a batch or a read carries that request's
 * id — the Chrome export turns same-id records on different rings into
 * flow arrows, and `fidr_obs_report attribute` groups spans by it.
 *
 * Compile-time kill switch: configure with -DFIDR_TRACE=OFF and every
 * FIDR_TPOINT / FIDR_TRACE_SPAN site compiles to nothing — the binary
 * cannot emit a record.  With tracing compiled in, recording is still
 * OFF until Tracer::instance().enable(); disabled cost is one relaxed
 * atomic load per site.
 *
 * Export: binary dump (read back by tools/fidr_obs_report) and Chrome
 * trace-event JSON ("B"/"E"/"i" phases, one tid per ring) that loads
 * directly in Perfetto / chrome://tracing.
 *
 * Threading contract: record() is safe from any thread concurrently;
 * enable/disable/reset/configure_ring_capacity/export must run while
 * no thread is recording (quiescent), e.g. after joining the lanes.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/obs/request.h"

namespace fidr::obs {

class JsonWriter;

/** Tracepoint taxonomy: Fig 6a write flow, Fig 6b read flow, devices. */
enum class Tpoint : std::uint16_t {
    kNone = 0,

    // Write flow (Fig 6a), one span per pipeline stage.
    kWriteBatch,           ///< Whole process_batch() span (object=batch).
    kWriteNicBuffer,       ///< Step 1: client chunk into NIC DRAM.
    kWriteHash,            ///< Step 2: SHA-256 over the buffered batch.
    kWriteHashLane,        ///< One SHA lane's shard (worker thread).
    kWriteDigestXfer,      ///< Step 2b: digests NIC -> host.
    kWriteBucketIndex,     ///< Step 3: bucket indexes -> Cache HW-Engine.
    kWriteDedupResolve,    ///< Steps 4-5: tree resolve + fetch + scan.
    kWriteTableFetch,      ///< Bucket fetched from table SSD (miss).
    kWriteBucketScan,      ///< Host scan verdict for one chunk.
    kWriteVerdictXfer,     ///< Step 6: verdicts host -> NIC.
    kWriteMapUpdate,       ///< LBA-PBA mapping + journal for the batch.
    kWriteCompress,        ///< Steps 7-8: unique chunks -> LZ lanes.
    kWriteCompressLane,    ///< One LZ lane's shard (worker thread).
    kWriteContainerAppend, ///< Step 9: container packing + seal DMA.
    kWriteJournal,         ///< Metadata journal append.

    // Read flow (Fig 6b).
    kReadRequest,          ///< Whole read() span (object=LBA).
    kReadNicLookup,        ///< Step 2: LBA Lookup in the NIC buffer.
    kReadLbaResolve,       ///< Steps 3-4: host LBA->PBA resolve.
    kReadSsdFetch,         ///< Steps 5: data SSD -> Decompression Engine.
    kReadDecompress,       ///< Step 6: decompression.
    kReadNicReturn,        ///< Step 7: engine -> NIC, out to client.

    // Cross-cutting device/fabric points.
    kDma,                  ///< One routed fabric DMA (arg=bytes).
    kCacheFetch,           ///< Table cache miss fill (object=bucket).
    kCacheWriteback,       ///< Dirty line flushed (object=bucket).
    kTreeCrash,            ///< HW-tree misspeculation (object=key).
    kFaultInjected,        ///< Failpoint fired (object=site, arg=kind).

    // Multi-batch write pipeline (cross-batch overlap of Fig 6a).
    kPipelineSubmit,       ///< Batch admitted (object=epoch, arg=depth).
    kPipelineStall,        ///< Admission stalled on a full pipeline.
    kPipelineHashStage,    ///< Hash-stage occupancy span (object=epoch).
    kPipelineExecute,      ///< Commit-sequencer span (object=epoch).
    kPipelineDrain,        ///< Barrier waiting for in-flight batches.

    // Batched read plane (coalesced Fig 6b).
    kReadBatch,            ///< Whole read_batch() span (object=slots).
    kReadCoalesce,         ///< Slot->job collapse (object=slots, arg=jobs).
    kReadCacheHit,         ///< Hot-tier chunk-cache hit (object=container).
    kReadCacheInsert,      ///< Decompressed chunk cached (object=container).
    kReadCacheWarmHit,     ///< Warm-tier hit: decompress, no SSD DMA.
    kReadCacheSpillHit,    ///< Spill-tier hit: ring read, no chunk fetch.
    kReadCacheSpillWrite,  ///< Evicted image written to the spill ring.
    kReadFetchLane,        ///< One lane's fetch shard (worker thread).

    // Incremental container-log GC (concurrent with both planes).
    kGcStep,               ///< One budgeted GC step (object=victim).
    kGcRelocate,           ///< One live chunk moved (object=pbn, arg=bytes).
    kGcDiscard,            ///< Victim container released (object=id).
    kGcSuperblock,         ///< Superblock version written (object=seq).

    kMaxTpoint,
};

/** Stable display name of a tracepoint ("write.hash", ...). */
const char *tpoint_name(Tpoint tpoint);

/** Record kind. */
enum class TraceFlag : std::uint16_t {
    kInstant = 0,
    kBegin = 1,
    kEnd = 2,
};

/** One fixed-size binary trace record. */
struct TraceRecord {
    std::uint16_t tpoint = 0;   ///< Tpoint enum value.
    std::uint16_t flags = 0;    ///< TraceFlag enum value.
    std::uint32_t lane = 0;     ///< Lane/shard id where meaningful.
    std::uint64_t object_id = 0;
    std::uint64_t sim_ts = 0;   ///< Simulated ns (0 where untracked).
    std::uint64_t wall_ts = 0;  ///< Wall ns since tracer epoch.
    std::uint64_t arg = 0;      ///< Bytes, counts, verdicts, ...
    std::uint64_t trace_id = 0; ///< Request causal id (0 = unscoped).
};
static_assert(sizeof(TraceRecord) == 48, "keep trace records compact");

/** Per-thread ring of trace records (single writer, wrap-on-full). */
class TraceRing {
  public:
    explicit TraceRing(std::size_t capacity) : slots_(capacity) {}

    void
    push(const TraceRecord &record)
    {
        // Single-writer ring, and the threading contract (see file
        // header) says readers only run while the writer is quiescent —
        // there is no concurrent reader for a release store to pair
        // with.  Cross-thread visibility rides on whatever join /
        // mutex the caller used to reach quiescence, so plain relaxed
        // stores are enough; the atomic only keeps enabled-racing
        // pushes from being UB.
        const std::uint64_t head = head_.load(std::memory_order_relaxed);
        slots_[head % slots_.size()] = record;
        head_.store(head + 1, std::memory_order_relaxed);
    }

    std::size_t capacity() const { return slots_.size(); }

    /** Records ever pushed (>= capacity() means the ring wrapped). */
    std::uint64_t pushed() const
    { return head_.load(std::memory_order_relaxed); }

    /** Records currently held (min(pushed, capacity)). */
    std::uint64_t
    held() const
    {
        const std::uint64_t n = pushed();
        return n < slots_.size() ? n : slots_.size();
    }

    /** Held records, oldest first.  Caller must be quiescent. */
    std::vector<TraceRecord> drain_ordered() const;

    void
    clear()
    {
        head_.store(0, std::memory_order_relaxed);
    }

    /** Drops all records and changes capacity.  Quiescent only. */
    void
    resize_capacity(std::size_t capacity)
    {
        slots_.assign(capacity, TraceRecord{});
        clear();
    }

  private:
    std::vector<TraceRecord> slots_;
    std::atomic<std::uint64_t> head_{0};
};

/** Process-wide trace recorder: registry of per-thread rings. */
class Tracer {
  public:
    /** The global tracer every FIDR_TPOINT site records into. */
    static Tracer &instance();

    Tracer();

    /** Turns recording on/off (sites early-out when disabled). */
    void enable(bool on = true);
    bool enabled() const
    { return enabled_.load(std::memory_order_relaxed); }

    /**
     * Ring capacity (records per thread) for rings created afterwards;
     * existing rings are resized.  Quiescent callers only.
     */
    void configure_ring_capacity(std::size_t records);
    std::size_t ring_capacity() const { return ring_capacity_; }

    /** Drops every record (rings stay registered).  Quiescent only. */
    void reset();

    /** Hot path: one record into the calling thread's ring. */
    void
    record(Tpoint tpoint, TraceFlag flag, std::uint64_t object_id,
           std::uint64_t arg = 0, std::uint32_t lane = 0,
           std::uint64_t sim_ts = 0)
    {
        if (!enabled_.load(std::memory_order_relaxed))
            return;
        TraceRing *ring = my_ring();
        TraceRecord rec;
        rec.tpoint = static_cast<std::uint16_t>(tpoint);
        rec.flags = static_cast<std::uint16_t>(flag);
        rec.lane = lane;
        rec.object_id = object_id;
        rec.sim_ts = sim_ts;
        rec.wall_ts = wall_now_ns();
        rec.arg = arg;
        rec.trace_id = ScopedRequest::current_trace();
        ring->push(rec);
    }

    /** Records ever pushed across all rings (includes overwritten). */
    std::uint64_t total_recorded() const;

    /** Records currently held across all rings. */
    std::uint64_t total_held() const;

    std::size_t ring_count() const;

    /**
     * All held records as (ring_index, record), ordered by wall_ts
     * within each ring.  Quiescent callers only.
     */
    std::vector<std::pair<std::size_t, TraceRecord>> collect() const;

    /** Chrome trace-event JSON (loads in Perfetto).  Quiescent only. */
    std::string export_chrome_json() const;

    /** Binary dump: header + (ring, record) rows.  Quiescent only. */
    Status dump_binary(const std::string &path) const;

    /** Reads a dump_binary() file back (same shape as collect()). */
    static Result<std::vector<std::pair<std::size_t, TraceRecord>>>
    load_binary(const std::string &path);

    /** Renders records as Chrome trace-event JSON (shared by tools). */
    static std::string chrome_json_from(
        const std::vector<std::pair<std::size_t, TraceRecord>> &records);

    /** Wall-clock ns since the tracer epoch (steady clock). */
    std::uint64_t wall_now_ns() const;

  private:
    TraceRing *my_ring();

    std::atomic<bool> enabled_{false};
    std::uint64_t epoch_ns_ = 0;
    std::size_t ring_capacity_ = 64 * 1024;

    mutable std::mutex rings_mutex_;  ///< Guards ring registration only.
    std::vector<std::unique_ptr<TraceRing>> rings_;
};

/** RAII begin/end span around a scope. */
class TraceSpan {
  public:
    TraceSpan(Tpoint tpoint, std::uint64_t object_id,
              std::uint64_t arg = 0, std::uint32_t lane = 0)
        : tpoint_(tpoint), object_(object_id), lane_(lane)
    {
        Tracer::instance().record(tpoint_, TraceFlag::kBegin, object_,
                                  arg, lane_);
    }

    ~TraceSpan()
    {
        Tracer::instance().record(tpoint_, TraceFlag::kEnd, object_,
                                  end_arg_, lane_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Value attached to the end record (e.g. bytes produced). */
    void set_end_arg(std::uint64_t arg) { end_arg_ = arg; }

  private:
    Tpoint tpoint_;
    std::uint64_t object_;
    std::uint32_t lane_;
    std::uint64_t end_arg_ = 0;
};

}  // namespace fidr::obs

/**
 * Instrumentation macros.  With -DFIDR_TRACE=OFF these expand to
 * nothing: the hot path contains no trace code at all.
 */
#if FIDR_TRACE_ENABLED
#define FIDR_TPOINT(tpoint, object, arg)                                   \
    ::fidr::obs::Tracer::instance().record(                                \
        (tpoint), ::fidr::obs::TraceFlag::kInstant,                        \
        static_cast<std::uint64_t>(object), static_cast<std::uint64_t>(arg))
#define FIDR_TPOINT_LANE(tpoint, object, arg, lane)                        \
    ::fidr::obs::Tracer::instance().record(                                \
        (tpoint), ::fidr::obs::TraceFlag::kInstant,                        \
        static_cast<std::uint64_t>(object),                                \
        static_cast<std::uint64_t>(arg), static_cast<std::uint32_t>(lane))
#define FIDR_TRACE_SPAN(var, tpoint, object, arg)                          \
    ::fidr::obs::TraceSpan var{(tpoint),                                   \
                               static_cast<std::uint64_t>(object),         \
                               static_cast<std::uint64_t>(arg)}
#define FIDR_TRACE_SPAN_LANE(var, tpoint, object, arg, lane)               \
    ::fidr::obs::TraceSpan var{                                            \
        (tpoint), static_cast<std::uint64_t>(object),                      \
        static_cast<std::uint64_t>(arg), static_cast<std::uint32_t>(lane)}
#else
#define FIDR_TPOINT(tpoint, object, arg) ((void)0)
#define FIDR_TPOINT_LANE(tpoint, object, arg, lane) ((void)0)
#define FIDR_TRACE_SPAN(var, tpoint, object, arg) ((void)0)
#define FIDR_TRACE_SPAN_LANE(var, tpoint, object, arg, lane) ((void)0)
#endif
