#include "fidr/pcie/fabric.h"

#include <algorithm>

#include "fidr/fault/failpoint.h"
#include "fidr/obs/trace.h"

namespace fidr::pcie {

namespace {

/** Packs a DMA's endpoints into one trace object id. */
[[maybe_unused]] std::uint64_t
dma_object_id(DeviceId src, DeviceId dst)
{
    return (static_cast<std::uint64_t>(src.index & 0xFFFFFFFF) << 32) |
           static_cast<std::uint64_t>(dst.index & 0xFFFFFFFF);
}

}  // namespace

Fabric::Fabric(FabricConfig config)
    : config_(config), root_pipe_(config.root_complex_bandwidth)
{
}

SwitchId
Fabric::add_switch(const std::string &name)
{
    switches_.push_back(name);
    return SwitchId{switches_.size() - 1};
}

DeviceId
Fabric::add_device(const std::string &name, SwitchId parent,
                   Bandwidth link_bandwidth)
{
    FIDR_CHECK(!parent.valid() || parent.index < switches_.size());
    devices_.push_back(DeviceState{
        DeviceInfo{name, parent, link_bandwidth},
        sim::BandwidthPipe(link_bandwidth),
        0,
    });
    return DeviceId{devices_.size() - 1};
}

Fabric::DeviceState &
Fabric::state(DeviceId id)
{
    FIDR_CHECK(id.valid() && id.index < devices_.size());
    return devices_[id.index];
}

const Fabric::DeviceState &
Fabric::state(DeviceId id) const
{
    FIDR_CHECK(id.valid() && id.index < devices_.size());
    return devices_[id.index];
}

const DeviceInfo &
Fabric::info(DeviceId id) const
{
    return state(id).info;
}

DmaPath
Fabric::dma(DeviceId src, DeviceId dst, std::uint64_t bytes,
            const std::string &tag)
{
    FIDR_CHECK(!(src == kHostMemory && dst == kHostMemory));
    FIDR_TPOINT(obs::Tpoint::kDma, dma_object_id(src, dst), bytes);

    if (src == kHostMemory || dst == kHostMemory) {
        DeviceState &dev = state(src == kHostMemory ? dst : src);
        dev.bytes += bytes;
        root_complex_bytes_ += bytes;
        host_memory_.add(tag, static_cast<double>(bytes));
        return DmaPath::kHostEndpoint;
    }

    DeviceState &s = state(src);
    DeviceState &d = state(dst);
    s.bytes += bytes;
    d.bytes += bytes;

    const bool same_switch = s.info.parent.valid() &&
                             s.info.parent == d.info.parent;
    if (config_.allow_p2p && same_switch) {
        p2p_bytes_ += bytes;
        return DmaPath::kPeerToPeer;
    }

    // Staged through host DRAM: DMA write into memory then DMA read out,
    // both crossing the root complex.
    root_complex_bytes_ += 2 * bytes;
    host_memory_.add(tag, 2.0 * static_cast<double>(bytes));
    return DmaPath::kThroughHost;
}

Result<DmaPath>
Fabric::try_dma(DeviceId src, DeviceId dst, std::uint64_t bytes,
                const std::string &tag)
{
    const fault::FaultDecision fd =
        FIDR_FAULT_EVAL(fault::Site::kPcieDma);
    if (fd.fire && fd.kind == fault::FaultKind::kError) {
        ++dma_errors_;
        return fault::to_status(fd, fault::Site::kPcieDma);
    }
    return dma(src, dst, bytes, tag);
}

SimTime
Fabric::dma_complete_time(SimTime now, DeviceId src, DeviceId dst,
                          std::uint64_t bytes)
{
    // Cut-through model: both endpoint links (and the root complex
    // when host memory is involved) stream concurrently, so the DMA
    // finishes when the slowest/busiest pipe drains.
    const SimTime start = now + config_.dma_setup_latency;
    SimTime done = start;
    if (src != kHostMemory)
        done = std::max(done, state(src).pipe.transfer(start, bytes));
    if (dst != kHostMemory)
        done = std::max(done, state(dst).pipe.transfer(start, bytes));
    if (src == kHostMemory || dst == kHostMemory)
        done = std::max(done, root_pipe_.transfer(start, bytes));
    return done;
}

std::uint64_t
Fabric::link_bytes(DeviceId id) const
{
    return state(id).bytes;
}

}  // namespace fidr::pcie
