/**
 * @file
 * PCIe fabric model: devices, switches, root complex, and DMA routing.
 *
 * FIDR's second key idea (paper Sec 5.1, 5.6) is peer-to-peer DMA:
 * groups of {NIC, Compression Engine, data SSDs} sit under a shared
 * PCIe switch so device-to-device transfers never touch host DRAM.
 * The baseline instead stages every transfer in host memory (one DMA
 * write into DRAM plus one DMA read out of it).
 *
 * This model routes each dma() by topology:
 *  - both endpoints under the same switch and P2P enabled: bytes debit
 *    only the two device links;
 *  - otherwise: bytes debit both device links, the root complex, and
 *    the host-DRAM ledger twice (write + read) — the stage-in-memory
 *    path;
 *  - endpoint kHostMemory: bytes cross the root complex and debit the
 *    DRAM ledger once.
 *
 * The host-DRAM ledger produced here is exactly what Figs 4/11 and
 * Table 1 report.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fidr/common/status.h"
#include "fidr/common/units.h"
#include "fidr/sim/event_queue.h"
#include "fidr/sim/ledger.h"

namespace fidr::pcie {

/** Opaque handle to a device registered in the fabric. */
struct DeviceId {
    std::size_t index = SIZE_MAX;
    bool valid() const { return index != SIZE_MAX; }
    bool operator==(const DeviceId &) const = default;
};

/** Handle to a PCIe switch. */
struct SwitchId {
    std::size_t index = SIZE_MAX;
    bool valid() const { return index != SIZE_MAX; }
    bool operator==(const SwitchId &) const = default;
};

/** Distinguished endpoint meaning "host DRAM via the root complex". */
inline constexpr DeviceId kHostMemory{SIZE_MAX - 1};

/** Per-device static attributes. */
struct DeviceInfo {
    std::string name;
    SwitchId parent;          ///< Invalid => directly on the root complex.
    Bandwidth link_bandwidth; ///< e.g. 16 GB/s for PCIe 3.0 x16.
};

/** Parameters of the whole fabric. */
struct FabricConfig {
    Bandwidth root_complex_bandwidth = gb_per_s(128);  ///< Sec 5.6 (EPYC).
    bool allow_p2p = true;      ///< Disabled to model the baseline.
    SimTime dma_setup_latency = 1 * kMicrosecond;  ///< Doorbell+descriptor.
};

/** Result of one routed DMA for callers that care about the path. */
enum class DmaPath {
    kPeerToPeer,    ///< Switch-local, bypassed host DRAM.
    kThroughHost,   ///< Device-to-device staged in host DRAM.
    kHostEndpoint,  ///< One endpoint was host DRAM itself.
};

/** PCIe topology with byte accounting and a timing model. */
class Fabric {
  public:
    explicit Fabric(FabricConfig config = {});

    /** Adds a switch hanging off the root complex. */
    SwitchId add_switch(const std::string &name);

    /**
     * Registers a device.  Pass an invalid SwitchId to attach directly
     * to the root complex.
     */
    DeviceId add_device(const std::string &name, SwitchId parent,
                        Bandwidth link_bandwidth = gb_per_s(16));

    const DeviceInfo &info(DeviceId id) const;

    /**
     * Accounts one DMA of `bytes` from `src` to `dst`, attributing
     * host-DRAM traffic (if any) to `tag`.  Returns the path taken.
     */
    DmaPath dma(DeviceId src, DeviceId dst, std::uint64_t bytes,
                const std::string &tag);

    /**
     * Fallible variant: evaluates the pcie.dma failpoint first, so an
     * injected descriptor/link error surfaces as kUnavailable (or the
     * armed code) with nothing billed.  Paths that must handle device
     * errors (the FidrSystem data plane) use this; dma() stays for
     * infallible accounting-only callers.
     */
    Result<DmaPath> try_dma(DeviceId src, DeviceId dst,
                            std::uint64_t bytes, const std::string &tag);

    /**
     * Timing variant for the latency experiments: returns the time the
     * transfer issued at `now` completes, serializing on both endpoint
     * link pipes.
     */
    SimTime dma_complete_time(SimTime now, DeviceId src, DeviceId dst,
                              std::uint64_t bytes);

    /** Host DRAM traffic ledger (tags chosen by callers). */
    const sim::BandwidthLedger &host_memory() const { return host_memory_; }
    sim::BandwidthLedger &host_memory() { return host_memory_; }

    /** Total bytes that crossed the root complex. */
    std::uint64_t root_complex_bytes() const { return root_complex_bytes_; }

    /** Bytes through a given device's link. */
    std::uint64_t link_bytes(DeviceId id) const;

    /** Bytes moved peer-to-peer (never touching DRAM). */
    std::uint64_t p2p_bytes() const { return p2p_bytes_; }

    /** try_dma() calls that failed with an injected error. */
    std::uint64_t dma_errors() const { return dma_errors_; }

    const FabricConfig &config() const { return config_; }

  private:
    struct DeviceState {
        DeviceInfo info;
        sim::BandwidthPipe pipe;
        std::uint64_t bytes = 0;
    };

    DeviceState &state(DeviceId id);
    const DeviceState &state(DeviceId id) const;

    FabricConfig config_;
    std::vector<std::string> switches_;
    std::vector<DeviceState> devices_;
    sim::BandwidthLedger host_memory_;
    sim::BandwidthPipe root_pipe_;
    std::uint64_t root_complex_bytes_ = 0;
    std::uint64_t p2p_bytes_ = 0;
    std::uint64_t dma_errors_ = 0;
};

}  // namespace fidr::pcie
