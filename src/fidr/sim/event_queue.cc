#include "fidr/sim/event_queue.h"

#include <algorithm>
#include <functional>
#include <cmath>
#include <utility>

#include "fidr/common/status.h"

namespace fidr::sim {

void
EventQueue::schedule(SimTime delay, EventFn fn)
{
    schedule_at(now_ + delay, std::move(fn));
}

void
EventQueue::schedule_at(SimTime when, EventFn fn)
{
    FIDR_CHECK(when >= now_);
    events_.push(Event{when, next_seq_++, std::move(fn)});
}

SimTime
EventQueue::run()
{
    while (!events_.empty()) {
        // Copying the handle out before pop keeps the queue reentrant:
        // the callback may schedule new events.
        Event ev = events_.top();
        events_.pop();
        now_ = ev.when;
        ev.fn();
    }
    return now_;
}

SimTime
EventQueue::run_until(SimTime deadline)
{
    while (!events_.empty() && events_.top().when <= deadline) {
        Event ev = events_.top();
        events_.pop();
        now_ = ev.when;
        ev.fn();
    }
    now_ = std::max(now_, deadline);
    return now_;
}

BandwidthPipe::BandwidthPipe(Bandwidth bandwidth) : bandwidth_(bandwidth)
{
    FIDR_CHECK(bandwidth > 0);
}

MultiServerQueue::MultiServerQueue(unsigned servers)
{
    FIDR_CHECK(servers >= 1);
    free_.assign(servers, 0);
    std::make_heap(free_.begin(), free_.end(), std::greater<>());
}

SimTime
MultiServerQueue::serve(SimTime arrival, SimTime service)
{
    std::pop_heap(free_.begin(), free_.end(), std::greater<>());
    const SimTime start = std::max(arrival, free_.back());
    const SimTime done = start + service;
    free_.back() = done;
    std::push_heap(free_.begin(), free_.end(), std::greater<>());
    busy_ns_ += static_cast<double>(service);
    return done;
}

SimTime
BandwidthPipe::transfer(SimTime start, std::uint64_t bytes)
{
    const SimTime begin = std::max(start, busy_until_);
    const auto duration = static_cast<SimTime>(
        std::llround(static_cast<double>(bytes) / bandwidth_ * 1e9));
    busy_until_ = begin + duration;
    bytes_ += bytes;
    return busy_until_;
}

}  // namespace fidr::sim
